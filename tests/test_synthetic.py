"""Tests for the synthetic microbenchmark generators."""

import pytest

from repro.sim.designs import make_design
from repro.sim.replay import replay
from repro.trace.generators.base import TraceParams
from repro.trace.generators.synthetic import (
    CyclicScanGenerator,
    PointerChaseGenerator,
    PrivateHotGenerator,
    StreamingGenerator,
    ZipfGatherGenerator,
)

SMALL = TraceParams(scale=0.25)


@pytest.mark.parametrize(
    "cls",
    [
        StreamingGenerator,
        CyclicScanGenerator,
        ZipfGatherGenerator,
        PrivateHotGenerator,
        PointerChaseGenerator,
    ],
)
class TestAllSynthetics:
    def test_builds_and_validates(self, cls):
        trace = cls(SMALL).build()
        trace.validate()
        assert trace.memory_access_count() > 0

    def test_deterministic(self, cls):
        a = cls(SMALL).build()
        b = cls(SMALL).build()
        assert a.ctas[0].warps[0] == b.ctas[0].warps[0]


class TestPatternProperties:
    def test_streaming_has_zero_reuse(self, tiny_config):
        trace = StreamingGenerator(SMALL).build()
        result = replay(trace, tiny_config, make_design("bs"), include_l2=False)
        assert result.l1.load_hits == 0

    def test_scan_below_capacity_hits(self, tiny_config):
        class SmallScan(CyclicScanGenerator):
            footprint_lines = 8  # far below even the tiny L1

        trace = SmallScan(SMALL).build()
        result = replay(trace, tiny_config, make_design("bs"), include_l2=False)
        assert result.l1.miss_rate < 0.6

    def test_scan_cliff_kills_lru(self, tiny_config):
        # tiny_config L1 = 2KB = 16 lines; a 24-line scan is past its cliff.
        class CliffScan(CyclicScanGenerator):
            footprint_lines = 24

        trace = CliffScan(SMALL).build()
        lru = replay(trace, tiny_config, make_design("bs"), include_l2=False)
        gc = replay(trace, tiny_config, make_design("gc"), include_l2=True)
        assert lru.l1.miss_rate > 0.6
        assert gc.l1.miss_rate < lru.l1.miss_rate

    def test_private_hot_protected_by_gcache(self, tiny_config):
        trace = PrivateHotGenerator(SMALL).build()
        lru = replay(trace, tiny_config, make_design("bs"))
        gc = replay(trace, tiny_config, make_design("gc"))
        assert gc.l1.miss_rate <= lru.l1.miss_rate + 0.02

    def test_chase_is_all_misses(self, tiny_config):
        trace = PointerChaseGenerator(SMALL).build()
        result = replay(trace, tiny_config, make_design("bs"), include_l2=False)
        assert result.l1.miss_rate > 0.95

    def test_zipf_head_is_cacheable(self, tiny_config):
        trace = ZipfGatherGenerator(SMALL).build()
        result = replay(trace, tiny_config, make_design("bs"), include_l2=False)
        assert 0.0 < result.l1.miss_rate < 1.0
