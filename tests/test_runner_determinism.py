"""Golden determinism tests for the campaign engine.

The engine's contract is that parallel execution can never change
reproduced numbers: ``jobs=4`` must produce *identical* ``RunResult``
counters to ``jobs=1``, and serving a result from the persistent cache
must be byte-identical to computing it.  These tests lock that in for a
3-benchmark x 3-design slice of the paper campaign.
"""

from __future__ import annotations

import functools
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.common import EvalSuite
from repro.faults import FaultPlan
from repro.runner import CampaignEngine, ResultCache, Task

SLICE_BENCHMARKS = ("SPMV", "BFS", "SD1")
SLICE_DESIGNS = ("bs", "bs-s", "gc")
SCALE = 0.05
SEED = 0


def signature(result):
    """Every counter a RunResult carries, as plain comparable data."""
    return {
        "benchmark": result.benchmark,
        "design": result.design,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "ipc": result.ipc,
        "l1": result.l1.snapshot(),
        "l1_reuse": result.l1.reuse.as_dict(),
        "l2": result.l2.snapshot(),
        "l2_reuse": result.l2.reuse.as_dict(),
        "avg_load_latency": result.avg_load_latency,
        "dram_requests": result.dram_requests,
        "dram_row_hit_rate": result.dram_row_hit_rate,
    }


def run_slice(jobs, cache_dir=None):
    suite = EvalSuite(
        benchmarks=SLICE_BENCHMARKS,
        scale=SCALE,
        seed=SEED,
        jobs=jobs,
        cache_dir=cache_dir,
    )
    return suite, suite.run_matrix(SLICE_DESIGNS)


class TestParallelEqualsSerial:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_slice(jobs=1)[1]

    @pytest.fixture(scope="class")
    def parallel(self):
        return run_slice(jobs=4)[1]

    def test_same_grid(self, serial, parallel):
        assert set(serial) == set(parallel) == {
            (b, d) for b in SLICE_BENCHMARKS for d in SLICE_DESIGNS
        }

    def test_identical_counters(self, serial, parallel):
        for point in serial:
            assert signature(parallel[point]) == signature(serial[point]), point

    def test_parallel_engine_really_forked(self):
        """Guard the fixture: jobs=4 must take the pool path for batches."""
        engine = CampaignEngine(jobs=4)
        assert engine.jobs == 4


class TestCachedRunsAreByteIdentical:
    def test_consecutive_cached_runs(self, tmp_path):
        cache_dir = tmp_path / "cache"

        suite1, first = run_slice(jobs=2, cache_dir=str(cache_dir))
        keys = {t.key for t in suite1.engine.counters.timings}
        assert keys, "first run recorded no tasks"
        blobs_after_first = {
            key: suite1.engine.cache.get_bytes(key) for key in keys
        }
        assert all(blob is not None for blob in blobs_after_first.values())

        suite2, second = run_slice(jobs=2, cache_dir=str(cache_dir))
        # Every task of the second run is served from the cache...
        assert suite2.engine.counters.cache_misses == 0
        assert suite2.engine.counters.cache_hits == len(
            suite2.engine.counters.timings
        )
        # ...from byte-identical entries...
        blobs_after_second = {
            key: suite2.engine.cache.get_bytes(key) for key in keys
        }
        assert blobs_after_second == blobs_after_first
        # ...decoding to identical counters.
        for point in first:
            assert signature(second[point]) == signature(first[point]), point

    def test_cached_equals_uncached(self, tmp_path):
        """A cache round-trip must not perturb any counter."""
        _, uncached = run_slice(jobs=1)
        _, cached = run_slice(jobs=1, cache_dir=str(tmp_path / "cache"))
        for point in uncached:
            assert signature(cached[point]) == signature(uncached[point]), point


class TestSingleTaskPath:
    def test_run_one_matches_batch(self, tmp_path):
        """The inline single-task shortcut returns the same payload as a
        pooled batch for the same key."""
        task = Task(kind="simulate", benchmark="SPMV", design="gc", scale=SCALE)
        inline = CampaignEngine(jobs=1).run_one(task)
        pooled = CampaignEngine(jobs=2).run(
            [task, Task(kind="simulate", benchmark="SD1", design="bs", scale=SCALE)]
        )[0]
        assert signature(inline) == signature(pooled)


# ----------------------------------------------------------------------
# Chaos determinism: faults never change reproduced numbers
# ----------------------------------------------------------------------
CHAOS_BENCHMARKS = ("SD1", "SPMV")


def chaos_tasks(benchmarks=CHAOS_BENCHMARKS):
    return [
        Task(kind="replay", benchmark=b, design="bs", scale=SCALE,
             include_l2=False)
        for b in benchmarks
    ]


def replay_signature(results):
    return [
        {"l1": r.l1.snapshot(), "reuse": r.l1.reuse.as_dict()} for r in results
    ]


@functools.lru_cache(maxsize=1)
def fault_free_signature():
    return tuple(
        map(repr, replay_signature(CampaignEngine(jobs=1).run(chaos_tasks())))
    )


class TestChaosDeterminism:
    """Satellite: random seeded fault schedules over a small campaign
    always complete, with result counters bit-identical to the
    fault-free run.

    Completion is guaranteed by construction — ``max_faults_per_task``
    (2) is below the retry budget (4) — and Hypothesis hunts for any
    schedule where a recovery path (retry, serial crash surface, hang,
    backoff, cache corruption) perturbs a counter.
    """

    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        crash=st.floats(min_value=0.0, max_value=1.0),
        hang=st.floats(min_value=0.0, max_value=1.0),
        transient=st.floats(min_value=0.0, max_value=1.0),
        corrupt=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_any_schedule_converges_to_fault_free(
        self, seed, crash, hang, transient, corrupt
    ):
        # Rates are scaled onto the cumulative ladder (sum <= 1).
        total = max(crash + hang + transient, 1.0)
        plan = FaultPlan(
            seed=seed,
            crash_rate=crash / total,
            hang_rate=hang / total,
            transient_rate=transient / total,
            corrupt_rate=corrupt,
            hang_seconds=0.01,
            max_faults_per_task=2,
        )
        with tempfile.TemporaryDirectory() as tmp:
            engine = CampaignEngine(
                jobs=1,
                cache=ResultCache(Path(tmp) / "cache"),
                retries=4,
                backoff_base=0.0,
                faults=plan,
            )
            out = engine.run(chaos_tasks())
        assert tuple(map(repr, replay_signature(out))) == fault_free_signature()
        assert engine.counters.failed == 0
        assert len(out) == len(CHAOS_BENCHMARKS)

    def test_builtin_chaos_schedule_pool(self):
        """Acceptance criterion: under the built-in chaos schedule (every
        fault kind at >= 10%, seed-pinned) a small pooled campaign
        completes with counters bit-identical to the fault-free run."""
        tasks = [
            Task(kind="simulate", benchmark=b, design=d, scale=SCALE)
            for b, d in (("SD1", "bs"), ("SPMV", "gc"), ("BFS", "bs-s"))
        ]
        baseline = CampaignEngine(jobs=2).run(tasks)

        engine = CampaignEngine(jobs=2, retries=6, backoff_base=0.0,
                                task_timeout=30.0)
        keys = [t.key(engine.salt) for t in tasks]
        # First pinned seed whose schedule actually faults some first
        # attempt — deterministic (pure function of the task keys), and
        # robust to future key-scheme changes.
        seed = next(
            s for s in range(64)
            if any(
                FaultPlan.chaos(seed=s, rate=0.25).decide(k, 0) for k in keys
            )
        )
        engine.faults = FaultPlan.chaos(seed=seed, rate=0.25, hang_seconds=0.05)
        out = engine.run(tasks)

        assert [signature(r) for r in out] == [signature(r) for r in baseline]
        assert engine.counters.failed == 0
        assert engine.counters.retries >= 1
