"""Unit tests for the partition address map."""

import pytest

from repro.sim.addressing import AddressMap


class TestMapping:
    def test_interleave_chunks(self):
        amap = AddressMap(num_partitions=8, interleave_lines=16)
        # All 16 lines of one chunk land in one partition.
        parts = {amap.partition(line) for line in range(16)}
        assert len(parts) == 1

    def test_chunks_rotate_partitions(self):
        amap = AddressMap(num_partitions=8, interleave_lines=16)
        parts = {amap.partition(chunk * 16) for chunk in range(8)}
        assert len(parts) == 8

    def test_local_dense(self):
        amap = AddressMap(num_partitions=8, interleave_lines=16)
        # Locals of one partition's chunks are consecutive blocks.
        assert amap.local(0) == 0
        assert amap.local(15) == 15
        assert amap.local(8 * 16) == 16  # next chunk group, offset 0

    def test_bijective_roundtrip(self):
        amap = AddressMap(num_partitions=8, interleave_lines=16)
        for line in range(0, 4096, 7):
            part = amap.partition(line)
            local = amap.local(line)
            assert amap.globalize(part, local) == line

    def test_no_partition_camping_for_strided_structures(self):
        # A structure of 8 chunks must spread across many partitions even
        # if it starts at a chunk-aligned offset (the XOR hash).
        amap = AddressMap(num_partitions=8, interleave_lines=16)
        spread = {amap.partition(base + c * 16) for base in (0, 1 << 20) for c in range(8)}
        assert len(spread) == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            AddressMap(num_partitions=6)
        with pytest.raises(ValueError):
            AddressMap(num_partitions=8, interleave_lines=3)

    def test_single_partition(self):
        amap = AddressMap(num_partitions=1, interleave_lines=16)
        assert amap.partition(12345) == 0
        assert amap.globalize(0, amap.local(12345)) == 12345
