"""Tests for the event bus: ordering, filtering, disabled-mode no-op."""

import pytest

from repro.obs import Observability, RingBufferSink, wire
from repro.obs.events import (
    EV_FILL,
    EV_HIT,
    EV_MISS,
    EV_SWITCH_ON,
    EV_VICTIM_SET,
    EVENT_KINDS,
    Event,
    EventBus,
)
from repro.sim.designs import make_design
from repro.sim.simulator import GPU

from conftest import alu, ld, make_kernel


class TestEvent:
    def test_as_dict_flattens_args(self):
        ev = Event(EV_HIT, 42, "L1[0]", 7, {"line": 3, "set": 1})
        d = ev.as_dict()
        assert d == {
            "kind": EV_HIT, "cycle": 42, "src": "L1[0]", "seq": 7,
            "line": 3, "set": 1,
        }

    def test_taxonomy_is_unique(self):
        assert len(EVENT_KINDS) == len(set(EVENT_KINDS))


class TestEventBus:
    def test_seq_is_monotonic_in_emission_order(self):
        ring = RingBufferSink()
        bus = EventBus([ring])
        bus.emit(EV_HIT, 10, "L1[0]")
        bus.emit(EV_MISS, 5, "L1[0]")  # causal order, earlier cycle
        bus.emit(EV_FILL, 5, "L1[1]")
        seqs = [e.seq for e in ring.events()]
        assert seqs == [0, 1, 2]
        assert bus.events_emitted == 3

    def test_kinds_whitelist_drops_others(self):
        ring = RingBufferSink()
        bus = EventBus([ring], kinds=[EV_VICTIM_SET, EV_SWITCH_ON])
        bus.emit(EV_HIT, 1, "L1[0]")
        bus.emit(EV_VICTIM_SET, 2, "L2[0]", hint=True)
        bus.emit(EV_SWITCH_ON, 3, "L1[0]", set=4)
        assert [e.kind for e in ring.events()] == [EV_VICTIM_SET, EV_SWITCH_ON]
        assert bus.events_dropped == 1
        assert bus.events_emitted == 2

    def test_multiple_sinks_see_every_event(self):
        a, b = RingBufferSink(), RingBufferSink()
        bus = EventBus([a])
        bus.add_sink(b)
        bus.emit(EV_HIT, 1, "L1[0]")
        assert len(a) == len(b) == 1


class TestDisabledMode:
    def test_components_default_to_no_bus(self, tiny_config):
        gpu = GPU(tiny_config, make_design("gc"))
        assert gpu.obs is None
        assert gpu.memory.obs is None
        assert all(l1.obs is None for l1 in gpu.memory.l1s)
        assert all(l1.mgmt.obs is None for l1 in gpu.memory.l1s)
        assert gpu.memory.noc.obs is None
        assert all(mc.obs is None for mc in gpu.memory.mcs)
        assert all(core.obs is None for core in gpu.cores)

    def test_untraced_run_matches_traced_run(self, tiny_config):
        """Tracing must be observation-only: identical results either way."""
        kernel = make_kernel(
            [[op for i in range(8) for op in (ld(i * 4), alu(2))]] * 2, ctas=4
        )
        plain = GPU(tiny_config, make_design("gc")).run(kernel)
        obs = Observability.in_memory()
        traced = GPU(tiny_config, make_design("gc"), obs=obs).run(kernel)
        assert traced.cycles == plain.cycles
        assert traced.instructions == plain.instructions
        assert traced.l1.hits == plain.l1.hits
        assert traced.l1.bypasses == plain.l1.bypasses
        assert obs.bus.events_emitted > 0


class TestWire:
    def test_wire_installs_bus_everywhere(self, tiny_config):
        obs = Observability.in_memory()
        gpu = GPU(tiny_config, make_design("gc"), obs=obs)
        bus = obs.bus
        assert gpu.memory.obs is bus
        assert all(l1.obs is bus for l1 in gpu.memory.l1s)
        assert all(l1.mgmt.obs is bus for l1 in gpu.memory.l1s)
        assert all(bank.obs is bus for bank in gpu.memory.l2_banks)
        assert gpu.memory.noc.obs is bus
        assert all(mc.obs is bus for mc in gpu.memory.mcs)
        assert all(core.obs is bus for core in gpu.cores)

    def test_traced_run_emits_cache_events(self, tiny_config):
        kernel = make_kernel([[ld(i) for i in range(12)]] * 2, ctas=2)
        obs = Observability.in_memory()
        GPU(tiny_config, make_design("bs"), obs=obs).run(kernel)
        counts = obs.ring().counts_by_kind()
        assert counts.get(EV_MISS, 0) > 0
        assert counts.get(EV_FILL, 0) > 0

    def test_diagnostics_requires_ring(self, tmp_path):
        obs = Observability.to_jsonl(tmp_path / "t.jsonl")
        with pytest.raises(ValueError):
            obs.diagnostics()
        obs.close()
