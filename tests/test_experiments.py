"""Smoke tests for the experiment harnesses at tiny scale.

These verify plumbing (runs complete, tables render, derived views are
consistent), not paper-shape numbers — the shape checks live in
benchmarks/, which run at experiment scale.
"""

import pytest

from repro.experiments.ablations import (
    adaptive_aging_ablation,
    scheduler_ablation,
    victim_bit_sharing_ablation,
)
from repro.experiments.common import EvalSuite, sweep_optimal_pd
from repro.experiments.fig2_reuse import fig2_reuse_distribution, render_fig2
from repro.experiments.fig34_size_sensitivity import (
    render_fig3,
    render_fig4,
    size_sensitivity,
)
from repro.experiments.fig8_speedup import fig8_speedups, render_fig8
from repro.experiments.fig9_missrate import fig9_miss_rates, render_fig9
from repro.experiments.fig10_64kb import make_64kb_suite
from repro.experiments.table3_bypass import render_table3, table3_rows
from repro.trace.suite import build_benchmark

TINY = dict(scale=0.05, seed=0)
SUBSET = ["SPMV", "SD1"]


@pytest.fixture(scope="module")
def suite():
    return EvalSuite(benchmarks=SUBSET, **TINY)


class TestEvalSuite:
    def test_runs_memoized(self, suite):
        a = suite.run("SPMV", "bs")
        b = suite.run("SPMV", "bs")
        assert a is b

    def test_speedup_one_for_baseline(self, suite):
        assert suite.speedup("SPMV", "bs") == pytest.approx(1.0)

    def test_optimal_pd_cached_and_in_sweep(self, suite):
        pd = suite.optimal_pd("SPMV")
        from repro.experiments.common import PD_SWEEP

        assert pd in PD_SWEEP
        assert suite.optimal_pd("SPMV") == pd

    def test_gmean_over_group(self, suite):
        g = suite.speedup_gmean(SUBSET, "gc")
        assert g > 0


class TestSweep:
    def test_sweep_respects_candidates(self):
        trace = build_benchmark("SPMV", **TINY)
        from repro.sim.config import GPUConfig

        pd = sweep_optimal_pd(trace, GPUConfig(), candidates=(4, 8))
        assert pd in (4, 8)


class TestFigureHarnesses:
    def test_fig2(self):
        data = fig2_reuse_distribution(SUBSET, **TINY)
        assert set(data) == set(SUBSET)
        text = render_fig2(data)
        assert "Figure 2" in text and "SPMV" in text

    def test_fig34(self):
        data = size_sensitivity(["SPMV"], sizes=(16 * 1024, 32 * 1024), **TINY)
        assert render_fig3(data, sizes=(16 * 1024, 32 * 1024))
        assert "Figure 4" in render_fig4(data, sizes=(16 * 1024, 32 * 1024))

    def test_fig8_includes_gmeans(self, suite):
        data = fig8_speedups(suite, designs=("bs", "gc"))
        assert "GM-all" in data
        assert "Figure 8" in render_fig8(suite, designs=("bs", "gc"))

    def test_fig9_consistent_with_runs(self, suite):
        data = fig9_miss_rates(suite, designs=("bs",))
        assert data["SPMV"]["bs"] == suite.run("SPMV", "bs").l1.miss_rate
        assert "Figure 9" in render_fig9(suite, designs=("bs",))

    def test_table3(self, suite):
        rows = table3_rows(suite)
        assert {r.benchmark for r in rows} == set(SUBSET)
        assert "Table 3" in render_table3(suite)

    def test_fig10_suite_has_big_l1(self):
        suite64 = make_64kb_suite(SUBSET, **TINY)
        assert suite64.config.l1_size == 64 * 1024


class TestAblationHarnesses:
    def test_victim_bit_sharing(self):
        data = victim_bit_sharing_ablation(["SPMV"], share_factors=(1, 16), **TINY)
        assert set(data["SPMV"]) == {1, 16}

    def test_adaptive_aging(self):
        data = adaptive_aging_ablation(["SPMV"], **TINY)
        assert set(data["SPMV"]) == {"bs", "gc", "gc-m"}

    def test_scheduler(self):
        data = scheduler_ablation(["SPMV"], schedulers=("lrr", "gto"), **TINY)
        assert set(data["SPMV"]) == {"lrr", "gto"}


class TestCLI:
    def test_main_tiny(self, capsys):
        from repro.experiments.__main__ import main

        rc = main(["--scale", "0.05", "--only", "fig8", "--benchmarks", "SD1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out

    def test_main_rejects_unknown_experiment(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["--only", "fig99"])


class TestEnergyExperiment:
    def test_ratios_and_render(self, suite):
        from repro.experiments.energy_table import energy_ratios, render_energy_table

        data = energy_ratios(suite)
        assert data["SPMV"]["bs"] == pytest.approx(1.0)
        assert "GM-sensitive" in data or "GM-insensitive" in data
        text = render_energy_table(suite)
        assert "energy" in text
