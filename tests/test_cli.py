"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_suite(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "SPMV" in out
        assert "designs:" in out
        assert "gc" in out


class TestRun:
    def test_run_prints_report(self, capsys):
        rc = main(["run", "--benchmark", "sd1", "--design", "bs", "--scale", "0.05"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SD1" in out
        assert "IPC" in out
        assert "L1 miss rate" in out

    def test_l1_size_override(self, capsys):
        rc = main([
            "run", "--benchmark", "sd1", "--design", "bs",
            "--scale", "0.05", "--l1-size", "16384",
        ])
        assert rc == 0
        assert "16KB" in capsys.readouterr().out

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["run", "--benchmark", "NOPE", "--design", "bs"])

    def test_rejects_unknown_design(self):
        with pytest.raises(SystemExit):
            main(["run", "--benchmark", "SD1", "--design", "magic"])


class TestCompare:
    def test_compare_table(self, capsys):
        rc = main([
            "compare", "--benchmark", "sd1",
            "--designs", "bs,gc", "--scale", "0.05",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "design comparison" in out
        assert "GC" in out
        assert "rel. energy" in out

    def test_compare_rejects_unknown_design(self, capsys):
        rc = main([
            "compare", "--benchmark", "sd1", "--designs", "bs,magic",
            "--scale", "0.05",
        ])
        assert rc == 2


class TestRunObservability:
    def test_timeline_csv_written(self, capsys, tmp_path):
        csv = tmp_path / "tl.csv"
        rc = main([
            "run", "--benchmark", "sd1", "--design", "bs",
            "--scale", "0.05", "--timeline-csv", str(csv),
        ])
        assert rc == 0
        lines = csv.read_text().splitlines()
        assert lines[0] == "start_cycle,end_cycle,ipc,miss_rate,bypass_rate"
        assert len(lines) >= 2

    def test_trace_flag_writes_perfetto_json(self, capsys, tmp_path):
        import json

        from repro.obs import validate_trace_event_json

        out = tmp_path / "run.json"
        rc = main([
            "run", "--benchmark", "sd1", "--design", "gc",
            "--scale", "0.05", "--trace", str(out),
        ])
        assert rc == 0
        assert validate_trace_event_json(json.loads(out.read_text())) == []

    def test_trace_flag_jsonl_variant(self, capsys, tmp_path):
        import json

        out = tmp_path / "run.jsonl"
        rc = main([
            "run", "--benchmark", "sd1", "--design", "bs",
            "--scale", "0.05", "--trace", str(out),
        ])
        assert rc == 0
        first = json.loads(out.read_text().splitlines()[0])
        assert {"kind", "cycle", "src", "seq"} <= set(first)

    def test_gcache_alias_accepted(self, capsys):
        rc = main([
            "run", "--benchmark", "sd1", "--design", "gcache", "--scale", "0.05",
        ])
        assert rc == 0


class TestTrace:
    def test_exports_victim_and_switch_events(self, capsys, tmp_path):
        import json

        from repro.obs import validate_trace_event_json

        out = tmp_path / "trace.json"
        rc = main([
            "trace", "--benchmark", "spmv", "--design", "gcache",
            "--scale", "0.05", "-o", str(out),
        ])
        assert rc == 0
        blob = json.loads(out.read_text())
        assert validate_trace_event_json(blob) == []
        names = {e["name"] for e in blob["traceEvents"]}
        assert any(n.startswith("victim.") for n in names)
        assert any(n.startswith("switch.") for n in names)
        assert "events" in capsys.readouterr().out

    def test_kinds_filter(self, capsys, tmp_path):
        import json

        out = tmp_path / "trace.json"
        rc = main([
            "trace", "--benchmark", "spmv", "--design", "gc", "--scale", "0.05",
            "-o", str(out), "--kinds", "victim.set,switch.on",
        ])
        assert rc == 0
        blob = json.loads(out.read_text())
        names = {e["name"] for e in blob["traceEvents"] if e["ph"] != "M"}
        assert names <= {"victim.set", "switch.on"}

    def test_rejects_unknown_kind(self, capsys, tmp_path):
        rc = main([
            "trace", "--benchmark", "sd1", "--design", "gc", "--scale", "0.05",
            "-o", str(tmp_path / "t.json"), "--kinds", "nope.event",
        ])
        assert rc == 2


class TestProfile:
    def test_prints_convergence_report(self, capsys):
        rc = main([
            "profile", "--benchmark", "spmv", "--design", "gcache",
            "--scale", "0.05",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "G-Cache convergence" in out
        assert "Per-set switch duty cycle" in out
        assert "metrics snapshot" in out
        assert "l1.loads" in out

    def test_from_trace_summarises_jsonl(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        rc = main([
            "trace", "--benchmark", "sd1", "--design", "gc",
            "--scale", "0.05", "-o", str(trace),
        ])
        assert rc == 0
        capsys.readouterr()
        rc = main(["profile", "--from-trace", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Events by kind" in out
        assert "cache.hit" in out or "cache.miss" in out

    def test_from_trace_missing_file_exits_nonzero(self, capsys, tmp_path):
        rc = main(["profile", "--from-trace", str(tmp_path / "nope.jsonl")])
        assert rc == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_from_trace_unparseable_exits_nonzero(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n{malformed\n")
        rc = main(["profile", "--from-trace", str(bad)])
        assert rc == 2
        assert "no parseable trace events" in capsys.readouterr().err

    def test_profile_without_inputs_exits_nonzero(self, capsys):
        rc = main(["profile"])
        assert rc == 2
        assert "--benchmark" in capsys.readouterr().err


class TestAnalyzeCLI:
    """`repro analyze` entry points; the heavy lifting is covered by
    tests/test_analysis_*.py — here we pin the exit-code contract."""

    @pytest.fixture(scope="class")
    def manifests(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("analyze-cli")
        a, b = root / "a.json", root / "b.json"
        assert main([
            "campaign", "--benchmarks", "SD1", "--designs", "bs,gc",
            "--scale", "0.05", "--jobs", "1", "--no-cache",
            "--manifest", str(a),
        ]) == 0
        assert main([
            "campaign", "--benchmarks", "SD1", "--designs", "bs,gc",
            "--scale", "0.05", "--seed", "3", "--jobs", "1", "--no-cache",
            "--manifest", str(b),
        ]) == 0
        return a, b

    def test_compare_writes_reports(self, capsys, tmp_path, manifests):
        a, b = manifests
        md, html = tmp_path / "cmp.md", tmp_path / "cmp.html"
        rc = main(["analyze", "compare", str(a), str(b),
                   "--markdown", str(md), "--html", str(html)])
        assert rc == 0
        assert "Campaign comparison" in md.read_text()
        assert html.read_text().startswith("<!DOCTYPE html>")
        assert "verdicts:" in capsys.readouterr().out

    def test_compare_missing_manifest_exits_nonzero(self, capsys, tmp_path):
        rc = main(["analyze", "compare", str(tmp_path / "no.json"),
                   str(tmp_path / "pe.json")])
        assert rc == 2
        assert "cannot read manifest" in capsys.readouterr().err

    def test_compare_unparseable_manifest_exits_nonzero(
        self, capsys, tmp_path, manifests
    ):
        bad = tmp_path / "bad.json"
        bad.write_text("{truncated")
        rc = main(["analyze", "compare", str(manifests[0]), str(bad)])
        assert rc == 2
        assert "unparseable manifest" in capsys.readouterr().err

    def test_compare_non_manifest_json_exits_nonzero(self, capsys, tmp_path):
        not_manifest = tmp_path / "other.json"
        not_manifest.write_text('{"records": []}')
        rc = main(["analyze", "compare", str(not_manifest), str(not_manifest)])
        assert rc == 2
        assert "not a campaign manifest" in capsys.readouterr().err

    def test_ledger_append_check_trend(self, capsys, tmp_path, manifests):
        ledger = tmp_path / "led.jsonl"
        for _ in range(4):
            rc = main(["analyze", "ledger", str(ledger),
                       "--append-manifest", str(manifests[0]),
                       "--suite", "camp"])
            assert rc == 0
        rc = main(["analyze", "ledger", str(ledger), "--check",
                   "--suite", "camp"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "OK:" in out
        rc = main(["analyze", "ledger", str(ledger)])
        assert rc == 0
        assert "4 records" in capsys.readouterr().out

    def test_ledger_bad_input_exits_nonzero(self, capsys, tmp_path):
        rc = main(["analyze", "ledger", str(tmp_path / "led.jsonl"),
                   "--append-bench", str(tmp_path / "missing.json")])
        assert rc == 2
        assert "cannot read" in capsys.readouterr().err
