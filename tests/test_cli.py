"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_suite(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "SPMV" in out
        assert "designs:" in out
        assert "gc" in out


class TestRun:
    def test_run_prints_report(self, capsys):
        rc = main(["run", "--benchmark", "sd1", "--design", "bs", "--scale", "0.05"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SD1" in out
        assert "IPC" in out
        assert "L1 miss rate" in out

    def test_l1_size_override(self, capsys):
        rc = main([
            "run", "--benchmark", "sd1", "--design", "bs",
            "--scale", "0.05", "--l1-size", "16384",
        ])
        assert rc == 0
        assert "16KB" in capsys.readouterr().out

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["run", "--benchmark", "NOPE", "--design", "bs"])

    def test_rejects_unknown_design(self):
        with pytest.raises(SystemExit):
            main(["run", "--benchmark", "SD1", "--design", "magic"])


class TestCompare:
    def test_compare_table(self, capsys):
        rc = main([
            "compare", "--benchmark", "sd1",
            "--designs", "bs,gc", "--scale", "0.05",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "design comparison" in out
        assert "GC" in out
        assert "rel. energy" in out

    def test_compare_rejects_unknown_design(self, capsys):
        rc = main([
            "compare", "--benchmark", "sd1", "--designs", "bs,magic",
            "--scale", "0.05",
        ])
        assert rc == 2
