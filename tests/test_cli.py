"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_suite(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "SPMV" in out
        assert "designs:" in out
        assert "gc" in out


class TestRun:
    def test_run_prints_report(self, capsys):
        rc = main(["run", "--benchmark", "sd1", "--design", "bs", "--scale", "0.05"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SD1" in out
        assert "IPC" in out
        assert "L1 miss rate" in out

    def test_l1_size_override(self, capsys):
        rc = main([
            "run", "--benchmark", "sd1", "--design", "bs",
            "--scale", "0.05", "--l1-size", "16384",
        ])
        assert rc == 0
        assert "16KB" in capsys.readouterr().out

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["run", "--benchmark", "NOPE", "--design", "bs"])

    def test_rejects_unknown_design(self):
        with pytest.raises(SystemExit):
            main(["run", "--benchmark", "SD1", "--design", "magic"])


class TestCompare:
    def test_compare_table(self, capsys):
        rc = main([
            "compare", "--benchmark", "sd1",
            "--designs", "bs,gc", "--scale", "0.05",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "design comparison" in out
        assert "GC" in out
        assert "rel. energy" in out

    def test_compare_rejects_unknown_design(self, capsys):
        rc = main([
            "compare", "--benchmark", "sd1", "--designs", "bs,magic",
            "--scale", "0.05",
        ])
        assert rc == 2


class TestRunObservability:
    def test_timeline_csv_written(self, capsys, tmp_path):
        csv = tmp_path / "tl.csv"
        rc = main([
            "run", "--benchmark", "sd1", "--design", "bs",
            "--scale", "0.05", "--timeline-csv", str(csv),
        ])
        assert rc == 0
        lines = csv.read_text().splitlines()
        assert lines[0] == "start_cycle,end_cycle,ipc,miss_rate,bypass_rate"
        assert len(lines) >= 2

    def test_trace_flag_writes_perfetto_json(self, capsys, tmp_path):
        import json

        from repro.obs import validate_trace_event_json

        out = tmp_path / "run.json"
        rc = main([
            "run", "--benchmark", "sd1", "--design", "gc",
            "--scale", "0.05", "--trace", str(out),
        ])
        assert rc == 0
        assert validate_trace_event_json(json.loads(out.read_text())) == []

    def test_trace_flag_jsonl_variant(self, capsys, tmp_path):
        import json

        out = tmp_path / "run.jsonl"
        rc = main([
            "run", "--benchmark", "sd1", "--design", "bs",
            "--scale", "0.05", "--trace", str(out),
        ])
        assert rc == 0
        first = json.loads(out.read_text().splitlines()[0])
        assert {"kind", "cycle", "src", "seq"} <= set(first)

    def test_gcache_alias_accepted(self, capsys):
        rc = main([
            "run", "--benchmark", "sd1", "--design", "gcache", "--scale", "0.05",
        ])
        assert rc == 0


class TestTrace:
    def test_exports_victim_and_switch_events(self, capsys, tmp_path):
        import json

        from repro.obs import validate_trace_event_json

        out = tmp_path / "trace.json"
        rc = main([
            "trace", "--benchmark", "spmv", "--design", "gcache",
            "--scale", "0.05", "-o", str(out),
        ])
        assert rc == 0
        blob = json.loads(out.read_text())
        assert validate_trace_event_json(blob) == []
        names = {e["name"] for e in blob["traceEvents"]}
        assert any(n.startswith("victim.") for n in names)
        assert any(n.startswith("switch.") for n in names)
        assert "events" in capsys.readouterr().out

    def test_kinds_filter(self, capsys, tmp_path):
        import json

        out = tmp_path / "trace.json"
        rc = main([
            "trace", "--benchmark", "spmv", "--design", "gc", "--scale", "0.05",
            "-o", str(out), "--kinds", "victim.set,switch.on",
        ])
        assert rc == 0
        blob = json.loads(out.read_text())
        names = {e["name"] for e in blob["traceEvents"] if e["ph"] != "M"}
        assert names <= {"victim.set", "switch.on"}

    def test_rejects_unknown_kind(self, capsys, tmp_path):
        rc = main([
            "trace", "--benchmark", "sd1", "--design", "gc", "--scale", "0.05",
            "-o", str(tmp_path / "t.json"), "--kinds", "nope.event",
        ])
        assert rc == 2


class TestProfile:
    def test_prints_convergence_report(self, capsys):
        rc = main([
            "profile", "--benchmark", "spmv", "--design", "gcache",
            "--scale", "0.05",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "G-Cache convergence" in out
        assert "Per-set switch duty cycle" in out
        assert "metrics snapshot" in out
        assert "l1.loads" in out
