"""Shared fixtures: small configurations and hand-built traces.

Unit tests use deliberately tiny geometries (2 cores, small caches) so
behaviours are easy to reason about and runs are fast; the benchmark
harnesses in benchmarks/ exercise the paper-scale configuration.
"""

from __future__ import annotations

import pytest

from repro.cache.cache import Cache
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.rrip import SRRIPPolicy
from repro.sim.config import GPUConfig
from repro.trace.trace import (
    CTATrace,
    KernelTrace,
    OP_ALU,
    OP_BAR,
    OP_LOAD,
    OP_SMEM,
    OP_STORE,
)

LINE = 128


@pytest.fixture
def tiny_config() -> GPUConfig:
    """2 cores, 2 KB 4-way L1, 2 L2 banks — small enough to hand-check."""
    return GPUConfig(
        num_cores=2,
        max_warps_per_core=8,
        max_ctas_per_core=2,
        l1_size=2 * 1024,
        l1_ways=4,
        num_partitions=2,
        l2_bank_size=16 * 1024,
        l2_ways=4,
    )


@pytest.fixture
def small_l1() -> Cache:
    """1 KB 2-way LRU cache: 4 sets of 2 ways."""
    return Cache("L1", 1024, 2, LINE, LRUPolicy())


@pytest.fixture
def srrip_l1() -> Cache:
    return Cache("L1", 1024, 2, LINE, SRRIPPolicy(bits=3))


def addr(line_index: int) -> int:
    """Byte address of a line index (test helper)."""
    return line_index * LINE


def single_warp_kernel(program, name: str = "unit") -> KernelTrace:
    """A kernel with one CTA holding one warp."""
    return KernelTrace(name=name, ctas=[CTATrace(warps=[list(program)])])


def make_kernel(warp_programs, ctas: int = 1, name: str = "unit") -> KernelTrace:
    """A kernel with `ctas` CTAs, each holding copies of warp_programs."""
    return KernelTrace(
        name=name,
        ctas=[CTATrace(warps=[list(p) for p in warp_programs]) for _ in range(ctas)],
    )


def ld(*line_indices: int):
    return (OP_LOAD, tuple(addr(i) for i in line_indices))


def st(*line_indices: int):
    return (OP_STORE, tuple(addr(i) for i in line_indices))


def alu(n: int):
    return (OP_ALU, n)


def smem(n: int):
    return (OP_SMEM, n)


def bar():
    return (OP_BAR, 0)
