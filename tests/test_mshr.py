"""Unit tests for the MSHR file."""

import pytest

from repro.cache.mshr import MSHRFile


class TestAllocate:
    def test_allocate_and_lookup(self):
        mshr = MSHRFile(entries=4)
        entry = mshr.allocate(0x10, ready_time=100)
        assert mshr.lookup(0x10) is entry
        assert len(mshr) == 1

    def test_duplicate_allocation_rejected(self):
        mshr = MSHRFile(entries=4)
        mshr.allocate(0x10, ready_time=100)
        with pytest.raises(RuntimeError, match="duplicate"):
            mshr.allocate(0x10, ready_time=200)

    def test_allocate_on_full_raises(self):
        mshr = MSHRFile(entries=1)
        mshr.allocate(1, ready_time=10)
        with pytest.raises(RuntimeError, match="full"):
            mshr.allocate(2, ready_time=10)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MSHRFile(entries=0)
        with pytest.raises(ValueError):
            MSHRFile(entries=4, max_merges=0)


class TestExpiry:
    def test_expire_removes_completed(self):
        mshr = MSHRFile(entries=4)
        mshr.allocate(1, ready_time=10)
        mshr.allocate(2, ready_time=20)
        mshr.expire(now=15)
        assert mshr.lookup(1) is None
        assert mshr.lookup(2) is not None

    def test_expire_boundary_inclusive(self):
        mshr = MSHRFile(entries=4)
        mshr.allocate(1, ready_time=10)
        mshr.expire(now=10)
        assert mshr.lookup(1) is None

    def test_earliest_free(self):
        mshr = MSHRFile(entries=4)
        mshr.allocate(1, ready_time=50)
        mshr.allocate(2, ready_time=30)
        assert mshr.earliest_free() == 30

    def test_earliest_free_empty(self):
        assert MSHRFile().earliest_free() == 0


class TestMerging:
    def test_merge_counts(self):
        mshr = MSHRFile(entries=4, max_merges=3)
        entry = mshr.allocate(1, ready_time=10)
        assert mshr.merge(entry)
        assert mshr.merge(entry)
        assert entry.merges == 2
        assert mshr.total_merges == 2

    def test_merge_capacity_exhausted(self):
        mshr = MSHRFile(entries=4, max_merges=2)
        entry = mshr.allocate(1, ready_time=10)
        assert mshr.merge(entry)        # 1 + original = 2 = capacity
        assert not mshr.merge(entry)


class TestOccupancyStats:
    def test_peak_occupancy(self):
        mshr = MSHRFile(entries=4)
        mshr.allocate(1, ready_time=5)
        mshr.allocate(2, ready_time=5)
        mshr.expire(now=10)
        mshr.allocate(3, ready_time=20)
        assert mshr.peak_occupancy == 2
        assert mshr.total_allocations == 3

    def test_full_flag(self):
        mshr = MSHRFile(entries=2)
        assert not mshr.full
        mshr.allocate(1, ready_time=5)
        mshr.allocate(2, ready_time=5)
        assert mshr.full

    def test_reset(self):
        mshr = MSHRFile(entries=2)
        mshr.allocate(1, ready_time=5)
        mshr.reset()
        assert len(mshr) == 0

    def test_bypassed_flag_recorded(self):
        mshr = MSHRFile(entries=2)
        entry = mshr.allocate(1, ready_time=5, bypassed=True)
        assert entry.bypassed
