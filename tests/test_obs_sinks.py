"""Tests for event sinks: ring bounding, JSONL flushing, Perfetto JSON."""

import json

import pytest

from repro.obs import Observability
from repro.obs.events import EV_CTA_DONE, EV_CTA_LAUNCH, EV_HIT, Event
from repro.obs.sinks import (
    JSONLSink,
    PerfettoSink,
    RingBufferSink,
    validate_trace_event_json,
)
from repro.sim.designs import make_design
from repro.sim.simulator import GPU

from conftest import ld, make_kernel


def ev(kind, cycle, src="L1[0]", seq=0, **args):
    return Event(kind, cycle, src, seq, args)


class TestRingBufferSink:
    def test_bounds_memory_and_counts_drops(self):
        ring = RingBufferSink(capacity=3)
        for i in range(5):
            ring.write(ev(EV_HIT, i, seq=i))
        assert len(ring) == 3
        assert ring.total_written == 5
        assert ring.dropped == 2
        # Oldest events fall off first.
        assert [e.cycle for e in ring.events()] == [2, 3, 4]

    def test_counts_by_kind(self):
        ring = RingBufferSink()
        ring.write(ev(EV_HIT, 0))
        ring.write(ev(EV_HIT, 1))
        ring.write(ev(EV_CTA_LAUNCH, 2))
        assert ring.counts_by_kind() == {EV_HIT: 2, EV_CTA_LAUNCH: 1}

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJSONLSink:
    def test_buffered_writes_flush_at_threshold(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JSONLSink(path, buffer_size=2)
        sink.write(ev(EV_HIT, 0, seq=0))
        assert path.read_text() == ""  # still buffered
        sink.write(ev(EV_HIT, 1, seq=1))
        assert sink.flushes == 1
        assert len(path.read_text().splitlines()) == 2
        sink.close()

    def test_close_flushes_partial_buffer(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JSONLSink(path, buffer_size=1000)
        sink.write(ev(EV_HIT, 7, seq=3, line=9))
        sink.close()
        (line,) = path.read_text().splitlines()
        record = json.loads(line)
        assert record == {
            "kind": EV_HIT, "cycle": 7, "src": "L1[0]", "seq": 3, "line": 9,
        }

    def test_close_is_idempotent(self, tmp_path):
        sink = JSONLSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()

    def test_buffer_size_validated(self, tmp_path):
        with pytest.raises(ValueError):
            JSONLSink(tmp_path / "t.jsonl", buffer_size=0)


class TestPerfettoSink:
    def test_instant_events_carry_track_and_args(self, tmp_path):
        path = tmp_path / "trace.json"
        sink = PerfettoSink(path)
        sink.write(ev(EV_HIT, 42, src="L1[3]", line=5))
        sink.close()
        blob = json.loads(path.read_text())
        assert validate_trace_event_json(blob) == []
        instants = [e for e in blob["traceEvents"] if e["ph"] == "i"]
        (hit,) = instants
        assert hit["name"] == EV_HIT
        assert hit["ts"] == 42
        assert hit["tid"] == 3
        assert hit["args"]["line"] == 5
        # Metadata names the component family.
        metas = [e for e in blob["traceEvents"] if e["ph"] == "M"]
        assert any(m["args"]["name"] == "L1" for m in metas)

    def test_cta_lifecycle_becomes_async_slices(self, tmp_path):
        path = tmp_path / "trace.json"
        sink = PerfettoSink(path)
        sink.write(ev(EV_CTA_LAUNCH, 10, src="core[0]", slot=2, warps=4))
        sink.write(ev(EV_CTA_DONE, 50, src="core[0]", seq=1, slot=2))
        sink.close()
        blob = json.loads(path.read_text())
        assert validate_trace_event_json(blob) == []
        slices = [e for e in blob["traceEvents"] if e["ph"] in ("b", "e")]
        assert [s["ph"] for s in slices] == ["b", "e"]
        assert slices[0]["id"] == slices[1]["id"] == "core[0]:2"

    def test_max_events_bounds_file(self, tmp_path):
        sink = PerfettoSink(tmp_path / "t.json", max_events=2)
        for i in range(5):
            sink.write(ev(EV_HIT, i, seq=i))
        sink.close()
        assert sink.events_written == 2
        assert sink.events_dropped == 3
        blob = json.loads((tmp_path / "t.json").read_text())
        assert blob["otherData"]["dropped"] == 3

    def test_traced_run_produces_valid_perfetto_json(self, tiny_config, tmp_path):
        """End-to-end: a traced G-Cache run exports a loadable trace."""
        path = tmp_path / "run.json"
        kernel = make_kernel([[ld(i) for i in range(16)]] * 2, ctas=4)
        obs = Observability.to_perfetto(path)
        GPU(tiny_config, make_design("gc"), obs=obs).run(kernel)
        obs.close()
        blob = json.loads(path.read_text())
        assert validate_trace_event_json(blob) == []


class TestValidator:
    def test_rejects_missing_trace_events(self):
        assert validate_trace_event_json({}) == ["traceEvents missing or not a list"]

    def test_flags_malformed_entries(self):
        blob = {"traceEvents": [
            {"ph": "i", "pid": 1, "tid": 0, "ts": 1},        # no name
            {"name": "x", "ph": "i", "pid": 1, "tid": 0},     # no ts
            {"name": "y", "ph": "b", "pid": 1, "tid": 0, "ts": 2},  # no id
        ]}
        problems = validate_trace_event_json(blob)
        assert any("missing 'name'" in p for p in problems)
        assert any("non-numeric ts" in p for p in problems)
        assert any("async event without id" in p for p in problems)

    def test_metadata_needs_no_timestamp(self):
        blob = {"traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0, "args": {}},
        ]}
        assert validate_trace_event_json(blob) == []
