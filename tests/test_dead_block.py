"""Tests for the counter-based dead-block bypass baseline."""

import pytest

from repro.cache.cache import Cache
from repro.cache.policies.dead_block import DeadBlockPolicy
from repro.cache.replacement.lru import LRUPolicy

LINE = 128


def dbp_cache(confidence=1, sets=2, ways=2):
    policy = DeadBlockPolicy(confidence=confidence)
    return Cache("L1", sets * ways * LINE, ways, LINE, LRUPolicy(), mgmt=policy), policy


def churn(cache, line, now):
    """Push `line` out with conflicting fills from distinct regions.

    Fillers step by 4 * num_sets so they stay in `line`'s set but never
    share a predictor region with it (region_shift=2 groups 4 lines).
    """
    set_index = cache.set_index(line)
    if not cache.probe(line):
        cache.fill(line, now)
    filler = line + 4 * cache.num_sets
    while cache.probe(line):
        cache.fill(filler, now)
        filler += 4 * cache.num_sets
    return set_index


class TestLearning:
    def test_dead_generation_recorded(self):
        cache, policy = dbp_cache()
        churn(cache, 0, now=0)  # line 0 evicted with zero reuse
        predicted, streak = policy._entry(0)
        assert predicted == 0
        assert streak >= 1

    def test_live_generation_resets_streak(self):
        # High confidence so the dead prediction cannot bypass the refill.
        cache, policy = dbp_cache(confidence=99)
        churn(cache, 0, now=0)
        cache.fill(0, now=10)
        cache.lookup(0, now=11)  # reuse it this time
        churn(cache, 0, now=12)
        predicted, streak = policy._entry(0)
        assert predicted >= 1
        assert streak == 0


class TestBypass:
    def test_dead_on_arrival_bypassed_after_confidence(self):
        cache, policy = dbp_cache(confidence=1)
        churn(cache, 0, now=0)
        result = cache.fill(0, now=100)
        assert result.bypassed
        assert policy.dead_on_arrival == 1

    def test_confidence_gate(self):
        cache, policy = dbp_cache(confidence=3)
        churn(cache, 0, now=0)
        assert cache.fill(0, now=100).inserted  # streak 1 < 3

    def test_unknown_region_inserted(self):
        cache, policy = dbp_cache()
        assert cache.fill(0, now=0).inserted


class TestVictimPreference:
    def test_prefers_consumed_line(self):
        cache, policy = dbp_cache()
        # Teach the predictor that region of line 0 is reused exactly once.
        cache.fill(0, now=0)
        cache.lookup(0, now=1)
        churn(cache, 0, now=2)
        # Refill and consume its predicted single reuse.
        cache.fill(0, now=10)
        cache.lookup(0, now=11)
        # Same set, different predictor region, second way.
        cache.fill(8 * cache.num_sets, now=12)
        victim_way = policy.choose_victim(cache, cache.set_index(0), now=13)
        assert victim_way == cache.find_way(0)

    def test_defers_when_no_dead_line(self):
        cache, policy = dbp_cache()
        cache.fill(0, now=0)
        assert policy.choose_victim(cache, cache.set_index(0), now=1) is None


class TestValidation:
    def test_parameters(self):
        with pytest.raises(ValueError):
            DeadBlockPolicy(table_bits=0)
        with pytest.raises(ValueError):
            DeadBlockPolicy(confidence=0)

    def test_design_registry(self):
        from repro.sim.designs import make_design

        spec = make_design("dbp")
        assert isinstance(spec.make_l1_mgmt(), DeadBlockPolicy)

    def test_prediction_rate(self):
        cache, policy = dbp_cache(confidence=1)
        churn(cache, 0, now=0)
        cache.fill(0, now=100)
        assert 0.0 < policy.dead_prediction_rate <= 1.0
