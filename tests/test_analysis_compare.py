"""Manifest diffing: verdicts, significance, deterministic reports."""

import json

import pytest

from repro.analysis import (
    compare_manifests,
    counter_polarity,
    deterministic_seed,
    load_manifest,
    mad,
    median,
    parse_label,
    parse_manifest,
    permutation_pvalue,
)
from repro.analysis.report import render_html, render_markdown


def _manifest(tasks, **extra):
    raw = {
        "schema_version": 2,
        "git_commit": "deadbeef",
        "salt": "test",
        "generated_at": "2026-01-01T00:00:00+0000",
        "interrupted": False,
        "jobs": 1,
        "tasks": tasks,
    }
    raw.update(extra)
    return parse_manifest(raw)


def _task(label, metrics, seed=0, failed=False):
    return {
        "label": label,
        "key": f"{label}-{seed}",
        "cached": False,
        "seconds": 0.1,
        "attempts": 1,
        "failed": failed,
        "metrics": metrics,
    }


class TestParseLabel:
    def test_timing_label(self):
        assert parse_label("simulate:SPMV/gc") == ("simulate", "SPMV", "gc", "timing")

    def test_functional_label(self):
        assert parse_label("simulate[functional]:BFS/bs") == (
            "simulate", "BFS", "bs", "functional")

    def test_pd_sweep_label_has_no_design(self):
        assert parse_label("pd-sweep:SPMV") == ("pd-sweep", "SPMV", None, "timing")

    def test_unparseable_label_degrades(self):
        assert parse_label("weird") == ("weird", None, None, "timing")


class TestPolarity:
    @pytest.mark.parametrize("name", [
        "l1.miss_rate", "core.cycles", "core.load_latency.mean",
        "campaign.task_seconds", "SPMV/gc.normalized_cost",
    ])
    def test_lower_is_better(self, name):
        assert counter_polarity(name) == -1

    @pytest.mark.parametrize("name", [
        "ipc", "dram.row_hit_rate", "SPMV/gc.speedup", "runs_per_sec",
    ])
    def test_higher_is_better(self, name):
        assert counter_polarity(name) == 1

    @pytest.mark.parametrize("name", ["l1.loads", "core.instructions"])
    def test_raw_counts_are_neutral(self, name):
        assert counter_polarity(name) == 0


class TestSignificance:
    def test_permutation_needs_two_samples_per_side(self):
        assert permutation_pvalue([1.0], [2.0, 3.0]) is None

    def test_identical_samples_not_significant(self):
        p = permutation_pvalue([5.0, 5.0, 5.0], [5.0, 5.0, 5.0])
        assert p == 1.0

    def test_separated_samples_significant(self):
        p = permutation_pvalue([1.0, 1.1, 0.9, 1.05], [9.0, 9.1, 8.9, 9.05])
        assert p is not None and p < 0.05

    def test_deterministic_across_calls(self):
        a = [0.5, 0.7, 0.6, 0.9, 0.4, 0.8, 0.55, 0.65, 0.75, 0.45] * 2
        b = [0.6, 0.8, 0.7, 1.0, 0.5, 0.9, 0.65, 0.75, 0.85, 0.55] * 2
        seed = deterministic_seed("x", "y")
        assert permutation_pvalue(a, b, rounds=200, seed=seed) == \
            permutation_pvalue(a, b, rounds=200, seed=seed)

    def test_median_and_mad(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
        assert mad([1.0, 1.0, 1.0]) == 0.0
        assert mad([1.0, 2.0, 3.0]) == 1.0


class TestCompare:
    def test_improved_and_regressed_verdicts(self):
        a = _manifest([
            _task("simulate:SPMV/gc", {"l1.miss_rate": 0.5, "ipc": 1.0}),
        ])
        b = _manifest([
            _task("simulate:SPMV/gc", {"l1.miss_rate": 0.4, "ipc": 0.8}),
        ])
        cmp = compare_manifests(a, b)
        deltas = {d.name: d for d in cmp.labels[0].deltas}
        assert deltas["l1.miss_rate"].verdict == "improved"  # lower is better
        assert deltas["ipc"].verdict == "regressed"

    def test_neutral_counter_can_only_change(self):
        a = _manifest([_task("simulate:SPMV/gc", {"l1.loads": 100})])
        b = _manifest([_task("simulate:SPMV/gc", {"l1.loads": 90})])
        cmp = compare_manifests(a, b)
        (delta,) = cmp.labels[0].deltas
        assert delta.verdict == "changed"

    def test_noise_is_unchanged_under_permutation_test(self):
        # Overlapping samples: the observed delta is within noise.
        a = _manifest([
            _task("simulate:SPMV/gc", {"l1.miss_rate": v}, seed=i)
            for i, v in enumerate([0.50, 0.52, 0.48, 0.51])
        ])
        b = _manifest([
            _task("simulate:SPMV/gc", {"l1.miss_rate": v}, seed=i)
            for i, v in enumerate([0.51, 0.49, 0.52, 0.50])
        ])
        cmp = compare_manifests(a, b)
        (delta,) = cmp.labels[0].deltas
        assert delta.verdict == "unchanged"
        assert delta.p_value is not None and delta.p_value > 0.05

    def test_new_and_missing_labels(self):
        a = _manifest([_task("simulate:SPMV/gc", {"ipc": 1.0})])
        b = _manifest([_task("simulate:SPMV/bs", {"ipc": 1.0})])
        cmp = compare_manifests(a, b)
        statuses = {lbl.label: lbl.status for lbl in cmp.labels}
        assert statuses == {"simulate:SPMV/bs": "new",
                            "simulate:SPMV/gc": "missing"}
        counts = cmp.verdict_counts()
        assert counts["new"] == 1 and counts["missing"] == 1

    def test_failed_tasks_excluded_and_reported(self):
        a = _manifest([
            _task("simulate:SPMV/gc", {"ipc": 1.0}),
            _task("simulate:BFS/gc", None, failed=True),
        ])
        b = _manifest([_task("simulate:SPMV/gc", {"ipc": 1.0})])
        cmp = compare_manifests(a, b)
        assert cmp.failed_a == ["simulate:BFS/gc"]
        assert [lbl.label for lbl in cmp.labels] == ["simulate:SPMV/gc"]

    def test_derived_ipc_from_core_counters(self):
        a = _manifest([_task("simulate:SPMV/gc",
                             {"core.instructions": 100, "core.cycles": 100})])
        b = _manifest([_task("simulate:SPMV/gc",
                             {"core.instructions": 100, "core.cycles": 50})])
        cmp = compare_manifests(a, b)
        deltas = {d.name: d for d in cmp.labels[0].deltas}
        assert deltas["ipc"].a == 1.0 and deltas["ipc"].b == 2.0
        assert deltas["ipc"].verdict == "improved"

    def test_top_regressions_sorted_by_magnitude(self):
        a = _manifest([_task("simulate:SPMV/gc",
                             {"l1.miss_rate": 0.1, "l2.miss_rate": 0.1})])
        b = _manifest([_task("simulate:SPMV/gc",
                             {"l1.miss_rate": 0.4, "l2.miss_rate": 0.2})])
        cmp = compare_manifests(a, b)
        tops = cmp.top_regressions(5)
        assert [d.name for _, d in tops] == ["l1.miss_rate", "l2.miss_rate"]

    def test_v1_manifest_loads_without_version_fields(self):
        raw = {
            "salt": "old", "jobs": 1,
            "tasks": [_task("simulate:SPMV/gc", {"ipc": 1.0})],
        }
        m = parse_manifest(raw)
        assert m.schema_version == 1
        assert m.git_commit is None
        task = m.tasks[0]
        assert (task.kind, task.benchmark, task.design) == \
            ("simulate", "SPMV", "gc")


class TestReportDeterminism:
    @pytest.fixture()
    def pair(self, tmp_path):
        a = _manifest([
            _task("simulate:SPMV/gc",
                  {"l1.miss_rate": 0.5, "core.cycles": 1000,
                   "core.instructions": 900,
                   "core.load_latency": {"count": 10, "mean": 40.0}},
                  seed=i)
            for i in range(3)
        ] + [_task("simulate:BFS/gc", {"l1.miss_rate": 0.8})])
        b = _manifest([
            _task("simulate:SPMV/gc",
                  {"l1.miss_rate": 0.45, "core.cycles": 900,
                   "core.instructions": 900,
                   "core.load_latency": {"count": 10, "mean": 38.0}},
                  seed=i)
            for i in range(3)
        ] + [_task("simulate:KMN/bs", {"l1.miss_rate": 0.2})])
        pa, pb = tmp_path / "a.json", tmp_path / "b.json"
        pa.write_text(json.dumps(a.raw))
        pb.write_text(json.dumps(b.raw))
        return pa, pb

    def test_markdown_byte_identical_across_loads(self, pair):
        pa, pb = pair
        docs = [
            render_markdown(compare_manifests(load_manifest(pa),
                                              load_manifest(pb)))
            for _ in range(2)
        ]
        assert docs[0] == docs[1]
        assert "Campaign comparison" in docs[0]

    def test_html_byte_identical_and_self_contained(self, pair):
        pa, pb = pair
        docs = [
            render_html(compare_manifests(load_manifest(pa),
                                          load_manifest(pb)))
            for _ in range(2)
        ]
        assert docs[0] == docs[1]
        assert docs[0].startswith("<!DOCTYPE html>")
        assert "<script" not in docs[0]
        assert 'src="http' not in docs[0] and "href=" not in docs[0]

    def test_report_surfaces_unmatched_labels(self, pair):
        pa, pb = pair
        md = render_markdown(compare_manifests(load_manifest(pa),
                                               load_manifest(pb)))
        assert "new in B: `simulate:KMN/bs`" in md
        assert "missing from B: `simulate:BFS/gc`" in md
