"""Tests for statistics counters, reuse histograms and report tables."""

import pytest

from repro.stats.counters import CacheStats, ReuseHistogram
from repro.stats.report import Table, format_pct, format_speedup, geomean


class TestReuseHistogram:
    def test_fractions(self):
        hist = ReuseHistogram()
        for count in [0, 0, 0, 1, 2]:
            hist.record(count)
        assert hist.generations == 5
        assert hist.fraction(0) == pytest.approx(0.6)
        assert hist.fraction_at_least(1) == pytest.approx(0.4)

    def test_buckets_match_fig2_legend(self):
        hist = ReuseHistogram()
        for count in [0, 1, 2, 3, 7]:
            hist.record(count)
        buckets = hist.buckets()
        assert set(buckets) == {"0", "1", "2", "3+"}
        assert buckets["3+"] == pytest.approx(0.4)
        assert sum(buckets.values()) == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ReuseHistogram().record(-1)

    def test_empty_fractions_zero(self):
        hist = ReuseHistogram()
        assert hist.fraction(0) == 0.0
        assert hist.fraction_at_least(1) == 0.0

    def test_merge(self):
        a, b = ReuseHistogram(), ReuseHistogram()
        a.record(0)
        b.record(0)
        b.record(5)
        a.merge(b)
        assert a.generations == 3
        assert a.as_dict() == {0: 2, 5: 1}


class TestCacheStats:
    def test_derived_rates(self):
        stats = CacheStats(loads=8, stores=2, load_hits=4, store_hits=1)
        assert stats.accesses == 10
        assert stats.hits == 5
        assert stats.miss_rate == pytest.approx(0.5)
        assert stats.load_miss_rate == pytest.approx(0.5)

    def test_bypass_ratio(self):
        stats = CacheStats(loads=10, bypasses=3)
        assert stats.bypass_ratio == pytest.approx(0.3)

    def test_empty_cache_rates(self):
        stats = CacheStats()
        assert stats.miss_rate == 0.0
        assert stats.bypass_ratio == 0.0

    def test_merge_accumulates(self):
        a = CacheStats(loads=5, load_hits=2, fills=3)
        b = CacheStats(loads=1, load_hits=1, bypasses=2)
        a.merge(b)
        assert a.loads == 6
        assert a.load_hits == 3
        assert a.bypasses == 2

    def test_snapshot_keys(self):
        snap = CacheStats(loads=1).snapshot()
        for key in ("accesses", "miss_rate", "bypass_ratio", "fills"):
            assert key in snap


class TestGeomean:
    def test_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geomean([1.31]) == pytest.approx(1.31)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestTable:
    def test_render_alignment(self):
        table = Table(["bench", "miss"])
        table.row(["BFS", "80.0%"])
        table.row(["a-very-long-name", "1%"])
        lines = table.render().splitlines()
        assert lines[0].startswith("bench")
        assert "BFS" in lines[2]

    def test_title_and_rule(self):
        table = Table(["a"], title="T")
        table.row(["x"])
        table.rule()
        table.row(["gmean"])
        text = table.render()
        assert text.startswith("T\n=")
        assert text.count("-") > 2

    def test_row_width_validated(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.row(["only-one"])

    def test_csv(self):
        table = Table(["a", "b"])
        table.row([1, 2])
        table.rule()
        assert table.to_csv() == "a,b\n1,2"

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            Table([])


class TestFormatters:
    def test_pct(self):
        assert format_pct(0.309) == "30.9%"

    def test_speedup(self):
        assert format_speedup(1.309) == "1.309"
