"""Property-based tests for the interconnect and DRAM timing models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.controller import MemoryController
from repro.dram.timing import GDDR5Timing
from repro.noc.crossbar import CrossbarNoC
from repro.noc.mesh import MeshNoC


class TestMeshProperties:
    @given(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_arrival_never_precedes_departure(self, core, part, start):
        noc = MeshNoC()
        assert noc.send_request(core, part, start) >= start

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=15),
                st.integers(min_value=0, max_value=7),
            ),
            min_size=2,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone_under_increasing_start_times(self, pairs):
        # Later-submitted packets on the same route never arrive earlier
        # than an identical earlier submission would.
        noc = MeshNoC()
        last_arrival = {}
        for i, (core, part) in enumerate(pairs):
            arrival = noc.send_response(part, core, start=i * 10)
            key = (core, part)
            if key in last_arrival:
                assert arrival >= last_arrival[key]
            last_arrival[key] = arrival

    @given(st.integers(min_value=0, max_value=23), st.integers(min_value=0, max_value=23))
    @settings(max_examples=100, deadline=None)
    def test_hops_symmetric(self, a, b):
        noc = MeshNoC()
        assert noc.hops(a, b) == noc.hops(b, a)


class TestCrossbarProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=15),
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=0, max_value=1000),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_latency_at_least_traversal(self, sends):
        xbar = CrossbarNoC()
        for core, part, start in sorted(sends, key=lambda t: t[2]):
            arrival = xbar.send_request(core, part, start)
            assert arrival >= start + xbar.traversal_latency - 1


class TestDRAMProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=4095), min_size=1, max_size=120)
    )
    @settings(max_examples=50, deadline=None)
    def test_completion_after_arrival_with_min_service(self, addrs):
        t = GDDR5Timing()
        mc = MemoryController(0, t)
        now = 0
        for addr in addrs:
            done = mc.request(addr, now)
            assert done >= now + t.row_hit_latency
            now = done

    @given(
        st.lists(st.integers(min_value=0, max_value=4095), min_size=1, max_size=120)
    )
    @settings(max_examples=50, deadline=None)
    def test_row_stats_conserve(self, addrs):
        mc = MemoryController(0, GDDR5Timing())
        now = 0
        for addr in addrs:
            now = mc.request(addr, now)
        hits = sum(b.row_hits for b in mc.banks)
        misses = sum(b.row_misses for b in mc.banks)
        assert hits + misses == len(addrs)
        assert 0.0 <= mc.row_hit_rate <= 1.0
