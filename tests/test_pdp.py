"""Unit tests for the PDP policy family (static SPDP-B and dynamic PDP)."""

import pytest

from repro.cache.cache import Cache
from repro.cache.policies.pdp import (
    DynamicPDPPolicy,
    ReuseDistanceSampler,
    StaticPDPPolicy,
    optimal_pd,
)
from repro.cache.replacement.lru import LRUPolicy

LINE = 128


def pdp_cache(pd=4, ways=2, sets=2, **kwargs):
    policy = StaticPDPPolicy(pd=pd, **kwargs)
    cache = Cache("L1", sets * ways * LINE, ways, LINE, LRUPolicy(), mgmt=policy)
    return cache, policy


class TestStaticPDPProtection:
    def test_fresh_fill_is_protected(self):
        cache, pol = pdp_cache(pd=4)
        cache.fill(0, now=0)
        assert cache.sets[0][0].pd_counter > 0

    def test_protection_decays_with_set_accesses(self):
        cache, pol = pdp_cache(pd=2)
        cache.fill(0, now=0)
        cache.lookup(2, now=1)   # miss in same set decrements
        cache.lookup(2, now=2)
        assert cache.sets[0][0].pd_counter == 0

    def test_hit_reprotects(self):
        cache, pol = pdp_cache(pd=2)
        cache.fill(0, now=0)
        cache.lookup(2, now=1)
        cache.lookup(0, now=2)   # hit: PDC reset
        assert cache.sets[0][0].pd_counter == pol._initial_pdc()

    def test_bypass_when_all_protected(self):
        cache, pol = pdp_cache(pd=8, ways=2)
        cache.fill(0, now=0)
        cache.fill(2, now=1)
        result = cache.fill(4, now=2)
        assert result.bypassed
        assert cache.stats.bypasses == 1

    def test_insert_when_unprotected_exists(self):
        cache, pol = pdp_cache(pd=1, ways=2)
        cache.fill(0, now=0)
        cache.fill(2, now=1)
        # Two more set accesses expire both protections.
        cache.lookup(4, now=2)
        cache.lookup(4, now=3)
        result = cache.fill(4, now=4)
        assert result.inserted

    def test_no_bypass_mode_evicts_lowest_pdc(self):
        cache, pol = pdp_cache(pd=8, ways=2, bypass=False)
        cache.fill(0, now=0)
        cache.fill(2, now=1)
        result = cache.fill(4, now=2)
        assert result.inserted

    def test_pd_validation(self):
        with pytest.raises(ValueError):
            StaticPDPPolicy(pd=0)


class TestQuantizedCounters:
    def test_small_pd_no_quantization(self):
        pol = StaticPDPPolicy(pd=6, counter_bits=3)
        assert pol.step == 1
        assert pol._initial_pdc() == 6

    def test_large_pd_quantized(self):
        pol = StaticPDPPolicy(pd=21, counter_bits=3)  # max counter 7
        assert pol.step == 3
        assert pol._initial_pdc() == 7

    def test_8bit_counters_exact_for_table3_range(self):
        # Table 3's largest optimal PD is 68; 8-bit PDCs hold it exactly.
        pol = StaticPDPPolicy(pd=68, counter_bits=8)
        assert pol.step == 1

    def test_quantized_decrement_cadence(self):
        cache, pol = pdp_cache(pd=14, counter_bits=3)  # step=2
        cache.fill(0, now=0)
        start = cache.sets[0][0].pd_counter
        cache.lookup(2, now=1)  # 1st access: no decrement (step boundary)
        assert cache.sets[0][0].pd_counter == start
        cache.lookup(2, now=2)  # 2nd access: decrement
        assert cache.sets[0][0].pd_counter == start - 1


class TestOptimalPDEstimator:
    def test_prefers_distance_with_mass(self):
        rdd = [0] * 64
        rdd[8] = 100
        assert optimal_pd(rdd, total=120, max_pd=32) == 8

    def test_ignores_mass_beyond_max_pd(self):
        rdd = [0] * 64
        rdd[40] = 1000
        rdd[4] = 10
        assert optimal_pd(rdd, total=1100, max_pd=16) == 4

    def test_empty_sample_returns_min(self):
        assert optimal_pd([0] * 16, total=0, max_pd=8) == 1

    def test_balances_hits_against_occupancy(self):
        # Mass at 2 and a little at 30: protecting to 30 wastes occupancy.
        rdd = [0] * 64
        rdd[2] = 100
        rdd[30] = 5
        assert optimal_pd(rdd, total=200, max_pd=32) == 2


class TestSampler:
    def test_measures_reuse_distance(self):
        sampler = ReuseDistanceSampler(num_sets=1, fifo_depth=8)
        sampler.observe(0, 100)
        sampler.observe(0, 101)
        rd = sampler.observe(0, 100)
        assert rd == 2
        assert sampler.rdd[2] == 1

    def test_beyond_fifo_reach_unmeasured(self):
        sampler = ReuseDistanceSampler(num_sets=1, fifo_depth=2)
        sampler.observe(0, 1)
        sampler.observe(0, 2)
        sampler.observe(0, 3)  # pushes 1 out
        assert sampler.observe(0, 1) is None

    def test_total_counts_all_observations(self):
        sampler = ReuseDistanceSampler(num_sets=1)
        for i in range(5):
            sampler.observe(0, i)
        assert sampler.total == 5

    def test_set_sampling_filter(self):
        sampler = ReuseDistanceSampler(num_sets=4, sample_every=2)
        assert sampler.observe(1, 5) is None
        assert sampler.total == 0

    def test_decay_halves(self):
        sampler = ReuseDistanceSampler(num_sets=1)
        sampler.observe(0, 1)
        sampler.observe(0, 1)
        sampler.decay()
        assert sampler.total == 1


class TestDynamicPDP:
    def test_recomputes_pd_each_epoch(self):
        pol = DynamicPDPPolicy(counter_bits=8, epoch_accesses=64, initial_pd=4)
        cache = Cache("L1", 2 * 2 * LINE, 2, LINE, LRUPolicy(), mgmt=pol)
        # Drive a strict 2-distance reuse pattern through set 0.
        for i in range(200):
            line = (i % 2) * 2  # lines 0 and 2 alternate in set 0
            if not cache.lookup(line, now=i).hit:
                cache.fill(line, now=i)
        assert len(pol.pd_history) > 1
        assert pol.pd <= 8  # short-distance pattern -> small PD

    def test_name_reflects_width(self):
        assert DynamicPDPPolicy(counter_bits=3).name == "pdp-3"
        assert DynamicPDPPolicy(counter_bits=8).name == "pdp-8"
