"""End-to-end smoke across architectural variants.

Degenerate and scaled geometries exercise corner paths (single
partition, single core, huge warp counts) that the Table-2 defaults
never touch — the 1-partition XOR-hash hang was exactly such a bug.
"""

import pytest

from repro.sim.config import GPUConfig
from repro.sim.designs import make_design
from repro.sim.simulator import simulate

from conftest import alu, ld, make_kernel, st


def workload():
    return make_kernel(
        [[op for i in range(6) for op in (ld(i * 8), alu(2), st(i * 8))]] * 2,
        ctas=6,
    )


VARIANTS = {
    "single-core": dict(num_cores=1, num_partitions=1, l1_size=4 * 1024,
                        l2_bank_size=32 * 1024, l2_ways=4, max_warps_per_core=8,
                        max_ctas_per_core=2),
    "two-partition": dict(num_cores=4, num_partitions=2, l1_size=8 * 1024,
                          l2_bank_size=64 * 1024, l2_ways=8,
                          max_warps_per_core=16, max_ctas_per_core=4),
    "wide-l1": dict(num_cores=2, num_partitions=2, l1_size=64 * 1024,
                    l1_ways=16, l2_bank_size=64 * 1024, l2_ways=8,
                    max_warps_per_core=16, max_ctas_per_core=4),
    "direct-mapped-ish": dict(num_cores=2, num_partitions=2, l1_size=512,
                              l1_ways=1, l2_bank_size=64 * 1024, l2_ways=8,
                              max_warps_per_core=16, max_ctas_per_core=4),
    "crossbar": dict(num_cores=4, num_partitions=4, noc_topology="crossbar",
                     l1_size=8 * 1024, l2_bank_size=64 * 1024, l2_ways=8,
                     max_warps_per_core=16, max_ctas_per_core=4),
}


@pytest.mark.parametrize("label", sorted(VARIANTS))
@pytest.mark.parametrize("design", ["bs", "gc", "pdp-3"])
class TestVariantMatrix:
    def test_runs_to_completion(self, label, design):
        config = GPUConfig(**VARIANTS[label])
        kernel = workload()
        result = simulate(kernel, config, make_design(design))
        assert result.instructions == kernel.instruction_count(), (label, design)
        assert 0 < result.ipc <= config.num_cores
        assert 0.0 <= result.l1.miss_rate <= 1.0


class TestSchedulerMatrix:
    @pytest.mark.parametrize("sched", ["lrr", "gto", "two-level", "throttle"])
    def test_every_scheduler_completes(self, tiny_config, sched):
        config = tiny_config.with_scheduler(sched)
        kernel = workload()
        result = simulate(kernel, config, make_design("gc"))
        assert result.instructions == kernel.instruction_count()

    @pytest.mark.parametrize("sched", ["lrr", "gto"])
    def test_schedulers_change_timing_not_work(self, tiny_config, sched):
        kernel = workload()
        lrr = simulate(kernel, tiny_config.with_scheduler("lrr"))
        other = simulate(kernel, tiny_config.with_scheduler(sched))
        assert other.instructions == lrr.instructions
