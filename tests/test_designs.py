"""Tests for the design registry."""

import pytest

from repro.cache.policies.base import NullManagementPolicy
from repro.cache.policies.pdp import DynamicPDPPolicy, StaticPDPPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.rrip import SRRIPPolicy
from repro.core.gcache import GCacheConfig, GCachePolicy
from repro.sim.designs import DESIGN_KEYS, make_design


class TestRegistry:
    def test_baseline(self):
        spec = make_design("bs")
        assert isinstance(spec.make_l1_replacement(), LRUPolicy)
        assert isinstance(spec.make_l1_mgmt(), NullManagementPolicy)
        assert not spec.uses_victim_bits

    def test_srrip_baseline(self):
        spec = make_design("bs-s")
        repl = spec.make_l1_replacement()
        assert isinstance(repl, SRRIPPolicy)
        assert repl.bits == 3

    @pytest.mark.parametrize("key,bits", [("pdp-3", 3), ("pdp-8", 8)])
    def test_dynamic_pdp(self, key, bits):
        mgmt = make_design(key).make_l1_mgmt()
        assert isinstance(mgmt, DynamicPDPPolicy)
        assert mgmt.counter_bits == bits

    def test_spdp_b_requires_pd(self):
        with pytest.raises(ValueError, match="protecting distance"):
            make_design("spdp-b")
        mgmt = make_design("spdp-b", pd=16).make_l1_mgmt()
        assert isinstance(mgmt, StaticPDPPolicy)
        assert mgmt.pd == 16
        assert mgmt.bypass

    def test_gcache(self):
        spec = make_design("gc")
        assert spec.uses_victim_bits
        assert isinstance(spec.make_l1_mgmt(), GCachePolicy)

    def test_gcache_adaptive_m(self):
        mgmt = make_design("gc-m").make_l1_mgmt()
        assert mgmt.config.adaptive_aging

    def test_gcache_custom_config_respected(self):
        cfg = GCacheConfig(shutdown_interval=123)
        mgmt = make_design("gc", gcache_config=cfg).make_l1_mgmt()
        assert mgmt.config.shutdown_interval == 123

    def test_gc_m_inherits_base_config(self):
        cfg = GCacheConfig(shutdown_interval=123)
        mgmt = make_design("gc-m", gcache_config=cfg).make_l1_mgmt()
        assert mgmt.config.shutdown_interval == 123
        assert mgmt.config.adaptive_aging

    def test_factories_produce_fresh_instances(self):
        spec = make_design("gc")
        assert spec.make_l1_mgmt() is not spec.make_l1_mgmt()

    def test_unknown_key(self):
        with pytest.raises(ValueError, match="unknown design"):
            make_design("ideal")

    def test_all_keys_buildable(self):
        for key in DESIGN_KEYS:
            spec = make_design(key, pd=8)
            assert spec.key == key
            assert spec.label
