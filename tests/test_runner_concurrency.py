"""Concurrency regression tests: quarantine evidence and journal locking.

Two bugs flushed out by the service daemon (many engines over one cache
root / state dir):

* ``ResultCache._quarantine`` used a fixed destination + ``os.replace``,
  so a second corruption of the same key — or a concurrent process
  quarantining it — silently destroyed the earlier forensic blob.  Now
  every quarantine claims a unique destination with ``O_EXCL``
  (``<key>.pkl``, ``<key>.1.pkl``, ...) and the unlink fallback is
  counted separately (``quarantine_dropped``).
* ``CampaignJournal`` had no concurrent-writer guard: two engines
  appending to one journal interleaved records.  Now the first append
  takes an advisory ``flock`` (O_EXCL lockfile where flock is missing)
  and a second writer fails fast with :class:`JournalLockedError`.
"""

from __future__ import annotations

import multiprocessing
import subprocess
import sys
from pathlib import Path

import pytest

from repro.runner import (
    MISS,
    CampaignJournal,
    JournalLockedError,
    ResultCache,
)

ROT = b"this is not a cache entry"


def _corrupt(cache: ResultCache, key: str) -> None:
    cache.path_for(key).write_bytes(ROT)


# ----------------------------------------------------------------------
# Quarantine evidence preservation
# ----------------------------------------------------------------------
def test_repeat_corruption_preserves_every_quarantine_blob(tmp_path):
    cache = ResultCache(tmp_path)
    key = "ab" + "0" * 62

    for round_no in range(3):
        cache.put(key, {"round": round_no})
        _corrupt(cache, key)
        assert cache.get(key) is MISS

    blobs = cache.quarantine_paths_for(key)
    assert len(blobs) == 3, "each corruption must keep its own evidence"
    assert len({p.name for p in blobs}) == 3
    assert cache.quarantined == 3
    assert cache.quarantine_dropped == 0
    # Every surviving blob really is the rot that was quarantined, not an
    # empty O_EXCL placeholder.
    assert all(p.read_bytes() == ROT for p in blobs)


def test_unwritable_quarantine_falls_back_to_unlink_and_is_counted(tmp_path):
    cache = ResultCache(tmp_path)
    key = "cd" + "1" * 62
    cache.put(key, "payload")
    _corrupt(cache, key)
    # A *file* where the quarantine directory should be makes mkdir (and
    # everything after it) fail — the unwritable-quarantine case.
    cache.quarantine_root.write_bytes(b"not a directory")

    assert cache.get(key) is MISS
    assert cache.quarantined == 0, "no blob survived, so none may be claimed"
    assert cache.quarantine_dropped == 1
    assert not cache.path_for(key).exists(), "the rotten slot must be cleared"

    snap = cache.counter_snapshot()
    assert snap["quarantined"] == 0
    assert snap["quarantine_dropped"] == 1


def test_invalidate_key_sweeps_that_keys_quarantine_blobs(tmp_path):
    cache = ResultCache(tmp_path)
    key, other = "ef" + "2" * 62, "ab" + "3" * 62
    for k in (key, other):
        cache.put(k, "x")
        _corrupt(cache, k)
        cache.get(k)
        cache.put(k, "fresh")

    removed = cache.invalidate(key)
    assert removed == 1, "only the live entry counts"
    assert cache.quarantine_paths_for(key) == []
    assert len(cache.quarantine_paths_for(other)) == 1, "other keys untouched"

    assert cache.invalidate() == 1  # other's live entry
    assert cache.quarantine_paths_for(other) == []


# ----------------------------------------------------------------------
# Multiprocess put/get/corrupt cycles
# ----------------------------------------------------------------------
def _hammer(root: str, worker: int, keys, cycles: int):
    """Worker: put/corrupt/get cycles over shared keys; returns counters."""
    cache = ResultCache(root)
    for cycle in range(cycles):
        for key in keys:
            cache.put(key, {"worker": worker, "cycle": cycle})
            _corrupt(cache, key)
            assert cache.get(key) is MISS or True  # racing put may win
    return cache.quarantined, cache.quarantine_dropped


def test_multiprocess_corruption_loses_no_quarantine_evidence(tmp_path):
    """N processes hammering the same keys: every quarantine a process
    *counted* must exist on disk afterwards — the O_EXCL claim means
    racing quarantines can never overwrite each other."""
    keys = [f"{i:02x}" + f"{i:062x}" for i in range(4)]
    workers, cycles = 4, 8
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(workers) as pool:
        counts = pool.starmap(
            _hammer, [(str(tmp_path), w, keys, cycles) for w in range(workers)]
        )
    quarantined = sum(q for q, _ in counts)
    assert quarantined > 0, "the hammer must actually corrupt something"

    on_disk = list((tmp_path / "quarantine").glob("*.pkl"))
    assert len(on_disk) == quarantined, (
        f"{quarantined} quarantines counted but {len(on_disk)} blobs on disk "
        "— evidence was overwritten or phantom-counted"
    )
    # No empty placeholders left behind either.
    assert all(p.stat().st_size > 0 for p in on_disk)


# ----------------------------------------------------------------------
# Journal single-writer guard
# ----------------------------------------------------------------------
def test_second_journal_writer_fails_fast(tmp_path):
    path = tmp_path / "campaign.jsonl"
    first = CampaignJournal(path)
    first.append({"key": "k1", "label": "a"})

    second = CampaignJournal(path)
    with pytest.raises(JournalLockedError):
        second.append({"key": "k2", "label": "b"})

    # Reading never takes the writer lock.
    assert "k1" in second.load()

    first.close()
    second.append({"key": "k2", "label": "b"})  # lock released -> writable
    second.close()
    records = CampaignJournal(path).load()
    assert set(records) == {"k1", "k2"}


def test_journal_lock_excludes_other_processes(tmp_path):
    path = tmp_path / "campaign.jsonl"
    journal = CampaignJournal(path)
    journal.append({"key": "held", "label": "parent"})

    code = (
        "import sys\n"
        "from repro.runner import CampaignJournal, JournalLockedError\n"
        "j = CampaignJournal(sys.argv[1])\n"
        "try:\n"
        "    j.append({'key': 'intruder', 'label': 'child'})\n"
        "except JournalLockedError:\n"
        "    sys.exit(42)\n"
        "sys.exit(0)\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code, str(path)],
        env={"PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src")},
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 42, (
        f"child should have been locked out, got rc={proc.returncode}: "
        f"{proc.stderr}"
    )
    journal.close()

    proc = subprocess.run(
        [sys.executable, "-c", code, str(path)],
        env={"PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src")},
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    assert set(CampaignJournal(path).load()) == {"held", "intruder"}
