"""Tests for the Section-4.3 hardware-overhead accounting."""

import pytest

from repro.core.overhead import (
    ccws_overhead,
    gcache_overhead,
    overhead_table,
    pdp_overhead,
)
from repro.sim.config import GPUConfig


class TestGCacheOverhead:
    def test_paper_headline_number(self):
        # Section 4.3: 16 cores, 512-set 16-way 1MB L2 -> O_v = 16 KB.
        report = gcache_overhead(GPUConfig())
        victim_bits = 16 * 512 * 16
        assert report.bits >= victim_bits
        assert report.bits - victim_bits == 16 * 64  # bypass switches
        assert 16.0 <= report.kib <= 16.2

    def test_sharing_divides_victim_bits(self):
        full = gcache_overhead(GPUConfig(), 1)
        quarter = gcache_overhead(GPUConfig(), 4)
        assert quarter.bits < full.bits
        # Victim bits scale 1/4; switch bits unchanged.
        assert full.bits - quarter.bits == (16 - 4) * 512 * 16

    def test_share_factor_validated(self):
        with pytest.raises(ValueError):
            gcache_overhead(GPUConfig(), 3)


class TestComparisons:
    def test_gcache_cheaper_than_ccws(self):
        config = GPUConfig()
        assert gcache_overhead(config).bits < ccws_overhead(config).bits

    def test_gcache_cheaper_than_dynamic_pdp(self):
        # The paper: PDP needs samplers and counter arrays G-Cache avoids.
        config = GPUConfig()
        assert gcache_overhead(config).bits < pdp_overhead(config, 3).bits

    def test_pdp8_heavier_than_pdp3(self):
        config = GPUConfig()
        assert pdp_overhead(config, 8).bits > pdp_overhead(config, 3).bits

    def test_table_renders(self):
        text = overhead_table(GPUConfig()).render()
        assert "G-Cache" in text
        assert "CCWS" in text
        assert "KiB" in text
