"""Unit tests for the persistent result cache and its key scheme.

Covers the invariants the campaign layer depends on:

* keys are stable across process restarts (no ``hash()`` / seed leakage),
* any change to a ``GPUConfig`` field or design parameter changes the key,
* corrupted or truncated entry files degrade to misses, never crashes,
* ``--no-cache`` (a cache-less engine) performs no reads and no writes.
"""

from __future__ import annotations

import dataclasses
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.runner import (
    MISS,
    CampaignEngine,
    ResultCache,
    Task,
    default_salt,
    stable_hash,
    trace_digest,
)
from repro.sim.config import GPUConfig

SRC_ROOT = Path(repro.__file__).resolve().parent.parent


def make_task(**overrides) -> Task:
    base = dict(
        kind="simulate",
        benchmark="SPMV",
        design="gc",
        scale=0.25,
        seed=3,
        config=GPUConfig(l1_size=16 * 1024),
    )
    base.update(overrides)
    return Task(**base)


class TestStableHash:
    def test_key_order_independent(self):
        assert stable_hash({"a": 1, "b": [1, 2]}) == stable_hash({"b": [1, 2], "a": 1})

    def test_tuples_hash_like_lists(self):
        assert stable_hash({"x": (1, 2)}) == stable_hash({"x": [1, 2]})

    def test_dataclasses_flatten(self):
        assert stable_hash({"c": GPUConfig()}) == stable_hash({"c": GPUConfig()})


class TestKeyStability:
    def test_deterministic_in_process(self):
        assert make_task().key("salt") == make_task().key("salt")

    def test_stable_across_process_restarts(self):
        """The key must survive a fresh interpreter with a different
        ``PYTHONHASHSEED`` — this is what makes the on-disk cache valid
        across runs at all."""
        code = (
            "from repro.runner import Task\n"
            "from repro.sim.config import GPUConfig\n"
            "t = Task(kind='simulate', benchmark='SPMV', design='gc',\n"
            "         scale=0.25, seed=3, config=GPUConfig(l1_size=16 * 1024))\n"
            "print(t.key('salt'), end='')\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_ROOT)
        env["PYTHONHASHSEED"] = "12345"
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout == make_task().key("salt")

    def test_salt_changes_key(self):
        assert make_task().key("a") != make_task().key("b")

    def test_default_salt_tracks_version(self):
        assert repro.__version__ in default_salt()


class TestKeyInvalidation:
    SALT = "s"

    def test_every_config_field_matters(self):
        """Changing any single GPUConfig field must produce a new key."""
        base_key = make_task().key(self.SALT)
        tweaked = {
            "num_cores": 8,
            "l1_size": 64 * 1024,
            "l1_ways": 8,
            "l2_hit_latency": 100,
            "warp_scheduler": "gto",
            "dram_row_window": 12,
            "l2_write_validate": False,
        }
        for field_name, value in tweaked.items():
            cfg = dataclasses.replace(
                GPUConfig(l1_size=16 * 1024), **{field_name: value}
            )
            assert make_task(config=cfg).key(self.SALT) != base_key, field_name

    def test_nested_dram_timing_matters(self):
        from repro.dram.timing import GDDR5Timing

        cfg = dataclasses.replace(
            GPUConfig(l1_size=16 * 1024), dram_timing=GDDR5Timing(tCL=13)
        )
        assert make_task(config=cfg).key(self.SALT) != make_task().key(self.SALT)

    def test_design_parameters_matter(self):
        base = make_task().key(self.SALT)
        assert make_task(design="bs").key(self.SALT) != base
        assert make_task(design="spdp-b", pd=8).key(self.SALT) != base
        assert (
            make_task(design="spdp-b", pd=8).key(self.SALT)
            != make_task(design="spdp-b", pd=16).key(self.SALT)
        )

    def test_trace_parameters_matter(self):
        base = make_task().key(self.SALT)
        assert make_task(seed=4).key(self.SALT) != base
        assert make_task(scale=0.5).key(self.SALT) != base
        assert make_task(benchmark="KMN").key(self.SALT) != base

    def test_kind_matters(self):
        sim = Task(kind="simulate", benchmark="SPMV", design="bs")
        rep = Task(kind="replay", benchmark="SPMV", design="bs")
        assert sim.key(self.SALT) != rep.key(self.SALT)

    def test_trace_content_keying(self, tiny_config):
        from repro.trace.trace import CTATrace, KernelTrace, OP_LOAD

        def kernel(*lines):
            program = [(OP_LOAD, (line * 128,)) for line in lines]
            return KernelTrace(name="unit", ctas=[CTATrace(warps=[program])])

        k1 = kernel(0, 1)
        k2 = kernel(0, 2)
        t1 = Task(kind="simulate", trace=k1, key_by_trace=True, config=tiny_config)
        t2 = Task(kind="simulate", trace=k2, key_by_trace=True, config=tiny_config)
        assert trace_digest(k1) != trace_digest(k2)
        assert t1.key(self.SALT) != t2.key(self.SALT)


class TestCacheStore:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"x": 1})
        assert cache.get("ab" * 32) == {"x": 1}
        assert cache.hits == 1 and cache.puts == 1

    def test_missing_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("cd" * 32) is MISS
        assert cache.misses == 1

    @pytest.mark.parametrize(
        "corruption",
        [
            lambda blob: b"garbage",                 # wrong magic
            lambda blob: blob[: len(blob) // 2],     # truncated mid-body
            lambda blob: blob[:8],                   # truncated header
            lambda blob: blob[:-4] + b"\x00\x00\x00\x00",  # bit-rot in body
            lambda blob: b"",                        # empty file
        ],
    )
    def test_corrupted_entries_are_misses(self, tmp_path, corruption):
        cache = ResultCache(tmp_path)
        key = "ef" * 32
        cache.put(key, [1, 2, 3])
        path = cache.path_for(key)
        rotten = corruption(path.read_bytes())
        path.write_bytes(rotten)
        assert cache.get(key) is MISS
        assert cache.corrupt == 1
        # The rotten bytes are evidence: moved to quarantine/, counted,
        # never silently unlinked.
        assert not path.exists(), "corrupt entry should leave its slot"
        assert cache.quarantined == 1
        assert cache.quarantine_path_for(key).read_bytes() == rotten
        # The slot is reusable afterwards.
        cache.put(key, [4])
        assert cache.get(key) == [4]

    def test_quarantine_is_outside_the_entry_namespace(self, tmp_path):
        """Quarantined files never shadow live entries: len() ignores
        them and invalidate() never counts them as removed entries —
        though it does sweep them, so --invalidate clears the full
        on-disk footprint (stale evidence included)."""
        cache = ResultCache(tmp_path)
        key = "ef" * 32
        cache.put(key, [1])
        cache.path_for(key).write_bytes(b"rot")
        assert cache.get(key) is MISS
        assert len(cache) == 0
        assert cache.counter_snapshot()["quarantined"] == 1
        assert cache.quarantine_path_for(key).exists()
        assert cache.invalidate() == 0  # no live entries removed...
        assert not cache.quarantine_path_for(key).exists()  # ...rot swept

    def test_corrupt_entry_reexecutes(self, tmp_path):
        """End-to-end: a damaged file means the engine quarantines the
        entry and recomputes — never crashes, never serves rot."""
        task = Task(kind="replay", benchmark="SD1", design="bs", scale=0.05,
                    include_l2=False)
        engine = CampaignEngine(jobs=1, cache=ResultCache(tmp_path))
        first = engine.run_one(task)
        key = task.key(engine.salt)
        path = engine.cache.path_for(key)
        path.write_bytes(b"not a cache entry")
        second = engine.run_one(task)
        assert second.l1.snapshot() == first.l1.snapshot()
        assert engine.counters.cache_misses == 2  # recomputed, not crashed
        assert engine.cache.quarantined == 1
        assert engine.cache.quarantine_path_for(key).read_bytes() == b"not a cache entry"
        assert engine.metrics_snapshot()["campaign.cache.quarantined"] == 1
        # The recompute rewrote a clean entry in the original slot.
        third = CampaignEngine(jobs=1, cache=ResultCache(tmp_path)).run_one(task)
        assert third.l1.snapshot() == first.l1.snapshot()

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(5):
            cache.put(f"{i:02d}" + "0" * 62, list(range(i)))
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []

    def test_invalidate_single_and_all(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = ["aa" * 32, "bb" * 32, "cc" * 32]
        for key in keys:
            cache.put(key, key)
        assert len(cache) == 3
        assert cache.invalidate(keys[0]) == 1
        assert cache.get(keys[0]) is MISS
        assert cache.invalidate() == 2
        assert len(cache) == 0

    def test_readonly_serves_but_never_writes(self, tmp_path):
        writer = ResultCache(tmp_path)
        writer.put("dd" * 32, 42)
        ro = ResultCache(tmp_path, readonly=True)
        assert ro.get("dd" * 32) == 42
        ro.put("ee" * 32, 43)
        assert writer.get("ee" * 32) is MISS


class TestNoCachePath:
    def test_disabled_cache_never_touches_disk(self, tmp_path):
        cache = ResultCache(None)
        cache.put("ab" * 32, {"x": 1})
        assert cache.get("ab" * 32) is MISS
        assert not any(tmp_path.iterdir())

    def test_engine_without_cache_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        engine = CampaignEngine(jobs=1, cache=None)
        engine.run_one(
            Task(kind="replay", benchmark="SD1", design="bs", scale=0.05,
                 include_l2=False)
        )
        assert not any(tmp_path.iterdir())
        assert engine.counters.cache_misses == 1

    def test_no_cache_bypasses_reads_too(self, tmp_path):
        """--no-cache must not serve stale hits even when entries exist."""
        task = Task(kind="replay", benchmark="SD1", design="bs", scale=0.05,
                    include_l2=False)
        warm = CampaignEngine(jobs=1, cache=ResultCache(tmp_path))
        warm.run_one(task)
        cold = CampaignEngine(jobs=1, cache=None)
        cold.run_one(task)
        assert cold.counters.cache_hits == 0
        assert cold.counters.cache_misses == 1


class TestEngineDedup:
    def test_duplicate_tasks_execute_once(self):
        task = Task(kind="replay", benchmark="SD1", design="bs", scale=0.05,
                    include_l2=False)
        engine = CampaignEngine(jobs=1, cache=None)
        a, b = engine.run([task, task])
        assert a is b
        assert engine.counters.executed == 1
        assert engine.counters.tasks == 2


class TestManifestMetrics:
    def test_simulate_tasks_embed_metrics(self, tiny_config, tmp_path):
        engine = CampaignEngine(jobs=1, cache=ResultCache(tmp_path / "cache"))
        task = Task(kind="simulate", benchmark="SD1", design="bs", scale=0.05,
                    config=tiny_config)
        engine.run([task])
        manifest = engine.manifest()
        (entry,) = manifest["tasks"]
        assert entry["cached"] is False
        assert entry["metrics"]["l1.loads"] > 0
        assert "core.instructions" in entry["metrics"]

    def test_cache_hit_recovers_metrics_from_payload(self, tiny_config, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        task = Task(kind="simulate", benchmark="SD1", design="bs", scale=0.05,
                    config=tiny_config)
        CampaignEngine(jobs=1, cache=cache).run([task])
        engine = CampaignEngine(jobs=1, cache=cache)
        engine.run([task])
        (entry,) = engine.manifest()["tasks"]
        assert entry["cached"] is True
        assert entry["metrics"]["l1.loads"] > 0

    def test_metricless_payload_yields_none(self):
        engine = CampaignEngine(jobs=1)
        task = Task(kind="pd-sweep", benchmark="SD1", scale=0.05,
                    pd_candidates=(1, 2))
        engine.run([task])
        (entry,) = engine.manifest()["tasks"]
        assert entry["metrics"] is None
