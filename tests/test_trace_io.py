"""Tests for trace serialization."""

import io

import pytest

from repro.trace.io import dumps_trace, load_trace, loads_trace, save_trace
from repro.trace.suite import build_benchmark

from conftest import alu, bar, ld, make_kernel, st


class TestRoundTrip:
    def test_hand_built_kernel(self):
        kernel = make_kernel([[alu(3), ld(0, 1), st(2), bar()]], ctas=2)
        restored = loads_trace(dumps_trace(kernel))
        assert restored.name == kernel.name
        assert restored.num_ctas == 2
        assert restored.ctas[0].warps[0] == kernel.ctas[0].warps[0]

    def test_benchmark_trace(self):
        trace = build_benchmark("SPMV", scale=0.05)
        restored = loads_trace(dumps_trace(trace))
        assert restored.instruction_count() == trace.instruction_count()
        assert restored.memory_access_count() == trace.memory_access_count()
        assert restored.meta["sensitivity"] == "sensitive"

    def test_file_roundtrip(self, tmp_path):
        trace = build_benchmark("SD1", scale=0.05)
        path = tmp_path / "sd1.trace.json"
        save_trace(trace, path)
        restored = load_trace(path)
        assert restored.name == "SD1"
        assert restored.instruction_count() == trace.instruction_count()

    def test_stream_roundtrip(self):
        kernel = make_kernel([[ld(0)]], ctas=1)
        buf = io.StringIO()
        save_trace(kernel, buf)
        buf.seek(0)
        assert load_trace(buf).num_ctas == 1

    def test_scratchpad_preserved(self):
        trace = build_benchmark("FFT", scale=0.05)
        assert loads_trace(dumps_trace(trace)).scratchpad_per_cta == \
            trace.scratchpad_per_cta


class TestValidationOnLoad:
    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="not a repro-trace"):
            loads_trace('{"format": "other", "version": 1}')

    def test_rejects_wrong_version(self):
        with pytest.raises(ValueError, match="unsupported trace version"):
            loads_trace('{"format": "repro-trace", "version": 99}')

    def test_rejects_malformed_instructions(self):
        doc = (
            '{"format": "repro-trace", "version": 1, "name": "x", '
            '"ctas": [[[[1, []]]]]}'
        )
        with pytest.raises(ValueError):
            loads_trace(doc)

    def test_loaded_trace_simulates(self, tiny_config):
        from repro.sim.simulator import simulate

        kernel = make_kernel([[ld(0), alu(2)]], ctas=2)
        restored = loads_trace(dumps_trace(kernel))
        result = simulate(restored, tiny_config)
        assert result.instructions == kernel.instruction_count()
