"""Tests for trace serialization."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st_

from repro.trace.io import dumps_trace, load_trace, loads_trace, save_trace
from repro.trace.suite import build_benchmark
from repro.trace.trace import (
    CTATrace,
    KernelTrace,
    OP_ALU,
    OP_ATOM,
    OP_BAR,
    OP_LOAD,
    OP_SMEM,
    OP_STORE,
)

from conftest import alu, bar, ld, make_kernel, st


class TestRoundTrip:
    def test_hand_built_kernel(self):
        kernel = make_kernel([[alu(3), ld(0, 1), st(2), bar()]], ctas=2)
        restored = loads_trace(dumps_trace(kernel))
        assert restored.name == kernel.name
        assert restored.num_ctas == 2
        assert restored.ctas[0].warps[0] == kernel.ctas[0].warps[0]

    def test_benchmark_trace(self):
        trace = build_benchmark("SPMV", scale=0.05)
        restored = loads_trace(dumps_trace(trace))
        assert restored.instruction_count() == trace.instruction_count()
        assert restored.memory_access_count() == trace.memory_access_count()
        assert restored.meta["sensitivity"] == "sensitive"

    def test_file_roundtrip(self, tmp_path):
        trace = build_benchmark("SD1", scale=0.05)
        path = tmp_path / "sd1.trace.json"
        save_trace(trace, path)
        restored = load_trace(path)
        assert restored.name == "SD1"
        assert restored.instruction_count() == trace.instruction_count()

    def test_stream_roundtrip(self):
        kernel = make_kernel([[ld(0)]], ctas=1)
        buf = io.StringIO()
        save_trace(kernel, buf)
        buf.seek(0)
        assert load_trace(buf).num_ctas == 1

    def test_scratchpad_preserved(self):
        trace = build_benchmark("FFT", scale=0.05)
        assert loads_trace(dumps_trace(trace)).scratchpad_per_cta == \
            trace.scratchpad_per_cta


class TestValidationOnLoad:
    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="not a repro-trace"):
            loads_trace('{"format": "other", "version": 1}')

    def test_rejects_wrong_version(self):
        with pytest.raises(ValueError, match="unsupported trace version"):
            loads_trace('{"format": "repro-trace", "version": 99}')

    def test_rejects_malformed_instructions(self):
        doc = (
            '{"format": "repro-trace", "version": 1, "name": "x", '
            '"ctas": [[[[1, []]]]]}'
        )
        with pytest.raises(ValueError):
            loads_trace(doc)

    def test_loaded_trace_simulates(self, tiny_config):
        from repro.sim.simulator import simulate

        kernel = make_kernel([[ld(0), alu(2)]], ctas=2)
        restored = loads_trace(dumps_trace(kernel))
        result = simulate(restored, tiny_config)
        assert result.instructions == kernel.instruction_count()


class TestPropertyRoundTrip:
    """Hypothesis: the byte-identity round-trip contract holds for every
    op kind — OP_ATOM, OP_SMEM and OP_BAR included, which no Table-1
    benchmark exercises all at once."""

    count_ops = st_.sampled_from([OP_ALU, OP_SMEM])
    mem_ops = st_.sampled_from([OP_LOAD, OP_STORE, OP_ATOM])

    instructions = st_.one_of(
        st_.tuples(count_ops, st_.integers(min_value=1, max_value=64)),
        st_.tuples(st_.just(OP_BAR), st_.just(0)),
        st_.tuples(
            mem_ops,
            st_.lists(
                st_.integers(min_value=0, max_value=1 << 20).map(
                    lambda line: (1 << 30) + line * 128
                ),
                min_size=1,
                max_size=32,
            ).map(tuple),
        ),
    )

    kernels = st_.builds(
        lambda warps, ctas, spad: KernelTrace(
            name="prop",
            ctas=[CTATrace(warps=[list(w) for w in warps])
                  for _ in range(ctas)],
            scratchpad_per_cta=spad,
            meta={"scale": 1.0, "seed": 0},
        ),
        warps=st_.lists(
            st_.lists(instructions, min_size=1, max_size=30),
            min_size=1, max_size=4,
        ),
        ctas=st_.integers(min_value=1, max_value=3),
        spad=st_.sampled_from([0, 4096]),
    )

    @given(kernels)
    @settings(max_examples=60, deadline=None)
    def test_dumps_loads_dumps_byte_identical(self, kernel):
        text = dumps_trace(kernel)
        restored = loads_trace(text)
        assert dumps_trace(restored) == text

    @given(kernels)
    @settings(max_examples=30, deadline=None)
    def test_every_op_kind_survives_structurally(self, kernel):
        restored = loads_trace(dumps_trace(kernel))
        for cta, rcta in zip(kernel.ctas, restored.ctas):
            for warp, rwarp in zip(cta.warps, rcta.warps):
                assert [
                    (op, arg if op in (OP_ALU, OP_SMEM, OP_BAR)
                     else tuple(arg))
                    for op, arg in warp
                ] == rwarp

    @given(kernels)
    @settings(max_examples=20, deadline=None)
    def test_file_round_trip_utf8(self, kernel):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "k.json"
            save_trace(kernel, path)
            assert dumps_trace(load_trace(path)) == dumps_trace(kernel)
