"""Property suite for the address map (scalar and vectorized paths).

The fast-functional backend maps whole address streams through
:meth:`AddressMap.partition_array` / :meth:`AddressMap.local_array`; any
divergence from the scalar :meth:`partition` / :meth:`local` (which the
timing engine and the replay oracle use) would silently route traffic to
different L2 banks under the two fidelities.  This suite pins:

* vectorized == scalar, element for element, over random addresses and
  every (partition-count, interleave) geometry,
* the map is bijective: ``globalize(partition(a), local(a)) == a``,
* partition values stay in range and local addresses are dense
  (offset bits preserved, partition bits squeezed out).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.addressing import AddressMap

GEOMETRIES = [
    (1, 1),
    (1, 16),
    (2, 4),
    (4, 16),
    (8, 16),
    (16, 2),
    (32, 64),
]

LINE_ADDRS = st.lists(
    st.integers(min_value=0, max_value=(1 << 40) - 1), min_size=1, max_size=200
)


@pytest.mark.parametrize("parts,interleave", GEOMETRIES)
@settings(max_examples=40, deadline=None)
@given(addrs=LINE_ADDRS)
def test_vectorized_matches_scalar(parts, interleave, addrs):
    amap = AddressMap(parts, interleave)
    part_vec = amap.partition_array(addrs)
    local_vec = amap.local_array(addrs)
    assert part_vec.dtype == np.int64 and local_vec.dtype == np.int64
    for i, addr in enumerate(addrs):
        assert part_vec[i] == amap.partition(addr)
        assert local_vec[i] == amap.local(addr)


@pytest.mark.parametrize("parts,interleave", GEOMETRIES)
@settings(max_examples=40, deadline=None)
@given(addrs=LINE_ADDRS)
def test_roundtrip_bijection(parts, interleave, addrs):
    amap = AddressMap(parts, interleave)
    for addr in addrs:
        part = amap.partition(addr)
        assert 0 <= part < parts
        assert amap.globalize(part, amap.local(addr)) == addr


@pytest.mark.parametrize("parts,interleave", GEOMETRIES)
def test_local_addresses_are_dense(parts, interleave):
    """Every partition's local space is hit contiguously: mapping the
    first N*parts chunks yields local chunk indices 0..N-1 per partition."""
    amap = AddressMap(parts, interleave)
    chunks_per_part = 8
    seen = {p: [] for p in range(parts)}
    for line in range(parts * chunks_per_part * interleave):
        seen[amap.partition(line)].append(amap.local(line))
    for part, locals_ in seen.items():
        # Each partition owns exactly chunks_per_part chunks...
        assert len(locals_) == chunks_per_part * interleave, part
        # ...and their local addresses tile [0, chunks_per_part*interleave).
        assert sorted(locals_) == list(range(chunks_per_part * interleave))


@settings(max_examples=30, deadline=None)
@given(
    addrs=LINE_ADDRS,
    parts=st.sampled_from([1, 2, 4, 8]),
    interleave=st.sampled_from([1, 2, 16, 64]),
)
def test_memoized_scalar_is_consistent(addrs, parts, interleave):
    """The scalar partition() memo must never change an answer: querying
    the same addresses twice (warm cache) matches a fresh map."""
    amap = AddressMap(parts, interleave)
    first = [amap.partition(a) for a in addrs]
    second = [amap.partition(a) for a in addrs]
    fresh = AddressMap(parts, interleave)
    assert first == second == [fresh.partition(a) for a in addrs]


@settings(max_examples=40, deadline=None)
@given(
    addrs=st.lists(
        st.integers(min_value=0, max_value=255), min_size=1, max_size=150
    )
)
def test_cache_set_tag_decomposition(addrs):
    """Set/tag invariants the flat tag scan relies on.

    The tag store keys lines by full line address, so (set, tag) must
    identify a line uniquely: after any access sequence, no set holds
    two lines with the same tag, and every resident tag maps back (via
    ``set_index``) to exactly the set holding it.
    """
    from repro.cache.cache import Cache
    from repro.cache.policies.base import FillContext
    from repro.cache.replacement.lru import LRUPolicy

    cache = Cache("prop", 4 * 4 * 16, 4, 16, replacement=LRUPolicy())
    for now, addr in enumerate(addrs, start=1):
        if not cache.lookup(addr, now).hit:
            cache.fill(addr, now, FillContext(line_addr=addr, src_id=0))
    for set_index, lines in enumerate(cache.sets):
        tags = [ln.tag for ln in lines if ln.valid]
        assert len(tags) == len(set(tags)), f"duplicate tag in set {set_index}"
        for tag in tags:
            assert cache.set_index(tag) == set_index


def test_invalid_geometries_rejected():
    with pytest.raises(ValueError):
        AddressMap(3)
    with pytest.raises(ValueError):
        AddressMap(0)
    with pytest.raises(ValueError):
        AddressMap(4, interleave_lines=12)
    with pytest.raises(ValueError):
        AddressMap(4, interleave_lines=0)
