"""Tests for the hierarchical metrics registry and run collection."""

import pytest

from repro.obs.metrics import (
    CounterMetric,
    HistogramMetric,
    MetricsRegistry,
    collect_run_metrics,
)
from repro.sim.designs import make_design
from repro.sim.simulator import GPU, simulate
from repro.stats.report import render_metrics

from conftest import ld, make_kernel


class TestMetricTypes:
    def test_counter_only_goes_up(self):
        c = CounterMetric("x")
        c.inc(3)
        c.inc()
        assert c.snapshot() == 4
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_histogram_summary(self):
        h = HistogramMetric("lat")
        for v in (10, 30, 20):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == 60
        assert snap["min"] == 10
        assert snap["max"] == 30
        assert snap["mean"] == pytest.approx(20.0)

    def test_empty_histogram_snapshot(self):
        assert HistogramMetric("lat").snapshot() == {
            "count": 0, "sum": 0, "min": 0, "max": 0, "mean": 0.0,
        }


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        reg = MetricsRegistry()
        reg.counter("l1.loads").inc(2)
        reg.counter("l1.loads").inc(3)
        assert reg.snapshot() == {"l1.loads": 5}

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("")

    def test_scope_shares_parent_storage(self):
        reg = MetricsRegistry()
        noc = reg.scope("noc")
        noc.counter("packets").inc(7)
        nested = noc.scope("link")
        nested.gauge("util").set(0.5)
        assert "noc.packets" in reg
        assert reg.snapshot() == {"noc.packets": 7, "noc.link.util": 0.5}
        assert reg.names() == ["noc.link.util", "noc.packets"]

    def test_merge_accumulates_by_kind(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("hits").inc(2)
        a.histogram("lat").observe(5)
        b.counter("hits").inc(3)
        b.gauge("m").set(4)
        b.histogram("lat").observe(15)
        a.merge(b)
        snap = a.snapshot()
        assert snap["hits"] == 5
        assert snap["m"] == 4
        assert snap["lat"]["count"] == 2
        assert snap["lat"]["min"] == 5
        assert snap["lat"]["max"] == 15

    def test_merge_kind_conflict_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x")
        b.gauge("x")
        with pytest.raises(TypeError):
            a.merge(b)


class TestCollectRunMetrics:
    def _run(self, tiny_config, key):
        kernel = make_kernel([[ld(i) for i in range(16)]] * 2, ctas=4)
        gpu = GPU(tiny_config, make_design(key))
        result = gpu.run(kernel)
        return gpu, result

    def test_baseline_namespaces_present(self, tiny_config):
        gpu, result = self._run(tiny_config, "bs")
        snap = collect_run_metrics(gpu).snapshot()
        assert snap["l1.loads"] == result.l1.loads
        assert snap["core.instructions"] == result.instructions
        assert snap["dram.row_hit_rate"] == pytest.approx(result.dram_row_hit_rate)
        assert snap["noc.packets"] > 0
        assert snap["core.load_latency"]["count"] > 0
        # Baseline has no victim directory and no G-Cache switches.
        assert not any(name.startswith("victim.") for name in snap)
        assert not any(name.startswith("gcache.") for name in snap)

    def test_gcache_namespaces_present(self, tiny_config):
        gpu, _ = self._run(tiny_config, "gc")
        snap = collect_run_metrics(gpu).snapshot()
        assert "victim.hints_returned" in snap
        assert "gcache.total_fills" in snap
        assert "gcache.switch.activations" in snap
        assert 0.0 <= snap["gcache.switch.fraction_on"] <= 1.0

    def test_result_extras_carry_snapshot(self, tiny_config):
        kernel = make_kernel([[ld(i) for i in range(16)]] * 2, ctas=4)
        result = simulate(kernel, tiny_config, make_design("gc"))
        metrics = result.extras["metrics"]
        assert metrics["l1.loads"] == result.l1.loads
        assert metrics["core.cycles"] == result.cycles


class TestRenderMetrics:
    def test_renders_counters_gauges_histograms(self):
        text = render_metrics(
            {"l1.loads": 1200, "l1.miss_rate": 0.25,
             "core.load_latency": {"count": 3, "mean": 20.0}},
        )
        assert "1,200" in text
        assert "0.2500" in text
        assert "count=3 mean=20.00" in text

    def test_prefix_filters_namespace(self):
        text = render_metrics({"l1.loads": 1, "noc.packets": 2}, prefix="l1.")
        assert "l1.loads" in text
        assert "noc.packets" not in text
