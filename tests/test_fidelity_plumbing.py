"""Fidelity plumbing: ``fidelity="functional"`` end to end.

The functional backend is only useful if every orchestration layer can
select it *and* keep its results segregated from timing results:

* :func:`simulate` / :func:`simulate_sequence` dispatch and validate,
* :class:`repro.runner.Task` carries fidelity into the cache key, the
  manifest label and the worker dispatch,
* the campaign engine records fidelity per task in timings, journal and
  manifest,
* :class:`EvalSuite`, :class:`Sweep` and the CLI expose the knob.

A timing result served from the cache for a functional request (or vice
versa) would silently mix estimated and measured cycles — the cache-key
tests here are the guard.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.runner import CampaignEngine, ResultCache, Task
from repro.runner.task import run_task
from repro.sim.config import GPUConfig
from repro.sim.designs import make_design
from repro.sim.replay import replay
from repro.sim.simulator import FIDELITIES, simulate, simulate_sequence
from repro.sim.sweep import Sweep
from repro.experiments.common import EvalSuite
from repro.stats.timeline import Timeline
from repro.trace.suite import build_benchmark

SCALE = 0.05
SEED = 3


@pytest.fixture(scope="module")
def trace():
    return build_benchmark("SPMV", scale=SCALE, seed=SEED)


@pytest.fixture(scope="module")
def config():
    return GPUConfig()


class TestSimulateDispatch:
    def test_functional_result_is_tagged(self, trace, config):
        r = simulate(trace, config, make_design("gc"), fidelity="functional")
        assert r.extras["fidelity"] == "functional"
        assert r.extras["estimated_cycles"] is True
        assert r.cycles >= 1 and r.ipc > 0

    def test_timing_result_is_untagged(self, trace, config):
        r = simulate(trace, config, make_design("bs"))
        assert "estimated_cycles" not in r.extras

    def test_functional_counters_match_replay(self, trace, config):
        design = make_design("gc")
        fast = simulate(trace, config, design, fidelity="functional")
        oracle = replay(trace, config, design)
        assert fast.l1.snapshot() == oracle.l1.snapshot()
        assert fast.l2.snapshot() == oracle.l2.snapshot()

    def test_sequence_dispatch(self, trace, config):
        r = simulate_sequence(
            [trace, trace], config, make_design("bs"), fidelity="functional"
        )
        assert r.extras["fidelity"] == "functional"
        single = simulate(trace, config, make_design("bs"), fidelity="functional")
        assert r.instructions == 2 * single.instructions

    def test_unknown_fidelity_rejected(self, trace, config):
        with pytest.raises(ValueError, match="fidelity"):
            simulate(trace, config, make_design("bs"), fidelity="exact")
        with pytest.raises(ValueError, match="fidelity"):
            simulate_sequence([trace], config, make_design("bs"), fidelity="x")

    def test_functional_rejects_cycle_level_observers(self, trace, config):
        with pytest.raises(ValueError):
            simulate(
                trace, config, make_design("bs"),
                timeline=Timeline(), fidelity="functional",
            )


class TestTaskPlumbing:
    def _task(self, **kw):
        base = dict(
            kind="simulate", benchmark="SPMV", design="gc",
            scale=SCALE, seed=SEED,
        )
        base.update(kw)
        return Task(**base)

    def test_cache_keys_differ_per_fidelity(self):
        timing = self._task()
        functional = self._task(fidelity="functional")
        assert timing.key("salt") != functional.key("salt")
        assert timing.fingerprint()["fidelity"] == "timing"
        assert functional.fingerprint()["fidelity"] == "functional"

    def test_label_renders_fidelity(self):
        assert self._task().label == "simulate:SPMV/gc"
        assert (
            self._task(fidelity="functional").label
            == "simulate[functional]:SPMV/gc"
        )

    def test_run_task_dispatches_fidelity(self):
        r = run_task(self._task(fidelity="functional"))
        assert r.extras["fidelity"] == "functional"

    def test_invalid_fidelity_rejected(self):
        with pytest.raises(ValueError, match="fidelity"):
            self._task(fidelity="nope")
        for kind in ("replay", "pd-sweep"):
            with pytest.raises(ValueError, match="simulate"):
                Task(kind=kind, benchmark="SPMV", fidelity="functional")

    def test_fidelities_constant_covers_both(self):
        assert set(FIDELITIES) == {"timing", "functional"}


class TestCampaignRecords:
    def test_manifest_and_journal_record_fidelity(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = CampaignEngine(
            jobs=1, cache=cache, journal=tmp_path / "journal.jsonl"
        )
        tasks = [
            Task(kind="simulate", benchmark="SD1", design="bs", scale=SCALE,
                 fidelity=fid)
            for fid in ("timing", "functional")
        ]
        engine.run(tasks)
        by_label = {t["label"]: t for t in engine.manifest()["tasks"]}
        assert by_label["simulate:SD1/bs"]["fidelity"] == "timing"
        assert by_label["simulate[functional]:SD1/bs"]["fidelity"] == "functional"

        journal = [
            json.loads(line)
            for line in (tmp_path / "journal.jsonl").read_text().splitlines()
        ]
        assert {j["fidelity"] for j in journal} == {"timing", "functional"}

    def test_fidelities_do_not_alias_in_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = CampaignEngine(jobs=1, cache=cache)
        timing_task = Task(
            kind="simulate", benchmark="SD1", design="bs", scale=SCALE
        )
        functional_task = Task(
            kind="simulate", benchmark="SD1", design="bs", scale=SCALE,
            fidelity="functional",
        )
        timing = engine.run_one(timing_task)
        functional = engine.run_one(functional_task)
        assert engine.counters.cache_hits == 0  # distinct keys, both ran
        assert "estimated_cycles" not in timing.extras
        assert functional.extras["estimated_cycles"] is True
        # Warm pass: each fidelity hits its own entry.
        engine2 = CampaignEngine(jobs=1, cache=ResultCache(tmp_path / "cache"))
        warm = engine2.run_one(functional_task)
        assert engine2.counters.cache_hits == 1
        assert warm.extras["fidelity"] == "functional"


class TestSuiteAndSweep:
    def test_evalsuite_forwards_fidelity(self):
        suite = EvalSuite(
            benchmarks=["SD1"], scale=SCALE, seed=SEED, fidelity="functional"
        )
        r = suite.run("SD1", "bs")
        assert r.extras["fidelity"] == "functional"
        label = suite.engine.manifest()["tasks"][0]["label"]
        assert label.startswith("simulate[functional]:")

    def test_sweep_forwards_fidelity(self, trace):
        points = (
            Sweep(trace, fidelity="functional").designs("bs", "gc").run()
        )
        assert all(
            p.result.extras["fidelity"] == "functional" for p in points
        )


class TestCLI:
    def test_run_functional(self, capsys):
        rc = main([
            "run", "--benchmark", "sd1", "--design", "bs",
            "--scale", "0.05", "--fidelity", "functional",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[fidelity] functional" in out
        assert "IPC" in out

    def test_run_functional_rejects_timeline(self, tmp_path, capsys):
        rc = main([
            "run", "--benchmark", "sd1", "--design", "bs", "--scale", "0.05",
            "--fidelity", "functional",
            "--timeline-csv", str(tmp_path / "t.csv"),
        ])
        assert rc == 2
        assert "functional" in capsys.readouterr().err

    def test_compare_functional(self, capsys):
        rc = main([
            "compare", "--benchmark", "sd1", "--designs", "bs,gc",
            "--scale", "0.05", "--fidelity", "functional", "--no-cache",
        ])
        assert rc == 0
        assert "design comparison" in capsys.readouterr().out

    def test_trace_has_no_fidelity_flag(self):
        with pytest.raises(SystemExit):
            main([
                "trace", "--benchmark", "sd1", "--fidelity", "functional",
                "-o", "x.json",
            ])
