"""Golden-number regression test for the paper campaign.

A checked-in fixture (``tests/data/golden_paper_numbers.json``) pins the
headline values of the reduced-scale reproduction — Fig. 8 speedups,
Fig. 9 L1 miss rates, and Table 3 bypass ratios / optimal PDs — for a
six-benchmark slice covering all three sensitivity groups.  Any code
change that drifts a reproduced number by more than ``1e-9`` fails here,
so refactors (like the campaign engine itself) cannot silently change
the science.

If a drift is *intentional* (a modelling fix), regenerate the fixture::

    PYTHONPATH=src python tests/regen_golden.py

and include the diff in review.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.common import PAPER_DESIGNS, EvalSuite
from repro.experiments.fig8_speedup import fig8_speedups
from repro.experiments.fig9_missrate import fig9_miss_rates
from repro.experiments.table3_bypass import table3_rows

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_paper_numbers.json"

#: Reduced-scale campaign the fixture pins.  One benchmark per paper
#: behaviour: SPMV (GC's best case), KMN/NW (long-PD cases where SPDP-B
#: wins), SSC (sensitive), SD1/FWT (insensitive, must stay untouched).
SCALE = 0.05
SEED = 0
BENCHMARKS = ("SPMV", "KMN", "SSC", "NW", "SD1", "FWT")
DESIGNS = PAPER_DESIGNS

#: Functional-fidelity slice pinned alongside the timing campaign: the
#: backend's cache counters are exact (bit-identical to the replay
#: oracle) and its cycles are a deterministic function of them, so these
#: numbers are just as pinnable as the timing ones.
FUNCTIONAL_DESIGNS = ("bs", "gc")

TOLERANCE = 1e-9


def build_suite() -> EvalSuite:
    return EvalSuite(benchmarks=BENCHMARKS, scale=SCALE, seed=SEED, jobs=1)


def compute_functional_golden() -> dict:
    """The pinned functional-fidelity numbers (exact counters +
    estimator-derived IPC) for the fixture's benchmark slice."""
    suite = EvalSuite(
        benchmarks=BENCHMARKS, scale=SCALE, seed=SEED, jobs=1,
        fidelity="functional",
    )
    matrix = suite.run_matrix(FUNCTIONAL_DESIGNS)
    return {
        bench: {
            design: {
                "l1_miss_rate": matrix[(bench, design)].l1.miss_rate,
                "l1_bypass_ratio": matrix[(bench, design)].l1.bypass_ratio,
                "l2_miss_rate": matrix[(bench, design)].l2.miss_rate,
                "estimated_ipc": matrix[(bench, design)].ipc,
            }
            for design in FUNCTIONAL_DESIGNS
        }
        for bench in BENCHMARKS
    }


def compute_golden(suite: EvalSuite | None = None) -> dict:
    """Recompute every pinned value from scratch (no cache)."""
    suite = suite or build_suite()
    suite.run_matrix(DESIGNS)
    return {
        "meta": {
            "scale": SCALE,
            "seed": SEED,
            "benchmarks": list(BENCHMARKS),
            "designs": list(DESIGNS),
        },
        "fig8_speedups": fig8_speedups(suite, DESIGNS),
        "fig9_miss_rates": fig9_miss_rates(suite, DESIGNS),
        "table3": {
            row.benchmark: {
                "gcache_bypass_ratio": row.gcache_bypass_ratio,
                "spdpb_bypass_ratio": row.spdpb_bypass_ratio,
                "optimal_pd": row.optimal_pd,
            }
            for row in table3_rows(suite)
        },
        "functional": compute_functional_golden(),
    }


def iter_drift(expected, actual, path=""):
    """Yield '<path>: expected E, got A' strings for every mismatch."""
    if isinstance(expected, dict):
        if not isinstance(actual, dict) or set(expected) != set(actual):
            yield f"{path}: key sets differ ({sorted(expected)} vs {sorted(actual) if isinstance(actual, dict) else actual})"
            return
        for key in expected:
            yield from iter_drift(expected[key], actual[key], f"{path}/{key}")
    elif isinstance(expected, float) or isinstance(actual, float):
        if abs(float(expected) - float(actual)) > TOLERANCE:
            yield f"{path}: expected {expected!r}, got {actual!r}"
    elif expected != actual:
        yield f"{path}: expected {expected!r}, got {actual!r}"


@pytest.fixture(scope="module")
def golden() -> dict:
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"missing fixture {GOLDEN_PATH}; generate it with "
            "`PYTHONPATH=src python tests/regen_golden.py`"
        )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def actual() -> dict:
    return compute_golden()


def test_fixture_pins_this_campaign(golden):
    assert golden["meta"] == {
        "scale": SCALE,
        "seed": SEED,
        "benchmarks": list(BENCHMARKS),
        "designs": list(DESIGNS),
    }


@pytest.mark.parametrize(
    "section", ["fig8_speedups", "fig9_miss_rates", "table3", "functional"]
)
def test_no_drift(golden, actual, section):
    drift = list(iter_drift(golden[section], actual[section], section))
    assert not drift, (
        "reproduced numbers drifted from the golden fixture "
        "(if intentional, regenerate with "
        "`PYTHONPATH=src python tests/regen_golden.py`):\n"
        + "\n".join(drift)
    )


def test_paper_shape_survives(golden):
    """Coarse sanity on the fixture itself: the paper's qualitative
    claims must hold in the pinned numbers, so a bad regeneration cannot
    be committed unnoticed."""
    fig8 = golden["fig8_speedups"]
    table3 = golden["table3"]
    # GC helps the sensitive gmean and never tanks insensitive codes.
    assert fig8["GM-sensitive"]["gc"] > 1.0
    assert fig8["GM-insensitive"]["gc"] > 0.97
    # BS is the speedup baseline by definition.
    for bench in BENCHMARKS:
        assert fig8[bench]["bs"] == 1.0
    # FWT (insensitive) bypasses essentially nothing under either design.
    assert table3["FWT"]["gcache_bypass_ratio"] < 0.05
    assert table3["FWT"]["spdpb_bypass_ratio"] < 0.05
    # Functional fidelity: the baseline never bypasses, G-Cache does on
    # the cache-sensitive kernel, and every miss rate is a valid ratio.
    functional = golden["functional"]
    assert functional["SPMV"]["bs"]["l1_bypass_ratio"] == 0.0
    assert functional["SPMV"]["gc"]["l1_bypass_ratio"] > 0.0
    for bench, designs in functional.items():
        for design, row in designs.items():
            assert 0.0 <= row["l1_miss_rate"] <= 1.0, (bench, design)
            assert row["estimated_ipc"] > 0.0, (bench, design)
