"""Property-based tests (hypothesis) for core data structures.

These check invariants the rest of the system silently relies on:
tag-array consistency under arbitrary access sequences, address-map
bijectivity, coalescer conservation, statistic identities, and the
optimality property of Belady replacement on single-set traces.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import Cache
from repro.cache.policies.base import FillContext
from repro.cache.replacement.belady import NEVER, BeladyPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.rrip import SRRIPPolicy
from repro.core.gcache import GCacheConfig, GCachePolicy
from repro.gpu.coalescer import Coalescer
from repro.sim.addressing import AddressMap
from repro.stats.counters import ReuseHistogram
from repro.stats.report import geomean

LINE = 128

access_seqs = st.lists(
    st.tuples(st.integers(min_value=0, max_value=31), st.booleans()),
    min_size=1,
    max_size=200,
)


def drive(cache: Cache, seq, mgmt_hints=False) -> None:
    """Replay (line, is_write) pairs with demand fills on load misses."""
    for now, (line, is_write) in enumerate(seq):
        result = cache.lookup(line, now, is_write=is_write)
        if not result.hit and not is_write:
            cache.fill(
                line,
                now,
                FillContext(line, victim_hint=mgmt_hints and (line % 3 == 0)),
            )


class TestCacheInvariants:
    @given(access_seqs)
    @settings(max_examples=60, deadline=None)
    def test_no_duplicate_tags(self, seq):
        cache = Cache("c", 1024, 2, LINE, LRUPolicy())
        drive(cache, seq)
        resident = cache.resident_lines()
        assert len(resident) == len(set(resident))

    @given(access_seqs)
    @settings(max_examples=60, deadline=None)
    def test_lines_stay_in_their_set(self, seq):
        cache = Cache("c", 1024, 2, LINE, LRUPolicy())
        drive(cache, seq)
        for set_index, ways in enumerate(cache.sets):
            for line in ways:
                if line.valid:
                    assert cache.set_index(line.tag) == set_index

    @given(access_seqs)
    @settings(max_examples=60, deadline=None)
    def test_stats_identities(self, seq):
        cache = Cache("c", 1024, 2, LINE, LRUPolicy())
        drive(cache, seq)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses
        assert stats.fills <= stats.misses
        assert stats.evictions <= stats.fills
        assert 0.0 <= stats.miss_rate <= 1.0

    @given(access_seqs)
    @settings(max_examples=60, deadline=None)
    def test_generation_conservation(self, seq):
        # Every fill either stays resident or was retired to the reuse
        # histogram; finalize() closes the residents.
        cache = Cache("c", 1024, 2, LINE, LRUPolicy())
        drive(cache, seq)
        fills = cache.stats.fills
        cache.finalize()
        assert cache.stats.reuse.generations == fills

    @given(access_seqs)
    @settings(max_examples=60, deadline=None)
    def test_gcache_preserves_invariants(self, seq):
        cache = Cache(
            "c", 1024, 2, LINE, SRRIPPolicy(3), mgmt=GCachePolicy(GCacheConfig())
        )
        drive(cache, seq, mgmt_hints=True)
        stats = cache.stats
        assert stats.fills + stats.bypasses <= stats.misses
        resident = cache.resident_lines()
        assert len(resident) == len(set(resident))
        max_rrpv = cache.replacement.max_rrpv
        for ways in cache.sets:
            for line in ways:
                assert 0 <= line.rrpv <= max_rrpv

    @given(access_seqs)
    @settings(max_examples=40, deadline=None)
    def test_rrpv_bounded_under_srrip(self, seq):
        cache = Cache("c", 1024, 2, LINE, SRRIPPolicy(3))
        drive(cache, seq)
        for ways in cache.sets:
            for line in ways:
                assert 0 <= line.rrpv <= 7


class TestBeladyOptimality:
    @given(
        st.lists(st.integers(min_value=0, max_value=7), min_size=4, max_size=120)
    )
    @settings(max_examples=60, deadline=None)
    def test_opt_beats_lru_on_single_set(self, lines):
        """On any single-set trace, OPT's hits >= LRU's hits."""
        sets, ways = 1, 3

        def run_lru():
            cache = Cache("c", sets * ways * LINE, ways, LINE, LRUPolicy())
            hits = 0
            for now, line in enumerate(lines):
                if cache.lookup(line, now).hit:
                    hits += 1
                else:
                    cache.fill(line, now)
            return hits

        def run_opt():
            pol = BeladyPolicy()
            cache = Cache("c", sets * ways * LINE, ways, LINE, pol)
            nxt = {}
            next_use = [NEVER] * len(lines)
            for pos in range(len(lines) - 1, -1, -1):
                next_use[pos] = nxt.get(lines[pos], NEVER)
                nxt[lines[pos]] = pos
            hits = 0
            for now, line in enumerate(lines):
                pol.next_use_hint = next_use[now]
                if cache.lookup(line, now).hit:
                    hits += 1
                else:
                    cache.fill(line, now)
            return hits

        assert run_opt() >= run_lru()


class TestAddressMapProperties:
    @given(
        st.integers(min_value=0, max_value=1 << 40),
        st.sampled_from([1, 2, 4, 8, 16]),
        st.sampled_from([1, 4, 16, 64]),
    )
    @settings(max_examples=200, deadline=None)
    def test_bijective(self, line, partitions, interleave):
        amap = AddressMap(partitions, interleave)
        part = amap.partition(line)
        assert 0 <= part < partitions
        assert amap.globalize(part, amap.local(line)) == line

    @given(st.integers(min_value=0, max_value=1 << 30))
    @settings(max_examples=100, deadline=None)
    def test_distinct_lines_distinct_slots(self, line):
        amap = AddressMap(8, 16)
        a = (amap.partition(line), amap.local(line))
        b = (amap.partition(line + 1), amap.local(line + 1))
        assert a != b


class TestCoalescerProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=32))
    @settings(max_examples=100, deadline=None)
    def test_conservation(self, lanes):
        unit = Coalescer(line_size=128)
        result = unit.coalesce(lanes)
        assert set(result) == {a >> 7 for a in lanes}
        assert len(result) == len(set(result))
        assert 1 <= len(result) <= len(lanes)


class TestStatsProperties:
    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_histogram_fractions_sum_to_one(self, counts):
        hist = ReuseHistogram()
        for c in counts:
            hist.record(c)
        buckets = hist.buckets()
        assert abs(sum(buckets.values()) - 1.0) < 1e-9

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_geomean_bounded_by_extremes(self, values):
        g = geomean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9
