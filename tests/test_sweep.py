"""Tests for the parameter-sweep utility."""

import pytest

from repro.sim.sweep import METRICS, Sweep

from conftest import alu, ld, make_kernel


@pytest.fixture
def kernel():
    return make_kernel(
        [[op for i in range(4) for op in (ld(i * 8), alu(2))]], ctas=4
    )


class TestGrid:
    def test_runs_full_grid(self, kernel, tiny_config):
        sweep = (
            Sweep(kernel, base_config=tiny_config)
            .designs("bs", "gc")
            .configs(l1_size=[1024, 2048])
        )
        points = sweep.run()
        assert len(points) == 4
        assert {p.design for p in points} == {"bs", "gc"}
        assert {p.overrides["l1_size"] for p in points} == {1024, 2048}

    def test_no_axes_single_point(self, kernel, tiny_config):
        points = Sweep(kernel, base_config=tiny_config).designs("bs").run()
        assert len(points) == 1
        assert points[0].overrides == {}

    def test_memoized(self, kernel, tiny_config):
        sweep = Sweep(kernel, base_config=tiny_config).designs("bs")
        assert sweep.run() is sweep.run()

    def test_changing_grid_invalidates(self, kernel, tiny_config):
        sweep = Sweep(kernel, base_config=tiny_config).designs("bs")
        first = sweep.run()
        sweep.designs("bs", "gc")
        assert len(sweep.run()) == 2
        assert sweep.run() is not first

    def test_unknown_config_field(self, kernel, tiny_config):
        with pytest.raises(ValueError, match="no field"):
            Sweep(kernel, base_config=tiny_config).configs(l9_size=[1])

    def test_spdp_with_pd_suffix(self, kernel, tiny_config):
        points = Sweep(kernel, base_config=tiny_config).designs("spdp-b:8").run()
        assert points[0].design == "spdp-b:8"


class TestTable:
    def test_metric_table(self, kernel, tiny_config):
        sweep = (
            Sweep(kernel, base_config=tiny_config)
            .designs("bs", "gc")
            .configs(l1_size=[1024, 2048])
        )
        text = sweep.table("miss_rate").render()
        assert "l1_size=1024" in text
        assert "bs" in text

    def test_all_metrics_extract(self, kernel, tiny_config):
        sweep = Sweep(kernel, base_config=tiny_config).designs("bs")
        for metric in METRICS:
            assert sweep.table(metric)

    def test_unknown_metric(self, kernel, tiny_config):
        sweep = Sweep(kernel, base_config=tiny_config)
        with pytest.raises(ValueError, match="unknown metric"):
            sweep.table("flops")
