"""Integration tests for the memory system (L1 -> NoC -> L2 -> DRAM)."""

import pytest

from repro.sim.designs import make_design
from repro.sim.memory_system import MemorySystem


def mem_for(config, design_key="bs", sv=1):
    return MemorySystem(config, make_design(design_key), victim_share_factor=sv)


class TestLoadPath:
    def test_cold_load_reaches_dram(self, tiny_config):
        mem = mem_for(tiny_config)
        done = mem.load(0, line_addr=0, now=0)
        assert done > tiny_config.l2_hit_latency
        assert mem.dram_requests == 1
        assert mem.l1s[0].stats.loads == 1

    def test_l1_hit_is_fast(self, tiny_config):
        mem = mem_for(tiny_config)
        first = mem.load(0, 0, now=0)
        second = mem.load(0, 0, now=first + 1)
        assert second - (first + 1) == tiny_config.l1_hit_latency

    def test_l2_hit_cheaper_than_dram(self, tiny_config):
        mem = mem_for(tiny_config)
        t1 = mem.load(0, 0, now=0)          # cold: DRAM
        mem.l1s[0].invalidate(0)
        t2_start = t1 + 1
        t2 = mem.load(0, 0, now=t2_start)   # L1 miss, L2 hit
        assert (t2 - t2_start) < (t1 - 0)

    def test_mshr_merge_returns_fill_time(self, tiny_config):
        mem = mem_for(tiny_config)
        done = mem.load(0, 0, now=0)
        merged = mem.load(0, 0, now=5)  # while in flight
        assert merged == done
        assert mem.l1s[0].stats.mshr_merges == 1
        # A merge must not generate new L2 traffic.
        assert mem.l2_stats().accesses == 1

    def test_per_core_l1s_private(self, tiny_config):
        mem = mem_for(tiny_config)
        mem.load(0, 0, now=0)
        assert mem.l1s[1].stats.loads == 0
        # Core 1 misses in its own L1 but hits the shared L2.
        mem.load(1, 0, now=5000)
        assert mem.l2_stats().hits >= 1

    def test_load_latency_accounting(self, tiny_config):
        mem = mem_for(tiny_config)
        mem.load(0, 0, now=0)
        assert mem.average_load_latency > 0
        assert mem.load_count == 1


class TestStorePath:
    def test_store_is_write_through(self, tiny_config):
        mem = mem_for(tiny_config)
        mem.store(0, 0, now=0)
        # No L1 allocation on a store miss.
        assert not mem.l1s[0].probe(0)
        assert mem.l2_stats().stores == 1

    def test_write_validate_skips_dram_fetch(self, tiny_config):
        mem = mem_for(tiny_config)
        mem.store(0, 0, now=0)
        assert mem.dram_requests == 0  # fetch skipped; writeback later

    def test_store_hit_updates_l1(self, tiny_config):
        mem = mem_for(tiny_config)
        mem.load(0, 0, now=0)
        mem.store(0, 0, now=10_000)
        assert mem.l1s[0].stats.store_hits == 1


class TestAtomicPath:
    def test_atomic_bypasses_l1(self, tiny_config):
        mem = mem_for(tiny_config)
        mem.atomic(0, 0, now=0)
        assert not mem.l1s[0].probe(0)
        assert mem.l2_stats().accesses == 1

    def test_aou_serializes(self, tiny_config):
        mem = mem_for(tiny_config)
        part = mem.partition_of(0)
        mem.atomic(0, 0, now=0)
        first_free = mem._aou_free[part]
        mem.atomic(1, 0, now=0)
        # The second RMW is queued behind the first at the AOU.
        assert mem._aou_free[part] >= first_free + tiny_config.aou_occupancy


class TestVictimHintPlumbing:
    def test_hint_flows_end_to_end(self, tiny_config):
        mem = mem_for(tiny_config, "gc")
        done = mem.load(0, 0, now=0)
        # Evict from L1 and re-request: the L2 must flag contention and
        # the L1's bypass switch must come on for the target set.
        mem.l1s[0].invalidate(0)
        mem.load(0, 0, now=done + 1)
        assert mem.victim_dir.contentions_detected == 1
        policy = mem.l1s[0].mgmt
        set_index = mem.l1s[0].set_index(0)
        assert policy.switches.is_on(set_index)

    def test_no_directory_for_baseline(self, tiny_config):
        assert mem_for(tiny_config, "bs").victim_dir is None

    def test_different_core_no_false_hint(self, tiny_config):
        mem = mem_for(tiny_config, "gc")
        done = mem.load(0, 0, now=0)
        mem.load(1, 0, now=done + 1)
        assert mem.victim_dir.contentions_detected == 0

    def test_shared_victim_bits_cross_core_hint(self, tiny_config):
        mem = mem_for(tiny_config, "gc", sv=tiny_config.num_cores)
        done = mem.load(0, 0, now=0)
        mem.load(1, 0, now=done + 1)
        assert mem.victim_dir.contentions_detected == 1


class TestStats:
    def test_l1_stats_merge_all_cores(self, tiny_config):
        mem = mem_for(tiny_config)
        mem.load(0, 0, now=0)
        mem.load(1, 1, now=0)
        assert mem.l1_stats().loads == 2

    def test_finalize_closes_generations(self, tiny_config):
        mem = mem_for(tiny_config)
        mem.load(0, 0, now=0)
        mem.finalize()
        assert mem.l1_stats().reuse.generations >= 1

    def test_dram_row_hit_rate_range(self, tiny_config):
        mem = mem_for(tiny_config)
        for i in range(32):
            mem.load(0, i, now=i * 2000)
        assert 0.0 <= mem.dram_row_hit_rate <= 1.0


class TestAtomicWriteValidate:
    def test_atomic_miss_fetches_from_dram(self, tiny_config):
        # Read-modify-write cannot write-validate: the old value is needed.
        mem = mem_for(tiny_config)
        mem.atomic(0, 0, now=0)
        assert mem.dram_requests == 1
