"""Differential harness: functional backend vs the scalar replay oracle.

The vectorized fast-functional backend (:mod:`repro.sim.functional`)
promises *bit-identical* cache counters to the scalar
:func:`repro.sim.replay.replay` driver — same hits, misses, bypasses,
insertions, evictions, writebacks, reuse histograms and victim-bit
contention counts, for every registered design, every warp scheduler and
every cache geometry.  This suite pins that contract:

* the full design registry (plus off-registry parameterizations:
  fast-shutdown G-Cache, small-epoch adaptive-M, small-epoch dynamic
  PDP) over Table-1 benchmarks,
* every warp scheduler the replay driver supports,
* a geometry sweep (sizes, ways, line size, partition count, core count),
* Hypothesis-generated adversarial kernels mixing phase changes,
  streaming bursts, inter-CTA sharing and set-conflict storms.

Any divergence is a silent-wrong-results bug in the fast path: the
functional backend exists so campaigns can run at lower cost *without*
changing what they measure.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.policies.pdp import DynamicPDPPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.core.gcache import GCacheConfig
from repro.sim.config import GPUConfig
from repro.sim.designs import DESIGN_KEYS, DesignSpec, make_design
from repro.sim.functional import functional_replay
from repro.sim.replay import SCHEDULERS, replay
from repro.trace.suite import build_benchmark
from repro.trace.trace import CTATrace, KernelTrace, OP_ALU, OP_LOAD, OP_STORE

# ---------------------------------------------------------------------------
# Design matrix: every registry key, plus off-registry parameterizations
# that exercise the config-sensitive corners of each functional model.
# ---------------------------------------------------------------------------


def _design(key: str) -> DesignSpec:
    if key == "spdp-b":
        return make_design("spdp-b", pd=8)
    if key == "gc-fast-shutdown":
        # Frequent periodic switch shutdowns: exercises the tick engine.
        return make_design("gc", gcache_config=GCacheConfig(shutdown_interval=64))
    if key == "gc-m-small-epoch":
        # Tight adaptation epoch: exercises the M-counter state machine.
        return make_design(
            "gc-m",
            gcache_config=GCacheConfig(aging_epoch=32, initial_m=1, max_m=8),
        )
    if key == "pdp-small-epoch":
        # Frequent PD recomputation: exercises sampler/decay/re-PD paths.
        return DesignSpec(
            key="pdp-small-epoch",
            label="Dynamic PDP (3-bit, 128-access epochs)",
            make_l1_replacement=LRUPolicy,
            make_l1_mgmt=lambda: DynamicPDPPolicy(
                counter_bits=3, epoch_accesses=128
            ),
        )
    return make_design(key)


ALL_DESIGNS = tuple(DESIGN_KEYS) + (
    "gc-fast-shutdown",
    "gc-m-small-epoch",
    "pdp-small-epoch",
)

#: One design per functional-model family, for the expensive sweeps.
FAMILY_DESIGNS = ("bs", "bs-s", "pdp-3", "spdp-b", "gc", "dbp")


def assert_equivalent(trace, config, design, scheduler="lrr", include_l2=True):
    """Replay both backends and assert every observable counter matches."""
    oracle = replay(
        trace, config, design, scheduler=scheduler, include_l2=include_l2
    )
    fast = functional_replay(
        trace, config, design, scheduler=scheduler, include_l2=include_l2
    )
    assert fast.l1.snapshot() == oracle.l1.snapshot()
    assert fast.l2.snapshot() == oracle.l2.snapshot()
    assert fast.l1.reuse.as_dict() == oracle.l1.reuse.as_dict()
    assert fast.l2.reuse.as_dict() == oracle.l2.reuse.as_dict()
    assert fast.extras == oracle.extras
    assert fast.benchmark == oracle.benchmark
    assert fast.design == oracle.design


# ---------------------------------------------------------------------------
# Shared fixtures: traces are the expensive part, build each once.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def config():
    return GPUConfig()


@pytest.fixture(scope="module")
def spmv_trace():
    return build_benchmark("SPMV", scale=0.03, seed=7)


@pytest.fixture(scope="module")
def bfs_trace():
    return build_benchmark("BFS", scale=0.03, seed=11)


@pytest.fixture(scope="module")
def kmn_trace():
    return build_benchmark("KMN", scale=0.05, seed=3)


# ---------------------------------------------------------------------------
# Full design registry x benchmarks
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("key", ALL_DESIGNS)
def test_design_matches_oracle_spmv(key, spmv_trace, config):
    assert_equivalent(spmv_trace, config, _design(key))


@pytest.mark.parametrize("key", ALL_DESIGNS)
def test_design_matches_oracle_bfs(key, bfs_trace, config):
    assert_equivalent(bfs_trace, config, _design(key))


# ---------------------------------------------------------------------------
# Warp schedulers (the interleave changes every stream, so scheduler bugs
# show up as counter drift even when per-access semantics are right).
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("key", ("gc", "pdp-3", "dbp"))
def test_scheduler_matches_oracle(scheduler, key, kmn_trace, config):
    assert_equivalent(kmn_trace, config, _design(key), scheduler=scheduler)


# ---------------------------------------------------------------------------
# Geometry sweep: set-count, associativity, line-size, partition and core
# changes all reshape the address -> (set, bank) mapping.
# ---------------------------------------------------------------------------

GEOMETRIES = {
    "small-l1": dict(l1_size=8 * 1024),
    "high-assoc": dict(l1_ways=8),
    "wide-lines": dict(line_size=256),
    "narrow-lines": dict(line_size=64),
    "few-partitions": dict(num_partitions=2, mc_interleave_lines=4),
    "few-cores": dict(num_cores=4),
    "small-l2": dict(l2_bank_size=64 * 1024),
}


@pytest.mark.parametrize("name", sorted(GEOMETRIES))
@pytest.mark.parametrize("key", ("gc", "pdp-3"))
def test_geometry_matches_oracle(name, key, spmv_trace, config):
    cfg = replace(config, **GEOMETRIES[name])
    assert_equivalent(spmv_trace, cfg, _design(key))


@pytest.mark.parametrize("key", ("bs", "gc", "pdp-3"))
def test_l1_only_matches_oracle(key, spmv_trace, config):
    """include_l2=False drops hints and the L2 model entirely."""
    assert_equivalent(spmv_trace, config, _design(key), include_l2=False)


# ---------------------------------------------------------------------------
# Hypothesis adversarial kernels
# ---------------------------------------------------------------------------

#: Small geometry so short random kernels still generate real conflict
#: pressure: 4 cores, 16-set/4-way L1, 2 L2 banks.
ADV_CONFIG = GPUConfig(
    num_cores=4,
    l1_size=2 * 1024,
    l1_ways=4,
    line_size=32,
    num_partitions=2,
    l2_bank_size=8 * 1024,
    mc_interleave_lines=2,
)
_LINE = ADV_CONFIG.line_size
_NUM_SETS = ADV_CONFIG.l1_size // (ADV_CONFIG.l1_ways * _LINE)


def _mem_op(addr_lines, write):
    op = OP_STORE if write else OP_LOAD
    return (op, tuple(line * _LINE for line in addr_lines))


@st.composite
def adversarial_kernels(draw):
    """A small kernel mixing the paper's hard access patterns.

    Each warp program is a few segments, each one of:

    * ``phase``  — a small working set looped (then abandoned at the next
      segment: a phase change),
    * ``burst``  — a streaming run of never-reused lines,
    * ``shared`` — reads of a kernel-wide shared line pool (inter-CTA
      sharing; lights up the victim-bit directory),
    * ``conflict`` — a same-set stride storm (every access maps to one
      L1 set).
    """
    shared_pool = draw(
        st.lists(
            st.integers(0, 63), min_size=2, max_size=6, unique=True
        )
    )
    burst_base = draw(st.integers(64, 512))
    num_ctas = draw(st.integers(1, 3))
    ctas = []
    for _ in range(num_ctas):
        warps = []
        for _ in range(draw(st.integers(1, 3))):
            prog = []
            for _ in range(draw(st.integers(1, 4))):
                kind = draw(
                    st.sampled_from(("phase", "burst", "shared", "conflict"))
                )
                if kind == "phase":
                    ws = draw(
                        st.lists(
                            st.integers(0, 127),
                            min_size=1,
                            max_size=6,
                            unique=True,
                        )
                    )
                    loops = draw(st.integers(1, 4))
                    for _ in range(loops):
                        for line in ws:
                            prog.append(
                                _mem_op([line], draw(st.booleans()))
                            )
                elif kind == "burst":
                    start = burst_base + draw(st.integers(0, 256))
                    length = draw(st.integers(4, 24))
                    for i in range(length):
                        prog.append(_mem_op([start + i], False))
                elif kind == "shared":
                    for _ in range(draw(st.integers(2, 8))):
                        prog.append(
                            _mem_op([draw(st.sampled_from(shared_pool))], False)
                        )
                else:  # conflict: constant set index, distinct tags
                    set_index = draw(st.integers(0, _NUM_SETS - 1))
                    for i in range(draw(st.integers(4, 16))):
                        prog.append(
                            _mem_op(
                                [set_index + i * _NUM_SETS],
                                draw(st.booleans()),
                            )
                        )
                if draw(st.booleans()):
                    prog.append((OP_ALU, draw(st.integers(1, 4))))
            if not any(op in (OP_LOAD, OP_STORE) for op, _ in prog):
                prog.append(_mem_op([0], False))
            warps.append(prog)
        ctas.append(CTATrace(warps=warps))
    return KernelTrace(name="ADV", ctas=ctas)


@pytest.mark.parametrize("key", FAMILY_DESIGNS)
@settings(max_examples=20, deadline=None)
@given(trace=adversarial_kernels())
def test_adversarial_kernels_match_oracle(key, trace):
    assert_equivalent(trace, ADV_CONFIG, _design(key))


@settings(max_examples=10, deadline=None)
@given(trace=adversarial_kernels(), scheduler=st.sampled_from(SCHEDULERS))
def test_adversarial_schedulers_match_oracle(trace, scheduler):
    assert_equivalent(trace, ADV_CONFIG, _design("gc"), scheduler=scheduler)


# ---------------------------------------------------------------------------
# Burst-path adversarial kernels
#
# The batched per-set burst path reorders work aggressively: L2 events
# replay grouped by (bank, set) instead of globally interleaved, store
# traffic is folded into walks and parked in per-set buffers that flush
# lazily, and set-conflict storms fall off the vectorized round loop
# into a scalar tail.  These strategies aim squarely at the seams where
# that reordering could diverge from the oracle.
# ---------------------------------------------------------------------------

_L2_SETS = ADV_CONFIG.l2_bank_sets


def _same_l2_set_pool(max_lines: int = 24):
    """Line addresses that all land in one (bank, set) of the L2."""
    from repro.sim.addressing import AddressMap

    amap = AddressMap(ADV_CONFIG.num_partitions, ADV_CONFIG.mc_interleave_lines)
    pool = []
    for line in range(8192):
        if amap.partition(line) == 0 and amap.local(line) & (_L2_SETS - 1) == 0:
            pool.append(line)
            if len(pool) >= max_lines:
                break
    return tuple(pool)


_L2_CONFLICT_POOL = _same_l2_set_pool()


@st.composite
def burst_adversarial_kernels(draw):
    """Kernels targeting the burst path's reordering seams.

    Segments (bases drawn kernel-wide, so CTAs on different cores race
    on the *same* sets — L1 state is core-private, so only cross-core
    L2 interleaving can expose ordering bugs):

    * ``l1-storm``   — long same-L1-set runs with distinct tags: one
      (core, set) CSR group dominates, forcing the round loop into its
      scalar tail mid-kernel.
    * ``l2-storm``   — every access maps to one L2 (bank, set): the
      deferred store buffers flush against same-set load misses in the
      densest possible interleaving.
    * ``store-flood`` — store-dominated runs with occasional reloads:
      store misses must touch no L1 state, store hits must restamp, and
      L2 dirty/writeback accounting rides entirely on the folded path.
    * ``race``       — tight load/store alternation on one line and its
      set neighbours, the per-set order most sensitive to batch order.
    """
    storm_set = draw(st.integers(0, _NUM_SETS - 1))
    flood_base = draw(st.integers(0, 256))
    num_ctas = draw(st.integers(2, 4))
    ctas = []
    for _ in range(num_ctas):
        warps = []
        for _ in range(draw(st.integers(1, 2))):
            prog = []
            for _ in range(draw(st.integers(1, 3))):
                kind = draw(
                    st.sampled_from(
                        ("l1-storm", "l2-storm", "store-flood", "race")
                    )
                )
                if kind == "l1-storm":
                    for i in range(draw(st.integers(8, 32))):
                        prog.append(
                            _mem_op(
                                [storm_set + i * _NUM_SETS],
                                draw(st.booleans()),
                            )
                        )
                elif kind == "l2-storm":
                    for _ in range(draw(st.integers(6, 20))):
                        prog.append(
                            _mem_op(
                                [draw(st.sampled_from(_L2_CONFLICT_POOL))],
                                draw(st.booleans()),
                            )
                        )
                elif kind == "store-flood":
                    span = draw(st.integers(2, 8))
                    for _ in range(draw(st.integers(6, 24))):
                        line = flood_base + draw(st.integers(0, span))
                        write = draw(
                            st.sampled_from((True, True, True, False))
                        )
                        prog.append(_mem_op([line], write))
                else:  # race: load/store ping-pong within one set
                    line = storm_set + draw(st.integers(0, 7)) * _NUM_SETS
                    for i in range(draw(st.integers(4, 12))):
                        prog.append(_mem_op([line], i % 2 == 0))
                if draw(st.booleans()):
                    prog.append((OP_ALU, draw(st.integers(1, 4))))
            warps.append(prog)
        ctas.append(CTATrace(warps=warps))
    return KernelTrace(name="BURST-ADV", ctas=ctas)


#: The designs that route through each burst path: full L1+L2 bursts
#: (bs, bs-s), scalar walk + L2 burst (dbp), and the load-miss heap with
#: deferred store flushes (gc, gc-m).
BURST_PATH_DESIGNS = ("bs", "bs-s", "dbp", "gc", "gc-m")


@pytest.mark.parametrize("key", BURST_PATH_DESIGNS)
@settings(max_examples=15, deadline=None)
@given(trace=burst_adversarial_kernels())
def test_burst_adversarial_match_oracle(key, trace):
    assert_equivalent(trace, ADV_CONFIG, _design(key))


@settings(max_examples=8, deadline=None)
@given(trace=burst_adversarial_kernels(), scheduler=st.sampled_from(SCHEDULERS))
def test_burst_adversarial_schedulers_match_oracle(trace, scheduler):
    assert_equivalent(trace, ADV_CONFIG, _design("bs"), scheduler=scheduler)
