"""End-to-end tests for the top-level simulator."""

import pytest

from repro.sim.designs import make_design
from repro.sim.simulator import GPU, RunResult, simulate
from repro.trace.trace import CTATrace, KernelTrace

from conftest import alu, bar, ld, make_kernel, st


class TestCompletion:
    def test_executes_every_instruction(self, tiny_config):
        kernel = make_kernel([[alu(2), ld(0), st(1)]] * 2, ctas=3)
        result = simulate(kernel, tiny_config, make_design("bs"))
        assert result.instructions == kernel.instruction_count()
        assert result.cycles > 0
        assert 0 < result.ipc

    def test_more_ctas_than_slots_backfills(self, tiny_config):
        # 2 cores x 2 CTA slots; 10 CTAs forces the backfill path.
        kernel = make_kernel([[alu(1), ld(0)]], ctas=10)
        result = simulate(kernel, tiny_config, make_design("bs"))
        assert result.instructions == kernel.instruction_count()

    def test_barriers_complete(self, tiny_config):
        kernel = make_kernel([[alu(1), bar(), ld(0)], [ld(4), bar(), alu(1)]], ctas=2)
        result = simulate(kernel, tiny_config, make_design("bs"))
        assert result.instructions == kernel.instruction_count()

    def test_oversized_scratchpad_rejected(self, tiny_config):
        kernel = KernelTrace(
            name="big",
            ctas=[CTATrace(warps=[[alu(1)]])],
            scratchpad_per_cta=tiny_config.scratchpad_bytes + 1,
        )
        with pytest.raises(ValueError, match="scratchpad"):
            simulate(kernel, tiny_config, make_design("bs"))

    def test_invalid_trace_rejected(self, tiny_config):
        kernel = KernelTrace(name="bad", ctas=[CTATrace(warps=[[(99, 0)]])])
        with pytest.raises(ValueError):
            simulate(kernel, tiny_config, make_design("bs"))


class TestDeterminism:
    def test_same_inputs_same_result(self, tiny_config):
        kernel = make_kernel([[alu(1), ld(0), ld(8), st(2)]] * 3, ctas=4)
        a = simulate(kernel, tiny_config, make_design("gc"))
        b = simulate(kernel, tiny_config, make_design("gc"))
        assert a.cycles == b.cycles
        assert a.l1.hits == b.l1.hits
        assert a.l1.bypasses == b.l1.bypasses


class TestStatisticsConsistency:
    def test_hits_plus_misses_equal_accesses(self, tiny_config):
        kernel = make_kernel([[ld(i), ld(i)] for i in range(4)], ctas=4)
        result = simulate(kernel, tiny_config, make_design("bs"))
        stats = result.l1
        assert stats.hits + stats.misses == stats.accesses
        assert 0.0 <= stats.miss_rate <= 1.0

    def test_reuse_histogram_populated(self, tiny_config):
        kernel = make_kernel([[ld(0), ld(0), ld(0)]], ctas=1)
        result = simulate(kernel, tiny_config, make_design("bs"))
        assert result.l1.reuse.generations >= 1

    def test_extras_for_gcache(self, tiny_config):
        kernel = make_kernel([[ld(0), alu(1)]], ctas=2)
        result = simulate(kernel, tiny_config, make_design("gc"))
        assert "contentions_detected" in result.extras

    def test_extras_for_pdp(self, tiny_config):
        kernel = make_kernel([[ld(0), alu(1)]], ctas=2)
        result = simulate(kernel, tiny_config, make_design("pdp-3"))
        assert "pd_history" in result.extras


class TestSpeedupAPI:
    def test_speedup_requires_same_kernel(self, tiny_config):
        a = simulate(make_kernel([[alu(1)]], name="a"), tiny_config)
        b = simulate(make_kernel([[alu(1)]], name="b"), tiny_config)
        with pytest.raises(ValueError, match="same kernel"):
            b.speedup_over(a)

    def test_self_speedup_is_one(self, tiny_config):
        kernel = make_kernel([[alu(2), ld(0)]], ctas=2)
        r = simulate(kernel, tiny_config)
        assert r.speedup_over(r) == pytest.approx(1.0)


def serial_load_program(warp_id: int, loads: int = 8):
    """A warp alternating a unique-line load and a little compute."""
    program = []
    for i in range(loads):
        program.append(ld(warp_id * 64 + i * 8))
        program.append(alu(2))
    return program


class TestLatencyHiding:
    def test_multithreading_hides_memory_latency(self, tiny_config):
        # One warp doing serial loads vs eight warps doing the same work
        # each: aggregate IPC must improve with more warps in flight.
        lone = make_kernel([serial_load_program(0)], ctas=1)
        packed = KernelTrace(
            name="unit",
            ctas=[CTATrace(warps=[serial_load_program(w) for w in range(8)])],
        )
        r_lone = simulate(lone, tiny_config)
        r_packed = simulate(packed, tiny_config)
        assert r_packed.ipc > r_lone.ipc

    def test_hits_run_faster_than_misses(self, tiny_config):
        reuse = make_kernel([[ld(0), alu(1)] * 8], ctas=1)
        streaming = make_kernel(
            [[op for i in range(8) for op in (ld(i * 8), alu(1))]], ctas=1
        )
        r_reuse = simulate(reuse, tiny_config)
        r_stream = simulate(streaming, tiny_config)
        assert r_reuse.ipc > r_stream.ipc
