"""Tests for the memory-system energy model."""

import pytest

from repro.sim.designs import make_design
from repro.sim.simulator import simulate
from repro.stats.energy import EnergyBreakdown, EnergyModel

from conftest import alu, ld, make_kernel


@pytest.fixture
def run(tiny_config):
    kernel = make_kernel([[ld(i * 8), alu(2)] for i in [0]] * 1 or None, ctas=1)
    return simulate(kernel, tiny_config, make_design("bs"))


def small_run(tiny_config, design="bs"):
    kernel = make_kernel(
        [[op for i in range(6) for op in (ld(i * 8), alu(2))]], ctas=4
    )
    return simulate(kernel, tiny_config, make_design(design))


class TestEnergyModel:
    def test_components_positive(self, tiny_config):
        result = small_run(tiny_config)
        energy = EnergyModel().evaluate(result)
        assert energy.l1_pj > 0
        assert energy.l2_pj > 0
        assert energy.dram_pj > 0
        assert energy.static_pj > 0
        assert energy.total_pj == pytest.approx(
            energy.l1_pj + energy.l2_pj + energy.noc_pj
            + energy.dram_pj + energy.static_pj
        )

    def test_dynamic_excludes_static(self, tiny_config):
        energy = EnergyModel().evaluate(small_run(tiny_config))
        assert energy.dynamic_pj == pytest.approx(energy.total_pj - energy.static_pj)

    def test_pj_per_instruction(self, tiny_config):
        result = small_run(tiny_config)
        energy = EnergyModel().evaluate(result)
        assert energy.pj_per_instruction == pytest.approx(
            energy.total_pj / result.instructions
        )

    def test_relative_comparison(self, tiny_config):
        base = EnergyModel().evaluate(small_run(tiny_config))
        same = EnergyModel().evaluate(small_run(tiny_config))
        assert same.relative_to(base) == pytest.approx(1.0)

    def test_relative_to_zero_rejected(self):
        zero = EnergyBreakdown(0, 0, 0, 0, 0, instructions=0)
        other = EnergyBreakdown(1, 1, 1, 1, 1, instructions=1)
        with pytest.raises(ZeroDivisionError):
            other.relative_to(zero)

    def test_as_dict_keys(self, tiny_config):
        energy = EnergyModel().evaluate(small_run(tiny_config))
        d = energy.as_dict()
        assert set(d) >= {"l1_pj", "l2_pj", "dram_pj", "total_pj"}

    def test_uses_recorded_hops(self, tiny_config):
        result = small_run(tiny_config)
        result.extras["noc_avg_hops"] = 10.0
        high = EnergyModel().evaluate(result)
        result.extras["noc_avg_hops"] = 1.0
        low = EnergyModel().evaluate(result)
        assert high.noc_pj > low.noc_pj
