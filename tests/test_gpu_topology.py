"""Cross-cutting integration tests: full-suite invariants at small scale.

These exercise the whole stack (generators -> simulator -> stats) for
every benchmark, checking properties any run must satisfy regardless of
calibration: instruction conservation, statistic sanity, design safety.
"""

import pytest

from repro.sim.config import GPUConfig
from repro.sim.designs import make_design
from repro.sim.simulator import simulate
from repro.trace.suite import ALL_BENCHMARKS, build_benchmark

SMALL_CONFIG = GPUConfig()
SCALE = 0.1


@pytest.fixture(scope="module")
def baseline_runs():
    runs = {}
    for name in ALL_BENCHMARKS:
        trace = build_benchmark(name, scale=SCALE)
        runs[name] = (trace, simulate(trace, SMALL_CONFIG, make_design("bs")))
    return runs


class TestSuiteWideInvariants:
    def test_instruction_conservation(self, baseline_runs):
        for name, (trace, result) in baseline_runs.items():
            assert result.instructions == trace.instruction_count(), name

    def test_ipc_positive_and_bounded(self, baseline_runs):
        for name, (_, result) in baseline_runs.items():
            assert 0 < result.ipc <= SMALL_CONFIG.num_cores, name

    def test_l1_stats_sane(self, baseline_runs):
        for name, (_, result) in baseline_runs.items():
            assert 0.0 <= result.l1.miss_rate <= 1.0, name
            assert result.l1.bypasses == 0, f"{name}: baseline never bypasses"

    def test_memory_traffic_flows_downhill(self, baseline_runs):
        for name, (_, result) in baseline_runs.items():
            # The L2 sees at most the L1's misses plus stores/atomics.
            assert result.l2.accesses <= result.l1.misses + result.l1.stores + \
                result.instructions, name

    def test_dram_row_hit_rate_valid(self, baseline_runs):
        for name, (_, result) in baseline_runs.items():
            assert 0.0 <= result.dram_row_hit_rate <= 1.0, name


class TestGCacheSafety:
    """G-Cache must never corrupt a run, whatever the workload."""

    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_gc_completes_every_benchmark(self, name):
        trace = build_benchmark(name, scale=SCALE)
        result = simulate(trace, SMALL_CONFIG, make_design("gc"))
        assert result.instructions == trace.instruction_count()
        assert result.l1.fills + result.l1.bypasses <= result.l1.misses
