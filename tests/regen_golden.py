#!/usr/bin/env python
"""Regenerate ``tests/data/golden_paper_numbers.json``.

Run after an *intentional* modelling change::

    PYTHONPATH=src python tests/regen_golden.py

The fixture parameters (scale, seed, benchmark slice, designs) live in
``tests/test_paper_regression.py`` — this script only re-executes that
campaign and rewrites the file, so the test and the fixture can never
disagree about what is being pinned.

Safety interlock: before touching the fixture, the rest of the tier-1
suite (everything except the golden-number tests themselves, which are
expected to be stale — that is why you are regenerating) must pass.
Pinning numbers produced by a broken tree would launder the breakage
into the baseline.  ``--force`` skips the check for emergencies; say why
in the commit message.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

TESTS_DIR = Path(__file__).resolve().parent
REPO_ROOT = TESTS_DIR.parent

sys.path.insert(0, str(TESTS_DIR))

from test_paper_regression import GOLDEN_PATH, compute_golden  # noqa: E402


def tier1_passes() -> bool:
    """Run the tier-1 suite minus the golden regression tests."""
    print("checking tier-1 (excluding the golden tests being regenerated)...")
    proc = subprocess.run(
        [
            sys.executable, "-m", "pytest", "-x", "-q",
            str(TESTS_DIR),
            "--ignore", str(TESTS_DIR / "test_paper_regression.py"),
        ],
        cwd=REPO_ROOT,
    )
    return proc.returncode == 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--force", action="store_true",
        help="regenerate even when tier-1 is failing (dangerous: the "
             "fixture will pin numbers from a broken tree)",
    )
    args = parser.parse_args()

    if args.force:
        print("WARNING: --force given, skipping the tier-1 interlock")
    elif not tier1_passes():
        print(
            "refusing to regenerate: tier-1 is failing outside the golden "
            "tests.\nFix the suite first (or pass --force if you are sure).",
            file=sys.stderr,
        )
        return 1

    payload = compute_golden()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
