#!/usr/bin/env python
"""Regenerate ``tests/data/golden_paper_numbers.json``.

Run after an *intentional* modelling change::

    PYTHONPATH=src python tests/regen_golden.py

The fixture parameters (scale, seed, benchmark slice, designs) live in
``tests/test_paper_regression.py`` — this script only re-executes that
campaign and rewrites the file, so the test and the fixture can never
disagree about what is being pinned.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from test_paper_regression import GOLDEN_PATH, compute_golden  # noqa: E402


def main() -> None:
    payload = compute_golden()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
