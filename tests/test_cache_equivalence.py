"""Equivalence property suite: array-backed Cache vs the reference model.

The production :class:`~repro.cache.cache.Cache` stores tag-array state in
flat parallel arrays (:mod:`repro.cache.tagstore`) and routes hot
replacement policies through index-based fast paths.  This suite drives it
and the retained object-per-line :class:`~repro.cache.reference.ReferenceCache`
with *identical* random access streams and asserts bit-identical
behaviour: every lookup's hit/way, every fill's insert/bypass/eviction/
writeback, every invalidate, the final statistics counters, and the final
per-line tag-array state.

Any divergence here means the tag-store rewrite changed simulation
semantics — exactly the regression the golden-number fixtures would catch
at whole-simulator granularity, but localised to a single cache op.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import Cache
from repro.cache.policies.base import FillContext
from repro.cache.policies.pdp import StaticPDPPolicy
from repro.cache.reference import ReferenceCache
from repro.cache.replacement.lru import FIFOPolicy, LRUPolicy, MRUPolicy
from repro.cache.replacement.rrip import BRRIPPolicy, SRRIPPolicy
from repro.core.gcache import GCacheConfig, GCachePolicy

# Tiny geometry so random streams produce constant conflict pressure:
# 4 sets x 4 ways, 16 B lines, addresses drawn from 8 lines per set.
WAYS = 4
NUM_SETS = 4
LINE = 16
SIZE = NUM_SETS * WAYS * LINE
ADDR_SPACE = NUM_SETS * 8

# Each entry builds a *fresh* policy pair per cache: replacement policies
# carry per-cache state (LRU ticks, BRRIP RNG), so the two implementations
# must get independent but identically-seeded instances.
CONFIGS = {
    "lru": lambda: dict(replacement=LRUPolicy()),
    "mru": lambda: dict(replacement=MRUPolicy()),
    "fifo": lambda: dict(replacement=FIFOPolicy()),
    "srrip": lambda: dict(replacement=SRRIPPolicy(bits=2)),
    "brrip": lambda: dict(replacement=BRRIPPolicy(bits=2, seed=7)),
    "srrip-gcache": lambda: dict(
        replacement=SRRIPPolicy(bits=2),
        mgmt=GCachePolicy(GCacheConfig(shutdown_interval=64)),
    ),
    "lru-spdp": lambda: dict(
        replacement=LRUPolicy(),
        mgmt=StaticPDPPolicy(pd=3, bypass=True),
    ),
    "lru-writeback": lambda: dict(
        replacement=LRUPolicy(), write_back=True, write_allocate=True
    ),
}

# An op is (kind, line_addr, flag):
#   kind 0 -> read access  (lookup; fill on miss, flag = victim hint)
#   kind 1 -> write access (lookup is_write=True; fill only if the cache
#             write-allocates, mirroring the memory system's usage)
#   kind 2 -> invalidate
OPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=ADDR_SPACE - 1),
        st.booleans(),
    ),
    min_size=1,
    max_size=200,
)


def _build(cls, key: str):
    kwargs = dict(
        name=f"{key}-{cls.__name__}",
        size_bytes=SIZE,
        ways=WAYS,
        line_size=LINE,
    )
    kwargs.update(CONFIGS[key]())
    return cls(**kwargs)


def _drive(cache, ops):
    """Apply the op stream; return the full observable event trace."""
    trace = []
    now = 0
    for kind, addr, flag in ops:
        now += 1
        if kind == 2:
            trace.append(("inv", cache.invalidate(addr, now)))
            continue
        is_write = kind == 1
        r = cache.lookup(addr, now, is_write=is_write)
        trace.append(("lookup", is_write, r.hit, r.set_index, r.way))
        wants_fill = not r.hit and (not is_write or cache.write_allocate)
        if wants_fill:
            ctx = FillContext(
                line_addr=addr, src_id=0, is_write=is_write, victim_hint=flag
            )
            f = cache.fill(addr, now, ctx)
            trace.append(
                (
                    "fill",
                    f.set_index,
                    f.inserted,
                    f.bypassed,
                    f.already_present,
                    f.way,
                    f.evicted_tag,
                    f.writeback,
                )
            )
    cache.finalize()
    return trace


def _line_state(cache):
    return [
        [
            (ln.valid, ln.tag, ln.dirty, ln.rrpv, ln.stamp, ln.pd_counter)
            for ln in s
        ]
        for s in cache.sets
    ]


def _stats(cache):
    """Flatten CacheStats to comparable values (ReuseHistogram lacks __eq__)."""
    out = {}
    for k, v in vars(cache.stats).items():
        out[k] = dict(v._counts) if hasattr(v, "_counts") else v
    return out


@pytest.mark.parametrize("key", sorted(CONFIGS))
@settings(max_examples=60, deadline=None)
@given(ops=OPS)
def test_flat_cache_matches_reference(key, ops):
    fast = _build(Cache, key)
    ref = _build(ReferenceCache, key)

    fast_trace = _drive(fast, ops)
    ref_trace = _drive(ref, ops)

    assert fast_trace == ref_trace
    assert _line_state(fast) == _line_state(ref)
    assert _stats(fast) == _stats(ref)
    assert sorted(fast.resident_lines()) == sorted(ref.resident_lines())


@pytest.mark.parametrize("key", sorted(CONFIGS))
def test_flush_matches_reference(key):
    """Deterministic smoke: fill past capacity, then flush both."""
    fast = _build(Cache, key)
    ref = _build(ReferenceCache, key)
    ops = [(0, (7 * i) % ADDR_SPACE, i % 3 == 0) for i in range(3 * SIZE // LINE)]
    assert _drive(fast, ops) == _drive(ref, ops)
    assert fast.flush() == ref.flush()
    assert _line_state(fast) == _line_state(ref)
