"""Unit tests for the G-Cache policy (the paper's Section 4 mechanism)."""

import pytest

from repro.cache.cache import Cache
from repro.cache.policies.base import FillContext
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.rrip import SRRIPPolicy
from repro.core.gcache import GCacheConfig, GCachePolicy

LINE = 128


def gcache(sets=2, ways=2, config=None):
    policy = GCachePolicy(config or GCacheConfig())
    cache = Cache(
        "L1", sets * ways * LINE, ways, LINE, SRRIPPolicy(bits=3), mgmt=policy
    )
    return cache, policy


def hot_fill(cache, line, now):
    """Fill with a victim hint (contention-detected block)."""
    return cache.fill(line, now, FillContext(line, victim_hint=True))


class TestAttachment:
    def test_requires_rrip_replacement(self):
        with pytest.raises(TypeError, match="RRIP"):
            Cache("L1", 512, 2, LINE, LRUPolicy(), mgmt=GCachePolicy())

    def test_threshold_resolves_to_max_rrpv(self):
        cache, pol = gcache()
        assert pol.th_hot == 7
        assert pol.th_hot_victim == 6

    def test_explicit_threshold_validated(self):
        cfg = GCacheConfig(th_hot=9)
        with pytest.raises(ValueError, match="exceeds"):
            Cache("L1", 512, 2, LINE, SRRIPPolicy(bits=3), mgmt=GCachePolicy(cfg))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GCacheConfig(th_hot=0)
        with pytest.raises(ValueError):
            GCacheConfig(initial_m=2, max_m=1)
        with pytest.raises(ValueError):
            GCacheConfig(th_hot_victim=-1)


class TestBypassSwitchControl:
    def test_victim_hint_turns_switch_on(self):
        cache, pol = gcache()
        hot_fill(cache, 0, now=0)
        assert pol.switches.is_on(0)

    def test_cold_fill_leaves_switch_off(self):
        cache, pol = gcache()
        cache.fill(0, now=0)
        assert not pol.switches.is_on(0)

    def test_switch_off_means_insert(self):
        cache, pol = gcache()
        cache.fill(0, now=0)
        cache.fill(2, now=1)
        result = cache.fill(4, now=2)  # set full, all "hot", switch off
        assert result.inserted


class TestBypassDecision:
    def test_all_hot_set_bypasses_cold_fill(self):
        cache, pol = gcache()
        hot_fill(cache, 0, now=0)   # switch on; rrpv 0
        hot_fill(cache, 2, now=1)   # rrpv 0
        result = cache.fill(4, now=2)
        assert result.bypassed
        assert cache.stats.bypasses == 1

    def test_partial_set_inserts(self):
        cache, pol = gcache()
        hot_fill(cache, 0, now=0)
        result = cache.fill(2, now=1)  # invalid way available
        assert result.inserted

    def test_non_hot_line_prevents_bypass(self):
        cache, pol = gcache()
        hot_fill(cache, 0, now=0)
        cache.fill(2, now=1)
        cache.sets[0][cache.find_way(2)].rrpv = 7  # eviction candidate
        result = cache.fill(4, now=2)
        assert result.inserted

    def test_hint_fill_uses_lower_threshold(self):
        # With the lower TH_hot, lines at rrpv >= th_hot-1 do not count as
        # hot, so a reused (hint) block gets inserted where a cold one
        # bypasses.
        cache, pol = gcache()
        hot_fill(cache, 0, now=0)
        hot_fill(cache, 2, now=1)
        for way in cache.sets[0]:
            way.rrpv = pol.th_hot_victim  # stale enough for a hint block
        cold = cache.fill(4, now=2)
        assert cold.bypassed
        hot = hot_fill(cache, 6, now=3)
        assert hot.inserted

    def test_hint_fill_bypasses_when_residents_recently_hot(self):
        # Protection must be sticky: a homeless hot block may not evict a
        # recently-reused resident (no musical-chairs churn).
        cache, pol = gcache()
        hot_fill(cache, 0, now=0)
        hot_fill(cache, 2, now=1)
        for way in cache.sets[0]:
            way.rrpv = 1
        assert hot_fill(cache, 6, now=3).bypassed


class TestAgingOnBypass:
    def test_bypass_increments_rrpvs(self):
        cache, pol = gcache()
        hot_fill(cache, 0, now=0)
        hot_fill(cache, 2, now=1)
        before = [line.rrpv for line in cache.sets[0]]
        cache.fill(4, now=2)  # bypassed
        after = [line.rrpv for line in cache.sets[0]]
        assert after == [b + 1 for b in before]

    def test_rrpv_saturates_at_max(self):
        cache, pol = gcache()
        hot_fill(cache, 0, now=0)
        hot_fill(cache, 2, now=1)
        for way in cache.sets[0]:
            way.rrpv = 6
        cache.fill(4, now=2)
        assert all(line.rrpv == 7 for line in cache.sets[0])

    def test_persistent_bypass_eventually_inserts(self):
        # The anti-starvation property from Fig. 7: a block that keeps
        # being bypassed ages the set until it wins a slot.
        cache, pol = gcache()
        hot_fill(cache, 0, now=0)
        hot_fill(cache, 2, now=1)
        inserted = False
        for i in range(10):
            if cache.fill(4, now=2 + i).inserted:
                inserted = True
                break
        assert inserted


class TestInsertionPolicy:
    def test_hint_block_inserts_near_mru(self):
        cache, pol = gcache()
        result = hot_fill(cache, 0, now=0)
        assert cache.sets[0][result.way].rrpv == 0

    def test_cold_block_inserts_distant(self):
        cache, pol = gcache()
        result = cache.fill(0, now=0)
        assert cache.sets[0][result.way].rrpv == 6  # SRRIP long

    def test_cold_insert_override(self):
        cache, pol = gcache(config=GCacheConfig(cold_insert_rrpv=7))
        result = cache.fill(0, now=0)
        assert cache.sets[0][result.way].rrpv == 7


class TestMthBypassAging:
    def test_m_of_two_halves_aging(self):
        cfg = GCacheConfig(initial_m=2, adaptive_aging=False)
        cache, pol = gcache(config=cfg)
        pol.m = 2
        hot_fill(cache, 0, now=0)
        hot_fill(cache, 2, now=1)
        before = [line.rrpv for line in cache.sets[0]]
        cache.fill(4, now=2)  # 1st bypass: no aging
        assert [l.rrpv for l in cache.sets[0]] == before
        cache.fill(6, now=3)  # 2nd bypass: aging
        assert [l.rrpv for l in cache.sets[0]] == [b + 1 for b in before]

    def test_adaptive_m_grows_under_contention(self):
        cfg = GCacheConfig(adaptive_aging=True, aging_epoch=4)
        cache, pol = gcache(config=cfg)
        # Saturate the epoch with hint-carrying fills + bypasses.
        hot_fill(cache, 0, now=0)
        hot_fill(cache, 2, now=1)
        for i in range(12):
            hot_fill(cache, 4 + 2 * i, now=2 + i)
        assert pol.m > 1
        assert pol.m_history[-1] == pol.m

    def test_adaptive_m_relaxes_without_contention(self):
        cfg = GCacheConfig(adaptive_aging=True, aging_epoch=4, initial_m=8)
        cache, pol = gcache(sets=8, config=cfg)
        for i in range(32):
            cache.fill(i * 2, now=i)  # cold fills, no hints
        assert pol.m < 8


class TestPeriodicShutdown:
    def test_switches_reset_after_interval(self):
        cfg = GCacheConfig(shutdown_interval=4)
        cache, pol = gcache(config=cfg)
        hot_fill(cache, 0, now=0)
        assert pol.switches.is_on(0)
        for i in range(5):
            cache.lookup(0, now=1 + i)
        assert not pol.switches.is_on(0)
        assert pol.switches.shutdowns >= 1

    def test_zero_interval_disables_shutdown(self):
        cfg = GCacheConfig(shutdown_interval=0)
        cache, pol = gcache(config=cfg)
        hot_fill(cache, 0, now=0)
        for i in range(100):
            cache.lookup(0, now=1 + i)
        assert pol.switches.is_on(0)


class TestDiagnostics:
    def test_hint_fill_accounting(self):
        cache, pol = gcache()
        hot_fill(cache, 0, now=0)
        cache.fill(2, now=1)
        assert pol.hint_fills == 1
        assert pol.total_fills == 2
