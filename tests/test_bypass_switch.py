"""Unit tests for the per-set bypass switch array."""

import pytest

from repro.core.bypass_switch import BypassSwitchArray


class TestSwitching:
    def test_starts_off(self):
        switches = BypassSwitchArray(8)
        assert not any(switches.is_on(i) for i in range(8))

    def test_turn_on_off(self):
        switches = BypassSwitchArray(8)
        switches.turn_on(3)
        assert switches.is_on(3)
        switches.turn_off(3)
        assert not switches.is_on(3)

    def test_activation_counted_once(self):
        switches = BypassSwitchArray(8)
        switches.turn_on(3)
        switches.turn_on(3)
        assert switches.activations == 1

    def test_fraction_on(self):
        switches = BypassSwitchArray(4)
        switches.turn_on(0)
        switches.turn_on(1)
        assert switches.fraction_on == pytest.approx(0.5)


class TestPeriodicShutdown:
    def test_reset_after_interval(self):
        switches = BypassSwitchArray(4, shutdown_interval=3)
        switches.turn_on(0)
        switches.tick()
        switches.tick()
        assert switches.is_on(0)
        switches.tick()
        assert not switches.is_on(0)
        assert switches.shutdowns == 1

    def test_interval_zero_never_resets(self):
        switches = BypassSwitchArray(4, shutdown_interval=0)
        switches.turn_on(0)
        for _ in range(100):
            switches.tick()
        assert switches.is_on(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BypassSwitchArray(0)
        with pytest.raises(ValueError):
            BypassSwitchArray(4, shutdown_interval=-1)
