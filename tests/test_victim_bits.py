"""Unit tests for the L2 victim-bit directory."""

import pytest

from repro.cache.line import CacheLine
from repro.core.victim_bits import VictimBitDirectory


class TestObservation:
    def test_first_request_no_hint(self):
        directory = VictimBitDirectory(num_l1s=4)
        line = CacheLine()
        line.fill(1, now=0)
        assert directory.observe(line, src_id=0) is False

    def test_second_request_same_core_detects_contention(self):
        directory = VictimBitDirectory(num_l1s=4)
        line = CacheLine()
        line.fill(1, now=0)
        directory.observe(line, src_id=0)
        assert directory.observe(line, src_id=0) is True
        assert directory.contentions_detected == 1

    def test_requests_from_different_cores_independent(self):
        directory = VictimBitDirectory(num_l1s=4)
        line = CacheLine()
        line.fill(1, now=0)
        directory.observe(line, src_id=0)
        assert directory.observe(line, src_id=1) is False

    def test_l2_eviction_clears_history(self):
        directory = VictimBitDirectory(num_l1s=4)
        line = CacheLine()
        line.fill(1, now=0)
        directory.observe(line, src_id=0)
        line.fill(2, now=1)  # new generation resets victim bits
        assert directory.observe(line, src_id=0) is False

    def test_explicit_clear(self):
        directory = VictimBitDirectory(num_l1s=4)
        line = CacheLine()
        line.fill(1, now=0)
        directory.observe(line, src_id=0)
        directory.clear(line)
        assert line.victim_bits == 0

    def test_src_id_validated(self):
        directory = VictimBitDirectory(num_l1s=4)
        with pytest.raises(ValueError):
            directory.group(4)


class TestSharing:
    def test_share_factor_groups_cores(self):
        directory = VictimBitDirectory(num_l1s=16, share_factor=4)
        assert directory.group(0) == directory.group(3)
        assert directory.group(0) != directory.group(4)
        assert directory.bits_per_line == 4

    def test_shared_bit_causes_false_hints(self):
        # The paper's accuracy/overhead trade-off: cores sharing a bit see
        # each other's history as (false) contention.
        directory = VictimBitDirectory(num_l1s=16, share_factor=16)
        line = CacheLine()
        line.fill(1, now=0)
        directory.observe(line, src_id=0)
        assert directory.observe(line, src_id=9) is True

    def test_share_factor_must_divide(self):
        with pytest.raises(ValueError):
            VictimBitDirectory(num_l1s=16, share_factor=3)


class TestStorageOverhead:
    def test_paper_overhead_formula(self):
        # Section 4.3: 16 cores, 512-set 16-way L2 -> O_v = 16 KB.
        directory = VictimBitDirectory(num_l1s=16)
        bits = directory.storage_overhead_bits(num_sets=512, num_ways=16)
        assert bits == 16 * 512 * 16
        assert bits // 8 // 1024 == 16  # 16 KB

    def test_sharing_divides_overhead(self):
        full = VictimBitDirectory(16, 1).storage_overhead_bits(512, 16)
        shared = VictimBitDirectory(16, 4).storage_overhead_bits(512, 16)
        assert shared == full // 4
