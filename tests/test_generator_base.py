"""Unit tests for the generator framework (base helpers)."""

import pytest

from repro.trace.generators.base import (
    BenchmarkGenerator,
    LINE,
    RegionAllocator,
    TraceParams,
    alu,
    bar,
    load,
    smem,
    store,
    validate_workload_params,
)
from repro.trace.errors import SpecError
from repro.trace.trace import OP_ALU, OP_BAR, OP_LOAD, OP_SMEM, OP_STORE


class MiniGenerator(BenchmarkGenerator):
    name = "MINI"
    sensitivity = "insensitive"
    suite = "test"
    base_ctas = 8

    def __init__(self, params=TraceParams()):
        super().__init__(params)
        self.base = self.regions.region()

    def warp_program(self, cta_id, warp_id):
        return [load(self.stream_addr(self.base, cta_id, warp_id, 0, 1)), alu(1)]


class TestTraceParams:
    def test_scaled_rounding_and_floor(self):
        assert TraceParams(scale=0.5).scaled(96) == 48
        assert TraceParams(scale=0.01).scaled(96) == 8  # floor
        assert TraceParams(scale=2.0).scaled(96) == 192

    def test_frozen(self):
        with pytest.raises(Exception):
            TraceParams().scale = 2.0


class TestRegionAllocator:
    def test_regions_disjoint_and_aligned(self):
        alloc = RegionAllocator()
        a, b = alloc.region(), alloc.region()
        assert b - a == RegionAllocator.REGION_BYTES
        assert a % RegionAllocator.REGION_BYTES == 0
        assert a > 0  # region 0 reserved


class TestInstructionConstructors:
    def test_opcodes(self):
        assert alu(3) == (OP_ALU, 3)
        assert smem(2) == (OP_SMEM, 2)
        assert bar() == (OP_BAR, 0)
        assert load(1, 2)[0] == OP_LOAD
        assert store(1)[0] == OP_STORE
        assert load(1, 2)[1] == (1, 2)


class TestStreamAddr:
    def test_cta_warps_adjacent_within_iteration(self):
        gen = MiniGenerator()
        a0 = gen.stream_addr(gen.base, cta_id=0, warp_id=0, iteration=0, iters_per_warp=4)
        a1 = gen.stream_addr(gen.base, cta_id=0, warp_id=1, iteration=0, iters_per_warp=4)
        assert a1 - a0 == LINE

    def test_iterations_advance_by_cta_width(self):
        gen = MiniGenerator(TraceParams(warps_per_cta=8))
        a = gen.stream_addr(gen.base, 0, 0, 0, 4)
        b = gen.stream_addr(gen.base, 0, 0, 1, 4)
        assert b - a == 8 * LINE

    def test_cta_blocks_disjoint(self):
        gen = MiniGenerator(TraceParams(warps_per_cta=8))
        last_of_cta0 = gen.stream_addr(gen.base, 0, 7, 3, 4)
        first_of_cta1 = gen.stream_addr(gen.base, 1, 0, 0, 4)
        assert first_of_cta1 == last_of_cta0 + LINE


class TestSkewedIndex:
    def test_uniform_at_skew_one(self):
        import random

        rng = random.Random(0)
        samples = [BenchmarkGenerator.skewed_index(rng, 100, 1.0) for _ in range(5000)]
        assert min(samples) == 0
        assert max(samples) == 99
        assert 40 < sum(s < 50 for s in samples) / 50 < 60  # ~uniform

    def test_skew_concentrates_head(self):
        import random

        rng = random.Random(0)
        skewed = [BenchmarkGenerator.skewed_index(rng, 100, 5.0) for _ in range(5000)]
        head = sum(s < 10 for s in skewed) / len(skewed)
        assert head > 0.5

    def test_bounds(self):
        import random

        rng = random.Random(0)
        for _ in range(100):
            assert 0 <= BenchmarkGenerator.skewed_index(rng, 7, 3.0) < 7


class TestPerWarpRNG:
    def test_stable_across_instances(self):
        a = MiniGenerator().rng_for(3, 5).random()
        b = MiniGenerator().rng_for(3, 5).random()
        assert a == b

    def test_distinct_across_warps(self):
        gen = MiniGenerator()
        assert gen.rng_for(0, 0).random() != gen.rng_for(0, 1).random()

    def test_seed_changes_streams(self):
        a = MiniGenerator(TraceParams(seed=0)).rng_for(0, 0).random()
        b = MiniGenerator(TraceParams(seed=1)).rng_for(0, 0).random()
        assert a != b


class TestCentralValidation:
    """TraceParams routes through validate_workload_params — the single
    authority the scenario schema shares — so every generator rejects
    out-of-range knobs with the same typed SpecError."""

    def test_valid_params_pass(self):
        validate_workload_params(1.0, 0)
        validate_workload_params(0.05, 2**63 - 1, warps_per_cta=64)

    @pytest.mark.parametrize("scale", [0.0, -1.0, 1e9, float("nan"),
                                       float("inf"), "big", None, True])
    def test_bad_scale(self, scale):
        with pytest.raises(SpecError) as err:
            validate_workload_params(scale, 0)
        assert err.value.path == "params.scale"

    @pytest.mark.parametrize("seed", [-1, 2**63, 1.5, "0", None, False])
    def test_bad_seed(self, seed):
        with pytest.raises(SpecError) as err:
            validate_workload_params(1.0, seed)
        assert err.value.path == "params.seed"

    @pytest.mark.parametrize("wpc", [0, -4, 65, 2.0, True])
    def test_bad_warps_per_cta(self, wpc):
        with pytest.raises(SpecError) as err:
            validate_workload_params(1.0, 0, warps_per_cta=wpc)
        assert err.value.path == "params.warps_per_cta"

    def test_custom_path_prefix(self):
        with pytest.raises(SpecError) as err:
            validate_workload_params(-2.0, 0, path="$")
        assert err.value.path == "$.scale"

    def test_trace_params_validates_on_construction(self):
        with pytest.raises(SpecError, match="scale"):
            TraceParams(scale=0.0)
        with pytest.raises(SpecError, match="seed"):
            TraceParams(seed=-5)
        with pytest.raises(SpecError, match="warps_per_cta"):
            TraceParams(warps_per_cta=0)

    def test_generators_inherit_the_validation(self):
        # Any generator constructor — they all take TraceParams — now
        # rejects garbage centrally instead of silently accepting it.
        from repro.trace.suite import build_benchmark

        with pytest.raises(SpecError):
            build_benchmark("SD1", scale=-1.0)

    def test_spec_error_is_a_value_error(self):
        # Callers that caught ValueError before the refactor still work.
        assert issubclass(SpecError, ValueError)
        err = SpecError("a.b", "broken")
        assert err.path == "a.b"
        assert err.reason == "broken"
