"""Property-based tests for the management policies (PDP, G-Cache, DBP)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import Cache
from repro.cache.policies.base import FillContext
from repro.cache.policies.dead_block import DeadBlockPolicy
from repro.cache.policies.pdp import StaticPDPPolicy, optimal_pd
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.rrip import DRRIPPolicy, SRRIPPolicy

LINE = 128

access_seqs = st.lists(
    st.tuples(st.integers(min_value=0, max_value=23), st.booleans()),
    min_size=1,
    max_size=150,
)


def drive(cache, seq):
    for now, (line, is_write) in enumerate(seq):
        if not cache.lookup(line, now, is_write=is_write).hit and not is_write:
            cache.fill(line, now, FillContext(line))


class TestPDPProperties:
    @given(access_seqs, st.integers(min_value=1, max_value=40))
    @settings(max_examples=50, deadline=None)
    def test_pdc_bounded(self, seq, pd):
        pol = StaticPDPPolicy(pd=pd, counter_bits=3)
        cache = Cache("c", 1024, 2, LINE, LRUPolicy(), mgmt=pol)
        drive(cache, seq)
        for ways in cache.sets:
            for line in ways:
                assert 0 <= line.pd_counter <= pol.counter_max

    @given(access_seqs, st.integers(min_value=1, max_value=40))
    @settings(max_examples=50, deadline=None)
    def test_no_protected_victim(self, seq, pd):
        # A PDP cache never evicts a protected line while bypass is on:
        # every eviction's victim had pd_counter == 0 at selection time.
        # We verify the reachable end state instead: inserted lines exist
        # and the invariants of the cache hold.
        pol = StaticPDPPolicy(pd=pd)
        cache = Cache("c", 1024, 2, LINE, LRUPolicy(), mgmt=pol)
        drive(cache, seq)
        stats = cache.stats
        assert stats.fills + stats.bypasses <= stats.misses

    @given(
        st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=64),
        st.integers(min_value=1, max_value=300),
    )
    @settings(max_examples=100, deadline=None)
    def test_optimal_pd_in_range(self, rdd, extra):
        total = sum(rdd) + extra
        pd = optimal_pd(list(rdd), total, max_pd=96)
        assert 1 <= pd <= 96


class TestDRRIPInCache:
    @given(access_seqs)
    @settings(max_examples=40, deadline=None)
    def test_psel_stays_in_range(self, seq):
        pol = DRRIPPolicy(num_sets=8)
        cache = Cache("c", 8 * 2 * LINE, 2, LINE, pol)
        drive(cache, seq)
        assert 0 <= pol.psel <= pol.psel_max

    @given(access_seqs)
    @settings(max_examples=40, deadline=None)
    def test_rrpv_bounded(self, seq):
        pol = DRRIPPolicy(num_sets=8)
        cache = Cache("c", 8 * 2 * LINE, 2, LINE, pol)
        drive(cache, seq)
        for ways in cache.sets:
            for line in ways:
                assert 0 <= line.rrpv <= pol.max_rrpv


class TestDeadBlockProperties:
    @given(access_seqs)
    @settings(max_examples=50, deadline=None)
    def test_never_corrupts_cache(self, seq):
        cache = Cache("c", 1024, 2, LINE, LRUPolicy(), mgmt=DeadBlockPolicy())
        drive(cache, seq)
        resident = cache.resident_lines()
        assert len(resident) == len(set(resident))
        assert cache.stats.hits + cache.stats.misses == cache.stats.accesses

    @given(access_seqs)
    @settings(max_examples=50, deadline=None)
    def test_prediction_rate_bounded(self, seq):
        pol = DeadBlockPolicy(confidence=1)
        cache = Cache("c", 1024, 2, LINE, LRUPolicy(), mgmt=pol)
        drive(cache, seq)
        assert 0.0 <= pol.dead_prediction_rate <= 1.0
