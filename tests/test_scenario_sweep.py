"""Tests for the generative workload space and the scenario sweep."""

import pytest

from repro.runner import CampaignEngine, ResultCache
from repro.scenarios import (
    SPACE_AXES,
    generate_space,
    run_scenario_sweep,
    spec_digest,
    validate_spec,
)
from repro.scenarios.sweep import WorkloadOutcome

#: Small deterministic prefix reused by the determinism tests; scale
#: 0.25 shrinks each workload to 24 CTAs so two sweeps stay fast.
SMOKE = dict(specs=generate_space(limit=3), scale=0.25)


class TestGenerateSpace:
    def test_space_has_at_least_200_workloads(self):
        assert len(generate_space()) >= 200

    def test_every_spec_validates(self):
        for doc in generate_space():
            validate_spec(doc)

    def test_names_and_digests_unique(self):
        space = generate_space()
        names = [d["name"] for d in space]
        digests = [spec_digest(d) for d in space]
        assert len(set(names)) == len(space)
        assert len(set(digests)) == len(space)

    def test_axes_recorded_in_meta(self):
        for doc in generate_space():
            for axis, values in SPACE_AXES.items():
                assert doc["meta"][axis] in values

    def test_limit_is_a_prefix(self):
        assert generate_space(limit=5) == generate_space()[:5]

    def test_full_factorial_size(self):
        expected = 1
        for values in SPACE_AXES.values():
            expected *= len(values)
        assert len(generate_space()) == expected


class TestSweepDeterminism:
    def test_two_runs_bit_identical(self):
        a = run_scenario_sweep(**SMOKE)
        b = run_scenario_sweep(**SMOKE)
        assert a.manifest_json() == b.manifest_json()
        assert a.report_markdown() == b.report_markdown()

    def test_manifest_contains_no_wallclock(self):
        result = run_scenario_sweep(**SMOKE)
        manifest = result.manifest()
        assert manifest["format"] == "repro-scenario-sweep"
        for wl in manifest["workloads"]:
            assert set(wl) == {"name", "spec_digest", "meta", "designs"}
            for counters in wl["designs"].values():
                assert set(counters) == {"ipc", "instructions", "cycles",
                                         "l1"}

    def test_scale_enters_the_digest(self):
        a = run_scenario_sweep(**SMOKE)
        b = run_scenario_sweep(specs=SMOKE["specs"], scale=0.5)
        for wa, wb in zip(a.outcomes, b.outcomes):
            assert wa.digest != wb.digest

    def test_cache_serves_the_second_run(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_scenario_sweep(**SMOKE, engine=CampaignEngine(jobs=1, cache=cache))
        engine = CampaignEngine(jobs=1, cache=cache)
        result = run_scenario_sweep(**SMOKE, engine=engine)
        assert engine.counters.cache_hits == 2 * len(SMOKE["specs"])
        assert result.manifest_json()


class TestReport:
    def test_report_sections(self):
        report = run_scenario_sweep(**SMOKE).report_markdown()
        assert "# Scenario sweep: gc vs bs" in report
        assert "## Speedup by axis" in report
        assert "## Largest wins" in report
        assert "## Largest losses" in report

    def test_verdict_thresholds(self):
        def outcome(ipc):
            return WorkloadOutcome(
                name="w", digest="d", meta={},
                designs={"bs": {"ipc": 1.0}, "gc": {"ipc": ipc}})

        assert outcome(1.05).verdict() == "win"
        assert outcome(1.0).verdict() == "draw"
        assert outcome(0.9).verdict() == "loss"

    def test_counts_partition_the_space(self):
        result = run_scenario_sweep(**SMOKE)
        counts = result.counts()
        assert sum(counts.values()) == len(SMOKE["specs"])


class TestSweepConfiguration:
    def test_unknown_design_surfaces_early(self):
        with pytest.raises(ValueError, match="unknown designs"):
            run_scenario_sweep(specs=generate_space(limit=1),
                               designs=("bs", "warp-speed"), scale=0.25)
