"""Tests for the timeline time-series module."""

import pytest

from repro.sim.designs import make_design
from repro.sim.simulator import GPU
from repro.stats.timeline import Timeline, TimelinePoint

from conftest import alu, ld, make_kernel


def pt(cycle, instr, acc, hits, byp=0):
    return TimelinePoint(cycle, instr, acc, hits, byp)


class TestWindows:
    def test_rates_between_samples(self):
        tl = Timeline(interval=100)
        tl.record(pt(100, 50, 20, 10))
        tl.record(pt(200, 150, 40, 25))
        (w,) = tl.windows()
        assert w.ipc == pytest.approx(1.0)
        assert w.miss_rate == pytest.approx(1 - 15 / 20)

    def test_bypass_rate(self):
        tl = Timeline(interval=10)
        tl.record(pt(10, 1, 10, 0, byp=0))
        tl.record(pt(20, 2, 30, 0, byp=10))
        (w,) = tl.windows()
        assert w.bypass_rate == pytest.approx(0.5)

    def test_out_of_order_samples_dropped(self):
        tl = Timeline()
        tl.record(pt(100, 1, 1, 1))
        tl.record(pt(50, 2, 2, 2))
        assert len(tl) == 1

    def test_empty_window_rates(self):
        tl = Timeline()
        tl.record(pt(10, 0, 0, 0))
        tl.record(pt(20, 0, 0, 0))
        (w,) = tl.windows()
        assert w.ipc == 0.0
        assert w.miss_rate == 0.0

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            Timeline(interval=0)


class TestSparkline:
    def test_renders_glyphs(self):
        tl = Timeline()
        for i, miss in enumerate([10, 5, 1]):
            tl.record(pt(100 * (i + 1), 10 * (i + 1), 100 * (i + 1), 100 * (i + 1) - miss * (i + 1)))
        line = tl.sparkline("miss_rate")
        assert len(line) == 2
        assert all(c in "▁▂▃▄▅▆▇█" for c in line)

    def test_empty_timeline(self):
        assert Timeline().sparkline() == ""

    def test_width_capping(self):
        tl = Timeline()
        for i in range(200):
            tl.record(pt(10 * (i + 1), i + 1, i + 1, i))
        assert len(tl.sparkline("ipc", width=50)) <= 50


class TestCSV:
    def test_header_only_when_empty(self):
        assert Timeline().to_csv() == "start_cycle,end_cycle,ipc,miss_rate,bypass_rate"

    def test_rows_match_windows(self):
        tl = Timeline(interval=100)
        tl.record(pt(100, 50, 20, 10))
        tl.record(pt(200, 150, 40, 25))
        header, row = tl.to_csv().splitlines()
        assert row.startswith("100,200,1.000000,")


class TestSimulatorIntegration:
    def test_samples_collected_during_run(self, tiny_config):
        kernel = make_kernel(
            [[op for i in range(8) for op in (ld(i * 8), alu(2))]] * 2, ctas=6
        )
        tl = Timeline(interval=200)
        gpu = GPU(tiny_config, make_design("bs"), timeline=tl)
        result = gpu.run(kernel)
        assert len(tl) >= 2
        last = tl.points[-1]
        assert last.instructions <= result.instructions
        assert last.cycle <= result.cycles + tl.interval

    def test_final_partial_window_flushed(self, tiny_config):
        """The tail of the run must appear even off the sampling grid."""
        kernel = make_kernel(
            [[op for i in range(8) for op in (ld(i * 8), alu(2))]] * 2, ctas=6
        )
        tl = Timeline(interval=200)
        result = GPU(tiny_config, make_design("bs"), timeline=tl).run(kernel)
        last = tl.points[-1]
        assert last.cycle == result.cycles
        assert last.instructions == result.instructions
        # Summing window activity over the whole timeline reproduces the
        # end-of-run totals — nothing fell off the end.
        windows = tl.windows()
        total_instr = sum(w.ipc * (w.end_cycle - w.start_cycle) for w in windows)
        assert total_instr == pytest.approx(result.instructions)

    def test_interval_larger_than_run_yields_one_window(self, tiny_config):
        kernel = make_kernel([[ld(0), alu(1)]], ctas=1)
        tl = Timeline(interval=10_000_000)
        result = GPU(tiny_config, make_design("bs"), timeline=tl).run(kernel)
        (w,) = tl.windows()
        assert w.start_cycle == 0
        assert w.end_cycle == result.cycles
        assert w.ipc == pytest.approx(result.ipc)
