"""Unit tests for the cache line (tag entry) model."""

from repro.cache.line import CacheLine


class TestCacheLineInit:
    def test_starts_invalid(self):
        line = CacheLine()
        assert not line.valid
        assert line.tag == -1

    def test_starts_clean(self):
        line = CacheLine()
        assert not line.dirty
        assert line.use_count == 0
        assert line.victim_bits == 0


class TestFill:
    def test_fill_sets_tag_and_valid(self):
        line = CacheLine()
        line.fill(0x42, now=7)
        assert line.valid
        assert line.tag == 0x42
        assert line.fill_time == 7
        assert line.last_access == 7

    def test_fill_resets_generation_state(self):
        line = CacheLine()
        line.fill(1, now=0)
        line.use_count = 5
        line.dirty = True
        line.victim_bits = 0b1010
        line.fill(2, now=10)
        assert line.use_count == 0
        assert not line.dirty
        assert line.victim_bits == 0

    def test_fill_preserves_rrpv(self):
        # The replacement policy owns RRPV initialisation; fill() must not
        # clobber it (on_fill runs after fill()).
        line = CacheLine()
        line.rrpv = 6
        line.fill(1, now=0)
        assert line.rrpv == 6


class TestReset:
    def test_reset_clears_everything(self):
        line = CacheLine()
        line.fill(9, now=3)
        line.rrpv = 4
        line.pd_counter = 2
        line.reset()
        assert not line.valid
        assert line.tag == -1
        assert line.rrpv == 0
        assert line.pd_counter == 0
        assert line.victim_bits == 0
