"""Behavioural tests for G-Cache's end-to-end dynamics.

These recreate, at unit scale, the scenarios that drove the design (see
docs/workloads.md): the protection-horizon ordering between LRU, SRRIP
and G-Cache, the bootstrap cascade, and the Figure-7 walkthrough.
"""

import random

import pytest

from repro.cache.cache import Cache
from repro.cache.policies.base import FillContext
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.rrip import SRRIPPolicy
from repro.core.gcache import GCacheConfig, GCachePolicy
from repro.core.victim_bits import VictimBitDirectory

LINE = 128


def make_hierarchy(design: str, l1_kb: int = 32):
    if design == "gc":
        l1 = Cache("L1", l1_kb * 1024, 4, LINE, SRRIPPolicy(3),
                   mgmt=GCachePolicy(GCacheConfig()))
    elif design == "srrip":
        l1 = Cache("L1", l1_kb * 1024, 4, LINE, SRRIPPolicy(3))
    else:
        l1 = Cache("L1", l1_kb * 1024, 4, LINE, LRUPolicy())
    l2 = Cache("L2", 1024 * 1024, 16, LINE, LRUPolicy(),
               write_back=True, write_allocate=True)
    directory = VictimBitDirectory(1)
    return l1, l2, directory, design == "gc"


def run_mix(design: str, accesses):
    """Drive (line) accesses through an L1+L2 pair with victim hints."""
    l1, l2, directory, hints = make_hierarchy(design)
    for now, line in enumerate(accesses):
        if l1.lookup(line, now).hit:
            continue
        res = l2.lookup(line, now)
        if res.hit:
            l2_line = res.line
        else:
            fill = l2.fill(line, now, FillContext(line))
            l2_line = l2.sets[fill.set_index][fill.way]
        hint = directory.observe(l2_line, 0) if hints else False
        l1.fill(line, now, FillContext(line, victim_hint=hint))
    return l1.stats


def scan_plus_stream(footprint: int, n: int = 40000, stream_frac: float = 0.3,
                     warps: int = 48, seed: int = 0):
    """The calibration workload: 48 staggered scans + a stream."""
    rng = random.Random(seed)
    cursors = [(w * 41) % footprint for w in range(warps)]
    stream_line = 10 ** 6
    w = 0
    out = []
    for _ in range(n):
        if rng.random() < stream_frac:
            out.append(stream_line)
            stream_line += 1
        else:
            w = (w + 1) % warps
            out.append(2 * 10 ** 6 + cursors[w])
            cursors[w] = (cursors[w] + 1) % footprint
    return out


class TestProtectionHorizonOrdering:
    """On the LRU-cliff scan, the miss ordering must be GC < SRRIP < LRU."""

    @pytest.fixture(scope="class")
    def results(self):
        accesses = scan_plus_stream(footprint=320)
        return {d: run_mix(d, accesses) for d in ("lru", "srrip", "gc")}

    def test_lru_falls_off_the_cliff(self, results):
        assert results["lru"].miss_rate > 0.75

    def test_srrip_partially_recovers(self, results):
        assert results["srrip"].miss_rate < results["lru"].miss_rate

    def test_gcache_beats_srrip(self, results):
        assert results["gc"].miss_rate < results["srrip"].miss_rate - 0.05

    def test_gcache_bypasses_meaningfully(self, results):
        assert results["gc"].bypass_ratio > 0.05


class TestBootstrapCascade:
    def test_miss_rate_declines_over_time(self):
        accesses = scan_plus_stream(footprint=320, n=30000)
        l1, l2, directory, _ = make_hierarchy("gc")
        half = len(accesses) // 2
        stats_at_half = None
        for now, line in enumerate(accesses):
            if now == half:
                stats_at_half = (l1.stats.accesses, l1.stats.hits)
            if l1.lookup(line, now).hit:
                continue
            res = l2.lookup(line, now)
            if res.hit:
                l2_line = res.line
            else:
                fill = l2.fill(line, now, FillContext(line))
                l2_line = l2.sets[fill.set_index][fill.way]
            hint = directory.observe(l2_line, 0)
            l1.fill(line, now, FillContext(line, victim_hint=hint))
        acc0, hit0 = stats_at_half
        first_half_miss = 1 - hit0 / acc0
        second_half_miss = 1 - (l1.stats.hits - hit0) / (l1.stats.accesses - acc0)
        assert second_half_miss < first_half_miss


class TestFigure7Walkthrough:
    """The paper's worked example on a 2-way set, step by step."""

    def test_example_sequence(self):
        policy = GCachePolicy(GCacheConfig(shutdown_interval=0))
        l1 = Cache("L1", 2 * LINE, 2, LINE, SRRIPPolicy(3), mgmt=policy)
        l2 = Cache("L2", 64 * LINE, 4, LINE, LRUPolicy(),
                   write_back=True, write_allocate=True)
        directory = VictimBitDirectory(1)

        def access(line, now):
            if l1.lookup(line, now).hit:
                return "hit"
            res = l2.lookup(line, now)
            if res.hit:
                l2_line = res.line
            else:
                fill = l2.fill(line, now, FillContext(line))
                l2_line = l2.sets[fill.set_index][fill.way]
            hint = directory.observe(l2_line, 0)
            result = l1.fill(line, now, FillContext(line, victim_hint=hint))
            return "bypass" if result.bypassed else "fill"

        a1, a2, b1, b2 = 0, 4, 1, 5
        # Warm-up: a1 and a2 enter; streaming b1 evicts one of them.
        assert access(a1, 0) == "fill"
        assert access(a2, 1) == "fill"
        assert access(b1, 2) == "fill"
        # Second a1 miss: the L2 detects contention, arms the switch,
        # and the block is re-inserted hot.
        assert access(a1, 3) == "fill"
        assert policy.switches.is_on(0)
        assert access(a1, 4) == "hit"
        # Hot set + armed switch: the next streaming block is bypassed.
        access(b1, 5)
        assert access(b2, 6) == "bypass"
        # The protected hot line keeps hitting.
        assert access(a1, 7) == "hit"
