"""Unit tests for the SIMT core (issue, barriers, CTA residency)."""

import pytest

from repro.gpu.core import SIMTCore
from repro.sim.designs import make_design
from repro.sim.memory_system import MemorySystem
from repro.trace.trace import CTATrace

from conftest import alu, bar, ld, smem, st


def make_core(tiny_config, core_id=0):
    mem = MemorySystem(tiny_config, make_design("bs"))
    return SIMTCore(core_id, tiny_config, mem), mem


def drain(core, limit=100000):
    """Run the core to completion; returns the finish time."""
    now = 0
    while True:
        nxt = core.step(now)
        if nxt is None:
            if core.drained():
                return now
            raise AssertionError("core idle but not drained")
        assert nxt > now, "time must advance"
        now = nxt
        if now > limit:
            raise AssertionError("runaway simulation")


class TestResourceChecks:
    def test_accepts_within_limits(self, tiny_config):
        core, _ = make_core(tiny_config)
        cta = CTATrace(warps=[[alu(1)]])
        assert core.can_accept(cta, scratchpad=0)

    def test_rejects_when_cta_slots_full(self, tiny_config):
        core, _ = make_core(tiny_config)
        cta = CTATrace(warps=[[alu(10)]])
        for _ in range(tiny_config.max_ctas_per_core):
            core.launch(cta, 0, now=0)
        assert not core.can_accept(cta, scratchpad=0)

    def test_rejects_on_warp_limit(self, tiny_config):
        core, _ = make_core(tiny_config)
        big = CTATrace(warps=[[alu(10)]] * tiny_config.max_warps_per_core)
        core.launch(big, 0, now=0)
        assert not core.can_accept(CTATrace(warps=[[alu(1)]]), scratchpad=0)

    def test_rejects_on_scratchpad(self, tiny_config):
        core, _ = make_core(tiny_config)
        cta = CTATrace(warps=[[alu(1)]])
        assert not core.can_accept(cta, scratchpad=tiny_config.scratchpad_bytes + 1)

    def test_launch_past_limit_raises(self, tiny_config):
        core, _ = make_core(tiny_config)
        cta = CTATrace(warps=[[alu(10)]])
        for _ in range(tiny_config.max_ctas_per_core):
            core.launch(cta, 0, now=0)
        with pytest.raises(RuntimeError):
            core.launch(cta, 0, now=0)


class TestIssue:
    def test_alu_group_occupies_issue_slots(self, tiny_config):
        core, _ = make_core(tiny_config)
        core.launch(CTATrace(warps=[[alu(5)]]), 0, now=0)
        finish = core.warps[0], core.step(1)  # issues the group
        warp, start = finish
        # Issuing the 5-slot group retires the single-instruction program,
        # so the fused wakeup reports the core drained (None) instead of
        # scheduling a no-op round at port-free time; the group still
        # occupied its slots plus the ALU latency.
        assert start is None
        assert core.drained()
        assert warp.ready_time == 1 + 5 + tiny_config.alu_latency
        assert core.finish_time == 1 + 5 + tiny_config.alu_latency
        assert core.instructions == 5

    def test_load_blocks_warp_until_data(self, tiny_config):
        core, _ = make_core(tiny_config)
        core.launch(CTATrace(warps=[[ld(0), alu(1)]]), 0, now=0)
        core.step(1)  # issue load
        warp = core.warps[0]
        assert warp.ready_time > 1 + tiny_config.l1_hit_latency // 2

    def test_store_does_not_block(self, tiny_config):
        core, _ = make_core(tiny_config)
        core.launch(CTATrace(warps=[[st(0), alu(1)]]), 0, now=0)
        core.step(1)
        warp = core.warps[0]
        assert warp.ready_time <= 2

    def test_instruction_count_matches_trace(self, tiny_config):
        core, _ = make_core(tiny_config)
        program = [alu(3), ld(0), st(1), smem(2)]
        core.launch(CTATrace(warps=[list(program)]), 0, now=0)
        drain(core)
        assert core.instructions == 3 + 1 + 1 + 2

    def test_round_robin_across_warps(self, tiny_config):
        core, _ = make_core(tiny_config)
        core.launch(CTATrace(warps=[[alu(1)], [alu(1)]]), 0, now=0)
        core.step(1)
        core.step(2)
        assert all(w.pc == 1 for w in core.warps)

    def test_fused_wakeup_replays_empty_pick_for_gto(self, tiny_config):
        # When no warp is ready at next_issue, step() returns the earliest
        # ready time directly instead of letting the engine wake it for an
        # empty round.  Stateful schedulers must still observe that empty
        # pick: GTO drops its greedy warp when it stalls, so after both
        # warps stall on the same line (MSHR-merged, same completion) the
        # next pick must go to the OLDEST warp, not the stale greedy.
        import dataclasses

        cfg = dataclasses.replace(tiny_config, warp_scheduler="gto")
        mem = MemorySystem(cfg, make_design("bs"))
        core = SIMTCore(0, cfg, mem)
        core.launch(
            CTATrace(warps=[[ld(0), alu(1)], [ld(64), alu(1)]]), 0, now=0
        )
        assert core.step(0) == 1           # launched warps ready at 1
        assert core.step(1) == 2           # w0 (oldest) issues its load
        assert core.step(2) > 3            # w1 issues; both stalled at 3
        # The fused return skipped the engine's empty round at cycle 3 —
        # the replayed pick must still have dropped the greedy warp (w1),
        # exactly as the empty round would have.
        assert core.scheduler._greedy is None


class TestBarriers:
    def test_barrier_parks_until_all_arrive(self, tiny_config):
        core, _ = make_core(tiny_config)
        program = [alu(1), bar(), alu(1)]
        core.launch(CTATrace(warps=[list(program), list(program)]), 0, now=0)
        finish = drain(core)
        assert core.instructions == 6
        assert core.drained()

    def test_lone_warp_passes_barrier(self, tiny_config):
        core, _ = make_core(tiny_config)
        core.launch(CTATrace(warps=[[bar(), alu(1)]]), 0, now=0)
        drain(core)
        assert core.drained()

    def test_trailing_barrier_is_noop(self, tiny_config):
        core, _ = make_core(tiny_config)
        core.launch(CTATrace(warps=[[alu(1), bar()], [alu(2), bar()]]), 0, now=0)
        drain(core)
        assert core.drained()

    def test_uneven_warp_lengths_release_barrier(self, tiny_config):
        # One warp finishes before its sibling reaches the barrier; the
        # arrival count must compare against *live* warps only.
        core, _ = make_core(tiny_config)
        short = [alu(1)]
        long = [alu(1), bar(), alu(1)]
        core.launch(CTATrace(warps=[short, long]), 0, now=0)
        drain(core)
        assert core.drained()


class TestCTACompletion:
    def test_resources_freed_on_completion(self, tiny_config):
        core, _ = make_core(tiny_config)
        core.launch(CTATrace(warps=[[alu(1)]]), 1024, now=0)
        assert core.scratchpad_used == 1024
        drain(core)
        assert core.scratchpad_used == 0
        assert core.resident_ctas == 0

    def test_completed_cta_flag(self, tiny_config):
        core, _ = make_core(tiny_config)
        core.launch(CTATrace(warps=[[alu(1)]]), 0, now=0)
        now = 0
        while not core.drained():
            nxt = core.step(now)
            if core.completed_cta:
                break
            now = nxt
        assert core.completed_cta
