"""Unit tests for the replacement-policy family."""

import pytest

from repro.cache.line import CacheLine
from repro.cache.replacement import (
    BRRIPPolicy,
    BeladyPolicy,
    DRRIPPolicy,
    FIFOPolicy,
    LRUPolicy,
    MRUPolicy,
    NEVER,
    NRUPolicy,
    RandomPolicy,
    SRRIPPolicy,
    make_replacement,
)


def make_ways(n=4):
    ways = [CacheLine() for _ in range(n)]
    for i, line in enumerate(ways):
        line.fill(i, now=0)
    return ways


class TestLRU:
    def test_victim_is_least_recent(self):
        pol = LRUPolicy()
        ways = make_ways()
        for i in range(4):
            pol.on_fill(ways, i, now=i)
        pol.on_hit(ways, 0, now=10)  # refresh way 0
        assert pol.select_victim(ways, now=11) == 1

    def test_hits_update_recency(self):
        pol = LRUPolicy()
        ways = make_ways(2)
        pol.on_fill(ways, 0, now=0)
        pol.on_fill(ways, 1, now=1)
        pol.on_hit(ways, 0, now=2)
        assert pol.select_victim(ways, now=3) == 1

    def test_fill_order_without_hits(self):
        pol = LRUPolicy()
        ways = make_ways(3)
        for i in range(3):
            pol.on_fill(ways, i, now=i)
        assert pol.select_victim(ways, now=5) == 0


class TestMRUAndFIFO:
    def test_mru_evicts_most_recent(self):
        pol = MRUPolicy()
        ways = make_ways(3)
        for i in range(3):
            pol.on_fill(ways, i, now=i)
        pol.on_hit(ways, 0, now=9)
        assert pol.select_victim(ways, now=10) == 0

    def test_fifo_ignores_hits(self):
        pol = FIFOPolicy()
        ways = make_ways(2)
        pol.on_fill(ways, 0, now=0)
        pol.on_fill(ways, 1, now=1)
        pol.on_hit(ways, 0, now=5)  # must not rescue way 0
        assert pol.select_victim(ways, now=6) == 0


class TestSRRIP:
    def test_insertion_at_long_interval(self):
        pol = SRRIPPolicy(bits=3)
        ways = make_ways(2)
        pol.on_fill(ways, 0, now=0)
        assert ways[0].rrpv == 6  # max(7) - 1

    def test_hit_promotes_to_zero(self):
        pol = SRRIPPolicy(bits=3)
        ways = make_ways(2)
        pol.on_fill(ways, 0, now=0)
        pol.on_hit(ways, 0, now=1)
        assert ways[0].rrpv == 0

    def test_victim_prefers_max_rrpv(self):
        pol = SRRIPPolicy(bits=3)
        ways = make_ways(3)
        ways[0].rrpv, ways[1].rrpv, ways[2].rrpv = 2, 7, 5
        assert pol.select_victim(ways, now=0) == 1

    def test_victim_ages_until_one_reaches_max(self):
        pol = SRRIPPolicy(bits=3)
        ways = make_ways(2)
        ways[0].rrpv, ways[1].rrpv = 3, 5
        assert pol.select_victim(ways, now=0) == 1
        # Aging must have advanced both lines by the same amount.
        assert ways[0].rrpv == 5
        assert ways[1].rrpv == 7

    def test_tie_breaks_to_lowest_way(self):
        pol = SRRIPPolicy(bits=3)
        ways = make_ways(3)
        for w in ways:
            w.rrpv = 7
        assert pol.select_victim(ways, now=0) == 0

    def test_width_validation(self):
        with pytest.raises(ValueError):
            SRRIPPolicy(bits=0)

    def test_insertion_rrpv_validation(self):
        with pytest.raises(ValueError):
            SRRIPPolicy(bits=2, insertion_rrpv=9)

    def test_custom_insertion(self):
        pol = SRRIPPolicy(bits=3, insertion_rrpv=7)
        ways = make_ways(1)
        pol.on_fill(ways, 0, now=0)
        assert ways[0].rrpv == 7


class TestBRRIP:
    def test_mostly_inserts_at_max(self):
        pol = BRRIPPolicy(bits=3, epsilon=0.0)
        assert all(pol.fill_rrpv() == 7 for _ in range(20))

    def test_epsilon_one_inserts_long(self):
        pol = BRRIPPolicy(bits=3, epsilon=1.0)
        assert all(pol.fill_rrpv() == 6 for _ in range(20))

    def test_deterministic_given_seed(self):
        a = [BRRIPPolicy(seed=7).fill_rrpv() for _ in range(50)]
        b = [BRRIPPolicy(seed=7).fill_rrpv() for _ in range(50)]
        assert a == b

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            BRRIPPolicy(epsilon=1.5)


class TestDRRIP:
    def test_leader_sets_disjoint(self):
        pol = DRRIPPolicy(num_sets=64)
        assert not (pol.srrip_leaders & pol.brrip_leaders)

    def test_psel_moves_on_leader_misses(self):
        pol = DRRIPPolicy(num_sets=64)
        start = pol.psel
        leader = next(iter(pol.srrip_leaders))
        pol.record_miss(leader)
        assert pol.psel == start + 1
        brrip_leader = next(iter(pol.brrip_leaders))
        pol.record_miss(brrip_leader)
        pol.record_miss(brrip_leader)
        assert pol.psel == start - 1

    def test_follower_miss_does_not_move_psel(self):
        pol = DRRIPPolicy(num_sets=64)
        start = pol.psel
        follower = next(
            s for s in range(64)
            if s not in pol.srrip_leaders and s not in pol.brrip_leaders
        )
        pol.record_miss(follower)
        assert pol.psel == start

    def test_requires_enough_sets(self):
        with pytest.raises(ValueError):
            DRRIPPolicy(num_sets=4, dueling_sets=4)

    def test_insertion_uses_srrip_in_srrip_leader(self):
        pol = DRRIPPolicy(num_sets=64)
        ways = make_ways(1)
        pol.bind_set(next(iter(pol.srrip_leaders)))
        pol.on_fill(ways, 0, now=0)
        assert ways[0].rrpv == 6


class TestNRU:
    def test_is_one_bit_rrip(self):
        pol = NRUPolicy()
        assert pol.max_rrpv == 1

    def test_insert_referenced(self):
        pol = NRUPolicy()
        ways = make_ways(2)
        pol.on_fill(ways, 0, now=0)
        assert ways[0].rrpv == 0

    def test_victim_clears_bits_when_all_referenced(self):
        pol = NRUPolicy()
        ways = make_ways(2)
        ways[0].rrpv = ways[1].rrpv = 0
        victim = pol.select_victim(ways, now=0)
        assert victim == 0
        assert ways[1].rrpv == 1


class TestRandom:
    def test_deterministic_with_seed(self):
        ways = make_ways(4)
        a = [RandomPolicy(seed=3).select_victim(ways, 0) for _ in range(1)]
        b = [RandomPolicy(seed=3).select_victim(ways, 0) for _ in range(1)]
        assert a == b

    def test_victim_in_range(self):
        pol = RandomPolicy(seed=0)
        ways = make_ways(4)
        for _ in range(50):
            assert 0 <= pol.select_victim(ways, 0) < 4


class TestBelady:
    def test_evicts_furthest_next_use(self):
        pol = BeladyPolicy()
        ways = make_ways(3)
        for i, nxt in enumerate([10, 100, 50]):
            pol.next_use_hint = nxt
            pol.on_fill(ways, i, now=0)
        assert pol.select_victim(ways, now=0) == 1

    def test_never_used_is_first_victim(self):
        pol = BeladyPolicy()
        ways = make_ways(2)
        pol.next_use_hint = 5
        pol.on_fill(ways, 0, now=0)
        pol.next_use_hint = NEVER
        pol.on_fill(ways, 1, now=0)
        assert pol.select_victim(ways, now=0) == 1


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["lru", "mru", "fifo", "nru", "random", "srrip", "brrip", "opt"]
    )
    def test_make_replacement(self, name):
        assert make_replacement(name).name in (name, "opt")

    def test_drrip_needs_sets(self):
        pol = make_replacement("drrip", num_sets=64)
        assert pol.name == "drrip"

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown replacement"):
            make_replacement("clock")
