"""Smoke tests: every example script runs end-to-end at tiny scale.

Examples are the documentation users actually execute; these tests keep
them green against API changes.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_bypass_anatomy(self):
        out = run_example("bypass_anatomy.py")
        assert "BYPASSED" in out
        assert "contention" in out

    def test_quickstart(self):
        out = run_example("quickstart.py", "--scale", "0.05", "--benchmark", "SD1")
        assert "speedup over baseline" in out
        assert "L1 miss rate" in out

    def test_custom_workload(self):
        out = run_example("custom_workload.py", "--scale", "0.1", "--table-lines", "64")
        assert "HIST" in out
        assert "GC" in out

    def test_convergence_watch(self):
        out = run_example("convergence_watch.py", "--benchmark", "SD1", "--scale", "0.05")
        assert "miss rate" in out

    def test_policy_comparison(self):
        out = run_example("policy_comparison.py", "--benchmark", "SD1", "--scale", "0.05")
        assert "SPDP-B" in out
        assert "design" in out

    def test_design_space(self):
        out = run_example("design_space.py", "--benchmark", "SD1", "--scale", "0.05")
        assert "ipc sweep" in out
        assert "storage overhead" in out
