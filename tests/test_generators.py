"""Tests for the synthetic benchmark generators (Table 1 suite)."""

import pytest

from repro.trace.generators.base import RegionAllocator, TraceParams
from repro.trace.io import dumps_trace
from repro.trace.suite import (
    ALL_BENCHMARKS,
    BENCHMARKS,
    CACHE_INSENSITIVE,
    CACHE_SENSITIVE,
    GENERATORS,
    MODERATELY_SENSITIVE,
    build_benchmark,
    sensitivity_of,
)
from repro.trace.trace import OP_ATOM, OP_LOAD, OP_SMEM, OP_STORE

SMALL = dict(scale=0.1, seed=0)


class TestSuiteRegistry:
    def test_all_seventeen_benchmarks(self):
        assert len(ALL_BENCHMARKS) == 17

    def test_groups_partition_the_suite(self):
        combined = CACHE_SENSITIVE + MODERATELY_SENSITIVE + CACHE_INSENSITIVE
        assert sorted(combined) == sorted(ALL_BENCHMARKS)
        assert len(CACHE_SENSITIVE) == 8
        assert len(MODERATELY_SENSITIVE) == 4
        assert len(CACHE_INSENSITIVE) == 5

    def test_sensitivity_lookup(self):
        assert sensitivity_of("BFS") == "sensitive"
        assert sensitivity_of("nw") == "moderate"
        assert sensitivity_of("FWT") == "insensitive"

    def test_class_attributes_match_groups(self):
        for name, cls in GENERATORS.items():
            expected = (
                "sensitive" if name in CACHE_SENSITIVE
                else "moderate" if name in MODERATELY_SENSITIVE
                else "insensitive"
            )
            assert cls.sensitivity == expected, name

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            build_benchmark("QUAKE")


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
class TestEveryGenerator:
    def test_builds_valid_trace(self, name):
        trace = build_benchmark(name, **SMALL)
        trace.validate()  # raises on malformed traces
        assert trace.name == name
        assert trace.num_ctas >= 8

    def test_deterministic(self, name):
        a = build_benchmark(name, **SMALL)
        b = build_benchmark(name, **SMALL)
        assert a.ctas[0].warps[0] == b.ctas[0].warps[0]
        assert a.instruction_count() == b.instruction_count()

    def test_seed_changes_random_patterns(self, name):
        a = build_benchmark(name, scale=0.1, seed=0)
        b = build_benchmark(name, scale=0.1, seed=99)
        # Structure is fixed; only irregular address choices may differ.
        assert a.instruction_count() == b.instruction_count()

    def test_has_memory_traffic(self, name):
        trace = build_benchmark(name, **SMALL)
        assert trace.memory_access_count() > 0

    def test_metadata(self, name):
        trace = build_benchmark(name, **SMALL)
        assert trace.meta["sensitivity"] in ("sensitive", "moderate", "insensitive")
        assert trace.meta["suite"]

    def test_scale_controls_volume(self, name):
        small = build_benchmark(name, scale=0.1)
        large = build_benchmark(name, scale=0.3)
        assert large.num_ctas > small.num_ctas


class TestRegionDisjointness:
    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_loads_fit_named_regions(self, name):
        # Every address must fall inside an allocated 1 GiB region: a
        # wild address would silently alias another data structure.
        trace = build_benchmark(name, **SMALL)
        gen = GENERATORS[name](TraceParams(scale=0.1))
        regions_used = gen.regions._next
        hi = regions_used * RegionAllocator.REGION_BYTES
        for cta in trace.ctas[:4]:
            for warp in cta.warps:
                for op, arg in warp:
                    if op in (OP_LOAD, OP_STORE, OP_ATOM):
                        for address in arg:
                            assert RegionAllocator.REGION_BYTES <= address < hi


class TestPatternShapes:
    def test_spmv_mixes_stream_and_gather(self):
        trace = build_benchmark("SPMV", **SMALL)
        warp = trace.ctas[0].warps[0]
        lane_counts = {len(arg) for op, arg in warp if op == OP_LOAD}
        assert 1 in lane_counts          # coalesced matrix stream
        assert any(c > 1 for c in lane_counts)  # divergent gathers

    def test_sd1_is_pure_streaming(self):
        trace = build_benchmark("SD1", **SMALL)
        seen = set()
        for warp in trace.iter_warp_programs():
            for op, arg in warp:
                if op == OP_LOAD:
                    assert arg[0] not in seen  # never re-read
                    seen.add(arg[0])

    def test_kmn_scans_shared_centroids(self):
        trace = build_benchmark("KMN", **SMALL)
        def cta_loads(cta):
            return {
                a
                for warp in cta.warps
                for op, arg in warp
                if op == OP_LOAD
                for a in arg
            }

        w0 = cta_loads(trace.ctas[0])
        w1 = cta_loads(trace.ctas[1])
        assert w0 & w1  # centroid lines shared across CTAs

    def test_pvc_uses_atomics(self):
        trace = build_benchmark("PVC", **SMALL)
        ops = {op for warp in trace.iter_warp_programs() for op, _ in warp}
        assert OP_ATOM in ops

    def test_bp_uses_scratchpad(self):
        trace = build_benchmark("BP", **SMALL)
        ops = {op for warp in trace.iter_warp_programs() for op, _ in warp}
        assert OP_SMEM in ops
        assert trace.scratchpad_per_cta > 0

    def test_nw_has_low_parallelism(self):
        nw = build_benchmark("NW", scale=1.0)
        bfs = build_benchmark("BFS", scale=1.0)
        assert nw.num_ctas < bfs.num_ctas

    def test_fwt_reuses_within_warp_only(self):
        trace = build_benchmark("FWT", **SMALL)
        for warp in list(trace.iter_warp_programs())[:8]:
            loads = [arg[0] for op, arg in warp if op == OP_LOAD]
            stores = [arg[0] for op, arg in warp if op == OP_STORE]
            assert set(stores) <= set(loads)


@pytest.mark.parametrize("name", BENCHMARKS)
class TestGeneratorInvariants:
    """Whole-trace invariants for all 17 generators — the same contract
    the scenario property harness enforces on primitives, pinned here on
    the hand-written side of the differential."""

    def test_full_trace_deterministic(self, name):
        # Byte-level equality over the *entire* serialized trace, not
        # just the first warp: address arithmetic in later CTAs must be
        # as reproducible as in CTA 0.
        a = dumps_trace(build_benchmark(name, **SMALL))
        b = dumps_trace(build_benchmark(name, **SMALL))
        assert a == b

    def test_instruction_count_monotone_in_scale(self, name):
        counts = [
            build_benchmark(name, scale=s).instruction_count()
            for s in (0.1, 0.2, 0.4)
        ]
        assert counts == sorted(counts)
        assert counts[0] < counts[-1]

    def test_all_memory_ops_region_bound_and_aligned(self, name):
        # Stores and atomics too (TestRegionDisjointness samples loads
        # on a CTA prefix; this sweeps every op of every warp).
        trace = build_benchmark(name, **SMALL)
        gen = GENERATORS[name](TraceParams(scale=0.1))
        hi = gen.regions._next * RegionAllocator.REGION_BYTES
        for cta in trace.ctas:
            for warp in cta.warps:
                for op, arg in warp:
                    if op in (OP_LOAD, OP_STORE, OP_ATOM):
                        for address in arg:
                            assert address % 128 == 0
                            assert RegionAllocator.REGION_BYTES <= address < hi

    def test_warp_count_uniform(self, name):
        trace = build_benchmark(name, **SMALL)
        widths = {len(cta.warps) for cta in trace.ctas}
        assert widths == {8}
