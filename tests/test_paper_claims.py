"""Qualitative paper-claim tests at reduced scale.

The full shape checks run in benchmarks/ at experiment scale; these are
the subset robust enough to assert at scale 0.25 in the unit suite, so a
regression in the policy or the workloads is caught by `pytest tests/`
without a 20-minute campaign.
"""

import pytest

from repro.sim.config import GPUConfig
from repro.sim.designs import make_design
from repro.sim.simulator import simulate
from repro.stats.report import geomean
from repro.trace.suite import build_benchmark

SCALE = 0.25
SENSITIVE_SAMPLE = ["SSC", "SYRK", "KMN"]
INSENSITIVE_SAMPLE = ["SD1", "BP", "FWT"]


@pytest.fixture(scope="module")
def runs():
    config = GPUConfig()
    out = {}
    for name in SENSITIVE_SAMPLE + INSENSITIVE_SAMPLE:
        trace = build_benchmark(name, scale=SCALE)
        out[name] = {
            key: simulate(trace, config, make_design(key))
            for key in ("bs", "gc")
        }
    return out


class TestCoreClaims:
    def test_gcache_speeds_up_sensitive_group(self, runs):
        g = geomean(
            runs[b]["gc"].speedup_over(runs[b]["bs"]) for b in SENSITIVE_SAMPLE
        )
        assert g > 1.01

    def test_gcache_cuts_sensitive_misses(self, runs):
        for bench in SENSITIVE_SAMPLE:
            assert (
                runs[bench]["gc"].l1.miss_rate
                < runs[bench]["bs"].l1.miss_rate + 0.01
            ), bench

    def test_gcache_neutral_on_insensitive(self, runs):
        for bench in INSENSITIVE_SAMPLE:
            speedup = runs[bench]["gc"].speedup_over(runs[bench]["bs"])
            assert speedup == pytest.approx(1.0, abs=0.02), bench

    def test_gcache_bypasses_on_sensitive_only(self, runs):
        active = sum(
            1 for b in SENSITIVE_SAMPLE if runs[b]["gc"].l1.bypass_ratio > 0.02
        )
        assert active >= 2
        for bench in ("SD1", "BP", "FWT"):
            assert runs[bench]["gc"].l1.bypass_ratio < 0.02, bench

    def test_contention_detected_only_where_it_exists(self, runs):
        for bench in SENSITIVE_SAMPLE:
            assert runs[bench]["gc"].extras["contentions_detected"] > 0, bench
        assert runs["SD1"]["gc"].extras["contentions_detected"] == 0

    def test_victim_bits_storage_matches_paper(self):
        # Section 4.3's 16 KB headline, via the overhead module.
        from repro.core.overhead import gcache_overhead

        assert round(gcache_overhead(GPUConfig()).kib) == 16


class TestSeedRobustness:
    """The qualitative result must not be an artifact of one RNG seed."""

    @pytest.mark.parametrize("seed", [1, 7])
    def test_gcache_wins_on_ssc_for_other_seeds(self, seed):
        config = GPUConfig()
        trace = build_benchmark("SSC", scale=SCALE, seed=seed)
        base = simulate(trace, config, make_design("bs"))
        gc = simulate(trace, config, make_design("gc"))
        assert gc.speedup_over(base) > 1.0
        assert gc.l1.miss_rate < base.l1.miss_rate
