"""Unit and integration tests for the fault injector and engine recovery.

Covers the contracts the chaos layer builds on:

* fault decisions are pure functions of the plan (stable across calls
  and processes) and honor the per-task fault cap,
* a transiently failing task retries with bounded, deterministic
  backoff and converges to the fault-free payload,
* a task that exhausts its retry budget surfaces a
  :class:`CampaignTaskError` naming the task and carrying the full
  attempt history — never a bare exception out of the pool,
* ``keep_going`` records the failure, fills the payload slot with
  ``FAILED`` and completes the rest of the campaign,
* pool-mode recovery: worker crashes (``os._exit``) rebuild the pool;
  hung workers are reclaimed by ``task_timeout``; results stay
  bit-identical to fault-free runs throughout,
* injected cache corruption is detected by checksum, quarantined,
  counted and transparently recomputed.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.faults import (
    FaultPlan,
    HangFault,
    TransientFault,
    WorkerCrashFault,
    corrupt_file,
    inject,
)
from repro.runner import (
    FAILED,
    CampaignEngine,
    CampaignTaskError,
    ResultCache,
    Task,
)

SRC_ROOT = Path(repro.__file__).resolve().parent.parent


def replay_task(benchmark: str = "SD1") -> Task:
    return Task(kind="replay", benchmark=benchmark, design="bs", scale=0.05,
                include_l2=False)


def l1_signature(results):
    return [r.l1.snapshot() for r in results]


# ----------------------------------------------------------------------
# FaultPlan decisions
# ----------------------------------------------------------------------
class TestFaultPlanDecisions:
    def test_no_rates_no_faults(self):
        plan = FaultPlan(seed=1)
        assert all(plan.decide("k" * 64, a) is None for a in range(20))

    def test_decisions_are_stable(self):
        plan = FaultPlan(seed=9, crash_rate=0.2, hang_rate=0.2,
                         transient_rate=0.2)
        first = [plan.decide("ab" * 32, a) for a in range(50)]
        second = [plan.decide("ab" * 32, a) for a in range(50)]
        assert first == second

    def test_decisions_stable_across_processes(self):
        """Workers must reach the same verdicts as the parent."""
        plan = FaultPlan(seed=9, crash_rate=0.3, transient_rate=0.3)
        code = (
            "from repro.faults import FaultPlan\n"
            "plan = FaultPlan(seed=9, crash_rate=0.3, transient_rate=0.3)\n"
            "print([plan.decide('cd' * 32, a) for a in range(20)], end='')\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_ROOT)
        env["PYTHONHASHSEED"] = "999"
        out = subprocess.run([sys.executable, "-c", code],
                             capture_output=True, text=True, env=env, check=True)
        assert out.stdout == str([plan.decide("cd" * 32, a) for a in range(20)])

    def test_rate_one_always_fires(self):
        plan = FaultPlan(seed=0, transient_rate=1.0, max_faults_per_task=10 ** 6)
        assert all(
            plan.decide("ef" * 32, a) == "transient" for a in range(100)
        )

    def test_fault_cap_bounds_injections(self):
        """After max_faults_per_task firings, every attempt is clean —
        the property that guarantees chaos campaigns terminate."""
        plan = FaultPlan(seed=0, transient_rate=1.0, max_faults_per_task=3)
        decisions = [plan.decide("aa" * 32, a) for a in range(50)]
        assert decisions[:3] == ["transient"] * 3
        assert decisions[3:] == [None] * 47

    def test_at_most_one_kind_per_attempt(self):
        plan = FaultPlan(seed=4, crash_rate=0.4, hang_rate=0.4,
                         transient_rate=0.2, max_faults_per_task=10 ** 6)
        kinds = {plan.decide("bb" * 32, a) for a in range(200)}
        assert kinds <= {None, "crash", "hang", "transient"}

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(max_faults_per_task=-1)

    def test_corrupt_decision_keyed_per_task(self):
        plan = FaultPlan(seed=2, corrupt_rate=0.5)
        verdicts = [plan.decide_corrupt(f"{i:064d}") for i in range(100)]
        assert any(verdicts) and not all(verdicts)
        assert verdicts == [plan.decide_corrupt(f"{i:064d}") for i in range(100)]

    def test_chaos_schedule_arms_every_kind(self):
        plan = FaultPlan.chaos(seed=1, rate=0.25)
        assert plan.crash_rate == plan.hang_rate == 0.25
        assert plan.transient_rate == plan.corrupt_rate == 0.25


class TestFaultPlanEnv:
    def test_absent_env_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert FaultPlan.from_env() is None

    def test_env_round_trip(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS", '{"seed": 7, "transient_rate": 0.5}'
        )
        plan = FaultPlan.from_env()
        assert plan.seed == 7 and plan.transient_rate == 0.5

    def test_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "not json")
        with pytest.raises(ValueError):
            FaultPlan.from_env()
        monkeypatch.setenv("REPRO_FAULTS", '{"bogus_field": 1}')
        with pytest.raises(ValueError):
            FaultPlan.from_env()


class TestInject:
    def test_clean_attempt_is_noop(self):
        inject(None, "aa" * 32, 0)
        inject(FaultPlan(seed=0), "aa" * 32, 0)

    def test_transient_raises(self):
        plan = FaultPlan(seed=0, transient_rate=1.0)
        with pytest.raises(TransientFault):
            inject(plan, "aa" * 32, 0)

    def test_crash_in_process_degrades_to_exception(self):
        """In the parent process an injected crash must not kill the
        interpreter — it surfaces as WorkerCrashFault instead."""
        plan = FaultPlan(seed=0, crash_rate=1.0)
        with pytest.raises(WorkerCrashFault):
            inject(plan, "aa" * 32, 0)

    def test_hang_sleeps_then_raises(self):
        plan = FaultPlan(seed=0, hang_rate=1.0, hang_seconds=0.01)
        with pytest.raises(HangFault):
            inject(plan, "aa" * 32, 0)

    def test_corrupt_file_flips_deterministically(self, tmp_path):
        victim = tmp_path / "entry.pkl"
        victim.write_bytes(b"A" * 100)
        assert corrupt_file(victim, seed=5)
        first = victim.read_bytes()
        assert first != b"A" * 100
        victim.write_bytes(b"A" * 100)
        corrupt_file(victim, seed=5)
        assert victim.read_bytes() == first

    def test_corrupt_file_tolerates_missing(self, tmp_path):
        assert corrupt_file(tmp_path / "nope.pkl") is False


# ----------------------------------------------------------------------
# Retry / backoff determinism (satellite: bounded, attributed failure)
# ----------------------------------------------------------------------
class TestRetryBounded:
    def test_transient_then_success(self):
        baseline = CampaignEngine(jobs=1).run_one(replay_task())
        plan = FaultPlan(seed=1, transient_rate=1.0, max_faults_per_task=2)
        engine = CampaignEngine(jobs=1, retries=3, backoff_base=0.0, faults=plan)
        result = engine.run_one(replay_task())
        assert result.l1.snapshot() == baseline.l1.snapshot()
        assert engine.counters.retries == 2
        timing = engine.counters.timings[-1]
        assert timing.attempts == 3 and timing.failed is False

    def test_exhausted_task_surfaces_original_error_and_history(self):
        plan = FaultPlan(seed=1, transient_rate=1.0, max_faults_per_task=10 ** 6)
        engine = CampaignEngine(jobs=1, retries=2, backoff_base=0.0, faults=plan)
        task = replay_task()
        with pytest.raises(CampaignTaskError) as excinfo:
            engine.run_one(task)
        err = excinfo.value
        message = str(err)
        # The failure must be attributable from the message alone: task
        # id, attempt count, and the per-attempt history.
        assert task.label in message
        assert "3 attempt" in message
        assert "TransientFault" in message
        assert err.key == task.key(engine.salt)
        assert [h["attempt"] for h in err.history] == [0, 1, 2]
        assert all(h["kind"] == "transient" for h in err.history)

    def test_retry_counters_are_deterministic(self):
        plan = FaultPlan(seed=12, transient_rate=0.5, max_faults_per_task=2)
        runs = []
        for _ in range(2):
            engine = CampaignEngine(jobs=1, retries=4, backoff_base=0.0,
                                    faults=plan)
            engine.run([replay_task("SD1"), replay_task("SPMV")])
            runs.append((engine.counters.retries,
                         [t.attempts for t in engine.counters.timings]))
        assert runs[0] == runs[1]

    def test_backoff_is_exponential_and_capped(self):
        engine = CampaignEngine(jobs=1, retries=10, backoff_base=0.1,
                                backoff_cap=0.4)
        delays = [
            min(engine.backoff_cap, engine.backoff_base * 2 ** (n - 1))
            for n in range(1, 6)
        ]
        assert delays == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_zero_retries_fails_on_first_fault(self):
        plan = FaultPlan(seed=1, transient_rate=1.0)
        engine = CampaignEngine(jobs=1, retries=0, backoff_base=0.0, faults=plan)
        with pytest.raises(CampaignTaskError):
            engine.run_one(replay_task())


class TestKeepGoing:
    def test_failed_slot_and_campaign_completion(self):
        """One poisoned task must not take down its batch."""
        baseline = CampaignEngine(jobs=1).run([replay_task("SPMV")])
        plan = FaultPlan(seed=1, transient_rate=1.0, max_faults_per_task=10 ** 6)
        engine = CampaignEngine(jobs=1, retries=1, backoff_base=0.0, faults=plan,
                                keep_going=True)
        out = engine.run([replay_task("SD1"), replay_task("SPMV")])
        assert out[0] is FAILED and out[1] is FAILED
        assert len(engine.failures) == 2
        assert engine.counters.failed == 2
        assert all(isinstance(f, CampaignTaskError) for f in engine.failures)
        # A fresh unfaulted engine still computes the real payloads.
        clean = CampaignEngine(jobs=1).run([replay_task("SPMV")])
        assert l1_signature(clean) == l1_signature(baseline)

    def test_keep_going_mixed_success_and_failure(self, tmp_path):
        """Tasks whose faults stay under budget succeed; the campaign
        records only the genuinely exhausted ones."""
        plan = FaultPlan(seed=3, transient_rate=1.0, max_faults_per_task=1)
        engine = CampaignEngine(jobs=1, retries=3, backoff_base=0.0,
                                faults=plan, keep_going=True)
        out = engine.run([replay_task("SD1"), replay_task("SPMV")])
        assert engine.failures == []
        assert all(p is not FAILED for p in out)


# ----------------------------------------------------------------------
# Pool-mode recovery (crash, hang, timeout)
# ----------------------------------------------------------------------
BENCH_POOL = ("SD1", "SPMV", "BFS", "KMN")


def pool_tasks():
    return [replay_task(b) for b in BENCH_POOL]


def seed_firing(kind: str, rate: float, salt: str, **plan_kwargs) -> FaultPlan:
    """First seed whose schedule fires ``kind`` on some first attempt —
    keeps these tests meaningful for any future key-scheme change."""
    keys = [t.key(salt) for t in pool_tasks()]
    for seed in range(64):
        plan = FaultPlan(seed=seed, max_faults_per_task=1,
                         **{f"{kind}_rate": rate}, **plan_kwargs)
        if any(plan.decide(k, 0) == kind for k in keys):
            return plan
    raise AssertionError(f"no seed fires {kind} at rate {rate}")


@pytest.fixture(scope="module")
def pool_baseline():
    return CampaignEngine(jobs=2).run(pool_tasks())


class TestPoolRecovery:
    def test_worker_crash_rebuilds_pool(self, pool_baseline):
        engine = CampaignEngine(jobs=2, retries=8, backoff_base=0.0)
        plan = seed_firing("crash", 0.5, engine.salt)
        engine.faults = plan
        out = engine.run(pool_tasks())
        assert l1_signature(out) == l1_signature(pool_baseline)
        assert engine.counters.pool_rebuilds >= 1
        assert any(t.attempts > 1 for t in engine.counters.timings)

    def test_hung_worker_reclaimed_by_timeout(self, pool_baseline):
        engine = CampaignEngine(jobs=2, retries=8, backoff_base=0.0,
                                task_timeout=1.0)
        plan = seed_firing("hang", 0.5, engine.salt, hang_seconds=30.0)
        engine.faults = plan
        out = engine.run(pool_tasks())
        assert l1_signature(out) == l1_signature(pool_baseline)
        assert engine.counters.timeouts >= 1
        assert engine.counters.pool_rebuilds >= 1

    def test_short_hang_completes_within_budget(self, pool_baseline):
        """A slow-but-finishing attempt under the deadline is not killed."""
        engine = CampaignEngine(jobs=2, retries=8, backoff_base=0.0,
                                task_timeout=30.0)
        plan = seed_firing("hang", 0.5, engine.salt, hang_seconds=0.05)
        engine.faults = plan
        out = engine.run(pool_tasks())
        assert l1_signature(out) == l1_signature(pool_baseline)
        assert engine.counters.timeouts == 0


# ----------------------------------------------------------------------
# Cache corruption -> quarantine -> recompute (satellite)
# ----------------------------------------------------------------------
class TestCorruptionQuarantine:
    def test_injected_corruption_quarantined_and_recomputed(self, tmp_path):
        tasks = [replay_task("SD1"), replay_task("SPMV")]
        baseline = CampaignEngine(jobs=1).run(tasks)

        cache_dir = tmp_path / "cache"
        writer = CampaignEngine(
            jobs=1, cache=ResultCache(cache_dir),
            faults=FaultPlan(seed=11, corrupt_rate=1.0),
        )
        writer.run(tasks)

        reader = CampaignEngine(jobs=1, cache=ResultCache(cache_dir))
        out = reader.run(tasks)
        assert l1_signature(out) == l1_signature(baseline)
        # Detected, counted, quarantined (not silently unlinked), recomputed.
        assert reader.cache.corrupt == 2
        assert reader.cache.quarantined == 2
        assert reader.counters.executed == 2
        quarantined = sorted((cache_dir / "quarantine").glob("*.pkl"))
        assert len(quarantined) == 2
        assert reader.metrics_snapshot()["campaign.cache.quarantined"] == 2

    def test_quarantined_slot_is_rewritten_clean(self, tmp_path):
        task = replay_task("SD1")
        cache_dir = tmp_path / "cache"
        writer = CampaignEngine(
            jobs=1, cache=ResultCache(cache_dir),
            faults=FaultPlan(seed=11, corrupt_rate=1.0),
        )
        writer.run_one(task)
        # Second faulted engine: detects rot, recomputes, re-corrupts; the
        # chain never serves a damaged payload.
        again = CampaignEngine(
            jobs=1, cache=ResultCache(cache_dir),
            faults=FaultPlan(seed=11, corrupt_rate=1.0),
        )
        again.run_one(task)
        assert again.cache.quarantined == 1
        # Clean engine: detects the re-corrupted entry, writes a clean one.
        clean = CampaignEngine(jobs=1, cache=ResultCache(cache_dir))
        clean.run_one(task)
        served = CampaignEngine(jobs=1, cache=ResultCache(cache_dir))
        served.run_one(task)
        assert served.cache.hits == 1 and served.cache.corrupt == 0
