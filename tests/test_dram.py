"""Unit tests for the GDDR5 DRAM model."""

import pytest

from repro.dram.bank import DRAMBank
from repro.dram.controller import MemoryController
from repro.dram.timing import GDDR5Timing


class TestTiming:
    def test_paper_defaults(self):
        t = GDDR5Timing()
        assert (t.tCL, t.tRP, t.tRC, t.tRAS, t.tRCD, t.tRRD) == (12, 12, 40, 28, 12, 6)
        assert t.row_size == 2048

    def test_latencies(self):
        t = GDDR5Timing()
        assert t.row_hit_latency == 12
        assert t.row_miss_latency == 12 + 12 + 12

    def test_validation(self):
        with pytest.raises(ValueError):
            GDDR5Timing(tCL=-1)
        with pytest.raises(ValueError):
            GDDR5Timing(row_size=1000)
        with pytest.raises(ValueError):
            GDDR5Timing(tRC=10, tRAS=28)


class TestBank:
    def test_first_access_is_row_miss(self):
        bank = DRAMBank(GDDR5Timing())
        done = bank.service(arrival=0, row=5)
        assert bank.row_misses == 1
        assert done == GDDR5Timing().row_miss_latency

    def test_second_access_same_row_hits(self):
        t = GDDR5Timing()
        bank = DRAMBank(t)
        first = bank.service(arrival=0, row=5)
        second = bank.service(arrival=first, row=5)
        assert bank.row_hits == 1
        assert second - first <= t.row_miss_latency

    def test_trc_separates_activates(self):
        t = GDDR5Timing()
        bank = DRAMBank(t, row_window=1)
        bank.service(arrival=0, row=1)
        first_activate = bank.last_activate
        bank.service(arrival=0, row=2)
        assert bank.last_activate - first_activate >= t.tRC

    def test_row_window_keeps_recent_rows_open(self):
        bank = DRAMBank(GDDR5Timing(), row_window=2)
        bank.service(arrival=0, row=1)
        bank.service(arrival=100, row=2)
        bank.service(arrival=200, row=1)  # still in window
        assert bank.row_hits == 1

    def test_row_window_evicts_lru_row(self):
        bank = DRAMBank(GDDR5Timing(), row_window=2)
        bank.service(arrival=0, row=1)
        bank.service(arrival=100, row=2)
        bank.service(arrival=200, row=3)  # evicts row 1
        bank.service(arrival=300, row=1)
        assert bank.row_hits == 0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            DRAMBank(GDDR5Timing(), row_window=0)

    def test_rrd_gate_defers_activate(self):
        t = GDDR5Timing()
        bank = DRAMBank(t)
        bank.service(arrival=0, row=1, rrd_gate=500)
        assert bank.last_activate >= 500


class TestController:
    def test_address_mapping(self):
        mc = MemoryController(0, GDDR5Timing(), num_banks=4, line_size=128)
        bank, row = mc.map(0)
        assert (bank, row) == (0, 0)
        bank, row = mc.map(5)
        assert bank == 1
        # 16 lines per row; addresses 0..63 with 4 banks span row 0.
        assert mc.map(63) == (3, 0)
        assert mc.map(64) == (0, 1)

    def test_reads_and_writes_counted(self):
        mc = MemoryController(0, GDDR5Timing())
        mc.request(0, now=0)
        mc.request(1, now=0, is_write=True)
        assert mc.reads == 1
        assert mc.writes == 1
        assert mc.total_requests == 2

    def test_sequential_stream_hits_rows(self):
        mc = MemoryController(0, GDDR5Timing(), num_banks=4)
        now = 0
        for line in range(64):  # one full row per bank
            now = mc.request(line, now)
        assert mc.row_hit_rate > 0.85

    def test_bus_serializes_bursts(self):
        t = GDDR5Timing()
        mc = MemoryController(0, t, num_banks=4)
        # Two requests to different banks, same instant: second waits for
        # the shared data bus.
        a = mc.request(0, now=0)
        b = mc.request(1, now=0)
        assert b >= a + t.burst_cycles

    def test_write_completes_at_bus_accept(self):
        mc = MemoryController(0, GDDR5Timing())
        read_done = MemoryController(1, GDDR5Timing()).request(0, now=0)
        write_done = mc.request(0, now=0, is_write=True)
        assert write_done < read_done

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            MemoryController(0, GDDR5Timing(), num_banks=0)
        with pytest.raises(ValueError):
            MemoryController(0, GDDR5Timing(row_size=2048), line_size=3000)
