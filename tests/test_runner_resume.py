"""Interrupt / journal / resume tests for the campaign engine and CLI.

Satellite contract: a campaign interrupted mid-flight (Ctrl-C) must
leave a flushed journal plus a partial manifest marked
``"interrupted": true``, and a ``--resume`` rerun must execute exactly
the remaining tasks while serving the journaled ones from the cache —
with final results bit-identical to an uninterrupted run.

The deterministic stand-in for Ctrl-C is ``FaultPlan.interrupt_after``:
the engine raises :class:`KeyboardInterrupt` from the completion path
after N executed tasks, which exercises the same ``run()`` interrupt
handler a real SIGINT reaches.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.faults import FaultPlan
from repro.runner import CampaignEngine, CampaignJournal, ResultCache, Task

BENCHES = ("SD1", "SPMV", "BFS", "KMN")


def tasks():
    return [
        Task(kind="replay", benchmark=b, design="bs", scale=0.05,
             include_l2=False)
        for b in BENCHES
    ]


def l1_signature(results):
    return [r.l1.snapshot() for r in results]


# ----------------------------------------------------------------------
# CampaignJournal
# ----------------------------------------------------------------------
class TestCampaignJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CampaignJournal(path) as journal:
            journal.append({"key": "a" * 64, "label": "t1", "seconds": 0.1})
            journal.append({"key": "b" * 64, "label": "t2", "seconds": 0.2})
        loaded = CampaignJournal(path).load()
        assert set(loaded) == {"a" * 64, "b" * 64}
        assert loaded["a" * 64]["label"] == "t1"

    def test_append_dedupes_by_key(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CampaignJournal(path) as journal:
            journal.append({"key": "a" * 64})
            journal.append({"key": "a" * 64})
        assert len(path.read_text().splitlines()) == 1

    def test_load_tolerates_torn_tail(self, tmp_path):
        """A crash mid-write leaves a torn last line; every record that
        hit the disk whole must still load."""
        path = tmp_path / "journal.jsonl"
        with CampaignJournal(path) as journal:
            journal.append({"key": "a" * 64})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "bbbb')  # torn: no newline, no close
        loaded = CampaignJournal(path).load()
        assert set(loaded) == {"a" * 64}

    def test_load_missing_file_is_empty(self, tmp_path):
        assert CampaignJournal(tmp_path / "nope.jsonl").load() == {}

    def test_seen_suppresses_duplicate_lines_on_resume(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CampaignJournal(path) as journal:
            journal.append({"key": "a" * 64})
        resumed = CampaignJournal(path)
        resumed.seen(resumed.load())
        resumed.append({"key": "a" * 64})  # already journaled: no-op
        resumed.append({"key": "c" * 64})
        resumed.close()
        assert len(path.read_text().splitlines()) == 2


# ----------------------------------------------------------------------
# Engine: interrupt -> journal + partial manifest -> resume
# ----------------------------------------------------------------------
class TestInterruptAndResume:
    @pytest.fixture()
    def baseline(self):
        return CampaignEngine(jobs=1).run(tasks())

    def test_interrupt_flushes_journal_and_partial_manifest(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        manifest = tmp_path / "manifest.json"
        engine = CampaignEngine(
            jobs=1,
            cache=ResultCache(tmp_path / "cache"),
            journal=journal,
            manifest_path=manifest,
            faults=FaultPlan(seed=0, interrupt_after=2),
        )
        with pytest.raises(KeyboardInterrupt):
            engine.run(tasks())

        assert engine.interrupted is True
        # Journal: exactly the two completed tasks, already on disk.
        records = CampaignJournal(journal).load()
        assert len(records) == 2
        assert all(rec["attempts"] >= 1 for rec in records.values())
        # Partial manifest: flushed and marked.
        data = json.loads(manifest.read_text())
        assert data["interrupted"] is True
        assert len(data["tasks"]) == 2
        assert data["resilience"]["journal"] is not None

    def test_resume_runs_exactly_the_remainder(self, tmp_path, baseline):
        journal = tmp_path / "journal.jsonl"
        cache_dir = tmp_path / "cache"
        interrupted = CampaignEngine(
            jobs=1, cache=ResultCache(cache_dir), journal=journal,
            faults=FaultPlan(seed=0, interrupt_after=2),
        )
        with pytest.raises(KeyboardInterrupt):
            interrupted.run(tasks())
        done_keys = set(CampaignJournal(journal).load())

        resumed = CampaignEngine(
            jobs=1, cache=ResultCache(cache_dir), journal=journal, resume=True,
        )
        out = resumed.run(tasks())
        # Exactly the two journaled tasks are served without execution;
        # exactly the two missing ones run.
        assert resumed.counters.resumed == 2
        assert resumed.counters.executed == 2
        assert resumed.counters.cache_hits == 2
        assert l1_signature(out) == l1_signature(baseline)
        # The journal now covers the full campaign, without duplicates.
        final = CampaignJournal(journal).load()
        assert len(final) == 4 and done_keys <= set(final)
        assert len(journal.read_text().splitlines()) == 4

    def test_resume_recomputes_evicted_cache_entries(self, tmp_path, baseline):
        """A journaled task whose cache entry is gone (evicted or
        quarantined) is transparently re-executed, not an error."""
        journal = tmp_path / "journal.jsonl"
        cache_dir = tmp_path / "cache"
        interrupted = CampaignEngine(
            jobs=1, cache=ResultCache(cache_dir), journal=journal,
            faults=FaultPlan(seed=0, interrupt_after=2),
        )
        with pytest.raises(KeyboardInterrupt):
            interrupted.run(tasks())
        victim = next(iter(CampaignJournal(journal).load()))
        ResultCache(cache_dir).path_for(victim).unlink()

        resumed = CampaignEngine(
            jobs=1, cache=ResultCache(cache_dir), journal=journal, resume=True,
        )
        out = resumed.run(tasks())
        assert l1_signature(out) == l1_signature(baseline)
        assert resumed.counters.executed == 3
        assert resumed.counters.resumed == 1

    def test_completed_resume_executes_nothing(self, tmp_path, baseline):
        journal = tmp_path / "journal.jsonl"
        cache_dir = tmp_path / "cache"
        CampaignEngine(
            jobs=1, cache=ResultCache(cache_dir), journal=journal
        ).run(tasks())
        resumed = CampaignEngine(
            jobs=1, cache=ResultCache(cache_dir), journal=journal, resume=True,
        )
        out = resumed.run(tasks())
        assert resumed.counters.executed == 0
        assert resumed.counters.resumed == 4
        assert l1_signature(out) == l1_signature(baseline)

    def test_resume_requires_journal(self):
        with pytest.raises(ValueError):
            CampaignEngine(jobs=1, resume=True)

    def test_manifest_reports_resilience_and_metrics(self, tmp_path):
        engine = CampaignEngine(
            jobs=1, cache=ResultCache(tmp_path / "cache"),
            journal=tmp_path / "journal.jsonl", retries=3, keep_going=True,
        )
        engine.run(tasks()[:1])
        data = engine.manifest()
        assert data["interrupted"] is False
        res = data["resilience"]
        assert res["retries_budget"] == 3
        assert res["keep_going"] is True
        assert res["faults_armed"] is False
        assert data["metrics"]["campaign.executed"] == 1
        assert data["tasks"][0]["attempts"] == 1
        assert data["tasks"][0]["failed"] is False


# ----------------------------------------------------------------------
# CLI: python -m repro campaign ... --resume
# ----------------------------------------------------------------------
class TestCampaignCliResume:
    ARGS = [
        "campaign", "--benchmarks", "SD1,SPMV", "--designs", "bs,gc",
        "--scale", "0.05", "--jobs", "1",
    ]

    def test_interrupted_campaign_resumes_from_cli(
        self, tmp_path, capsys, monkeypatch
    ):
        cache_dir = tmp_path / "cache"
        manifest = tmp_path / "manifest.json"
        argv = self.ARGS + ["--cache-dir", str(cache_dir),
                            "--manifest", str(manifest)]

        monkeypatch.setenv("REPRO_FAULTS", '{"seed": 0, "interrupt_after": 2}')
        rc = main(argv)
        captured = capsys.readouterr()
        assert rc == 130
        assert "rerun with --resume" in captured.err
        assert json.loads(manifest.read_text())["interrupted"] is True
        journal = cache_dir / "journal.jsonl"
        assert len(journal.read_text().splitlines()) == 2

        monkeypatch.delenv("REPRO_FAULTS")
        rc = main(argv + ["--resume"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "[resume] 2 tasks already complete" in captured.out
        assert json.loads(manifest.read_text())["interrupted"] is False
        assert len(journal.read_text().splitlines()) == 4

    def test_fresh_campaign_truncates_stale_journal(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        argv = self.ARGS + ["--cache-dir", str(cache_dir)]
        assert main(argv) == 0
        capsys.readouterr()
        # Second run without --resume: journal restarts from scratch and
        # the campaign is served entirely from the cache.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "[resume]" not in out
        journal = cache_dir / "journal.jsonl"
        assert len(journal.read_text().splitlines()) == 4

    def test_resume_without_journal_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--no-cache", "--resume"])
