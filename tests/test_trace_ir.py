"""Unit tests for the kernel trace IR."""

import pytest

from repro.trace.trace import (
    CTATrace,
    KernelTrace,
    OP_ALU,
    OP_BAR,
    OP_LOAD,
    OP_SMEM,
    OP_STORE,
    instruction_count,
)


def simple_kernel(programs):
    return KernelTrace(name="t", ctas=[CTATrace(warps=[list(p) for p in programs])])


class TestCounting:
    def test_alu_groups_count_each_instruction(self):
        program = [(OP_ALU, 5), (OP_LOAD, (0,)), (OP_SMEM, 3)]
        assert instruction_count(program) == 9

    def test_kernel_totals(self):
        kernel = simple_kernel([[(OP_ALU, 2)], [(OP_LOAD, (0,)), (OP_STORE, (0,))]])
        assert kernel.instruction_count() == 4
        assert kernel.memory_access_count() == 2

    def test_cta_and_warp_counts(self):
        kernel = simple_kernel([[(OP_ALU, 1)]] * 3)
        assert kernel.num_ctas == 1
        assert kernel.ctas[0].num_warps == 3

    def test_iter_warp_programs(self):
        kernel = simple_kernel([[(OP_ALU, 1)], [(OP_ALU, 2)]])
        assert len(list(kernel.iter_warp_programs())) == 2


class TestValidation:
    def test_valid_kernel_passes(self):
        kernel = simple_kernel([[(OP_ALU, 1), (OP_LOAD, (0, 128)), (OP_BAR, 0)]])
        kernel.validate()

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="no CTAs"):
            KernelTrace(name="t", ctas=[]).validate()

    def test_empty_cta_rejected(self):
        with pytest.raises(ValueError, match="no warps"):
            KernelTrace(name="t", ctas=[CTATrace(warps=[])]).validate()

    def test_bad_alu_count(self):
        with pytest.raises(ValueError, match="positive int"):
            simple_kernel([[(OP_ALU, 0)]]).validate()

    def test_memory_op_needs_addresses(self):
        with pytest.raises(ValueError, match="lane addresses"):
            simple_kernel([[(OP_LOAD, ())]]).validate()

    def test_too_many_lanes(self):
        with pytest.raises(ValueError, match="lane addresses"):
            simple_kernel([[(OP_LOAD, tuple(range(33)))]]).validate()

    def test_unknown_opcode(self):
        with pytest.raises(ValueError, match="unknown opcode"):
            simple_kernel([[(99, 0)]]).validate()
