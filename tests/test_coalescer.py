"""Unit tests for the memory-access coalescing unit."""

import pytest

from repro.gpu.coalescer import Coalescer


class TestCoalescing:
    def test_same_line_merges_to_one(self):
        unit = Coalescer(line_size=128)
        assert unit.coalesce([0, 4, 64, 127]) == [0]

    def test_distinct_lines_kept(self):
        unit = Coalescer(line_size=128)
        assert unit.coalesce([0, 128, 256]) == [0, 1, 2]

    def test_first_lane_order_preserved(self):
        unit = Coalescer(line_size=128)
        assert unit.coalesce([256, 0, 300, 128]) == [2, 0, 1]

    def test_fully_coalesced_warp(self):
        unit = Coalescer(line_size=128)
        lanes = [i * 4 for i in range(32)]  # 32 x 4B = one line
        assert unit.coalesce(lanes) == [0]

    def test_fully_divergent_warp(self):
        unit = Coalescer(line_size=128, max_lanes=32)
        lanes = [i * 128 for i in range(32)]
        assert len(unit.coalesce(lanes)) == 32


class TestValidation:
    def test_too_many_lanes(self):
        unit = Coalescer(max_lanes=4)
        with pytest.raises(ValueError, match="lanes"):
            unit.coalesce([0] * 5)

    def test_line_size_power_of_two(self):
        with pytest.raises(ValueError):
            Coalescer(line_size=100)


class TestStats:
    def test_average_transactions(self):
        unit = Coalescer(line_size=128)
        unit.coalesce([0])
        unit.coalesce([0, 128, 256])
        assert unit.average_transactions == pytest.approx(2.0)

    def test_untouched_average_is_zero(self):
        assert Coalescer().average_transactions == 0.0
