"""Unit tests for the set-associative cache."""

import pytest

from repro.cache.cache import Cache
from repro.cache.policies.base import FillContext
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.rrip import SRRIPPolicy

LINE = 128


def l1(size=1024, ways=2):
    return Cache("L1", size, ways, LINE, LRUPolicy())


def l2(size=2048, ways=2):
    return Cache("L2", size, ways, LINE, LRUPolicy(), write_back=True, write_allocate=True)


class TestGeometry:
    def test_set_count(self):
        cache = l1(size=1024, ways=2)  # 1024 / (2*128) = 4 sets
        assert cache.num_sets == 4

    def test_indivisible_size_rejected(self):
        with pytest.raises(ValueError, match="not divisible"):
            Cache("bad", 1000, 2, LINE, LRUPolicy())

    def test_non_pow2_sets_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            Cache("bad", 3 * 2 * LINE, 2, LINE, LRUPolicy())

    def test_write_allocate_requires_write_back(self):
        with pytest.raises(ValueError, match="write-allocate"):
            Cache("bad", 1024, 2, LINE, LRUPolicy(), write_allocate=True)

    def test_set_index_wraps(self):
        cache = l1()
        assert cache.set_index(0) == cache.set_index(4)  # 4 sets

    def test_pre_shift_drops_bank_bits(self):
        cache = Cache("L2", 1024, 2, LINE, LRUPolicy(), pre_shift=3)
        assert cache.set_index(0b1000) == cache.set_index(0b1001 << 3 >> 3 << 3)
        assert cache.set_index(8) == 1


class TestLookupAndFill:
    def test_cold_miss(self):
        cache = l1()
        assert not cache.lookup(0, now=0).hit
        assert cache.stats.loads == 1
        assert cache.stats.load_hits == 0

    def test_fill_then_hit(self):
        cache = l1()
        cache.fill(0, now=0)
        result = cache.lookup(0, now=1)
        assert result.hit
        assert result.line.use_count == 1

    def test_fill_already_present(self):
        cache = l1()
        cache.fill(0, now=0)
        result = cache.fill(0, now=1)
        assert result.already_present
        assert cache.stats.fills == 1

    def test_fill_prefers_invalid_way(self):
        cache = l1()
        r1 = cache.fill(0, now=0)
        r2 = cache.fill(4, now=1)  # same set (4 sets)
        assert r1.way != r2.way
        assert cache.stats.evictions == 0

    def test_eviction_when_set_full(self):
        cache = l1(ways=2)
        cache.fill(0, now=0)
        cache.fill(4, now=1)
        result = cache.fill(8, now=2)
        assert result.inserted
        assert result.evicted_tag == 0  # LRU
        assert cache.stats.evictions == 1
        assert not cache.probe(0)

    def test_probe_is_stateless(self):
        cache = l1()
        cache.fill(0, now=0)
        before = cache.stats.accesses
        assert cache.probe(0)
        assert not cache.probe(1)
        assert cache.stats.accesses == before


class TestWriteSemantics:
    def test_write_through_hit_not_dirty(self):
        cache = l1()  # write-through
        cache.fill(0, now=0)
        res = cache.lookup(0, now=1, is_write=True)
        assert res.hit
        assert not res.line.dirty

    def test_write_back_hit_sets_dirty(self):
        cache = l2()
        cache.fill(0, now=0)
        res = cache.lookup(0, now=1, is_write=True)
        assert res.line.dirty

    def test_write_allocate_fill_dirty(self):
        cache = l2()
        ctx = FillContext(line_addr=0, is_write=True)
        res = cache.fill(0, now=0, ctx=ctx)
        assert cache.sets[res.set_index][res.way].dirty

    def test_dirty_eviction_reports_writeback(self):
        cache = l2(size=512, ways=2)  # 2 sets
        cache.fill(0, now=0, ctx=FillContext(0, is_write=True))
        cache.fill(2, now=1)
        res = cache.fill(4, now=2)
        assert res.writeback
        assert res.evicted_tag == 0
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = l2(size=512, ways=2)
        cache.fill(0, now=0)
        cache.fill(2, now=1)
        res = cache.fill(4, now=2)
        assert not res.writeback


class TestReuseAccounting:
    def test_eviction_records_reuse(self):
        cache = l1(ways=2)
        cache.fill(0, now=0)
        cache.lookup(0, now=1)
        cache.lookup(0, now=2)
        cache.fill(4, now=3)
        cache.fill(8, now=4)  # evicts line 0 with 2 uses
        assert cache.stats.reuse.as_dict().get(2) == 1

    def test_finalize_flushes_residents(self):
        cache = l1()
        cache.fill(0, now=0)
        cache.finalize()
        assert cache.stats.reuse.generations == 1
        assert cache.stats.reuse.fraction(0) == 1.0

    def test_zero_reuse_fraction(self):
        cache = l1(ways=2)
        for i in range(6):  # streaming: never reused
            cache.fill(i * 4, now=i)
        cache.finalize()
        assert cache.stats.reuse.fraction(0) == 1.0


class TestInvalidateAndFlush:
    def test_invalidate_resident(self):
        cache = l1()
        cache.fill(0, now=0)
        assert cache.invalidate(0)
        assert not cache.probe(0)
        assert cache.stats.evictions == 1

    def test_invalidate_absent(self):
        cache = l1()
        assert not cache.invalidate(0)

    def test_flush_counts_dirty(self):
        cache = l2()
        cache.fill(0, now=0, ctx=FillContext(0, is_write=True))
        cache.fill(2, now=1)
        assert cache.flush() == 1
        assert cache.resident_lines() == []


class TestStatsConsistency:
    def test_miss_rate(self):
        cache = l1()
        cache.fill(0, now=0)
        cache.lookup(0, now=1)
        cache.lookup(1, now=2)
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_store_counters(self):
        cache = l1()
        cache.lookup(0, now=0, is_write=True)
        assert cache.stats.stores == 1
        assert cache.stats.store_hits == 0

    def test_resident_lines(self):
        cache = l1()
        cache.fill(0, now=0)
        cache.fill(5, now=1)
        assert sorted(cache.resident_lines()) == [0, 5]


class TestSRRIPIntegration:
    def test_srrip_cache_protects_reused_lines(self):
        cache = Cache("L1", 512, 2, LINE, SRRIPPolicy(bits=3))  # 2 sets
        cache.fill(0, now=0)
        cache.lookup(0, now=1)  # rrpv -> 0
        # Stream through the same set: line 0 must survive several fills.
        for i in range(1, 4):
            cache.fill(i * 2, now=i + 1)
        assert cache.probe(0)
