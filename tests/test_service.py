"""Service-layer tests: coalescing, jobs, broker, daemon HTTP round-trips.

The contract under test (ISSUE acceptance criteria): a daemon serving
several concurrent campaigns with overlapping task keys executes each
key exactly once — the rest are *coalesced* (counted in manifests and
``/stats``) and every job sees bit-identical payloads.  Plus per-job
pause/resume/cancel, NDJSON progress streaming, crash recovery, and
spec validation.

Timing discipline: nothing here sleeps and hopes.  Concurrency is made
deterministic by monkeypatching the engine's single worker entry point
(``repro.runner.engine.run_task_armed``) with fakes that gate on
explicit events — e.g. a leader that blocks until every follower has
joined the in-flight entry before computing.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

import repro.runner.engine as engine_mod
from repro.runner import CampaignEngine, InflightRegistry, ResultCache, Task
from repro.runner.task import run_task_armed as real_run_task_armed
from repro.service import (
    CampaignDaemon,
    JobEventBroker,
    JobManager,
    JobSpec,
    ServiceClient,
    ServiceError,
    SpecError,
)

WAIT = 60  # generous upper bound; tests finish in well under a second each


def small_spec(**overrides):
    base = dict(benchmarks=["SD1"], designs=["bs"], scale=0.05,
                fidelity="functional")
    base.update(overrides)
    return JobSpec(**base)


# ----------------------------------------------------------------------
# InflightRegistry
# ----------------------------------------------------------------------
class TestInflightRegistry:
    def test_first_claim_leads_then_followers_join(self):
        reg = InflightRegistry()
        leader, entry = reg.claim("k", "A")
        assert leader and entry.followers == 0
        follower, same = reg.claim("k", "B")
        assert not follower and same is entry
        assert reg.coalesced_total == 1
        assert reg.follower_count("k") == 1

        reg.publish(entry, payload="result")
        assert entry.result() == "result"
        assert len(reg) == 0, "publication releases the key"

    def test_failed_publication_propagates_and_releases(self):
        reg = InflightRegistry()
        _, entry = reg.claim("k", "A")
        reg.publish(entry, error=RuntimeError("boom"))
        assert not entry.succeeded
        with pytest.raises(RuntimeError, match="boom"):
            entry.result()
        # The key is free again: the next claimant leads.
        leader, fresh = reg.claim("k", "B")
        assert leader and fresh is not entry

    def test_abandon_wakes_followers_with_an_error(self):
        reg = InflightRegistry()
        _, entry = reg.claim("k", "A")
        reg.abandon(entry, "leader aborted")
        assert entry.published and not entry.succeeded
        assert "leader aborted" in str(entry.error)


# ----------------------------------------------------------------------
# Engine-level coalescing (deterministic: leader waits for followers)
# ----------------------------------------------------------------------
def test_concurrent_engines_execute_shared_key_exactly_once(
    tmp_path, monkeypatch
):
    n_engines = 3
    registry = InflightRegistry()
    executions = []

    def gated(task, key, attempt, faults):
        # Leader parks until both followers joined the entry, so the
        # coalescing window is provably open when it publishes.
        deadline = time.monotonic() + WAIT
        while registry.follower_count(key) < n_engines - 1:
            if time.monotonic() > deadline:  # pragma: no cover - hang guard
                break
            time.sleep(0.002)
        executions.append(key)
        return real_run_task_armed(task, key, attempt, faults)

    monkeypatch.setattr(engine_mod, "run_task_armed", gated)

    task = Task(kind="simulate", benchmark="SD1", design="bs", scale=0.05,
                fidelity="functional")
    engines = [
        CampaignEngine(jobs=1, cache=ResultCache(tmp_path), salt="t",
                       inflight=registry, client=f"eng-{i}")
        for i in range(n_engines)
    ]
    results = [None] * n_engines

    def run(i):
        results[i] = engines[i].run([task])[0]

    threads = [threading.Thread(target=run, args=(i,)) for i in range(n_engines)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(WAIT)

    assert len(executions) == 1, "the shared key must execute exactly once"
    assert registry.coalesced_total == n_engines - 1
    executed = sum(e.counters.executed for e in engines)
    coalesced = sum(e.counters.coalesced for e in engines)
    assert (executed, coalesced) == (1, n_engines - 1)
    # Bit-identical shared payloads: followers receive the leader's
    # object (and its counters), not a recomputation.
    sigs = {json.dumps(r.l1.snapshot(), sort_keys=True) for r in results}
    assert len(sigs) == 1


def test_follower_reclaims_when_leader_fails(tmp_path, monkeypatch):
    """A crashing leader must not poison the follower: the follower
    re-claims the key and executes with its own retry budget."""
    registry = InflightRegistry()
    calls = []
    follower_joined = threading.Event()

    def flaky(task, key, attempt, faults):
        calls.append(threading.current_thread().name)
        if len(calls) == 1:
            follower_joined.wait(WAIT)  # keep the window open, then die
            raise RuntimeError("leader exploded")
        return real_run_task_armed(task, key, attempt, faults)

    monkeypatch.setattr(engine_mod, "run_task_armed", flaky)

    task = Task(kind="simulate", benchmark="SD1", design="bs", scale=0.05,
                fidelity="functional")
    leader = CampaignEngine(jobs=1, cache=ResultCache(tmp_path / "a"),
                            salt="t", inflight=registry, client="leader")
    follower = CampaignEngine(jobs=1, cache=ResultCache(tmp_path / "b"),
                              salt="t", inflight=registry, client="follower")

    leader_err = []

    def run_leader():
        try:
            leader.run([task])
        except Exception as exc:  # noqa: BLE001
            leader_err.append(exc)

    t1 = threading.Thread(target=run_leader, name="T-leader")
    t1.start()
    # Join the in-flight entry, then let the leader fail.
    deadline = time.monotonic() + WAIT
    key = task.key("t")
    while not registry.inflight_keys():
        assert time.monotonic() < deadline
        time.sleep(0.002)
    out = []
    t2 = threading.Thread(
        target=lambda: out.append(follower.run([task])[0]), name="T-follower"
    )
    t2.start()
    while registry.follower_count(key) < 1:
        assert time.monotonic() < deadline
        time.sleep(0.002)
    follower_joined.set()
    t1.join(WAIT)
    t2.join(WAIT)

    assert leader_err, "the leader's own failure must still surface to it"
    assert out and out[0].l1.accesses > 0
    assert follower.counters.executed == 1, "follower re-claimed and executed"
    assert follower.counters.coalesced == 0


# ----------------------------------------------------------------------
# JobEventBroker
# ----------------------------------------------------------------------
class TestJobEventBroker:
    def test_history_without_loop(self):
        broker = JobEventBroker(None)
        broker.publish({"event": "a"})
        broker.publish({"event": "b"})
        assert [e["event"] for e in broker.events()] == ["a", "b"]
        broker.close()
        broker.publish({"event": "after-close"})
        assert len(broker.events()) == 2, "post-close events are dropped"

    def test_subscriber_sees_replay_then_live_exactly_once(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            broker = JobEventBroker(loop)
            broker.publish({"n": 0})  # history, before subscription

            seen = []

            async def consume():
                async for event in broker.subscribe():
                    seen.append(event["n"])

            consumer = asyncio.ensure_future(consume())
            await asyncio.sleep(0)  # let the subscription attach

            # Live events from a foreign thread, like an engine worker.
            def feed():
                for n in (1, 2, 3):
                    broker.publish({"n": n})
                broker.close()

            thread = threading.Thread(target=feed)
            thread.start()
            await asyncio.wait_for(consumer, WAIT)
            thread.join(WAIT)
            return seen

        assert asyncio.run(scenario()) == [0, 1, 2, 3]

    def test_subscribe_requires_loop(self):
        broker = JobEventBroker(None)
        with pytest.raises(RuntimeError, match="no event loop"):
            asyncio.run(broker.subscribe().__anext__())


# ----------------------------------------------------------------------
# JobSpec validation
# ----------------------------------------------------------------------
class TestJobSpec:
    def test_rejects_unknown_benchmark_design_fidelity_and_fields(self):
        with pytest.raises(SpecError, match="unknown benchmarks"):
            JobSpec(benchmarks=["NOPE"])
        with pytest.raises(SpecError, match="unknown designs"):
            JobSpec(designs=["nope"])
        with pytest.raises(SpecError, match="unknown fidelity"):
            JobSpec(fidelity="psychic")
        with pytest.raises(SpecError, match="unknown spec fields"):
            JobSpec.from_payload({"designs": ["bs"], "bogus": 1})
        with pytest.raises(SpecError, match="JSON object"):
            JobSpec.from_payload(["not", "a", "dict"])

    def test_payload_round_trip(self):
        spec = small_spec(seed=7, retries=1)
        again = JobSpec.from_payload(spec.to_payload())
        assert again.to_payload() == spec.to_payload()


# ----------------------------------------------------------------------
# JobManager
# ----------------------------------------------------------------------
class TestJobManager:
    def test_job_runs_persists_and_reports(self, tmp_path):
        mgr = JobManager(None, cache_root=tmp_path / "cache",
                         state_dir=tmp_path / "state", salt="t")
        job = mgr.submit(small_spec())
        mgr.wait(job.id, WAIT)

        assert job.state == "completed" and job.error is None
        snap = job.snapshot()
        assert snap["counters"]["executed"] == 1
        assert [e["event"] for e in job.broker.events()][0] == "job_state"
        assert job.broker.events()[-1]["state"] == "completed"

        state_file = tmp_path / "state" / "jobs" / f"{job.id}.json"
        assert json.loads(state_file.read_text())["state"] == "completed"
        manifest = json.loads(job.manifest_path.read_text())
        assert manifest["counters"]["coalesced"] == 0
        assert len(manifest["tasks"]) == 1

    def test_pause_blocks_progress_until_resume(self, tmp_path, monkeypatch):
        calls = []
        gate = threading.Event()

        def gated(task, key, attempt, faults):
            calls.append(key)
            assert gate.wait(WAIT)
            return real_run_task_armed(task, key, attempt, faults)

        monkeypatch.setattr(engine_mod, "run_task_armed", gated)
        mgr = JobManager(None, salt="t")
        job = mgr.submit(small_spec(benchmarks=["SD1", "SPMV"]))

        deadline = time.monotonic() + WAIT
        while len(calls) < 1:
            assert time.monotonic() < deadline
            time.sleep(0.002)
        mgr.pause(job.id)
        assert job.paused
        gate.set()  # in-flight task finishes; the pause bites at the boundary

        time.sleep(0.1)
        assert len(calls) == 1, "no new task may start while paused"
        assert job.state == "running"

        mgr.resume(job.id)
        mgr.wait(job.id, WAIT)
        assert job.state == "completed"
        assert len(calls) == 2

    def test_cancel_unwinds_at_the_next_boundary(self, tmp_path, monkeypatch):
        started = threading.Event()
        gate = threading.Event()

        def gated(task, key, attempt, faults):
            started.set()
            assert gate.wait(WAIT)
            return real_run_task_armed(task, key, attempt, faults)

        monkeypatch.setattr(engine_mod, "run_task_armed", gated)
        mgr = JobManager(None, state_dir=tmp_path / "state", salt="t")
        job = mgr.submit(small_spec(benchmarks=["SD1", "SPMV", "BFS"]))
        assert started.wait(WAIT)
        mgr.cancel(job.id)
        gate.set()
        mgr.wait(job.id, WAIT)

        assert job.state == "cancelled"
        manifest = json.loads(job.manifest_path.read_text())
        assert manifest["cancelled"] is True
        assert job.broker.events()[-1]["state"] == "cancelled"
        state = json.loads(
            (tmp_path / "state" / "jobs" / f"{job.id}.json").read_text()
        )
        assert state["state"] == "cancelled"

    def test_recover_resumes_unfinished_jobs_bit_identically(self, tmp_path):
        spec = small_spec(benchmarks=["SD1", "SPMV"], designs=["bs", "gc"])

        # Reference: one uninterrupted manager run.
        ref = JobManager(None, cache_root=tmp_path / "ref-cache",
                         state_dir=tmp_path / "ref-state", salt="t")
        ref_job = ref.submit(spec)
        ref.wait(ref_job.id, WAIT)
        ref_metrics = {
            t["label"]: t["metrics"]
            for t in json.loads(ref_job.manifest_path.read_text())["tasks"]
        }

        # "Crashed daemon": a job record persisted as running, with a
        # journal covering part of the matrix (written by a real engine
        # over the same cache root).
        state_dir = tmp_path / "state"
        jobs_dir = state_dir / "jobs"
        jobs_dir.mkdir(parents=True)
        job_id = "j-deadbeef"
        partial = CampaignEngine(
            jobs=1, cache=ResultCache(tmp_path / "cache"), salt="t",
            journal=jobs_dir / f"{job_id}.journal.jsonl",
        )
        JobSpec.from_payload({**spec.to_payload(),
                              "benchmarks": ["SD1"]}).run(partial)
        (jobs_dir / f"{job_id}.json").write_text(json.dumps(
            {"id": job_id, "state": "running", "spec": spec.to_payload(),
             "submitted_at": 0.0, "error": None}
        ))

        mgr = JobManager(None, cache_root=tmp_path / "cache",
                         state_dir=state_dir, salt="t")
        recovered = mgr.recover()
        assert [j.id for j in recovered] == [job_id]
        assert recovered[0].resumed
        mgr.wait_all(WAIT)

        job = mgr.job(job_id)
        assert job.state == "completed"
        # The SD1 half came back from journal+cache, not re-execution.
        assert job.engine.counters.resumed == 2
        assert job.engine.counters.executed == 2
        manifest = json.loads(job.manifest_path.read_text())
        metrics = {t["label"]: t["metrics"] for t in manifest["tasks"]}
        assert metrics == ref_metrics, "resumed run must be bit-identical"
        # A second recover() is a no-op: the job finished and was persisted.
        assert JobManager(None, cache_root=tmp_path / "cache",
                          state_dir=state_dir, salt="t").recover() == []


# ----------------------------------------------------------------------
# Daemon HTTP round-trips
# ----------------------------------------------------------------------
@pytest.fixture()
def daemon(tmp_path):
    """A live daemon on a free port, with its loop in a background thread."""
    d = CampaignDaemon(cache_dir=str(tmp_path / "cache"),
                       state_dir=str(tmp_path / "state"), salt="t")
    loop = asyncio.new_event_loop()
    ready = threading.Event()

    async def main():
        await d.start()
        ready.set()
        try:
            await d.serve_forever()
        except asyncio.CancelledError:
            pass

    runner = loop.create_task(main())

    def spin():
        try:
            loop.run_until_complete(runner)
        except Exception:  # pragma: no cover - surfaced via client failures
            pass

    thread = threading.Thread(target=spin, daemon=True)
    thread.start()
    assert ready.wait(WAIT)
    try:
        yield d
    finally:
        loop.call_soon_threadsafe(runner.cancel)
        thread.join(WAIT)
        loop.close()


class TestDaemon:
    def test_submit_stream_manifest_round_trip(self, daemon):
        client = ServiceClient(port=daemon.port)
        assert client.health()["ok"] is True

        snap = client.submit(small_spec().to_payload())
        events = [e["event"] for e in client.events(snap["id"])]
        assert events[0] == "job_state"
        assert "task_completed" in events
        assert events[-1] == "job_state"

        final = client.wait(snap["id"], timeout=WAIT)
        assert final["state"] == "completed"
        manifest = client.manifest(snap["id"])
        assert len(manifest["tasks"]) == 1
        assert [j["id"] for j in client.jobs()] == [snap["id"]]

    def test_error_responses(self, daemon):
        client = ServiceClient(port=daemon.port)
        with pytest.raises(ServiceError) as err:
            client.submit({"designs": ["nope"]})
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            client.job("j-missing")
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            client._request("PUT", "/stats")
        assert err.value.status == 405

    def test_pause_resume_cancel_endpoints(self, daemon, monkeypatch):
        gate = threading.Event()
        started = threading.Event()

        def gated(task, key, attempt, faults):
            started.set()
            assert gate.wait(WAIT)
            return real_run_task_armed(task, key, attempt, faults)

        monkeypatch.setattr(engine_mod, "run_task_armed", gated)
        client = ServiceClient(port=daemon.port)
        snap = client.submit(
            small_spec(benchmarks=["SD1", "SPMV"]).to_payload()
        )
        assert started.wait(WAIT)
        assert client.pause(snap["id"])["paused"] is True
        assert client.resume(snap["id"])["paused"] is False
        client.cancel(snap["id"])
        gate.set()
        final = client.wait(snap["id"], timeout=WAIT)
        assert final["state"] == "cancelled"

    def test_n_identical_submissions_execute_once_bit_identically(
        self, daemon, monkeypatch
    ):
        """The acceptance-criterion test: N concurrent identical
        submissions -> one execution, N-1 coalesced, identical results."""
        n_jobs = 3
        executions = []

        def gated(task, key, attempt, faults):
            registry = daemon.manager.inflight
            deadline = time.monotonic() + WAIT
            while registry.follower_count(key) < n_jobs - 1:
                if time.monotonic() > deadline:  # pragma: no cover
                    break
                time.sleep(0.002)
            executions.append(key)
            return real_run_task_armed(task, key, attempt, faults)

        monkeypatch.setattr(engine_mod, "run_task_armed", gated)
        client = ServiceClient(port=daemon.port)
        payload = small_spec().to_payload()
        ids = [client.submit(payload)["id"] for _ in range(n_jobs)]
        finals = [client.wait(jid, timeout=WAIT) for jid in ids]

        assert len(executions) == 1
        assert all(f["state"] == "completed" for f in finals)
        stats = client.stats()
        assert stats["coalesced_total"] == n_jobs - 1
        assert stats["counters"]["executed"] == 1
        assert stats["counters"]["coalesced"] == n_jobs - 1

        metrics = []
        for jid in ids:
            manifest = client.manifest(jid)
            metrics.append(json.dumps(
                [t["metrics"] for t in manifest["tasks"]], sort_keys=True
            ))
        assert len(set(metrics)) == 1, "all jobs must see identical results"
