"""Unit tests for warp schedulers (LRR, GTO, two-level)."""

import pytest

from repro.gpu.schedulers import (
    GTOScheduler,
    LRRScheduler,
    TwoLevelScheduler,
    make_scheduler,
)
from repro.gpu.warp import Warp


def make_warps(n, instrs=3):
    program = [(0, 1)] * instrs  # OP_ALU groups
    return [Warp(i, 0, list(program), age=i) for i in range(n)]


class TestLRR:
    def test_rotates_through_ready_warps(self):
        sched = LRRScheduler()
        warps = make_warps(3)
        picks = [sched.pick(warps, now=0).warp_id for _ in range(3)]
        assert picks == [0, 1, 2]

    def test_skips_stalled_warps(self):
        sched = LRRScheduler()
        warps = make_warps(3)
        warps[1].ready_time = 100
        picks = [sched.pick(warps, now=0).warp_id for _ in range(2)]
        assert picks == [0, 2]

    def test_returns_none_when_all_stalled(self):
        sched = LRRScheduler()
        warps = make_warps(2)
        for w in warps:
            w.ready_time = 50
        assert sched.pick(warps, now=0) is None

    def test_empty_pool(self):
        assert LRRScheduler().pick([], now=0) is None


class TestGTO:
    def test_greedy_sticks_with_same_warp(self):
        sched = GTOScheduler()
        warps = make_warps(3)
        first = sched.pick(warps, now=0)
        second = sched.pick(warps, now=1)
        assert first is second

    def test_falls_back_to_oldest(self):
        sched = GTOScheduler()
        warps = make_warps(3)
        first = sched.pick(warps, now=0)
        first.ready_time = 100  # stall the greedy warp
        nxt = sched.pick(warps, now=1)
        assert nxt is not first
        assert nxt.age == min(w.age for w in warps if w is not first)

    def test_drops_finished_greedy_warp(self):
        sched = GTOScheduler()
        warps = make_warps(2)
        first = sched.pick(warps, now=0)
        first.done = True
        assert sched.pick(warps, now=1) is not first


class TestTwoLevel:
    def test_limits_active_set(self):
        sched = TwoLevelScheduler(active_size=2)
        warps = make_warps(6)
        seen = set()
        for _ in range(4):
            warp = sched.pick(warps, now=0)
            seen.add(warp.warp_id)
        assert len(seen) <= 2

    def test_swaps_in_pending_on_stall(self):
        sched = TwoLevelScheduler(active_size=1)
        warps = make_warps(2)
        first = sched.pick(warps, now=0)
        first.ready_time = 100
        replacement = sched.pick(warps, now=1)
        assert replacement is not None
        assert replacement is not first

    def test_size_validation(self):
        with pytest.raises(ValueError):
            TwoLevelScheduler(active_size=0)


class TestRegistry:
    @pytest.mark.parametrize("name", ["lrr", "gto", "two-level"])
    def test_make_scheduler(self, name):
        assert make_scheduler(name).name == name

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("ccws")
