"""The perf/accuracy ledger: durable appends, trends, drift gating."""

import json

import pytest

from repro.analysis import (
    LEDGER_SCHEMA_VERSION,
    AnalysisError,
    Ledger,
    host_fingerprint,
    make_record,
    record_from_bench,
    record_from_manifest,
)


def _record(value, suite="perf", metric="SPMV/gc.normalized_cost", ts="t0"):
    return make_record(
        suite, {metric: value}, commit="c0", timestamp=ts,
        host={"id": "h0"},
    )


class TestRecords:
    def test_make_record_stamps_schema_and_host(self):
        rec = make_record("s", {"x.ipc": 1.0})
        assert rec["schema_version"] == LEDGER_SCHEMA_VERSION
        assert rec["host"]["id"] == host_fingerprint()["id"]
        assert rec["suite"] == "s"

    def test_make_record_rejects_empty_metrics(self):
        with pytest.raises(AnalysisError):
            make_record("s", {})

    def test_record_from_bench_keeps_normalized_cost(self):
        blob = {"records": [
            {"benchmark": "SPMV", "design": "gc", "normalized_cost": 15.2,
             "best_seconds": 0.2},
            {"benchmark": "BFS", "design": "functional", "mode": "functional",
             "speedup": 8.0, "normalized_cost": 3.0},
        ]}
        rec = record_from_bench(blob, suite="pg", timestamp="t")
        assert rec["metrics"]["SPMV/gc.normalized_cost"] == 15.2
        assert rec["metrics"]["BFS/functional.speedup"] == 8.0

    def test_record_from_bench_rejects_non_bench(self):
        with pytest.raises(AnalysisError):
            record_from_bench({"tasks": []})

    def test_record_from_manifest_keeps_accuracy_metrics(self):
        manifest = {
            "git_commit": "abc",
            "salt": "s",
            "counters": {"task_seconds": 1.5, "retries": 0},
            "tasks": [{
                "label": "simulate:SPMV/gc", "failed": False,
                "fidelity": "timing",
                "metrics": {"l1.miss_rate": 0.5, "core.instructions": 100,
                            "core.cycles": 200},
            }],
        }
        rec = record_from_manifest(manifest, suite="camp", timestamp="t")
        assert rec["commit"] == "abc"
        assert rec["kind"] == "campaign"
        assert rec["metrics"]["simulate:SPMV/gc.l1.miss_rate"] == 0.5
        assert rec["metrics"]["simulate:SPMV/gc.ipc"] == 0.5
        assert rec["metrics"]["campaign.task_seconds"] == 1.5

    def test_record_from_manifest_averages_repeated_labels(self):
        manifest = {"tasks": [
            {"label": "simulate:SPMV/gc", "failed": False,
             "metrics": {"l1.miss_rate": 0.4}},
            {"label": "simulate:SPMV/gc", "failed": False,
             "metrics": {"l1.miss_rate": 0.6}},
        ]}
        rec = record_from_manifest(manifest, timestamp="t")
        assert rec["metrics"]["simulate:SPMV/gc.l1.miss_rate"] == 0.5


class TestLedgerIO:
    def test_append_and_read_roundtrip(self, tmp_path):
        ledger = Ledger(tmp_path / "l.jsonl")
        ledger.append(_record(10.0, ts="t0"))
        ledger.append(_record(11.0, ts="t1"))
        records = ledger.records()
        assert [r["timestamp"] for r in records] == ["t0", "t1"]
        assert ledger.suites() == ["perf"]

    def test_missing_file_reads_empty(self, tmp_path):
        assert Ledger(tmp_path / "absent.jsonl").records() == []

    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "l.jsonl"
        ledger = Ledger(path)
        ledger.append(_record(10.0))
        with open(path, "a") as fh:
            fh.write('{"suite": "perf", "metrics": {"x": ')  # killed mid-write
        records = ledger.records()
        assert len(records) == 1
        # And appends keep working after the torn line.
        ledger.append(_record(11.0, ts="t2"))
        assert len(ledger.records()) == 2

    def test_append_rejects_unstamped_record(self, tmp_path):
        with pytest.raises(AnalysisError):
            Ledger(tmp_path / "l.jsonl").append({"metrics": {"x": 1}})

    def test_suite_filter(self, tmp_path):
        ledger = Ledger(tmp_path / "l.jsonl")
        ledger.append(_record(1.0, suite="a"))
        ledger.append(_record(2.0, suite="b"))
        assert len(ledger.records(suite="a")) == 1
        assert ledger.suites() == ["a", "b"]


class TestTrend:
    def test_trend_carries_rolling_baseline(self, tmp_path):
        ledger = Ledger(tmp_path / "l.jsonl")
        for i, v in enumerate([10.0, 12.0, 11.0]):
            ledger.append(_record(v, ts=f"t{i}"))
        points = ledger.trend("perf", "SPMV/gc.normalized_cost")
        assert [p["value"] for p in points] == [10.0, 12.0, 11.0]
        assert points[0]["baseline"] is None
        assert points[2]["baseline"] == 11.0  # median of 10, 12

    def test_render_trend_table(self, tmp_path):
        ledger = Ledger(tmp_path / "l.jsonl")
        for i in range(3):
            ledger.append(_record(10.0 + i, ts=f"t{i}"))
        text = ledger.render_trend("perf", "SPMV/gc.normalized_cost")
        assert "rolling median" in text
        assert "t2" in text


class TestCheck:
    def _seed_history(self, ledger, values):
        for i, v in enumerate(values):
            ledger.append(_record(v, ts=f"t{i}"))

    def test_stable_history_passes(self, tmp_path):
        ledger = Ledger(tmp_path / "l.jsonl")
        self._seed_history(ledger, [10.0, 10.2, 9.9, 10.1, 10.0])
        result = ledger.check(suite="perf")
        assert result.ok
        assert result.checked == 1

    def test_injected_regression_fails(self, tmp_path):
        # The acceptance scenario: a healthy rolling baseline, then one
        # synthetic 2x regression appended — the check must fail.
        ledger = Ledger(tmp_path / "l.jsonl")
        self._seed_history(ledger, [10.0, 10.2, 9.9, 10.1, 10.0])
        assert ledger.check(suite="perf").ok
        ledger.append(_record(20.0, ts="t-regressed"))
        result = ledger.check(suite="perf")
        assert not result.ok
        (failure,) = result.failures
        assert failure["metric"] == "SPMV/gc.normalized_cost"
        assert failure["ratio"] == pytest.approx(2.0, rel=0.05)
        assert "FAIL" in result.render()

    def test_improvement_never_fails(self, tmp_path):
        ledger = Ledger(tmp_path / "l.jsonl")
        self._seed_history(ledger, [10.0, 10.1, 9.9, 10.0])
        ledger.append(_record(5.0, ts="t-fast"))  # 2x faster: fine
        assert ledger.check(suite="perf").ok

    def test_higher_is_better_polarity_respected(self, tmp_path):
        ledger = Ledger(tmp_path / "l.jsonl")
        for i, v in enumerate([2.0, 2.1, 1.9, 2.0]):
            ledger.append(_record(v, metric="SPMV/gc.ipc", ts=f"t{i}"))
        ledger.append(_record(1.0, metric="SPMV/gc.ipc", ts="t-slow"))
        result = ledger.check(suite="perf")
        assert not result.ok  # IPC halved: that IS a regression

    def test_noisy_metric_needs_bigger_excursion(self, tmp_path):
        # Noisy history: MAD ~1.0 around median ~10.  A value at 11.5
        # exceeds 10% relative drift but not 3 MADs — not a regression.
        ledger = Ledger(tmp_path / "l.jsonl")
        self._seed_history(ledger, [9.0, 11.0, 8.5, 11.5, 10.0, 9.5])
        ledger.append(_record(11.5, ts="t-jitter"))
        assert ledger.check(suite="perf").ok

    def test_short_history_passes_with_note(self, tmp_path):
        ledger = Ledger(tmp_path / "l.jsonl")
        self._seed_history(ledger, [10.0, 10.0])
        result = ledger.check(suite="perf")
        assert result.ok
        assert "insufficient history" in result.note

    def test_empty_ledger_passes(self, tmp_path):
        result = Ledger(tmp_path / "l.jsonl").check(suite="perf")
        assert result.ok
        assert "empty ledger" in result.note

    def test_neutral_metrics_are_skipped(self, tmp_path):
        ledger = Ledger(tmp_path / "l.jsonl")
        for i in range(4):
            ledger.append(make_record(
                "perf", {"SPMV/gc.instructions": 100.0 * (i + 1)},
                commit="c", timestamp=f"t{i}", host={"id": "h"},
            ))
        result = ledger.check(suite="perf")
        assert result.ok
        assert result.checked == 0 and result.skipped > 0

    def test_explicit_record_not_baselined_against_itself(self, tmp_path):
        ledger = Ledger(tmp_path / "l.jsonl")
        self._seed_history(ledger, [10.0, 10.0, 10.0, 10.0])
        bad = _record(20.0, ts="t-bad")
        ledger.append(bad)
        result = ledger.check(bad)
        assert not result.ok

    def test_ledger_line_is_sorted_json(self, tmp_path):
        path = tmp_path / "l.jsonl"
        Ledger(path).append(_record(10.0))
        line = path.read_text().splitlines()[0]
        parsed = json.loads(line)
        assert line == json.dumps(parsed, sort_keys=True)
