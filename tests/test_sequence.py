"""Tests for sequential multi-kernel execution."""

import pytest

from repro.sim.designs import make_design
from repro.sim.simulator import simulate, simulate_sequence
from repro.trace.suite import build_benchmark

from conftest import alu, ld, make_kernel


class TestSequence:
    def test_aggregates_instructions(self, tiny_config):
        k1 = make_kernel([[ld(0), alu(2)]], ctas=2, name="k1")
        k2 = make_kernel([[ld(8), alu(3)]], ctas=2, name="k2")
        result = simulate_sequence([k1, k2], tiny_config)
        assert result.benchmark == "k1+k2"
        assert result.instructions == k1.instruction_count() + k2.instruction_count()

    def test_cycles_exceed_single_kernel(self, tiny_config):
        kernel = make_kernel([[ld(0), alu(2)] * 4], ctas=2)
        single = simulate(kernel, tiny_config)
        double = simulate_sequence([kernel, kernel], tiny_config)
        assert double.cycles > single.cycles

    def test_warm_cache_across_kernels(self, tiny_config):
        # Kernel 2 re-reads kernel 1's lines.  CTA placement rotates, so
        # it may land on a different core (cold L1) — but the shared L2
        # stays warm and must serve it without DRAM traffic.
        k1 = make_kernel([[ld(0), ld(1)]], ctas=1, name="producer")
        k2 = make_kernel([[ld(0), ld(1)]], ctas=1, name="consumer")
        warm = simulate_sequence([k1, k2], tiny_config)
        assert warm.l2.hits + warm.l1.hits >= 2
        assert warm.dram_requests == 2  # only kernel 1's cold misses

    def test_empty_sequence_rejected(self, tiny_config):
        with pytest.raises(ValueError, match="at least one kernel"):
            simulate_sequence([], tiny_config)

    def test_reuse_generations_counted_once(self, tiny_config):
        kernel = make_kernel([[ld(0)]], ctas=1)
        result = simulate_sequence([kernel, kernel], tiny_config)
        # Finalize runs once at the end of the sequence: generations equal
        # fills (one per L1 the rotating CTA placement touched), with no
        # per-kernel double counting.
        assert result.l1.reuse.generations == result.l1.fills

    def test_srad_style_sd1_then_sd2(self, tiny_config):
        sd1 = build_benchmark("SD1", scale=0.05)
        sd2 = build_benchmark("SD2", scale=0.05)
        result = simulate_sequence([sd1, sd2], tiny_config, make_design("gc"))
        assert result.benchmark == "SD1+SD2"
        assert result.instructions == (
            sd1.instruction_count() + sd2.instruction_count()
        )
