"""Tests for sequential multi-kernel execution."""

import pytest

from repro.obs import Observability
from repro.obs.events import EV_CTA_LAUNCH
from repro.sim.designs import make_design
from repro.sim.simulator import simulate, simulate_sequence
from repro.stats.timeline import Timeline
from repro.trace.suite import build_benchmark

from conftest import alu, ld, make_kernel


class TestSequence:
    def test_aggregates_instructions(self, tiny_config):
        k1 = make_kernel([[ld(0), alu(2)]], ctas=2, name="k1")
        k2 = make_kernel([[ld(8), alu(3)]], ctas=2, name="k2")
        result = simulate_sequence([k1, k2], tiny_config)
        assert result.benchmark == "k1+k2"
        assert result.instructions == k1.instruction_count() + k2.instruction_count()

    def test_cycles_exceed_single_kernel(self, tiny_config):
        kernel = make_kernel([[ld(0), alu(2)] * 4], ctas=2)
        single = simulate(kernel, tiny_config)
        double = simulate_sequence([kernel, kernel], tiny_config)
        assert double.cycles > single.cycles

    def test_warm_cache_across_kernels(self, tiny_config):
        # Kernel 2 re-reads kernel 1's lines.  CTA placement rotates, so
        # it may land on a different core (cold L1) — but the shared L2
        # stays warm and must serve it without DRAM traffic.
        k1 = make_kernel([[ld(0), ld(1)]], ctas=1, name="producer")
        k2 = make_kernel([[ld(0), ld(1)]], ctas=1, name="consumer")
        warm = simulate_sequence([k1, k2], tiny_config)
        assert warm.l2.hits + warm.l1.hits >= 2
        assert warm.dram_requests == 2  # only kernel 1's cold misses

    def test_empty_sequence_rejected(self, tiny_config):
        with pytest.raises(ValueError, match="at least one kernel"):
            simulate_sequence([], tiny_config)

    def test_reuse_generations_counted_once(self, tiny_config):
        kernel = make_kernel([[ld(0)]], ctas=1)
        result = simulate_sequence([kernel, kernel], tiny_config)
        # Finalize runs once at the end of the sequence: generations equal
        # fills (one per L1 the rotating CTA placement touched), with no
        # per-kernel double counting.
        assert result.l1.reuse.generations == result.l1.fills

    def test_srad_style_sd1_then_sd2(self, tiny_config):
        sd1 = build_benchmark("SD1", scale=0.05)
        sd2 = build_benchmark("SD2", scale=0.05)
        result = simulate_sequence([sd1, sd2], tiny_config, make_design("gc"))
        assert result.benchmark == "SD1+SD2"
        assert result.instructions == (
            sd1.instruction_count() + sd2.instruction_count()
        )


class TestSequenceInstrumentation:
    def test_timeline_spans_every_kernel(self, tiny_config):
        kernel = make_kernel([[ld(0), alu(2)] * 8], ctas=4, name="k")
        tl = Timeline(interval=50)
        result = simulate_sequence([kernel, kernel], tiny_config, timeline=tl)
        points = tl.points
        assert points, "timeline collected no samples"
        # One timeline covers the whole sequence: sampling continues past
        # the first kernel's completion and cycles/instructions are
        # monotonic across the kernel boundary.
        assert points[-1].cycle > result.cycles // 2
        instrs = [p.instructions for p in points]
        assert instrs == sorted(instrs)
        assert instrs[-1] == result.instructions

    def test_obs_stream_spans_every_kernel(self, tiny_config):
        kernel = make_kernel([[ld(0)]], ctas=2, name="k")
        obs = Observability.in_memory()
        simulate_sequence([kernel, kernel], tiny_config, obs=obs)
        launches = [
            e for e in obs.ring().events() if e.kind == EV_CTA_LAUNCH
        ]
        assert len(launches) == 4  # 2 CTAs x 2 kernels, one event stream
        # The second kernel's CTAs are stamped at the warm GPU's running
        # clock, not cycle zero — one event stream, one time axis.
        assert launches[-1].cycle > launches[0].cycle

    def test_per_kernel_extras_keyed_by_name(self, tiny_config):
        k1 = make_kernel([[ld(0), alu(2)]], ctas=2, name="sd1")
        k2 = make_kernel([[ld(8), alu(3)]], ctas=2, name="sd2")
        result = simulate_sequence([k1, k2], tiny_config, make_design("gc"))
        per_kernel = result.extras["per_kernel"]
        assert set(per_kernel) == {"sd1", "sd2"}
        # Snapshots are cumulative, taken at each kernel's completion:
        # sd2's view includes sd1's accesses, and the final kernel's
        # snapshot agrees with the sequence-level counters.
        assert (
            per_kernel["sd1"]["metrics"]["l1.loads"]
            < per_kernel["sd2"]["metrics"]["l1.loads"]
        )
        assert (
            per_kernel["sd2"]["metrics"]["l1.loads"] == result.l1.loads
        )

    def test_duplicate_kernel_names_get_indexed_keys(self, tiny_config):
        kernel = make_kernel([[ld(0), alu(2)]], ctas=1, name="iter")
        result = simulate_sequence(
            [kernel, kernel, kernel], tiny_config, make_design("gc")
        )
        per_kernel = result.extras["per_kernel"]
        assert set(per_kernel) == {"iter", "iter#1", "iter#2"}
        # Later snapshots accumulate more work than earlier ones.
        assert (
            per_kernel["iter"]["metrics"]["l1.loads"]
            < per_kernel["iter#1"]["metrics"]["l1.loads"]
            < per_kernel["iter#2"]["metrics"]["l1.loads"]
        )
