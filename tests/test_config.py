"""Unit tests for GPUConfig (Table 2 parameters)."""

import pytest

from repro.sim.config import GPUConfig


class TestDefaults:
    def test_table2_values(self):
        cfg = GPUConfig()
        assert cfg.num_cores == 16
        assert cfg.max_warps_per_core == 48
        assert cfg.l1_size == 32 * 1024
        assert cfg.l1_ways == 4
        assert cfg.line_size == 128
        assert cfg.l2_bank_size == 128 * 1024
        assert cfg.l2_ways == 16
        assert cfg.num_partitions == 8
        assert cfg.l1_mshr_entries == 32
        assert cfg.warp_scheduler == "lrr"
        assert cfg.dram_banks_per_mc == 4

    def test_derived_geometry(self):
        cfg = GPUConfig()
        assert cfg.l1_sets == 64
        assert cfg.l2_bank_sets == 64
        assert cfg.l2_total_size == 1024 * 1024  # 1 MB
        assert cfg.partition_shift == 3

    def test_gddr5_timing(self):
        t = GPUConfig().dram_timing
        assert (t.tCL, t.tRP, t.tRC) == (12, 12, 40)


class TestVariants:
    def test_with_l1_size(self):
        cfg = GPUConfig().with_l1_size(64 * 1024)
        assert cfg.l1_size == 64 * 1024
        assert cfg.l1_sets == 128
        assert cfg.num_cores == 16  # everything else preserved

    def test_with_scheduler(self):
        assert GPUConfig().with_scheduler("gto").warp_scheduler == "gto"

    def test_frozen(self):
        with pytest.raises(Exception):
            GPUConfig().num_cores = 4

    def test_describe_mentions_key_facts(self):
        text = GPUConfig().describe()
        assert "16 cores" in text
        assert "32KB" in text


class TestValidation:
    def test_core_count(self):
        with pytest.raises(ValueError):
            GPUConfig(num_cores=0)

    def test_partition_power_of_two(self):
        with pytest.raises(ValueError):
            GPUConfig(num_partitions=6)

    def test_l1_geometry(self):
        with pytest.raises(ValueError):
            GPUConfig(l1_size=1000)

    def test_l2_geometry(self):
        with pytest.raises(ValueError):
            GPUConfig(l2_bank_size=1000)

    def test_warp_slots(self):
        with pytest.raises(ValueError):
            GPUConfig(max_warps_per_core=0)
