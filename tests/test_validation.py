"""Tests for the cross-model validation tool."""

import pytest

from repro.sim.designs import make_design
from repro.sim.validation import validate_run
from repro.trace.suite import build_benchmark

from conftest import alu, ld, make_kernel


class TestValidateRun:
    def test_baseline_passes_on_benchmark(self, tiny_config):
        trace = build_benchmark("SPMV", scale=0.05)
        report = validate_run(trace, tiny_config)
        assert report.ok, report.summary()
        assert len(report.checks) >= 10

    def test_gcache_passes(self, tiny_config):
        trace = build_benchmark("SSC", scale=0.05)
        report = validate_run(trace, tiny_config, make_design("gc"))
        assert report.ok, report.summary()

    def test_hand_built_kernel(self, tiny_config):
        kernel = make_kernel(
            [[op for i in range(6) for op in (ld(i * 8), alu(2))]], ctas=4
        )
        report = validate_run(kernel, tiny_config)
        assert report.ok, report.summary()

    def test_summary_format(self, tiny_config):
        trace = build_benchmark("SD1", scale=0.05)
        report = validate_run(trace, tiny_config)
        assert "SD1/bs" in report.summary()
        assert "OK" in report.summary()

    def test_tolerance_zero_can_fail(self, tiny_config):
        # With a zero tolerance the two models' interleaving differences
        # surface; the report must fail gracefully, not crash.
        trace = build_benchmark("SPMV", scale=0.05)
        report = validate_run(trace, tiny_config, miss_rate_tolerance=0.0)
        assert "timing vs replay" in " ".join(report.checks)
        assert isinstance(report.ok, bool)

    @pytest.mark.parametrize(
        "name,tolerance",
        [
            ("BFS", 0.15),
            # KMN's interleaved cyclic scan is hypersensitive to warp
            # ordering on the tiny 2 KB test cache: accidental
            # coincidences under the replay's round-robin interleave do
            # not occur under event-driven timing. Allow a wider envelope.
            ("KMN", 0.25),
            ("FWT", 0.15),
        ],
    )
    def test_more_benchmarks(self, tiny_config, name, tolerance):
        trace = build_benchmark(name, scale=0.05)
        report = validate_run(trace, tiny_config, miss_rate_tolerance=tolerance)
        assert report.ok, report.summary()
