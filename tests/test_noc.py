"""Unit tests for the 2D-mesh interconnect model."""

import pytest

from repro.noc.mesh import MeshNoC


class TestTopology:
    def test_grid_covers_all_nodes(self):
        noc = MeshNoC(num_cores=16, num_partitions=8)
        assert noc.rows * noc.cols >= noc.num_nodes

    def test_node_mapping(self):
        noc = MeshNoC(num_cores=4, num_partitions=2)
        assert noc.core_node(0) == 0
        assert noc.partition_node(0) == 4

    def test_node_range_validated(self):
        noc = MeshNoC(num_cores=4, num_partitions=2)
        with pytest.raises(ValueError):
            noc.core_node(4)
        with pytest.raises(ValueError):
            noc.partition_node(2)

    def test_hops_manhattan(self):
        noc = MeshNoC(num_cores=4, num_partitions=2)  # grid 3x2 or so
        assert noc.hops(0, 0) == 0
        # Adjacent nodes in the same row are one hop apart.
        assert noc.hops(0, 1) == 1


class TestTiming:
    def test_self_send_is_free(self):
        noc = MeshNoC()
        assert noc.send(0, 0, start=5, flits=4) == 5

    def test_latency_grows_with_distance(self):
        noc = MeshNoC(num_cores=16, num_partitions=8)
        near = noc.send(0, 1, start=0, flits=1)
        noc2 = MeshNoC(num_cores=16, num_partitions=8)
        far = noc2.send(0, 23, start=0, flits=1)
        assert far > near

    def test_data_packets_slower_than_ctrl(self):
        a = MeshNoC()
        b = MeshNoC()
        ctrl = a.send_request(0, 7, start=0)
        data = b.send_response(7, 0, start=0)
        assert data >= ctrl

    def test_link_contention_delays_second_packet(self):
        noc = MeshNoC()
        first = noc.send(0, 1, start=0, flits=8)
        second = noc.send(0, 1, start=0, flits=8)
        assert second > first

    def test_contention_clears_over_time(self):
        noc = MeshNoC()
        noc.send(0, 1, start=0, flits=4)
        later = noc.send(0, 1, start=1000, flits=4)
        baseline = MeshNoC().send(0, 1, start=1000, flits=4)
        assert later == baseline


class TestAccounting:
    def test_packet_and_hop_counts(self):
        noc = MeshNoC()
        noc.send(0, 1, start=0, flits=1)
        assert noc.packets_sent == 1
        assert noc.total_hops == noc.hops(0, 1)
        assert noc.average_hops == pytest.approx(noc.hops(0, 1))

    def test_flit_sizing(self):
        noc = MeshNoC(channel_width=32, ctrl_size=8, data_size=128)
        assert noc.ctrl_flits == 1
        assert noc.data_flits == 5  # (128+8)/32 rounded up

    def test_validation(self):
        with pytest.raises(ValueError):
            MeshNoC(num_cores=0)
        with pytest.raises(ValueError):
            MeshNoC(channel_width=0)
