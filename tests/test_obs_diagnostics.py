"""Tests for the G-Cache convergence diagnostics analyzer."""

import pytest

from repro.obs import GCacheDiagnostics, Observability
from repro.obs.events import (
    EV_BYPASS_DECISION,
    EV_M_ADAPT,
    EV_SWITCH_OFF,
    EV_SWITCH_ON,
    EV_SWITCH_SHUTDOWN,
    EV_VICTIM_SET,
    Event,
)
from repro.sim.designs import make_design
from repro.sim.simulator import GPU

from conftest import ld, make_kernel

_seq = 0


def ev(kind, cycle, src="L1[0]", **args):
    global _seq
    event = Event(kind, cycle, src, _seq, args)
    _seq += 1
    return event


class TestDutyCycles:
    def test_on_off_interval_measured(self):
        events = [
            ev(EV_SWITCH_ON, 100, set=3),
            ev(EV_SWITCH_OFF, 400, set=3),
        ]
        diag = GCacheDiagnostics(events, end_cycle=1000)
        assert diag.duty_cycles() == {("L1[0]", 3): pytest.approx(0.3)}

    def test_still_on_switch_credited_to_end(self):
        diag = GCacheDiagnostics([ev(EV_SWITCH_ON, 600, set=0)], end_cycle=1000)
        assert diag.duty_cycles()[("L1[0]", 0)] == pytest.approx(0.4)

    def test_shutdown_closes_every_set_of_that_l1(self):
        events = [
            ev(EV_SWITCH_ON, 0, set=0),
            ev(EV_SWITCH_ON, 0, set=1),
            ev(EV_SWITCH_ON, 0, src="L1[1]", set=0),
            ev(EV_SWITCH_SHUTDOWN, 500, interval=500),
        ]
        diag = GCacheDiagnostics(events, end_cycle=1000)
        duty = diag.duty_cycles()
        assert duty[("L1[0]", 0)] == pytest.approx(0.5)
        assert duty[("L1[0]", 1)] == pytest.approx(0.5)
        # The other L1 was not shut down: on until end of run.
        assert duty[("L1[1]", 0)] == pytest.approx(1.0)
        assert diag.shutdowns == 1

    def test_repeated_on_does_not_restart_interval(self):
        events = [
            ev(EV_SWITCH_ON, 100, set=0),
            ev(EV_SWITCH_ON, 300, set=0),
            ev(EV_SWITCH_OFF, 500, set=0),
        ]
        diag = GCacheDiagnostics(events, end_cycle=1000)
        assert diag.duty_cycles()[("L1[0]", 0)] == pytest.approx(0.4)

    def test_set_duty_averages_across_l1s(self):
        events = [
            ev(EV_SWITCH_ON, 0, set=5),
            ev(EV_SWITCH_OFF, 400, set=5),
            ev(EV_SWITCH_ON, 0, src="L1[1]", set=5),
            ev(EV_SWITCH_OFF, 800, src="L1[1]", set=5),
        ]
        diag = GCacheDiagnostics(events, end_cycle=1000)
        assert diag.set_duty_cycles() == {5: pytest.approx(0.6)}

    def test_zero_length_run(self):
        diag = GCacheDiagnostics([ev(EV_SWITCH_ON, 0, set=0)], end_cycle=0)
        assert diag.duty_cycles()[("L1[0]", 0)] == 0.0


class TestDetectionAndReasons:
    def test_time_to_first_detection_ignores_hintless_observations(self):
        events = [
            ev(EV_VICTIM_SET, 100, src="L2[0]", l1="L1[2]", hint=False),
            ev(EV_VICTIM_SET, 250, src="L2[0]", l1="L1[2]", hint=True),
            ev(EV_VICTIM_SET, 400, src="L2[1]", l1="L1[0]", hint=True),
        ]
        diag = GCacheDiagnostics(events)
        assert diag.time_to_first_detection == 250
        assert diag.first_detection == {"L1[2]": 250, "L1[0]": 400}

    def test_no_detection(self):
        diag = GCacheDiagnostics([])
        assert diag.time_to_first_detection is None

    def test_bypass_reason_breakdown(self):
        events = [
            ev(EV_BYPASS_DECISION, 10, set=0, reason="all_hot"),
            ev(EV_BYPASS_DECISION, 20, set=1, reason="all_hot_victim_th"),
            ev(EV_BYPASS_DECISION, 30, set=0, reason="all_hot"),
        ]
        diag = GCacheDiagnostics(events)
        assert diag.bypass_reasons == {"all_hot": 2, "all_hot_victim_th": 1}
        assert diag.total_bypasses == 3

    def test_m_trajectory_in_cycle_order(self):
        events = [
            ev(EV_M_ADAPT, 500, m=2),
            ev(EV_M_ADAPT, 200, m=1),  # emitted out of cycle order
        ]
        diag = GCacheDiagnostics(events)
        assert diag.m_trajectory == [(200, 1), (500, 2)]


class TestRender:
    def test_report_sections(self):
        events = [
            ev(EV_SWITCH_ON, 0, set=1),
            ev(EV_SWITCH_OFF, 500, set=1),
            ev(EV_VICTIM_SET, 100, src="L2[0]", l1="L1[0]", hint=True),
            ev(EV_BYPASS_DECISION, 150, set=1, reason="all_hot"),
            ev(EV_M_ADAPT, 300, m=2),
        ]
        text = GCacheDiagnostics(events, end_cycle=1000).render(top_sets=5)
        assert "G-Cache convergence" in text
        assert "time to first detection" in text
        assert "Bypass reasons" in text
        assert "Per-set switch duty cycle" in text
        assert "adaptive-M trajectory" in text

    def test_empty_stream_renders(self):
        text = GCacheDiagnostics([]).render()
        assert "never" in text


class TestIntegration:
    def test_traced_gcache_run_reconstructs_convergence(self, tiny_config):
        kernel = make_kernel(
            [[ld(i) for i in range(24)], [ld(i + 8) for i in range(24)]], ctas=4
        )
        obs = Observability.in_memory()
        result = GPU(tiny_config, make_design("gc"), obs=obs).run(kernel)
        diag = obs.diagnostics(end_cycle=result.cycles)
        assert diag.num_events == obs.bus.events_emitted
        for duty in diag.duty_cycles().values():
            assert 0.0 <= duty <= 1.0
        # Traced bypass decisions must agree with the cache counters.
        assert diag.total_bypasses == result.l1.bypasses
