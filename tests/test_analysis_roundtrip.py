"""Property: manifest -> JSON -> analysis loader is bit-identical.

The analysis layer's verdicts are only trustworthy if loading never
perturbs a counter — no float reformatting, no dropped keys, no
histogram mangling.  Synthetic manifests (hypothesis) pin the property
over arbitrary metric payloads; real :class:`CampaignEngine` manifests
pin it for the shapes production actually emits, including interrupted
partial manifests and quarantined-cache accounting.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import flatten_metrics, load_manifest, parse_manifest
from repro.runner import CampaignEngine, ResultCache, Task
from repro.runner.engine import MANIFEST_SCHEMA_VERSION

# JSON-representable metric values: ints (including huge ones) and
# finite floats.  NaN is excluded — it does not round-trip through
# equality — and infinities are not valid strict JSON.
_scalars = st.one_of(
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
)

#: A metrics snapshot: flat scalars plus histogram-style sub-dicts.
_metrics = st.dictionaries(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz._", min_size=1, max_size=20
    ).filter(lambda s: not s.startswith(".")),
    st.one_of(
        _scalars,
        st.dictionaries(
            st.sampled_from(["count", "mean", "p50", "p99", "max"]),
            _scalars, min_size=1, max_size=5,
        ),
    ),
    max_size=12,
)


def _raw_manifest(task_metrics, interrupted=False, version=MANIFEST_SCHEMA_VERSION):
    return {
        "schema_version": version,
        "git_commit": "cafebabe",
        "salt": "prop",
        "jobs": 1,
        "generated_at": "2026-01-01T00:00:00+0000",
        "interrupted": interrupted,
        "cache": {"enabled": True, "hits": 3, "misses": 1,
                  "puts": 1, "corrupt": 1, "quarantined": 1},
        "counters": {"tasks": len(task_metrics)},
        "tasks": [
            {
                "label": f"simulate:SPMV/gc",
                "key": f"k{i}",
                "cached": False,
                "seconds": 0.1,
                "attempts": 1,
                "failed": False,
                "metrics": metrics,
            }
            for i, metrics in enumerate(task_metrics)
        ],
    }


class TestSyntheticRoundtrip:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(_metrics, min_size=1, max_size=3), st.booleans())
    def test_every_counter_survives_json_roundtrip(self, payloads, interrupted):
        raw = _raw_manifest(payloads, interrupted=interrupted)
        decoded = json.loads(json.dumps(raw))
        manifest = parse_manifest(decoded)
        assert manifest.interrupted is interrupted
        assert manifest.cache_counters["quarantined"] == 1
        for task, original in zip(manifest.tasks, payloads):
            expected = flatten_metrics(original)
            got = task.flat_metrics()
            assert got == expected
            # Bit-identical, not merely ==: 1 and 1.0 compare equal but
            # are different payloads; repr distinguishes them.
            assert {k: repr(v) for k, v in got.items()} == \
                {k: repr(v) for k, v in expected.items()}

    @settings(max_examples=20, deadline=None)
    @given(st.lists(_metrics, min_size=1, max_size=2))
    def test_v1_manifest_same_property(self, payloads):
        raw = _raw_manifest(payloads)
        del raw["schema_version"], raw["git_commit"]
        manifest = parse_manifest(json.loads(json.dumps(raw)))
        assert manifest.schema_version == 1
        for task, original in zip(manifest.tasks, payloads):
            assert task.flat_metrics() == flatten_metrics(original)


@pytest.fixture(scope="module")
def engine_and_path(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("roundtrip")
    engine = CampaignEngine(jobs=1, salt="roundtrip")
    engine.run([
        Task(kind="simulate", benchmark="SD1", design=d, scale=0.05)
        for d in ("bs", "gc")
    ])
    path = tmp / "manifest.json"
    engine.write_manifest(path)
    return engine, path


class TestEngineRoundtrip:
    def test_task_metrics_bit_identical(self, engine_and_path):
        engine, path = engine_and_path
        source = engine.manifest()
        loaded = load_manifest(path)
        assert loaded.schema_version == MANIFEST_SCHEMA_VERSION
        assert len(loaded.tasks) == len(source["tasks"])
        for task, entry in zip(loaded.tasks, source["tasks"]):
            assert task.label == entry["label"]
            assert task.kind == entry["kind"]
            assert task.benchmark == entry["benchmark"]
            assert task.design == entry["design"]
            assert task.flat_metrics() == flatten_metrics(entry["metrics"])

    def test_campaign_counters_bit_identical(self, engine_and_path):
        engine, path = engine_and_path
        source = engine.manifest()
        loaded = load_manifest(path)
        assert loaded.counters == source["counters"]
        assert loaded.git_commit == source["git_commit"]

    def test_interrupted_partial_manifest_roundtrips(self, tmp_path):
        engine = CampaignEngine(jobs=1, salt="interrupted")
        engine.run([Task(kind="simulate", benchmark="SD1", design="bs",
                         scale=0.05)])
        engine.interrupted = True  # what the Ctrl-C handler records
        path = tmp_path / "partial.json"
        engine.write_manifest(path)
        loaded = load_manifest(path)
        assert loaded.interrupted is True
        source = engine.manifest()
        assert loaded.tasks[0].flat_metrics() == \
            flatten_metrics(source["tasks"][0]["metrics"])

    def test_quarantined_cache_counters_roundtrip(self, tmp_path):
        cache_dir = tmp_path / "cache"
        tasks = [Task(kind="simulate", benchmark="SD1", design="bs",
                      scale=0.05)]
        first = CampaignEngine(jobs=1, cache=ResultCache(cache_dir))
        first.run(tasks)
        # Corrupt every cached entry; the next campaign's cache reads
        # detect the bad digests and quarantine the files.
        corrupted = 0
        for entry in cache_dir.rglob("*.pkl"):
            entry.write_bytes(b"garbage")
            corrupted += 1
        assert corrupted > 0
        second = CampaignEngine(jobs=1, cache=ResultCache(cache_dir))
        second.run(tasks)
        path = tmp_path / "quarantined.json"
        second.write_manifest(path)
        loaded = load_manifest(path)
        assert loaded.cache_counters["quarantined"] >= 1
        assert loaded.cache_counters == \
            {k: v for k, v in second.manifest()["cache"].items()}
