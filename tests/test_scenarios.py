"""Tests for the declarative scenario layer (repro.scenarios).

Covers the spec schema (typed errors with actionable field paths),
canonicalization and content addressing, the primitive registry's
drop-in contract, the builder, the byte-identical Table-1 differential
pins, and the Task / EvalSuite / CLI integration.
"""

import json

import pytest

from repro.runner import CampaignEngine, Task
from repro.scenarios import (
    PRIMITIVES,
    Field,
    Primitive,
    ScenarioSpec,
    SpecError,
    TABLE1_BENCHMARKS,
    build_scenario,
    canonical_spec,
    load_spec,
    loads_spec,
    register_primitive,
    spec_digest,
    table1_spec,
    validate_spec,
)
from repro.trace.io import dumps_trace, load_trace
from repro.trace.suite import build_benchmark
from repro.trace.trace import OP_BAR


def minimal_spec(**overrides):
    """A small valid spec document (one working_set phase)."""
    doc = {
        "format": "repro-scenario",
        "version": 1,
        "name": "unit",
        "base_ctas": 8,
        "regions": ["r0"],
        "phases": [
            {
                "primitive": "working_set",
                "params": {"region": "r0", "tile_lines": 16, "reads": 8},
            }
        ],
    }
    doc.update(overrides)
    return doc


class TestSchemaValidation:
    def test_minimal_spec_validates(self):
        spec = validate_spec(minimal_spec())
        assert isinstance(spec, ScenarioSpec)
        assert spec.name == "unit"
        assert spec.scale == 1.0  # default filled
        assert spec.phases[0].params["scope"] == "global"  # default filled

    def test_wrong_format(self):
        with pytest.raises(SpecError) as err:
            validate_spec(minimal_spec(format="other"))
        assert err.value.path == "format"

    def test_wrong_version(self):
        with pytest.raises(SpecError, match="unsupported scenario version"):
            validate_spec(minimal_spec(version=99))

    def test_unknown_top_level_field_names_path(self):
        with pytest.raises(SpecError) as err:
            validate_spec(minimal_spec(wibble=3))
        assert err.value.path == "wibble"

    def test_empty_name_rejected(self):
        with pytest.raises(SpecError) as err:
            validate_spec(minimal_spec(name=""))
        assert err.value.path == "name"

    def test_scale_out_of_range_has_dollar_path(self):
        with pytest.raises(SpecError) as err:
            validate_spec(minimal_spec(scale=-1.0))
        assert err.value.path == "$.scale"

    def test_seed_bool_rejected(self):
        with pytest.raises(SpecError) as err:
            validate_spec(minimal_spec(seed=True))
        assert err.value.path == "$.seed"

    def test_duplicate_region(self):
        with pytest.raises(SpecError) as err:
            validate_spec(minimal_spec(regions=["r0", "r0"]))
        assert err.value.path == "regions[1]"

    def test_unknown_primitive_path_and_suggestions(self):
        doc = minimal_spec(phases=[{"primitive": "warp_drive"}])
        with pytest.raises(SpecError) as err:
            validate_spec(doc)
        assert err.value.path == "phases[0].primitive"
        assert "working_set" in err.value.reason  # lists the registry

    def test_unknown_param_path(self):
        doc = minimal_spec()
        doc["phases"][0]["params"]["reds"] = 8
        with pytest.raises(SpecError) as err:
            validate_spec(doc)
        assert err.value.path == "phases[0].params.reds"

    def test_missing_required_param_path(self):
        doc = minimal_spec()
        del doc["phases"][0]["params"]["region"]
        with pytest.raises(SpecError) as err:
            validate_spec(doc)
        assert err.value.path == "phases[0].params.region"

    def test_param_out_of_range(self):
        doc = minimal_spec()
        doc["phases"][0]["params"]["reads"] = 0
        with pytest.raises(SpecError, match="expected >= 1"):
            validate_spec(doc)

    def test_bool_not_accepted_as_int(self):
        doc = minimal_spec()
        doc["phases"][0]["params"]["reads"] = True
        with pytest.raises(SpecError, match="expected an int"):
            validate_spec(doc)

    def test_undeclared_region_in_param(self):
        doc = minimal_spec()
        doc["phases"][0]["params"]["region"] = "nope"
        with pytest.raises(SpecError) as err:
            validate_spec(doc)
        assert "declared regions" in err.value.reason

    def test_step_error_paths_reach_into_body(self):
        doc = minimal_spec(phases=[{
            "primitive": "stream",
            "params": {"body": [
                {"kind": "load", "region": "r0"},
                {"kind": "teleport"},
            ]},
        }])
        with pytest.raises(SpecError) as err:
            validate_spec(doc)
        assert err.value.path == "phases[0].params.body[1].kind"

    def test_phase_repeat_bounds(self):
        doc = minimal_spec()
        doc["phases"][0]["repeat"] = 0
        with pytest.raises(SpecError) as err:
            validate_spec(doc)
        assert err.value.path == "phases[0].repeat"

    def test_error_message_carries_path_and_reason(self):
        doc = minimal_spec(regions=[])
        with pytest.raises(SpecError) as err:
            validate_spec(doc)
        assert str(err.value).startswith("regions: ")

    def test_loads_spec_rejects_bad_json(self):
        with pytest.raises(SpecError, match="not valid JSON"):
            loads_spec("{nope", source="bad.json")


class TestCanonicalization:
    def test_key_order_and_defaults_do_not_change_digest(self):
        explicit = minimal_spec(scale=1.0, seed=0, warps_per_cta=8,
                                scratchpad_per_cta=0)
        explicit["phases"][0]["repeat"] = 1
        explicit["phases"][0]["barrier_after"] = False
        reordered = dict(reversed(list(minimal_spec().items())))
        assert spec_digest(explicit) == spec_digest(minimal_spec())
        assert spec_digest(reordered) == spec_digest(minimal_spec())

    def test_any_knob_changes_digest(self):
        base = spec_digest(minimal_spec())
        tweaked = minimal_spec()
        tweaked["phases"][0]["params"]["tile_lines"] = 17
        assert spec_digest(tweaked) != base

    def test_scale_seed_overrides_enter_digest(self):
        doc = minimal_spec()
        assert spec_digest(doc, scale=0.5) != spec_digest(doc)
        assert spec_digest(doc, seed=7) != spec_digest(doc)

    def test_canonical_spec_is_json_round_trippable(self):
        canon = canonical_spec(minimal_spec())
        again = json.loads(json.dumps(canon))
        assert canonical_spec(again) == canon

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(minimal_spec()), encoding="utf-8")
        spec = load_spec(path)
        assert spec.name == "unit"

    def test_unreadable_file(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read spec"):
            load_spec(tmp_path / "missing.json")


class TestRegistry:
    def test_builtins_registered(self):
        for name in ("stream", "working_set", "hot_table",
                     "divergent_stream", "pointer_chase"):
            assert name in PRIMITIVES

    def test_name_collision_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_primitive
            class Clash(Primitive):
                name = "stream"
                PARAMS = {}

    def test_unnamed_primitive_rejected(self):
        with pytest.raises(ValueError, match="needs a name"):

            @register_primitive
            class NoName(Primitive):
                PARAMS = {}

    def test_drop_in_primitive_is_schema_visible_and_buildable(self):
        @register_primitive
        class Quiet(Primitive):
            name = "quiet-test-only"
            doc = "emits pure ALU work"
            PARAMS = {"count": Field("int", default=3, lo=1, hi=64)}

            @classmethod
            def emit(cls, ctx, params):
                return [(0, params["count"])]

        try:
            doc = minimal_spec(phases=[{"primitive": "quiet-test-only",
                                        "params": {"count": 5}}])
            trace = build_scenario(doc)
            assert trace.ctas[0].warps[0] == [(0, 5)]
            # Schema validation consults the registry for parameters too.
            bad = minimal_spec(phases=[{"primitive": "quiet-test-only",
                                        "params": {"count": 0}}])
            with pytest.raises(SpecError):
                validate_spec(bad)
        finally:
            del PRIMITIVES["quiet-test-only"]


class TestBuilder:
    def test_deterministic_bytes(self):
        a = dumps_trace(build_scenario(minimal_spec()))
        b = dumps_trace(build_scenario(minimal_spec()))
        assert a == b

    def test_structure_matches_spec(self):
        trace = build_scenario(minimal_spec(base_ctas=16, warps_per_cta=4))
        assert len(trace.ctas) == 16
        assert all(len(cta.warps) == 4 for cta in trace.ctas)

    def test_scale_override_changes_cta_count(self):
        small = build_scenario(minimal_spec(base_ctas=64), scale=0.25)
        large = build_scenario(minimal_spec(base_ctas=64), scale=1.0)
        assert len(small.ctas) == 16
        assert len(large.ctas) == 64

    def test_seed_changes_random_primitives(self):
        doc = minimal_spec(phases=[{
            "primitive": "hot_table",
            "params": {"region": "r0", "accesses_per_warp": 8},
        }])
        a = build_scenario(doc, seed=0)
        b = build_scenario(doc, seed=1)
        assert a.ctas[0].warps[0] != b.ctas[0].warps[0]

    def test_barrier_after_emits_one_bar_per_repeat(self):
        doc = minimal_spec()
        doc["phases"][0]["repeat"] = 3
        doc["phases"][0]["barrier_after"] = True
        trace = build_scenario(doc)
        for cta in trace.ctas:
            for warp in cta.warps:
                assert sum(1 for op, _ in warp if op == OP_BAR) == 3

    def test_default_meta_carries_digest(self):
        doc = minimal_spec()
        trace = build_scenario(doc)
        assert trace.meta["scenario"] == "unit"
        assert trace.meta["spec_digest"] == spec_digest(doc)

    def test_explicit_meta_is_verbatim(self):
        trace = build_scenario(minimal_spec(meta={"custom": 1}))
        assert trace.meta == {"custom": 1}

    def test_built_trace_validates(self):
        build_scenario(minimal_spec()).validate()


@pytest.mark.parametrize("name", TABLE1_BENCHMARKS)
class TestTable1DifferentialPins:
    """The declarative layer's correctness anchor: four Table-1
    benchmarks re-expressed as specs must reproduce the hand-written
    generators *byte for byte* (serialized form, meta included)."""

    def test_byte_identical_at_test_scale(self, name):
        spec = table1_spec(name, scale=0.2, seed=0)
        assert dumps_trace(build_scenario(spec)) == \
            dumps_trace(build_benchmark(name, scale=0.2, seed=0))

    def test_byte_identical_off_default_seed(self, name):
        spec = table1_spec(name, scale=0.1, seed=11)
        assert dumps_trace(build_scenario(spec)) == \
            dumps_trace(build_benchmark(name, scale=0.1, seed=11))

    def test_unknown_name_rejected(self, name):
        with pytest.raises(KeyError, match="no pinned Table-1 spec"):
            table1_spec(name + "X")


class TestTaskIntegration:
    def test_scenario_task_key_is_content_addressed(self):
        doc = minimal_spec()
        t1 = Task(kind="simulate", scenario=doc, fidelity="functional")
        fp = t1.fingerprint()
        assert fp["scenario"] == spec_digest(doc)
        assert "benchmark" not in fp

    def test_equivalent_docs_share_a_key(self):
        sparse = minimal_spec()
        explicit = minimal_spec(scale=1.0, seed=0, warps_per_cta=8)
        a = Task(kind="simulate", scenario=sparse, fidelity="functional")
        b = Task(kind="simulate", scenario=explicit, fidelity="functional")
        assert a.key("s") == b.key("s")

    def test_knob_change_invalidates_key(self):
        tweaked = minimal_spec()
        tweaked["phases"][0]["params"]["reads"] = 9
        a = Task(kind="simulate", scenario=minimal_spec(),
                 fidelity="functional")
        b = Task(kind="simulate", scenario=tweaked, fidelity="functional")
        assert a.key("s") != b.key("s")

    def test_label_uses_scenario_name(self):
        t = Task(kind="simulate", scenario=minimal_spec(),
                 fidelity="functional")
        assert t.label == "simulate[functional]:unit/bs"

    def test_benchmark_and_scenario_are_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            Task(kind="simulate", benchmark="SD1", scenario=minimal_spec())

    def test_runs_through_the_engine(self):
        engine = CampaignEngine(jobs=1)
        result = engine.run_one(Task(kind="simulate",
                                     scenario=minimal_spec(),
                                     fidelity="functional"))
        assert result.benchmark == "unit"
        assert result.instructions > 0


class TestEvalSuiteIntegration:
    def test_scenarios_form_the_matrix(self):
        from repro.experiments.common import EvalSuite

        suite = EvalSuite(scenarios=[minimal_spec()], fidelity="functional")
        assert suite.benchmarks == ["unit"]
        results = suite.run_matrix(designs=("bs", "gc"))
        assert set(results) == {("unit", "bs"), ("unit", "gc")}
        assert suite.speedup("unit", "gc") > 0

    def test_scenarios_mix_with_benchmarks(self):
        from repro.experiments.common import EvalSuite

        suite = EvalSuite(benchmarks=["SD1"], scenarios=[minimal_spec()],
                          scale=0.1, fidelity="functional")
        assert suite.benchmarks == ["SD1", "unit"]
        # Scenario traces build through the scenario layer.
        assert suite.trace("unit").name == "unit"
        assert suite.trace("SD1").name == "SD1"

    def test_duplicate_workload_name_rejected(self):
        from repro.experiments.common import EvalSuite

        with pytest.raises(ValueError, match="duplicate workload name"):
            EvalSuite(scenarios=[minimal_spec(), minimal_spec()])


class TestScenarioCLI:
    def test_build_table1_writes_trace(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "sd1.json"
        rc = main(["scenario", "build", "--table1", "SD1",
                   "--scale", "0.1", "-o", str(out)])
        assert rc == 0
        trace = load_trace(out)
        assert trace.name == "SD1"
        assert "digest" in capsys.readouterr().out

    def test_build_spec_file_and_canonical_out(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(minimal_spec()), encoding="utf-8")
        canon_path = tmp_path / "canon.json"
        rc = main(["scenario", "build", str(spec_path),
                   "--spec-out", str(canon_path)])
        assert rc == 0
        canon = json.loads(canon_path.read_text(encoding="utf-8"))
        assert canon == canonical_spec(minimal_spec())

    def test_build_invalid_spec_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(minimal_spec(regions=[])),
                       encoding="utf-8")
        rc = main(["scenario", "build", str(bad)])
        assert rc == 2
        assert "invalid scenario spec" in capsys.readouterr().err

    def test_primitives_reference(self, capsys):
        from repro.cli import main

        assert main(["scenario", "primitives"]) == 0
        out = capsys.readouterr().out
        assert "working_set" in out
        assert "tile_lines" in out
        assert "stream body step kinds" in out
