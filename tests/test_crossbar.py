"""Tests for the crossbar interconnect and its config wiring."""

import pytest

from repro.noc.crossbar import CrossbarNoC
from repro.sim.config import GPUConfig
from repro.sim.designs import make_design
from repro.sim.memory_system import MemorySystem
from repro.sim.simulator import simulate

from conftest import alu, ld, make_kernel


class TestCrossbar:
    def test_uniform_latency(self):
        xbar = CrossbarNoC()
        a = xbar.send_request(0, 0, start=0)
        b = CrossbarNoC().send_request(15, 7, start=0)
        assert a == b  # no distance dependence

    def test_output_port_contention(self):
        xbar = CrossbarNoC()
        first = xbar.send_response(0, 3, start=0)
        second = xbar.send_response(1, 3, start=0)  # same destination core
        assert second > first

    def test_distinct_ports_do_not_contend(self):
        xbar = CrossbarNoC()
        a = xbar.send_response(0, 3, start=0)
        b = xbar.send_response(0, 4, start=0)
        assert a == b

    def test_data_packets_slower(self):
        a = CrossbarNoC().send_request(0, 0, start=0)
        b = CrossbarNoC().send_data_request(0, 0, start=0)
        assert b >= a

    def test_range_validation(self):
        xbar = CrossbarNoC(num_cores=2, num_partitions=2)
        with pytest.raises(ValueError):
            xbar.send_request(2, 0, start=0)
        with pytest.raises(ValueError):
            xbar.send_response(2, 0, start=0)

    def test_accounting(self):
        xbar = CrossbarNoC()
        xbar.send_request(0, 0, start=0)
        assert xbar.packets_sent == 1
        assert xbar.average_hops == 1.0


class TestConfigWiring:
    def test_crossbar_selected(self, tiny_config):
        from dataclasses import replace

        config = replace(tiny_config, noc_topology="crossbar")
        mem = MemorySystem(config, make_design("bs"))
        assert isinstance(mem.noc, CrossbarNoC)

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="unknown NoC topology"):
            GPUConfig(noc_topology="torus")

    def test_end_to_end_run(self, tiny_config):
        from dataclasses import replace

        config = replace(tiny_config, noc_topology="crossbar")
        kernel = make_kernel(
            [[op for i in range(4) for op in (ld(i * 8), alu(2))]], ctas=4
        )
        result = simulate(kernel, config, make_design("gc"))
        assert result.instructions == kernel.instruction_count()
