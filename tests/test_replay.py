"""Tests for the timing-free replay driver."""

import pytest

from repro.sim.designs import make_design
from repro.sim.replay import build_core_streams, replay
from repro.trace.suite import build_benchmark

from conftest import alu, ld, make_kernel, st


class TestStreamBuilding:
    def test_streams_cover_all_transactions(self, tiny_config):
        kernel = make_kernel([[ld(0), st(1), alu(3)]], ctas=4)
        streams = build_core_streams(kernel, tiny_config)
        total = sum(len(s) for s in streams)
        assert total == 4 * 2  # 4 CTAs x (1 load + 1 store)

    def test_round_robin_cta_placement(self, tiny_config):
        kernel = make_kernel([[ld(0)]], ctas=4)
        streams = build_core_streams(kernel, tiny_config)
        assert len(streams) == tiny_config.num_cores
        assert all(len(s) == 2 for s in streams)  # 2 CTAs per core

    def test_writes_flagged(self, tiny_config):
        kernel = make_kernel([[ld(0), st(1)]], ctas=1)
        streams = build_core_streams(kernel, tiny_config)
        flat = [t for s in streams for t in s]
        assert (0, False) in flat
        assert (1, True) in flat

    def test_alu_and_barriers_produce_no_traffic(self, tiny_config):
        from conftest import bar, smem

        kernel = make_kernel([[alu(5), bar(), smem(2)]], ctas=1)
        streams = build_core_streams(kernel, tiny_config)
        assert sum(len(s) for s in streams) == 0


class TestReplay:
    def test_matches_design_semantics(self, tiny_config):
        kernel = make_kernel([[ld(0), ld(0)]], ctas=1)
        result = replay(kernel, tiny_config, make_design("bs"))
        assert result.l1.loads == 2
        assert result.l1.load_hits == 1

    def test_streams_reusable_across_designs(self, tiny_config):
        kernel = build_benchmark("SPMV", scale=0.05)
        streams = build_core_streams(kernel, tiny_config)
        a = replay(kernel, tiny_config, make_design("bs"), streams=streams)
        b = replay(kernel, tiny_config, make_design("gc"), streams=streams)
        assert a.l1.accesses == b.l1.accesses

    def test_gcache_replay_uses_hints(self, tiny_config):
        kernel = build_benchmark("SSC", scale=0.05)
        result = replay(kernel, tiny_config, make_design("gc"))
        assert "contentions_detected" in result.extras

    def test_without_l2(self, tiny_config):
        kernel = make_kernel([[ld(0)]], ctas=1)
        result = replay(kernel, tiny_config, make_design("bs"), include_l2=False)
        assert result.l2.accesses == 0


class TestOracle:
    def test_opt_not_worse_than_lru_on_benchmarks(self, tiny_config):
        # Belady is optimal per set under demand fills; it must beat (or
        # match) LRU on every real benchmark trace.
        for name in ("SPMV", "KMN"):
            kernel = build_benchmark(name, scale=0.05)
            lru = replay(kernel, tiny_config, make_design("bs"), include_l2=False)
            opt = replay(kernel, tiny_config, oracle=True, include_l2=False)
            assert opt.l1.miss_rate <= lru.l1.miss_rate + 1e-9

    def test_opt_on_crafted_antilru_pattern(self, tiny_config):
        # Cyclic working set slightly larger than one set's ways: LRU
        # gets zero hits, OPT keeps part of the set.
        lines = [i * tiny_config.l1_sets * 128 for i in range(5)]
        program = []
        for _ in range(10):
            for line in lines:
                program.append((1, (line,)))  # OP_LOAD
        kernel = make_kernel([program], ctas=1)
        lru = replay(kernel, tiny_config, make_design("bs"), include_l2=False)
        opt = replay(kernel, tiny_config, oracle=True, include_l2=False)
        assert lru.l1.load_hits == 0
        assert opt.l1.load_hits > 0

    def test_paper_claim_opt_limited_under_contention(self, tiny_config):
        # Section 3.1: even OPT shows limited improvement on contended
        # GPU caches.  "Limited" here: OPT still misses heavily on a
        # cache-sensitive benchmark at baseline geometry.
        kernel = build_benchmark("KMN", scale=0.1)
        opt = replay(kernel, tiny_config, oracle=True, include_l2=False)
        assert opt.l1.miss_rate > 0.4
