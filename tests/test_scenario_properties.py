"""Trace-invariant property harness for scenario primitives.

Every primitive in the registry — built-in or drop-in — must uphold the
same contract for *arbitrary* valid parameters, which is what lets new
primitives compose into sweeps without per-primitive review:

* determinism: the same (spec, seed) builds the same bytes;
* every memory address is line-aligned and inside a region the spec
  declared (never region 0, never past the last region);
* structural well-formedness: CTA/warp counts match the spec, memory
  ops carry 1..32 lanes, count ops carry positive counts;
* barrier counts agree across the warps of each CTA (a mismatched
  barrier would deadlock the CTA);
* scale monotonicity: raising the scale never shrinks the trace.

Hypothesis strategies are derived *from the registered Field metadata*,
so registering a primitive automatically subjects it to this harness —
the registry is introspected at collection time, the strategies at
draw time.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import PRIMITIVES, build_scenario
from repro.scenarios.schema import STEP_FIELDS, MEM_STEP_KINDS, Field
from repro.trace.generators.base import LINE, RegionAllocator
from repro.trace.io import dumps_trace
from repro.trace.trace import OP_ATOM, OP_BAR, OP_LOAD, OP_STORE

REGIONS = ["r0", "r1"]

#: Keep generated workloads small: cap every int field's upper bound.
#: The cap is generous enough to exercise wrap-around and multi-line
#: structure but keeps a single example under a few thousand ops.
INT_CAP = 96


def field_strategy(fld: Field):
    """A Hypothesis strategy for one Field, derived from its metadata."""
    if fld.kind == "int":
        lo = int(fld.lo) if fld.lo is not None else 0
        hi = min(int(fld.hi) if fld.hi is not None else INT_CAP,
                 max(lo, INT_CAP))
        return st.integers(min_value=lo, max_value=hi)
    if fld.kind == "float":
        lo = fld.lo if fld.lo is not None else 0.0
        hi = fld.hi if fld.hi is not None else 8.0
        return st.floats(min_value=lo, max_value=hi, allow_nan=False)
    if fld.kind == "choice":
        return st.sampled_from(list(fld.choices or ()))
    if fld.kind == "bool":
        return st.booleans()
    if fld.kind == "region":
        return st.sampled_from(REGIONS)
    if fld.kind == "str":
        # The only free-string field today is an optional region;
        # exercise both "unset" and a declared region.
        return st.sampled_from(["", REGIONS[0]])
    if fld.kind == "steps":
        return st.lists(step_strategy(), min_size=1, max_size=4)
    raise AssertionError(f"unhandled field kind {fld.kind!r}")


@st.composite
def step_strategy(draw):
    kind = draw(st.sampled_from(sorted(STEP_FIELDS)))
    step = {"kind": kind}
    for fname, fld in STEP_FIELDS[kind].items():
        step[fname] = draw(field_strategy(fld))
    return step


def params_strategy(prim):
    return st.fixed_dictionaries(
        {name: field_strategy(fld) for name, fld in prim.PARAMS.items()}
    )


def spec_for(prim_name, params, seed, base_ctas=8, warps_per_cta=4):
    return {
        "format": "repro-scenario",
        "version": 1,
        "name": f"prop-{prim_name}",
        "seed": seed,
        "base_ctas": base_ctas,
        "warps_per_cta": warps_per_cta,
        "regions": list(REGIONS),
        "phases": [{"primitive": prim_name, "params": params}],
    }


@pytest.mark.parametrize("prim_name", sorted(PRIMITIVES))
class TestPrimitiveInvariants:
    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_deterministic_and_well_formed(self, prim_name, data):
        prim = PRIMITIVES[prim_name]
        params = data.draw(params_strategy(prim))
        seed = data.draw(st.integers(min_value=0, max_value=2**32))
        doc = spec_for(prim_name, params, seed)

        trace = build_scenario(doc)
        # Determinism: a second build serializes to the same bytes.
        assert dumps_trace(build_scenario(doc)) == dumps_trace(trace)

        # Structural shape matches the spec (base_ctas=8 -> exactly 8).
        assert len(trace.ctas) == 8
        assert all(len(cta.warps) == 4 for cta in trace.ctas)

        lo = RegionAllocator.REGION_BYTES
        hi = (1 + len(REGIONS)) * RegionAllocator.REGION_BYTES
        for cta in trace.ctas:
            bar_counts = []
            for warp in cta.warps:
                bars = 0
                for op, arg in warp:
                    if op in (OP_LOAD, OP_STORE, OP_ATOM):
                        assert 1 <= len(arg) <= 32
                        for address in arg:
                            # Line-aligned and inside a declared region.
                            assert address % LINE == 0
                            assert lo <= address < hi
                    elif op == OP_BAR:
                        bars += 1
                    else:
                        assert arg > 0  # positive ALU/SMEM counts
                bar_counts.append(bars)
            # Equal barrier counts per CTA, or the CTA deadlocks.
            assert len(set(bar_counts)) == 1

    @given(data=st.data())
    @settings(max_examples=8, deadline=None)
    def test_scale_monotonicity(self, prim_name, data):
        prim = PRIMITIVES[prim_name]
        params = data.draw(params_strategy(prim))
        doc = spec_for(prim_name, params, seed=0, base_ctas=16)
        small = build_scenario(doc, scale=0.5)
        large = build_scenario(doc, scale=1.0)
        assert len(small.ctas) < len(large.ctas)
        assert small.instruction_count() < large.instruction_count()

    @given(data=st.data())
    @settings(max_examples=8, deadline=None)
    def test_validate_passes(self, prim_name, data):
        prim = PRIMITIVES[prim_name]
        params = data.draw(params_strategy(prim))
        build_scenario(spec_for(prim_name, params, seed=1)).validate()


class TestRegistryContract:
    """Static checks every registered primitive must satisfy for the
    harness (and the schema) to cover it."""

    @pytest.mark.parametrize("prim_name", sorted(PRIMITIVES))
    def test_fields_are_typed(self, prim_name):
        prim = PRIMITIVES[prim_name]
        assert prim.doc, f"{prim_name} needs a one-line doc"
        for fname, fld in prim.PARAMS.items():
            assert isinstance(fld, Field), (prim_name, fname)
            if fld.kind in ("int", "float"):
                assert fld.lo is not None and fld.hi is not None, (
                    f"{prim_name}.{fname}: numeric fields need bounds for "
                    f"the property harness to derive strategies")

    def test_mem_step_kinds_subset_of_step_fields(self):
        assert set(MEM_STEP_KINDS) <= set(STEP_FIELDS)

    def test_every_mem_step_declares_a_region(self):
        for kind in MEM_STEP_KINDS:
            assert STEP_FIELDS[kind]["region"].kind == "region"
