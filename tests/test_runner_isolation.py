"""Property test: worker/task isolation in the campaign engine.

Shuffling task submission order must never change any per-benchmark
result — this catches hidden shared mutable state (module-level RNG,
counters or caches leaking between tasks), the classic way a "parallel
speedup" silently changes reproduced numbers.  Each task is executed
from a self-contained description in fresh policy/trace state, so any
order (and any interleaving across processes) must yield bit-identical
counters.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runner import CampaignEngine, Task

SCALE = 0.05
SEED = 0

#: The slice whose orderings we permute: stateful designs included (gc
#: carries victim-bit/bypass-switch state; pdp-3 carries PD counters).
GRID = [
    ("SPMV", "bs"),
    ("SPMV", "gc"),
    ("BFS", "gc"),
    ("BFS", "pdp-3"),
    ("SD1", "bs"),
    ("SD1", "gc"),
]


def make_task(benchmark: str, design: str) -> Task:
    return Task(
        kind="simulate", benchmark=benchmark, design=design, scale=SCALE, seed=SEED
    )


def signature(result):
    return (
        result.benchmark,
        result.design,
        result.cycles,
        result.instructions,
        tuple(sorted(result.l1.snapshot().items())),
        tuple(sorted(result.l2.snapshot().items())),
        result.avg_load_latency,
        result.dram_requests,
        result.dram_row_hit_rate,
    )


_baseline_memo = {}


def baseline():
    """Reference signatures from one serial run in grid order."""
    if not _baseline_memo:
        engine = CampaignEngine(jobs=1, cache=None)
        results = engine.run([make_task(b, d) for b, d in GRID])
        for (b, d), result in zip(GRID, results):
            _baseline_memo[(b, d)] = signature(result)
    return _baseline_memo


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(order=st.permutations(list(range(len(GRID)))))
def test_submission_order_never_changes_results(order):
    expected = baseline()
    engine = CampaignEngine(jobs=1, cache=None)
    shuffled = [GRID[i] for i in order]
    results = engine.run([make_task(b, d) for b, d in shuffled])
    for point, result in zip(shuffled, results):
        assert signature(result) == expected[point], (point, order)


def test_parallel_workers_match_shuffled_serial():
    """Worker processes see tasks in arbitrary order and interleaving;
    their results must still match the serial baseline point-for-point."""
    expected = baseline()
    engine = CampaignEngine(jobs=3, cache=None)
    shuffled = list(reversed(GRID))
    results = engine.run([make_task(b, d) for b, d in shuffled])
    for point, result in zip(shuffled, results):
        assert signature(result) == expected[point], point


def test_repeated_runs_in_one_process_are_stable():
    """Back-to-back campaigns in one interpreter must agree — catches
    state leaking *between* engine.run() batches."""
    expected = baseline()
    engine = CampaignEngine(jobs=1, cache=None)
    again = engine.run([make_task(b, d) for b, d in GRID])
    for point, result in zip(GRID, again):
        assert signature(result) == expected[point], point
