"""Tests for the CCWS-style throttling scheduler."""

import pytest

from repro.gpu.schedulers import make_scheduler
from repro.gpu.throttle import ThrottleScheduler
from repro.gpu.warp import Warp
from repro.sim.designs import make_design
from repro.sim.simulator import simulate
from repro.stats.counters import CacheStats

from conftest import alu, ld, make_kernel


def make_warps(n):
    return [Warp(i, 0, [(0, 1)] * 4, age=i) for i in range(n)]


class TestThrottling:
    def test_starts_wide_open(self):
        sched = ThrottleScheduler(max_active=48)
        assert sched.active == 48

    def test_shrinks_on_low_hit_rate(self):
        sched = ThrottleScheduler(min_active=2, max_active=16, epoch=1)
        stats = CacheStats(loads=100, load_hits=1)
        sched.bind_stats(stats)
        warps = make_warps(16)
        sched.pick(warps, now=0)  # epoch tick -> adapt
        assert sched.active < 16

    def test_grows_on_high_hit_rate(self):
        sched = ThrottleScheduler(min_active=2, max_active=16, epoch=1)
        sched.active = 4
        stats = CacheStats(loads=100, load_hits=90)
        sched.bind_stats(stats)
        sched.pick(make_warps(16), now=0)
        assert sched.active > 4

    def test_respects_floor(self):
        sched = ThrottleScheduler(min_active=3, max_active=16, epoch=1)
        stats = CacheStats(loads=1000, load_hits=0)
        sched.bind_stats(stats)
        warps = make_warps(16)
        for i in range(10):
            stats.loads += 100  # keep the window fresh
            sched.pick(warps, now=i)
        assert sched.active >= 3

    def test_ignores_thin_windows(self):
        sched = ThrottleScheduler(epoch=1)
        stats = CacheStats(loads=5, load_hits=0)  # < 32 accesses
        sched.bind_stats(stats)
        before = sched.active
        sched.pick(make_warps(8), now=0)
        assert sched.active == before

    def test_falls_back_beyond_active_set(self):
        sched = ThrottleScheduler(min_active=1, max_active=8, epoch=10_000)
        sched.active = 1
        warps = make_warps(4)
        warps[0].ready_time = 100  # the only active warp is stalled
        choice = sched.pick(warps, now=0)
        assert choice is not None
        assert choice is not warps[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            ThrottleScheduler(min_active=0)
        with pytest.raises(ValueError):
            ThrottleScheduler(low_water=0.9, high_water=0.1)


class TestIntegration:
    def test_registry(self):
        assert make_scheduler("throttle").name == "throttle"

    def test_end_to_end_run(self, tiny_config):
        config = tiny_config.with_scheduler("throttle")
        kernel = make_kernel(
            [[op for i in range(6) for op in (ld(i * 8), alu(1))]] * 2, ctas=4
        )
        result = simulate(kernel, config, make_design("bs"))
        assert result.instructions == kernel.instruction_count()
