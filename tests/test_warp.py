"""Unit tests for warp runtime state."""

from repro.gpu.warp import Warp


class TestReadiness:
    def test_fresh_warp_ready(self):
        warp = Warp(0, 0, [(0, 1)], age=0)
        assert warp.ready(now=0)

    def test_waiting_warp_not_ready(self):
        warp = Warp(0, 0, [(0, 1)], age=0)
        warp.ready_time = 10
        assert not warp.ready(now=5)
        assert warp.ready(now=10)

    def test_done_warp_never_ready(self):
        warp = Warp(0, 0, [(0, 1)], age=0)
        warp.done = True
        assert not warp.ready(now=100)

    def test_barrier_parks(self):
        warp = Warp(0, 0, [(0, 1)], age=0)
        warp.at_barrier = True
        assert not warp.ready(now=0)

    def test_empty_program_is_done(self):
        warp = Warp(0, 0, [], age=0)
        assert warp.done

    def test_blocked_reflects_liveness(self):
        warp = Warp(0, 0, [(0, 1)], age=0)
        assert warp.blocked()
        warp.done = True
        assert not warp.blocked()
