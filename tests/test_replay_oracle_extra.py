"""Additional replay-driver and oracle studies.

These encode the paper's Section 3.1 argument quantitatively: optimal
replacement (OPT) barely helps a contended GPU L1, while *capacity* does
— which is why the paper turns to bypassing instead of better
replacement.
"""

import pytest

from repro.sim.config import GPUConfig
from repro.sim.designs import make_design
from repro.sim.replay import build_core_streams, replay
from repro.trace.suite import CACHE_SENSITIVE, build_benchmark

SCALE = 0.15


@pytest.fixture(scope="module")
def config():
    return GPUConfig()


class TestOptVsCapacity:
    """OPT at 32 KB gains less than LRU at 128 KB (Section 3.1)."""

    @pytest.mark.parametrize("name", ["KMN", "SSC", "SYRK"])
    def test_capacity_beats_clairvoyance(self, config, name):
        trace = build_benchmark(name, scale=SCALE)
        streams = build_core_streams(trace, config)
        lru32 = replay(trace, config, make_design("bs"),
                       streams=streams, include_l2=False)
        opt32 = replay(trace, config, oracle=True,
                       streams=streams, include_l2=False)
        big = config.with_l1_size(128 * 1024)
        lru128 = replay(trace, big, make_design("bs"),
                        streams=build_core_streams(trace, big), include_l2=False)
        opt_gain = lru32.l1.miss_rate - opt32.l1.miss_rate
        capacity_gain = lru32.l1.miss_rate - lru128.l1.miss_rate
        assert capacity_gain > opt_gain, (
            f"{name}: capacity {capacity_gain:.3f} vs OPT {opt_gain:.3f}"
        )

    def test_opt_gain_is_limited(self, config):
        # "Even the optimal replacement policy shows very limited
        # improvement due to frequent early eviction."
        gains = []
        for name in ("KMN", "SSC", "BFS"):
            trace = build_benchmark(name, scale=SCALE)
            streams = build_core_streams(trace, config)
            lru = replay(trace, config, make_design("bs"),
                         streams=streams, include_l2=False)
            opt = replay(trace, config, oracle=True,
                         streams=streams, include_l2=False)
            gains.append(lru.l1.miss_rate - opt.l1.miss_rate)
        assert max(gains) < 0.35


class TestReplayDesignOrdering:
    def test_gcache_at_least_matches_lru_on_sensitive(self, config):
        for name in CACHE_SENSITIVE[:4]:
            trace = build_benchmark(name, scale=SCALE)
            streams = build_core_streams(trace, config)
            lru = replay(trace, config, make_design("bs"), streams=streams)
            gc = replay(trace, config, make_design("gc"), streams=streams)
            assert gc.l1.miss_rate <= lru.l1.miss_rate + 0.03, name
