#!/usr/bin/env python3
"""Quickstart: simulate one benchmark under the baseline and G-Cache.

Builds the paper's SPMV workload (streaming matrix + hot gathered
vector), runs it on the Table-2 GPU with the baseline LRU L1 and with
G-Cache, and prints the headline metrics.

Run:
    python examples/quickstart.py [--scale 0.5] [--benchmark SPMV]
"""

from __future__ import annotations

import argparse

from repro import GPUConfig, make_design, simulate
from repro.trace.suite import ALL_BENCHMARKS, build_benchmark


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="SPMV", choices=ALL_BENCHMARKS)
    parser.add_argument("--scale", type=float, default=0.5)
    args = parser.parse_args()

    config = GPUConfig()
    print(f"GPU: {config.describe()}")

    trace = build_benchmark(args.benchmark, scale=args.scale)
    print(
        f"Workload: {trace.name} — {trace.num_ctas} CTAs, "
        f"{trace.instruction_count():,} warp instructions, "
        f"{trace.memory_access_count():,} memory instructions"
    )

    baseline = simulate(trace, config, make_design("bs"))
    gcache = simulate(trace, config, make_design("gc"))

    print()
    print(f"{'metric':<24} {'baseline (BS)':>14} {'G-Cache (GC)':>14}")
    rows = [
        ("IPC", f"{baseline.ipc:.3f}", f"{gcache.ipc:.3f}"),
        ("cycles", f"{baseline.cycles:,}", f"{gcache.cycles:,}"),
        ("L1 miss rate", f"{baseline.l1.miss_rate:.1%}", f"{gcache.l1.miss_rate:.1%}"),
        ("L1 bypass ratio", f"{baseline.l1.bypass_ratio:.1%}", f"{gcache.l1.bypass_ratio:.1%}"),
        ("avg load latency", f"{baseline.avg_load_latency:.0f}", f"{gcache.avg_load_latency:.0f}"),
        ("DRAM row-hit rate", f"{baseline.dram_row_hit_rate:.1%}", f"{gcache.dram_row_hit_rate:.1%}"),
    ]
    for name, a, b in rows:
        print(f"{name:<24} {a:>14} {b:>14}")

    print()
    print(f"G-Cache speedup over baseline: {gcache.speedup_over(baseline):.3f}x")
    detected = gcache.extras.get("contentions_detected", 0)
    print(f"Contentions detected by the L2 victim bits: {detected:,}")


if __name__ == "__main__":
    main()
