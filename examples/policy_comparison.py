#!/usr/bin/env python3
"""Compare every cache-management design on a chosen benchmark.

Runs BS, BS-S, PDP-3, PDP-8, SPDP-B (with an offline-swept PD) and
G-Cache on one workload and prints a side-by-side comparison — a
single-benchmark slice of the paper's Figures 8/9 and Table 3.

Run:
    python examples/policy_comparison.py --benchmark SSC --scale 0.5
"""

from __future__ import annotations

import argparse

from repro import GPUConfig, make_design, simulate
from repro.experiments.common import sweep_optimal_pd
from repro.stats.report import Table
from repro.trace.suite import ALL_BENCHMARKS, build_benchmark


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="SSC", choices=ALL_BENCHMARKS)
    parser.add_argument("--scale", type=float, default=0.5)
    args = parser.parse_args()

    config = GPUConfig()
    trace = build_benchmark(args.benchmark, scale=args.scale)

    pd = sweep_optimal_pd(trace, config)
    print(f"Offline PD sweep for SPDP-B picked PD = {pd}")

    designs = [
        ("bs", make_design("bs")),
        ("bs-s", make_design("bs-s")),
        ("pdp-3", make_design("pdp-3")),
        ("pdp-8", make_design("pdp-8")),
        ("spdp-b", make_design("spdp-b", pd=pd)),
        ("gc", make_design("gc")),
        ("gc-m", make_design("gc-m")),
    ]

    results = {}
    for key, spec in designs:
        print(f"simulating {key} ...")
        results[key] = simulate(trace, config, spec)

    base = results["bs"]
    table = Table(
        ["design", "IPC", "speedup", "L1 miss", "bypass", "DRAM reqs"],
        title=f"{trace.name} under every design ({config.describe()})",
    )
    for key, _ in designs:
        r = results[key]
        table.row(
            [
                key.upper(),
                f"{r.ipc:.3f}",
                f"{r.speedup_over(base):.3f}",
                f"{r.l1.miss_rate:.1%}",
                f"{r.l1.bypass_ratio:.1%}",
                f"{r.dram_requests:,}",
            ]
        )
    print()
    print(table.render())


if __name__ == "__main__":
    main()
