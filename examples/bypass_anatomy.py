#!/usr/bin/env python3
"""Anatomy of a bypass decision: the paper's Figure 7 walkthrough.

Recreates the Section 4.2 example on a real 2-way cache set: a mixed
access stream of hot lines (a1, a2) and streaming lines (b1, b2), with
the L2 victim-bit directory detecting contention and the L1 bypass
switch protecting the hot lines.  Every step prints the set state so you
can watch the mechanism work.

Run:
    python examples/bypass_anatomy.py
"""

from __future__ import annotations

from repro.cache.cache import Cache
from repro.cache.policies.base import FillContext
from repro.cache.replacement.rrip import SRRIPPolicy
from repro.core.gcache import GCacheConfig, GCachePolicy
from repro.core.victim_bits import VictimBitDirectory

LINE = 128


def show(step: str, cache: Cache, policy: GCachePolicy, outcome: str) -> None:
    ways = cache.sets[0]
    state = ", ".join(
        f"{chr(ord('a') + (w.tag % 4))}{w.tag // 4 + 1}(rrpv={w.rrpv})" if w.valid else "I"
        for w in ways
    )
    switch = "ON " if policy.switches.is_on(0) else "off"
    print(f"{step:<14} switch={switch}  set0=[{state}]  -> {outcome}")


def main() -> None:
    # A 2-way single-set L1, exactly like the paper's Figure 7.
    policy = GCachePolicy(GCacheConfig(shutdown_interval=0))
    l1 = Cache("L1", 2 * LINE, 2, LINE, SRRIPPolicy(bits=3), mgmt=policy)
    l2 = Cache("L2", 64 * LINE, 4, LINE, SRRIPPolicy(bits=3),
               write_back=True, write_allocate=True)
    directory = VictimBitDirectory(num_l1s=1)

    # Line naming: a1=0, b1=1, a2=4, b2=5 (all map to set 0 of 1 set).
    names = {0: "a1", 4: "a2", 1: "b1", 5: "b2"}

    def access(line: int, now: int) -> None:
        label = names[line]
        result = l1.lookup(line, now)
        if result.hit:
            show(f"{label} @t={now}", l1, policy, "L1 hit")
            return
        # L1 miss: go to the L2, collect the victim hint.
        l2_result = l2.lookup(line, now)
        if l2_result.hit:
            l2_line = l2_result.line
        else:
            fill = l2.fill(line, now, FillContext(line))
            l2_line = l2.sets[fill.set_index][fill.way]
        hint = directory.observe(l2_line, src_id=0)
        fill = l1.fill(line, now, FillContext(line, victim_hint=hint))
        outcome = "BYPASSED" if fill.bypassed else "filled"
        if hint:
            outcome += " (victim hint: contention!)"
        show(f"{label} @t={now}", l1, policy, f"L1 miss, {outcome}")

    # The paper's access stream: a1 a2 b1 (evicts) a1 a1 b1 b2 a1 a2 b1 b1
    print("Figure 7 walkthrough on a 2-way set\n" + "=" * 60)
    stream = [0, 4, 1, 0, 0, 1, 5, 0, 4, 1, 1]
    for now, line in enumerate(stream):
        access(line, now)

    print()
    print(f"bypasses: {l1.stats.bypasses}, "
          f"contentions detected: {directory.contentions_detected}, "
          f"L1 miss rate: {l1.stats.miss_rate:.0%}")


if __name__ == "__main__":
    main()
