#!/usr/bin/env python3
"""Design-space exploration with the Sweep utility.

Crosses cache designs with L1 capacities on one workload, prints metric
tables, and closes with the paper's Section-4.3 hardware-cost comparison
— the "is the speedup worth the silicon" view.

Run:
    python examples/design_space.py --benchmark SYRK --scale 0.5
"""

from __future__ import annotations

import argparse

from repro.core.overhead import overhead_table
from repro.sim.config import GPUConfig
from repro.sim.sweep import Sweep
from repro.trace.suite import ALL_BENCHMARKS, build_benchmark


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="SYRK", choices=ALL_BENCHMARKS)
    parser.add_argument("--scale", type=float, default=0.5)
    args = parser.parse_args()

    trace = build_benchmark(args.benchmark, scale=args.scale)
    sweep = (
        Sweep(trace)
        .designs("bs", "bs-s", "spdp-b:16", "gc")
        .configs(l1_size=[16 * 1024, 32 * 1024, 64 * 1024])
    )
    print(sweep.table("ipc").render())
    print()
    print(sweep.table("miss_rate").render())
    print()
    print(sweep.table("bypass_ratio").render())
    print()
    print(overhead_table(GPUConfig()).render())


if __name__ == "__main__":
    main()
