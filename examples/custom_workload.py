#!/usr/bin/env python3
"""Define a custom workload and evaluate cache designs on it.

Shows the extension path a downstream user takes: subclass
:class:`~repro.trace.generators.base.BenchmarkGenerator`, describe your
kernel's access pattern, and reuse the whole harness (designs, timing
model, reports) unchanged.

The example models a *histogram* kernel: a streamed input and a
64-bin (8-line) shared histogram updated with atomics — plus a lookup
table with a working set you can size from the command line to watch the
LRU cliff appear and the bypass policies ride over it.

Run:
    python examples/custom_workload.py --table-lines 320
"""

from __future__ import annotations

import argparse

from repro import GPUConfig, make_design, simulate
from repro.stats.report import Table
from repro.trace.generators.base import (
    BenchmarkGenerator,
    TraceParams,
    alu,
    atom,
    load,
)
from repro.trace.trace import WarpTrace


class HistogramGenerator(BenchmarkGenerator):
    """Streamed input + atomic histogram + sizable lookup table."""

    name = "HIST"
    sensitivity = "sensitive"
    suite = "custom"
    description = "Histogram with translation table"
    base_ctas = 64

    items_per_warp = 16
    histogram_lines = 8
    table_lines = 320  # overridden from the command line

    def __init__(self, params: TraceParams = TraceParams()) -> None:
        super().__init__(params)
        self.input_base = self.regions.region()
        self.table_base = self.regions.region()
        self.hist_base = self.regions.region()

    def warp_program(self, cta_id: int, warp_id: int) -> WarpTrace:
        rng = self.rng_for(cta_id, warp_id)
        wpc = self.params.warps_per_cta
        warp_index = cta_id * wpc + warp_id
        program: WarpTrace = []
        # Cyclic scan phase for the translation table.
        cursor = (warp_index * 29) % self.table_lines

        for i in range(self.items_per_warp):
            program.append(
                load(self.stream_addr(self.input_base, cta_id, warp_id, i, self.items_per_warp))
            )
            program.append(alu(2))
            # Translate through the shared table (the cacheable part).
            for _ in range(3):
                program.append(load(self.line_addr(self.table_base, cursor)))
                program.append(alu(1))
                cursor = (cursor + 1) % self.table_lines
            # Bump a histogram bin at the memory partition.
            bin_line = rng.randrange(self.histogram_lines)
            program.append(atom(self.line_addr(self.hist_base, bin_line)))
        return program


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--table-lines", type=int, default=320,
                        help="lookup-table footprint in 128B lines "
                             "(256 fits the L1; 320+ is past the LRU cliff)")
    parser.add_argument("--scale", type=float, default=1.0)
    args = parser.parse_args()

    HistogramGenerator.table_lines = args.table_lines
    trace = HistogramGenerator(TraceParams(scale=args.scale)).build()
    config = GPUConfig()
    print(f"HIST with a {args.table_lines}-line table "
          f"({args.table_lines * 128 // 1024} KB vs 32 KB L1)\n")

    base = simulate(trace, config, make_design("bs"))
    table = Table(["design", "IPC", "speedup", "L1 miss", "bypass"])
    for key in ("bs", "bs-s", "gc"):
        r = simulate(trace, config, make_design(key)) if key != "bs" else base
        table.row([
            key.upper(),
            f"{r.ipc:.3f}",
            f"{r.speedup_over(base):.3f}",
            f"{r.l1.miss_rate:.1%}",
            f"{r.l1.bypass_ratio:.1%}",
        ])
    print(table.render())


if __name__ == "__main__":
    main()
