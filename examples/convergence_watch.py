#!/usr/bin/env python3
"""Watch G-Cache's detection loop converge over a run.

Samples the simulator every few thousand cycles and prints per-window
miss and bypass rates as sparklines: you can see the victim-bit
contention detector warm up, the bypass switches arm, and the miss rate
settle — the transient behaviour the end-of-run counters average away.
The G-Cache run is additionally traced through ``repro.obs`` and closes
with the event-level convergence report (time to first detection,
per-set switch duty cycles, bypass-reason breakdown).

Run:
    python examples/convergence_watch.py --benchmark SSC --scale 0.5
"""

from __future__ import annotations

import argparse

from repro import GPUConfig, make_design
from repro.obs import Observability
from repro.sim.simulator import GPU
from repro.stats.timeline import Timeline
from repro.trace.suite import ALL_BENCHMARKS, build_benchmark


def run_with_timeline(trace, config, design_key: str, obs=None):
    timeline = Timeline(interval=max(512, 64 * config.num_cores))
    gpu = GPU(config, make_design(design_key), timeline=timeline, obs=obs)
    result = gpu.run(trace)
    return result, timeline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="SSC", choices=ALL_BENCHMARKS)
    parser.add_argument("--scale", type=float, default=0.5)
    args = parser.parse_args()

    config = GPUConfig()
    trace = build_benchmark(args.benchmark, scale=args.scale)

    for key in ("bs", "gc"):
        # Trace the G-Cache run so the event stream can explain *why* the
        # sparklines bend where they do.
        obs = Observability.in_memory() if key == "gc" else None
        result, timeline = run_with_timeline(trace, config, key, obs=obs)
        print(f"\n{key.upper()}  (final IPC {result.ipc:.3f}, "
              f"miss {result.l1.miss_rate:.1%}, "
              f"bypass {result.l1.bypass_ratio:.1%})")
        print(f"  miss rate   {timeline.sparkline('miss_rate')}")
        print(f"  bypass rate {timeline.sparkline('bypass_rate')}")
        print(f"  ipc         {timeline.sparkline('ipc')}")
        windows = timeline.windows()
        if windows:
            first, last = windows[0], windows[-1]
            print(f"  first window: miss {first.miss_rate:.1%}  "
                  f"last window: miss {last.miss_rate:.1%}")
        if obs is not None:
            print()
            print(obs.diagnostics(end_cycle=result.cycles).render(top_sets=5))
            obs.close()


if __name__ == "__main__":
    main()
