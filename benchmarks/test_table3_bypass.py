"""Table 3 benchmark: bypass ratios of G-Cache vs SPDP-B + optimal PDs."""

from __future__ import annotations

from conftest import publish

from repro.experiments.common import sweep_optimal_pd
from repro.experiments.table3_bypass import render_table3, table3_rows


def test_table3_bypass(benchmark, eval_suite, results_dir):
    rows = {r.benchmark: r for r in table3_rows(eval_suite)}
    publish(results_dir, "table3_bypass", render_table3(eval_suite))

    # Shape checks (paper Table 3).
    assert rows["FWT"].gcache_bypass_ratio < 0.02, "FWT: GC bypasses ~0%"
    assert rows["BP"].gcache_bypass_ratio < 0.02
    active = [rows[b].gcache_bypass_ratio for b in ("BFS", "PVC", "SPMV", "IIX")]
    assert all(r > 0.05 for r in active), "sensitive benchmarks bypass actively"
    # Large-reuse-distance benchmarks need long PDs (KMN=24, NW=68 in the
    # paper); ours must be clearly above the no-reuse group, whose sweep
    # degenerates to the minimum.
    assert rows["KMN"].optimal_pd > rows["SD1"].optimal_pd
    assert rows["KMN"].optimal_pd >= 8
    assert rows["SD1"].optimal_pd <= 8

    # Timed portion: the offline PD sweep itself.
    trace = eval_suite.trace("SPMV")
    benchmark.pedantic(
        lambda: sweep_optimal_pd(trace, eval_suite.config),
        rounds=1,
        iterations=1,
    )
