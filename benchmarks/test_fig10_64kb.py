"""Figure 10 benchmark: the 64 KB L1 scalability study."""

from __future__ import annotations

import pytest

from conftest import publish, repro_scale, repro_seed, shape_threshold

from repro.experiments.fig10_64kb import (
    FIG10_DESIGNS,
    fig10_speedups,
    make_64kb_suite,
    render_fig10,
)


@pytest.fixture(scope="module")
def suite64():
    return make_64kb_suite(scale=repro_scale(), seed=repro_seed())


def test_fig10_64kb_speedup(benchmark, suite64, results_dir):
    data = benchmark.pedantic(
        lambda: fig10_speedups(suite64), rounds=1, iterations=1
    )
    publish(results_dir, "fig10_64kb_speedup", render_fig10(suite64))

    # Shape checks (paper Section 5.3): contention is reduced but not
    # eliminated at 64 KB, so G-Cache keeps winning on sensitive
    # benchmarks and stays harmless on insensitive ones.
    assert data["GM-sensitive"]["gc"] > shape_threshold(1.03, 1.005)
    assert data["GM-insensitive"]["gc"] > 0.97
