#!/usr/bin/env python3
"""Disabled-tracing overhead check: head vs base on a micro-workload.

The observability layer promises that a *non-traced* run (``obs=None``,
the default) costs one attribute check per would-be emission site.  This
script makes that promise enforceable: it times the same micro-workload
against two source trees — the PR base and the PR head — in fresh
subprocesses, and fails when the head is more than ``--threshold``
slower.

Each measurement imports the tree under test with ``PYTHONPATH`` set to
its ``src/``, performs one warmup run, then takes the best of
``--repeats`` timed runs (minimum-of-N is the standard noise filter for
wall-clock comparisons: the minimum approaches the true cost, while
means absorb scheduler hiccups).

Usage::

    # CI: compare two checkouts
    python benchmarks/overhead_check.py --base base/src --head src

    # Local: absolute timing of the current tree only
    python benchmarks/overhead_check.py --head src
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from perf_suite import time_workload  # noqa: E402  (shared timing harness)


def time_tree(src: str, benchmark: str, scale: float, repeats: int) -> float:
    """Best-of-N wall time of the micro-workload against one source tree.

    Thin wrapper over :func:`perf_suite.time_workload` (the perf-gate
    suite's subprocess harness) pinned to the G-Cache design, which has
    the densest set of would-be emission sites.
    """
    rec = time_workload(src, benchmark, design="gc", scale=scale, repeats=repeats)
    return float(rec["best_seconds"])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--head", default="src",
                        help="src/ of the tree under test")
    parser.add_argument("--base", default=None,
                        help="src/ of the comparison baseline; omit for "
                             "absolute timing only")
    parser.add_argument("--benchmark", default="SPMV")
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--threshold", type=float, default=1.05,
                        help="max allowed head/base wall-time ratio")
    args = parser.parse_args()

    head = time_tree(args.head, args.benchmark, args.scale, args.repeats)
    print(f"head ({args.head}): {head:.3f}s "
          f"[{args.benchmark} scale={args.scale}, best of {args.repeats}]")
    if args.base is None:
        return 0

    base = time_tree(args.base, args.benchmark, args.scale, args.repeats)
    ratio = head / base
    print(f"base ({args.base}): {base:.3f}s")
    print(f"ratio: {ratio:.3f} (threshold {args.threshold:.2f})")
    if ratio > args.threshold:
        print(f"FAIL: disabled-tracing overhead {100 * (ratio - 1):.1f}% "
              f"exceeds {100 * (args.threshold - 1):.0f}%", file=sys.stderr)
        return 1
    print("OK: disabled-tracing overhead within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
