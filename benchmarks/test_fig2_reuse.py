"""Figure 2 benchmark: L1 reuse-count distribution under the baseline."""

from __future__ import annotations

from conftest import publish, repro_scale, repro_seed

from repro.experiments.fig2_reuse import fig2_reuse_distribution, render_fig2


def test_fig2_reuse_distribution(benchmark, results_dir):
    data = benchmark.pedantic(
        lambda: fig2_reuse_distribution(scale=repro_scale(), seed=repro_seed()),
        rounds=1,
        iterations=1,
    )
    publish(results_dir, "fig2_reuse", render_fig2(data))

    # Shape checks (paper Fig. 2): most benchmarks waste a large fraction
    # of fills; BFS is near the top (~80% zero reuse in the paper).
    assert data["BFS"]["0"] > 0.6
    wasted = [d["0"] for d in data.values()]
    assert sum(1 for w in wasted if w > 0.4) >= 10, (
        "a majority of the suite must show heavy zero-reuse"
    )
    # FWT's pairs reuse within the warp: far fewer dead lines.
    assert data["FWT"]["0"] < data["BFS"]["0"]
