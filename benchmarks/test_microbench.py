"""Microbenchmarks of the simulator substrates (true pytest-benchmark
timing, many rounds) — useful for tracking simulator performance itself.
"""

from __future__ import annotations

import random

from repro.cache.cache import Cache
from repro.cache.policies.base import FillContext
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.rrip import SRRIPPolicy
from repro.core.gcache import GCacheConfig, GCachePolicy
from repro.dram.controller import MemoryController
from repro.dram.timing import GDDR5Timing
from repro.gpu.coalescer import Coalescer
from repro.noc.mesh import MeshNoC

LINE = 128


def _access_pattern(n=2000, span=512, seed=0):
    rng = random.Random(seed)
    return [rng.randrange(span) for _ in range(n)]


def test_bench_cache_lru_throughput(benchmark):
    pattern = _access_pattern()

    def run():
        cache = Cache("c", 32 * 1024, 4, LINE, LRUPolicy())
        for now, line in enumerate(pattern):
            if not cache.lookup(line, now).hit:
                cache.fill(line, now)
        return cache.stats.hits

    assert benchmark(run) > 0


def test_bench_cache_gcache_throughput(benchmark):
    pattern = _access_pattern()

    def run():
        cache = Cache(
            "c", 32 * 1024, 4, LINE, SRRIPPolicy(3), mgmt=GCachePolicy(GCacheConfig())
        )
        for now, line in enumerate(pattern):
            if not cache.lookup(line, now).hit:
                cache.fill(line, now, FillContext(line, victim_hint=line % 5 == 0))
        return cache.stats.hits

    assert benchmark(run) > 0


def test_bench_coalescer(benchmark):
    rng = random.Random(1)
    warps = [[rng.randrange(1 << 20) for _ in range(32)] for _ in range(200)]

    def run():
        unit = Coalescer()
        return sum(len(unit.coalesce(w)) for w in warps)

    assert benchmark(run) > 0


def test_bench_dram_controller(benchmark):
    rng = random.Random(2)
    addresses = [rng.randrange(1 << 16) for _ in range(2000)]

    def run():
        mc = MemoryController(0, GDDR5Timing())
        now = 0
        for a in addresses:
            now = mc.request(a, now)
        return now

    assert benchmark(run) > 0


def test_bench_mesh_noc(benchmark):
    rng = random.Random(3)
    pairs = [(rng.randrange(16), rng.randrange(8)) for _ in range(2000)]

    def run():
        noc = MeshNoC()
        t = 0
        for core, part in pairs:
            t = noc.send_response(part, core, t)
        return t

    assert benchmark(run) > 0
