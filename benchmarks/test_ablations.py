"""Ablation benchmarks for G-Cache design choices (see DESIGN.md)."""

from __future__ import annotations

import pytest

from conftest import publish, repro_scale, repro_seed

from repro.experiments.ablations import (
    adaptive_aging_ablation,
    render_sharing_table,
    scheduler_ablation,
    shutdown_interval_ablation,
    victim_bit_sharing_ablation,
)
from repro.stats.report import Table


def test_ablation_victim_bit_sharing(benchmark, results_dir):
    """S_v cores per victim bit: accuracy degrades gracefully."""
    benches = ["SSC", "SPMV"]
    data = benchmark.pedantic(
        lambda: victim_bit_sharing_ablation(
            benches, scale=repro_scale(), seed=repro_seed()
        ),
        rounds=1,
        iterations=1,
    )
    publish(results_dir, "ablation_victim_sharing", render_sharing_table(data))
    for bench in benches:
        full = data[bench][1].l1.miss_rate
        cheapest = data[bench][16].l1.miss_rate
        # Sharing may cost accuracy but must not be catastrophic.
        assert cheapest < full + 0.15, bench


def test_ablation_adaptive_aging(benchmark, results_dir):
    """The Section 5.1 M-th-bypass extension on large-reuse-distance kernels."""
    benches = ["KMN", "SSC"]
    data = benchmark.pedantic(
        lambda: adaptive_aging_ablation(benches, scale=repro_scale(), seed=repro_seed()),
        rounds=1,
        iterations=1,
    )
    table = Table(["benchmark", "BS IPC", "GC", "GC-M"],
                  title="Ablation: adaptive M-th-bypass aging (speedup over BS)")
    for bench in benches:
        base = data[bench]["bs"]
        table.row([
            bench,
            f"{base.ipc:.3f}",
            f"{data[bench]['gc'].speedup_over(base):.3f}",
            f"{data[bench]['gc-m'].speedup_over(base):.3f}",
        ])
    publish(results_dir, "ablation_adaptive_m", table.render())
    for bench in benches:
        base = data[bench]["bs"]
        assert data[bench]["gc-m"].speedup_over(base) > 0.9


def test_ablation_shutdown_interval(benchmark, results_dir):
    """Periodic bypass-switch shutdown: the Section 4.2 knob."""
    benches = ["SPMV"]
    data = benchmark.pedantic(
        lambda: shutdown_interval_ablation(
            benches, scale=repro_scale(), seed=repro_seed()
        ),
        rounds=1,
        iterations=1,
    )
    table = Table(
        ["benchmark"] + [str(i) for i in sorted(data["SPMV"])],
        title="Ablation: switch shutdown interval (L1 miss rate)",
    )
    for bench, runs in data.items():
        table.row([bench] + [f"{runs[i].l1.miss_rate:.1%}" for i in sorted(runs)])
    publish(results_dir, "ablation_shutdown", table.render())
    rates = [r.l1.miss_rate for r in data["SPMV"].values()]
    assert max(rates) - min(rates) < 0.2, "knob must not be destabilizing"


def test_ablation_scheduler_interaction(benchmark, results_dir):
    """G-Cache composes with warp scheduling (paper Section 6.2)."""
    benches = ["SSC"]
    data = benchmark.pedantic(
        lambda: scheduler_ablation(benches, scale=repro_scale(), seed=repro_seed()),
        rounds=1,
        iterations=1,
    )
    table = Table(["benchmark", "sched", "BS IPC", "GC IPC", "GC speedup"],
                  title="Ablation: warp scheduler x G-Cache")
    for bench, per_sched in data.items():
        for sched, runs in per_sched.items():
            table.row([
                bench,
                sched,
                f"{runs['bs'].ipc:.3f}",
                f"{runs['gc'].ipc:.3f}",
                f"{runs['gc'].speedup_over(runs['bs']):.3f}",
            ])
    publish(results_dir, "ablation_scheduler", table.render())
    for per_sched in data.values():
        for runs in per_sched.values():
            assert runs["gc"].speedup_over(runs["bs"]) > 0.9
