"""Figure 9 benchmark: L1 miss rates of all benchmarks and designs."""

from __future__ import annotations

from conftest import publish

from repro.experiments.fig9_missrate import fig9_miss_rates, render_fig9
from repro.sim.designs import make_design
from repro.sim.simulator import simulate


def test_fig9_missrate(benchmark, eval_suite, results_dir):
    data = fig9_miss_rates(eval_suite)
    publish(results_dir, "fig9_missrate", render_fig9(eval_suite))

    # Shape checks: miss-rate reductions explain the Fig. 8 speedups.
    gc_wins = sum(
        1
        for bench in ("SSC", "SYRK", "SPMV", "KMN", "PVR")
        if data[bench]["gc"] < data[bench]["bs"] - 0.02
    )
    assert gc_wins >= 4, "GC must cut misses on most sensitive benchmarks"
    # Insensitive benchmarks barely move (paper: SD1/STL/WP may tick up).
    # Compare against BS-S, which shares GC's replacement policy, so the
    # check isolates the *bypass* mechanism (FWT's short-lived pairs are
    # sensitive to SRRIP's distant insertion, with zero IPC effect).
    for bench in ("SD1", "BP", "FWT"):
        assert abs(data[bench]["gc"] - data[bench]["bs-s"]) < 0.05

    trace = eval_suite.trace("KMN")
    benchmark.pedantic(
        lambda: simulate(trace, eval_suite.config, make_design("bs")),
        rounds=1,
        iterations=1,
    )
