#!/usr/bin/env python3
"""Perf-gate benchmark suite: simulator throughput across kernels/designs.

Times full kernel simulations (trace build excluded) for the seed kernel
set across cache-management designs and reports, per (benchmark, design):

* ``runs_per_sec``    — whole simulations per second (best-of-N),
* ``cycles_per_sec``  — simulated core cycles per wall-clock second,
* ``peak_rss_kb``     — subprocess peak resident set size,
* ``normalized_cost`` — wall time divided by a machine calibration loop,
  a dimensionless cost that transfers across machines of different speed
  (the committed baseline in ``benchmarks/BENCH_4.json`` stores it).

Every measurement runs in a fresh subprocess with ``PYTHONPATH`` pointed
at the tree under test, one warmup run, then best-of-``--repeats`` timed
runs (minimum-of-N filters scheduler noise; the minimum approaches the
true cost).  The same harness backs ``benchmarks/overhead_check.py``.

Usage::

    # Absolute timing of the current tree, table to stdout
    python benchmarks/perf_suite.py

    # Refresh the committed baseline
    python benchmarks/perf_suite.py --write-baseline

    # CI gate A: head vs base checkout, same machine (preferred, robust)
    python benchmarks/perf_suite.py --base base/src --threshold 1.10

    # Gate B (advisory): head vs committed BENCH_4.json via calibration
    # (use a looser threshold on shared/throttled hosts)
    python benchmarks/perf_suite.py --check --threshold 1.5

    # Functional-fidelity gate: the vectorized replay backend must beat
    # the timing engine by >= 8x on the design-sweep workload
    python benchmarks/perf_suite.py --functional-gate

    # ...with a per-benchmark burst/probe/scalar phase breakdown
    python benchmarks/perf_suite.py --functional-gate --profile-phases
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import Dict, List, Optional

HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_BASELINE = os.path.join(HERE, "BENCH_4.json")

#: Baseline-blob schema: 1 = bare {"records": [...]}; 2 adds the
#: top-level "schema_version" stamp (readers accept both).
BENCH_SCHEMA_VERSION = 2

#: Seed kernel set for the gate: SPMV (irregular sparse algebra) and BFS
#: (graph traversal) are the paper's cache-sensitive extremes and the two
#: kernels the hot-path overhaul targets.
BENCHMARKS = ["SPMV", "BFS"]
#: Baseline cache (LRU, no management) and the paper's G-Cache.
DESIGNS = ["bs", "gc"]

#: Functional-gate workload: a design sweep (the backend's intended use —
#: streams/arrays are design-independent, so one stream build amortizes
#: over the whole sweep) across three management-model families.
FUNCTIONAL_BENCHMARKS = ["SPMV", "BFS", "KMN"]
FUNCTIONAL_DESIGNS = ["bs", "gc", "dbp"]

# The in-subprocess workload.  Calibration is a fixed pure-Python
# integer/list loop: it scales with interpreter speed the same way the
# simulator's hot loops do, so cost = run_seconds / calib_seconds is
# comparable across machines.  Peak RSS comes from the stdlib resource
# module (ru_maxrss is KB on Linux, bytes on macOS — normalised to KB).
_WORKLOAD = r"""
import json, resource, sys, time

def _calibrate():
    best = None
    for _ in range(3):
        t0 = time.perf_counter()
        acc, xs = 0, list(range(256))
        for i in range(200000):
            acc += xs[i & 255]
            if acc & 1:
                acc ^= i
        dt = time.perf_counter() - t0
        best = dt if best is None or dt < best else best
    return best

calib = _calibrate()

from repro.sim.config import GPUConfig
from repro.sim.designs import make_design
from repro.sim.simulator import simulate
from repro.trace.suite import build_benchmark

benchmark, design, scale, repeats, seed = (
    {benchmark!r}, {design!r}, {scale!r}, {repeats!r}, {seed!r}
)
config = GPUConfig()
trace = build_benchmark(benchmark, scale=scale, seed=seed)
spec = make_design(design)

result = simulate(trace, config, spec)  # warmup: imports, allocator, caches
best = None
for _ in range(repeats):
    t0 = time.perf_counter()
    result = simulate(trace, config, spec)
    dt = time.perf_counter() - t0
    best = dt if best is None or dt < best else best

rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
if sys.platform == "darwin":
    rss //= 1024
print(json.dumps({{
    "best_seconds": best,
    "calib_seconds": calib,
    "cycles": result.cycles,
    "instructions": result.instructions,
    "peak_rss_kb": rss,
}}))
"""


# Functional-vs-timing sweep workload.  Both sides run the same design
# sweep over the same trace in one subprocess, interleaved round by round
# (timing, then functional), so slow host drift hits both sides equally
# and the speedup ratio stays stable on noisy runners.  The functional
# side pays its real costs: stream + array construction is timed inside
# every functional round.
_FUNCTIONAL_WORKLOAD = r"""
import json, resource, sys, time

def _calibrate():
    best = None
    for _ in range(3):
        t0 = time.perf_counter()
        acc, xs = 0, list(range(256))
        for i in range(200000):
            acc += xs[i & 255]
            if acc & 1:
                acc ^= i
        dt = time.perf_counter() - t0
        best = dt if best is None or dt < best else best
    return best

calib = _calibrate()

from repro.sim.config import GPUConfig
from repro.sim.designs import make_design
from repro.sim.functional import (
    FunctionalEngine, build_core_arrays, functional_replay,
)
from repro.sim.replay import build_core_streams
from repro.sim.simulator import simulate
from repro.trace.suite import build_benchmark

benchmark, designs, scale, repeats, seed, profile = (
    {benchmark!r}, {designs!r}, {scale!r}, {repeats!r}, {seed!r}, {profile!r}
)
config = GPUConfig()
trace = build_benchmark(benchmark, scale=scale, seed=seed)
specs = [make_design(d) for d in designs]

def timing_sweep():
    return [simulate(trace, config, s) for s in specs]

phase_totals = {{"burst": 0.0, "probe": 0.0, "scalar_event": 0.0}}

def functional_sweep():
    streams = build_core_streams(trace, config)
    arrays = build_core_arrays(streams, config)
    if not profile:
        return [
            functional_replay(trace, config, s, streams=streams, arrays=arrays)
            for s in specs
        ]
    out = []
    for s in specs:
        eng = FunctionalEngine(config, s, profile=True)
        eng.run(trace, streams=streams, arrays=arrays)
        for k, v in eng.phase_seconds.items():
            phase_totals[k] += v
        out.append(eng.result(benchmark=trace.name))
    return out

timing_sweep()      # warmup: imports, allocator, caches
functional_sweep()
for k in phase_totals:   # profile the measured rounds only
    phase_totals[k] = 0.0
best_timing = best_functional = None
for _ in range(repeats):
    t0 = time.perf_counter()
    timing_sweep()
    dt = time.perf_counter() - t0
    best_timing = dt if best_timing is None or dt < best_timing else best_timing
    t0 = time.perf_counter()
    functional_sweep()
    dt = time.perf_counter() - t0
    if best_functional is None or dt < best_functional:
        best_functional = dt

rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
if sys.platform == "darwin":
    rss //= 1024
print(json.dumps({{
    "timing_seconds": best_timing,
    "functional_seconds": best_functional,
    "phase_seconds": phase_totals if profile else None,
    "calib_seconds": calib,
    "peak_rss_kb": rss,
}}))
"""


def time_functional_sweep(
    src: str,
    benchmark: str,
    designs: Optional[List[str]] = None,
    scale: float = 0.1,
    repeats: int = 3,
    seed: int = 0,
    profile_phases: bool = False,
) -> Dict[str, object]:
    """Time the design sweep under both fidelities in one subprocess.

    With ``profile_phases`` the functional engines run with wall-clock
    phase instrumentation and the record gains ``phase_seconds`` /
    ``phase_split``: time inside the vectorized burst kernels, the bulk
    hit probes, and the scalar event loops, summed over all measured
    rounds (uninstrumented residue — stream/array construction, state
    writeback — is the remainder against ``functional_seconds``).
    """
    designs = designs or FUNCTIONAL_DESIGNS
    env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
    code = _FUNCTIONAL_WORKLOAD.format(
        benchmark=benchmark, designs=designs, scale=scale,
        repeats=repeats, seed=seed, profile=profile_phases,
    )
    out = subprocess.run(
        [sys.executable, "-c", code], env=env, check=True,
        capture_output=True, text=True,
    ).stdout
    raw = json.loads(out.splitlines()[-1])
    timing = float(raw["timing_seconds"])
    functional = float(raw["functional_seconds"])
    calib = float(raw["calib_seconds"])
    rec: Dict[str, object] = {
        "benchmark": benchmark,
        "design": "functional",
        "mode": "functional",
        "sweep_designs": list(designs),
        "scale": scale,
        "repeats": repeats,
        "seed": seed,
        "timing_seconds": round(timing, 6),
        "functional_seconds": round(functional, 6),
        "speedup": round(timing / functional, 4),
        "peak_rss_kb": raw["peak_rss_kb"],
        "calib_seconds": round(calib, 6),
        "normalized_cost": round(functional / calib, 4),
    }
    phases = raw.get("phase_seconds")
    if phases:
        total = sum(phases.values()) or 1.0
        rec["phase_seconds"] = {
            k: round(float(v), 6) for k, v in sorted(phases.items())
        }
        rec["phase_split"] = {
            k: round(float(v) / total, 4) for k, v in sorted(phases.items())
        }
    return rec


def functional_gate(
    src: str,
    threshold: float,
    benchmarks: Optional[List[str]] = None,
    scale: float = 0.1,
    repeats: int = 3,
    seed: int = 0,
    profile_phases: bool = False,
    ledger: Optional[str] = None,
    ledger_suite: str = "functional-gate",
) -> int:
    """Fail (return 1) unless the functional backend beats the timing
    engine by at least ``threshold``x across the sweep suite.

    Gated on the suite total (sum of per-benchmark best times): one
    kernel's subprocess landing on a noisy core shifts its own ratio by
    ~15%, but the total — three subprocesses, interleaved fidelities
    inside each — stays put.  Per-benchmark ratios print as advisory.

    ``profile_phases`` adds a per-benchmark breakdown of where the
    functional side's time goes (burst kernels vs bulk probes vs scalar
    event loops); ``ledger`` appends the per-benchmark records — with
    the breakdown when profiled — to the perf/accuracy ledger.
    """
    print(f"-- functional gate (design sweep: {', '.join(FUNCTIONAL_DESIGNS)}) --")
    total_timing = total_functional = 0.0
    records: List[Dict[str, object]] = []
    for benchmark in benchmarks or FUNCTIONAL_BENCHMARKS:
        rec = time_functional_sweep(
            src, benchmark, None, scale, repeats, seed,
            profile_phases=profile_phases,
        )
        records.append(rec)
        total_timing += rec["timing_seconds"]
        total_functional += rec["functional_seconds"]
        print(
            f"{benchmark:<6} timing {rec['timing_seconds']:.3f}s  "
            f"functional {rec['functional_seconds']:.3f}s  "
            f"speedup {rec['speedup']:.2f}x"
        )
        if "phase_split" in rec:
            split = rec["phase_split"]
            instrumented = sum(rec["phase_seconds"].values())
            print(
                "       phases: "
                + "  ".join(
                    f"{k} {split[k]:.0%}" for k in sorted(split)
                )
                + f"  (instrumented {instrumented:.3f}s over "
                f"{repeats} rounds)"
            )
    if ledger is not None:
        # The ledger lives in the analysis package of the tree under
        # test; mirror the import dance of the perf-gate path.
        sys.path.insert(0, os.path.abspath(src))
        from repro.analysis import Ledger, record_from_bench

        record = record_from_bench(
            {"schema_version": BENCH_SCHEMA_VERSION, "records": records},
            suite=ledger_suite,
        )
        Ledger(ledger).append(record)
        print(f"[ledger] appended {ledger_suite} record "
              f"({len(record['metrics'])} metrics) -> {ledger}")
    total = total_timing / total_functional
    verdict = "OK" if total >= threshold else "FAIL"
    print(
        f"TOTAL  timing {total_timing:.3f}s  "
        f"functional {total_functional:.3f}s  "
        f"speedup {total:.2f}x (>= {threshold:.1f}x) {verdict}"
    )
    if total < threshold:
        print(
            f"FAIL: functional backend under {threshold:.1f}x overall",
            file=sys.stderr,
        )
        return 1
    print(f"OK: functional backend >= {threshold:.1f}x overall")
    return 0


def time_workload(
    src: str,
    benchmark: str,
    design: str = "gc",
    scale: float = 0.1,
    repeats: int = 3,
    seed: int = 0,
) -> Dict[str, object]:
    """Time one (benchmark, design) simulation in a fresh subprocess.

    Returns the measurement record; ``src`` is the ``src/`` directory of
    the tree under test (placed on the subprocess ``PYTHONPATH``).
    """
    env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
    code = _WORKLOAD.format(
        benchmark=benchmark, design=design, scale=scale, repeats=repeats, seed=seed
    )
    out = subprocess.run(
        [sys.executable, "-c", code], env=env, check=True,
        capture_output=True, text=True,
    ).stdout
    raw = json.loads(out.splitlines()[-1])
    best = float(raw["best_seconds"])
    calib = float(raw["calib_seconds"])
    return {
        "benchmark": benchmark,
        "design": design,
        "scale": scale,
        "repeats": repeats,
        "seed": seed,
        "best_seconds": round(best, 6),
        "runs_per_sec": round(1.0 / best, 4),
        "cycles": raw["cycles"],
        "cycles_per_sec": round(raw["cycles"] / best, 1),
        "instructions": raw["instructions"],
        "peak_rss_kb": raw["peak_rss_kb"],
        "calib_seconds": round(calib, 6),
        "normalized_cost": round(best / calib, 4),
    }


def run_suite(
    src: str,
    benchmarks: Optional[List[str]] = None,
    designs: Optional[List[str]] = None,
    scale: float = 0.1,
    repeats: int = 3,
    seed: int = 0,
    samples: int = 1,
) -> List[Dict[str, object]]:
    """Run the full timing matrix against one source tree.

    ``samples > 1`` measures the whole matrix that many times (fresh
    subprocess each) and keeps, per kernel/design, the record with the
    median ``normalized_cost``.  Best-of-``repeats`` inside one
    subprocess filters scheduler jitter; the across-subprocess median
    additionally filters slow host-speed drift (frequency scaling,
    noisy neighbours), which matters when writing a baseline that later
    runs will be compared against.
    """
    rounds: List[List[Dict[str, object]]] = []
    for _ in range(max(1, samples)):
        records = []
        for benchmark in benchmarks or BENCHMARKS:
            for design in designs or DESIGNS:
                records.append(
                    time_workload(src, benchmark, design, scale, repeats, seed)
                )
        rounds.append(records)
    if len(rounds) == 1:
        return rounds[0]
    merged = []
    for i in range(len(rounds[0])):
        candidates = sorted(
            (rnd[i] for rnd in rounds),
            key=lambda rec: rec["normalized_cost"],
        )
        merged.append(candidates[len(candidates) // 2])
    return merged


def _key(rec: Dict[str, object]) -> str:
    return f"{rec['benchmark']}/{rec['design']}"


def _print_table(records: List[Dict[str, object]], label: str) -> None:
    print(f"-- {label} --")
    print(f"{'kernel/design':<16} {'runs/s':>8} {'Mcycles/s':>10} "
          f"{'RSS MB':>8} {'norm cost':>10}")
    for rec in records:
        print(
            f"{_key(rec):<16} {rec['runs_per_sec']:>8.2f} "
            f"{rec['cycles_per_sec'] / 1e6:>10.2f} "
            f"{rec['peak_rss_kb'] / 1024:>8.1f} {rec['normalized_cost']:>10.2f}"
        )


def _gate(
    head: List[Dict[str, object]],
    base_costs: Dict[str, float],
    threshold: float,
    metric_name: str,
) -> int:
    """Fail (return 1) when any head entry is > threshold x its base cost."""
    failed = False
    for rec in head:
        key = _key(rec)
        if key not in base_costs:
            print(f"{key}: no baseline entry — skipped")
            continue
        ratio = rec[metric_name] / base_costs[key]
        verdict = "OK" if ratio <= threshold else "FAIL"
        print(f"{key}: {metric_name} ratio {ratio:.3f} "
              f"(threshold {threshold:.2f}) {verdict}")
        failed |= ratio > threshold
    if failed:
        print(
            f"FAIL: throughput regressed more than "
            f"{100 * (threshold - 1):.0f}% on at least one kernel/design",
            file=sys.stderr,
        )
        return 1
    print("OK: no perf regression beyond threshold")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--src", default=os.path.join(HERE, "..", "src"),
                        help="src/ of the tree under test")
    parser.add_argument("--base", default=None,
                        help="src/ of a baseline checkout to gate against")
    parser.add_argument("--check", action="store_true",
                        help="gate against the committed baseline JSON "
                             "(normalized_cost comparison)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline JSON path (default BENCH_4.json)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the measurements to --baseline")
    parser.add_argument("--benchmarks", nargs="*", default=None)
    parser.add_argument("--designs", nargs="*", default=None)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--samples", type=int, default=None,
                        help="suite passes; keeps the per-key median "
                             "(default 1, or 3 with --write-baseline)")
    parser.add_argument("--threshold", type=float, default=1.10,
                        help="max allowed head/base cost ratio")
    parser.add_argument("--functional-gate", action="store_true",
                        help="assert the functional backend beats the "
                             "timing engine on the design-sweep workload")
    parser.add_argument("--functional-threshold", type=float, default=8.0,
                        help="min functional/timing speedup for the gate")
    parser.add_argument("--profile-phases", action="store_true",
                        help="with --functional-gate: report the time "
                             "split between burst kernels, bulk probes "
                             "and scalar event loops per benchmark")
    parser.add_argument("--ledger", default=None, metavar="PATH",
                        help="append this run's measurements to the "
                             "perf/accuracy ledger (repro.analysis JSONL)")
    parser.add_argument("--ledger-suite", default="perf-gate",
                        help="suite name for the ledger record")
    args = parser.parse_args()
    if args.samples is None:
        args.samples = 3 if args.write_baseline else 1

    if args.functional_gate:
        return functional_gate(
            args.src, args.functional_threshold, args.benchmarks,
            args.scale, args.repeats, args.seed,
            profile_phases=args.profile_phases,
            ledger=args.ledger,
            ledger_suite=(
                args.ledger_suite if args.ledger_suite != "perf-gate"
                else "functional-gate"
            ),
        )

    head = run_suite(
        args.src, args.benchmarks, args.designs,
        args.scale, args.repeats, args.seed, args.samples,
    )
    _print_table(head, f"head ({os.path.abspath(args.src)})")

    if args.ledger is not None:
        # Record the measurement in the historical ledger regardless of
        # gate outcome — a regression is exactly what the trajectory
        # must remember.  The analysis package lives in the tree under
        # test, so put its src/ on the import path.
        sys.path.insert(0, os.path.abspath(args.src))
        from repro.analysis import Ledger, record_from_bench

        record = record_from_bench(
            {"schema_version": BENCH_SCHEMA_VERSION, "records": head},
            suite=args.ledger_suite,
        )
        Ledger(args.ledger).append(record)
        print(f"[ledger] appended {args.ledger_suite} record "
              f"({len(record['metrics'])} metrics) -> {args.ledger}")

    if args.write_baseline:
        # The committed baseline also records the functional-sweep
        # measurements (mode="functional"): the cross-machine --check
        # gate ignores them, but they document the expected speedup and
        # back local "has the functional backend slowed down?" checks.
        functional = [
            time_functional_sweep(
                args.src, b, None, args.scale, args.repeats, args.seed
            )
            for b in FUNCTIONAL_BENCHMARKS
        ]
        for rec in functional:
            print(f"{_key(rec):<18} functional speedup {rec['speedup']:.2f}x")
        with open(args.baseline, "w") as fh:
            json.dump(
                {"schema_version": BENCH_SCHEMA_VERSION,
                 "records": head + functional},
                fh, indent=2, sort_keys=True,
            )
            fh.write("\n")
        print(f"baseline written to {args.baseline}")

    if args.base is not None:
        # Same machine: raw wall time is the fair comparison.  The base
        # matrix runs immediately after the head matrix; per-key the two
        # subprocesses are seconds apart, so slow host drift affects
        # both sides nearly equally (best-of-N inside each subprocess
        # already filters fast jitter).
        base = run_suite(
            args.base, args.benchmarks, args.designs,
            args.scale, args.repeats, args.seed, args.samples,
        )
        _print_table(base, f"base ({os.path.abspath(args.base)})")
        return _gate(
            head,
            {_key(r): float(r["best_seconds"]) for r in base},
            args.threshold,
            "best_seconds",
        )

    if args.check:
        with open(args.baseline) as fh:
            base_records = json.load(fh)["records"]
        # Cross-machine: compare calibration-normalized cost instead.
        return _gate(
            head,
            {_key(r): float(r["normalized_cost"]) for r in base_records},
            args.threshold,
            "normalized_cost",
        )

    return 0


if __name__ == "__main__":
    sys.exit(main())
