"""Energy-comparison benchmark (extension of the paper's motivation)."""

from __future__ import annotations

from conftest import publish

from repro.experiments.energy_table import energy_ratios, render_energy_table


def test_energy_comparison(benchmark, eval_suite, results_dir):
    data = benchmark.pedantic(
        lambda: energy_ratios(eval_suite, designs=("bs", "gc")),
        rounds=1,
        iterations=1,
    )
    publish(results_dir, "energy_comparison", render_energy_table(eval_suite))

    # Shape: G-Cache must not cost energy anywhere, and must save a
    # measurable amount on the cache-sensitive group (fewer L2/NoC round
    # trips + shorter runtimes).
    assert data["GM-sensitive"]["gc"] < 1.0
    assert data["GM-insensitive"]["gc"] < 1.05
