"""Benchmark-harness fixtures.

The paper-figure benchmarks share one :class:`EvalSuite` per pytest
session (the figures are views of one simulation campaign, and full
timing runs are expensive).  Scale defaults to 0.5 and can be overridden
with ``REPRO_SCALE=1.0`` for paper-sized runs.

The campaign fans out over ``REPRO_JOBS`` worker processes (default:
all cores) and, when ``REPRO_CACHE_DIR`` is set, serves repeat runs from
the persistent result cache — results are bit-identical either way (see
``tests/test_runner_determinism.py``).

Every rendered figure/table is also written to ``benchmarks/results/``
so EXPERIMENTS.md can reference stable artefacts.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.common import EvalSuite

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def repro_scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "0.5"))


def repro_seed() -> int:
    return int(os.environ.get("REPRO_SEED", "0"))


def repro_jobs():
    """Worker processes for the campaign engine (default: all cores)."""
    raw = os.environ.get("REPRO_JOBS", "")
    return int(raw) if raw else None


def repro_cache_dir():
    return os.environ.get("REPRO_CACHE_DIR") or None


@pytest.fixture(scope="session")
def scale() -> float:
    return repro_scale()


@pytest.fixture(scope="session")
def eval_suite() -> EvalSuite:
    """The Table-2 configuration campaign shared by Figs. 8/9 + Table 3."""
    return EvalSuite(
        scale=repro_scale(),
        seed=repro_seed(),
        jobs=repro_jobs(),
        cache_dir=repro_cache_dir(),
    )


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def publish(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a rendered table and save it under benchmarks/results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")


def shape_threshold(full_scale: float, small_scale: float) -> float:
    """Pick a shape-assertion threshold for the current run scale.

    G-Cache's contention-detection loop needs access volume to warm up
    (DESIGN.md Section 6); below half scale its measured advantage is a
    systematic underestimate, so the assertions relax accordingly.
    """
    return full_scale if repro_scale() >= 0.5 else small_scale
