#!/usr/bin/env python
"""Service smoke test: daemon end-to-end, for CI and local sanity.

Exercises the full simulation-as-a-service stack against a real daemon
subprocess (no monkeypatching — actual HTTP, actual engines, actual
kill -9):

1. **Reference**: the same campaign spec run in-process through a batch
   :class:`CampaignEngine` — the ground truth the daemon must match
   bit-identically.
2. **Coalescing**: three concurrent identical submissions with
   overlapping in-flight keys; asserts every job completes, the service
   coalesced at least one execution (``/stats``), and every job's
   manifest metrics equal the batch reference exactly.
3. **Crash recovery**: a fresh job is killed mid-flight (SIGKILL to the
   daemon after the first task completes), the daemon restarts on the
   same state/cache directories, recovers the job under its original
   id, resumes from the journal (``resumed >= 1``), and finishes with
   metrics bit-identical to the reference.

Stdlib only; run with ``PYTHONPATH=src python benchmarks/service_smoke.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.experiments.common import EvalSuite  # noqa: E402
from repro.runner import CampaignEngine, ResultCache  # noqa: E402
from repro.service import ServiceClient, ServiceError  # noqa: E402
from repro.sim.config import GPUConfig  # noqa: E402

BENCHMARKS = ["SD1", "SPMV"]
DESIGNS = ["bs", "gc"]
SCALE = 0.2
WAIT = 180.0


def log(msg: str) -> None:
    print(f"[service-smoke] {msg}", flush=True)


def free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def spec_payload(seed: int) -> dict:
    return {
        "benchmarks": BENCHMARKS,
        "designs": DESIGNS,
        "scale": SCALE,
        "seed": seed,
        "fidelity": "timing",
    }


def reference_metrics(seed: int, cache_dir: Path) -> dict:
    """Per-label task metrics from an in-process batch campaign."""
    engine = CampaignEngine(jobs=1, cache=ResultCache(cache_dir))
    suite = EvalSuite(config=GPUConfig(), benchmarks=BENCHMARKS, scale=SCALE,
                      seed=seed, engine=engine)
    suite.run_matrix(DESIGNS)
    manifest = engine.manifest()
    return {t["label"]: t["metrics"] for t in manifest["tasks"]}


def manifest_metrics(client: ServiceClient, job_id: str) -> dict:
    manifest = client.manifest(job_id)
    return {t["label"]: t["metrics"] for t in manifest["tasks"]}


class Daemon:
    """The daemon subprocess, restartable on the same directories."""

    def __init__(self, port: int, cache_dir: Path, state_dir: Path) -> None:
        self.port = port
        self.cache_dir = cache_dir
        self.state_dir = state_dir
        self.proc: subprocess.Popen | None = None

    def start(self) -> None:
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", str(self.port),
             "--cache-dir", str(self.cache_dir),
             "--state-dir", str(self.state_dir)],
            env=env,
        )
        client = ServiceClient(port=self.port, timeout=5)
        deadline = time.monotonic() + 30
        while True:
            try:
                client.health()
                return
            except ServiceError:
                if self.proc.poll() is not None:
                    raise SystemExit(
                        f"daemon died on startup (rc={self.proc.returncode})"
                    )
                if time.monotonic() > deadline:
                    raise SystemExit("daemon never became healthy")
                time.sleep(0.1)

    def kill(self) -> None:
        assert self.proc is not None
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait()

    def stop(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                self.proc.kill()


def phase_coalescing(client: ServiceClient, reference: dict) -> None:
    log("phase 2: three concurrent identical submissions")
    payload = spec_payload(seed=0)
    ids = [client.submit(payload)["id"] for _ in range(3)]
    log(f"submitted {ids}")
    finals = {jid: client.wait(jid, timeout=WAIT) for jid in ids}
    for jid, snap in finals.items():
        assert snap["state"] == "completed", (jid, snap)

    stats = client.stats()
    coalesced = stats["coalesced_total"]
    executed = stats["counters"]["executed"]
    hits = stats["counters"]["cache_hits"]
    n_tasks = len(BENCHMARKS) * len(DESIGNS)
    log(f"executed={executed} coalesced={coalesced} cache_hits={hits}")
    assert executed == n_tasks, (
        f"each unique key must execute exactly once: "
        f"{executed} executions for {n_tasks} keys"
    )
    assert coalesced > 0, (
        "overlapping in-flight submissions never coalesced — "
        f"stats: {json.dumps(stats['counters'])}"
    )
    assert coalesced + hits == n_tasks * 2, (
        "the duplicate jobs' tasks must all be served without execution"
    )

    for jid in ids:
        metrics = manifest_metrics(client, jid)
        assert metrics == reference, (
            f"job {jid} metrics diverge from the batch reference"
        )
    log("all three jobs bit-identical to the batch campaign")


def phase_crash_recovery(daemon: Daemon, client: ServiceClient,
                         reference: dict) -> None:
    log("phase 3: SIGKILL mid-job, restart, resume")
    job_id = client.submit(spec_payload(seed=99))["id"]
    deadline = time.monotonic() + WAIT
    while True:
        snap = client.job(job_id)
        done = snap["counters"]["executed"] + snap["counters"]["cache_hits"]
        if 0 < done < len(BENCHMARKS) * len(DESIGNS):
            break
        assert snap["state"] in ("queued", "running"), (
            f"job finished before the kill — enlarge the matrix: {snap}"
        )
        assert time.monotonic() < deadline, "job never made progress"
        time.sleep(0.02)
    daemon.kill()
    log(f"daemon killed with {done} task(s) journaled for {job_id}")

    daemon.start()
    log("daemon restarted on the same state dir")
    snap = client.wait(job_id, timeout=WAIT)
    assert snap["state"] == "completed", snap
    assert snap["resumed"] is True, snap
    assert snap["counters"]["resumed"] >= 1, (
        f"restart must resume from the journal, not recompute: "
        f"{snap['counters']}"
    )
    metrics = manifest_metrics(client, job_id)
    assert metrics == reference, "resumed job diverges from the reference"
    log(f"job {job_id} recovered: resumed={snap['counters']['resumed']}, "
        "metrics bit-identical")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--keep", action="store_true",
                        help="keep the scratch directory for inspection")
    args = parser.parse_args()

    scratch = Path(tempfile.mkdtemp(prefix="repro-service-smoke-"))
    log(f"scratch: {scratch}")

    log("phase 1: in-process batch reference campaigns")
    reference_0 = reference_metrics(seed=0, cache_dir=scratch / "ref-cache")
    reference_99 = reference_metrics(seed=99, cache_dir=scratch / "ref-cache")
    log(f"reference has {len(reference_0)} tasks per seed")

    daemon = Daemon(free_port(), scratch / "cache", scratch / "state")
    daemon.start()
    client = ServiceClient(port=daemon.port, timeout=30)
    log(f"daemon up on port {daemon.port}")
    try:
        phase_coalescing(client, reference_0)
        phase_crash_recovery(daemon, client, reference_99)
    finally:
        daemon.stop()
        if args.keep:
            log(f"kept scratch at {scratch}")
        else:
            import shutil
            shutil.rmtree(scratch, ignore_errors=True)
    log("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
