"""Figures 3/4 benchmark: baseline sensitivity to L1 capacity."""

from __future__ import annotations

from conftest import publish, repro_scale, repro_seed

from repro.experiments.fig34_size_sensitivity import (
    SIZE_SWEEP,
    render_fig3,
    render_fig4,
    size_sensitivity,
)


def test_fig3_fig4_size_sensitivity(benchmark, results_dir):
    data = benchmark.pedantic(
        lambda: size_sensitivity(scale=repro_scale(), seed=repro_seed()),
        rounds=1,
        iterations=1,
    )
    publish(results_dir, "fig3_missrate_vs_size", render_fig3(data))
    publish(results_dir, "fig4_speedup_vs_size", render_fig4(data))

    small, big = SIZE_SWEEP[0], SIZE_SWEEP[-1]
    improved = 0
    for bench, runs in data.items():
        # Larger caches may never hurt the miss rate materially...
        assert runs[big].l1.miss_rate <= runs[small].l1.miss_rate + 0.03, bench
        if runs[big].l1.miss_rate < runs[small].l1.miss_rate - 0.05:
            improved += 1
    # ... and most cache-sensitive benchmarks must clearly benefit
    # (that is what made them cache sensitive in Table 1).
    assert improved >= len(data) - 2
