"""Figure 8 benchmark: IPC speedup of every design over the baseline.

Regenerates the paper's main result table.  Shape assertions encode the
paper's qualitative claims; the timed section is one full-design
simulation of a representative cache-sensitive benchmark.
"""

from __future__ import annotations

from conftest import publish, shape_threshold

from repro.experiments.fig8_speedup import fig8_speedups, render_fig8
from repro.sim.designs import make_design
from repro.sim.simulator import simulate


def test_fig8_speedup(benchmark, eval_suite, results_dir):
    data = fig8_speedups(eval_suite)
    publish(results_dir, "fig8_speedup", render_fig8(eval_suite))

    # Shape checks (paper Section 5.1).
    sensitive = data["GM-sensitive"]
    assert sensitive["gc"] > shape_threshold(1.08, 1.02), (
        "GC must clearly beat BS on sensitive"
    )
    assert sensitive["gc"] > sensitive["pdp-3"], "GC beats dynamic PDP"
    assert data["GM-insensitive"]["gc"] > 0.97, "GC must not hurt insensitive"
    assert data["SPMV"]["gc"] > data["SPMV"]["spdp-b"], "GC wins SPMV"
    assert abs(data["GM-sensitive"]["bs-s"] - 1.0) < abs(
        sensitive["gc"] - 1.0
    ), "replacement policy alone buys less than bypass"

    # Timed portion: one full G-Cache run of SPMV.
    trace = eval_suite.trace("SPMV")
    benchmark.pedantic(
        lambda: simulate(trace, eval_suite.config, make_design("gc")),
        rounds=1,
        iterations=1,
    )
