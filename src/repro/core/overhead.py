"""Hardware cost accounting (paper Section 4.3).

Computes the storage overhead of G-Cache and of the alternatives the
paper compares against, so the cost-effectiveness argument can be
reproduced numerically:

* **G-Cache**: victim bits in the L2 tag array, ``O_v = (P / S_v) x N x
  M`` bits, plus one bypass-switch bit per L1 set — for the paper's
  configuration (16 cores, 512-set 16-way L2) exactly the 16 KB the
  paper quotes.
* **CCWS** (Rogers et al.): a victim tag array per L1 ("lost locality
  detector") — per-entry tags at L1-set granularity.
* **PDP**: per-line PD counters, per-set sampler FIFOs and the RDD
  counter array (the paper: "no sampling logic, dedicated pipeline or
  hash table is required" for G-Cache).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.stats.report import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core <- sim)
    from repro.sim.config import GPUConfig

__all__ = ["OverheadReport", "gcache_overhead", "ccws_overhead", "pdp_overhead", "overhead_table"]


@dataclass(frozen=True)
class OverheadReport:
    """Storage cost of one mechanism, in bits."""

    name: str
    bits: int
    description: str

    @property
    def kib(self) -> float:
        return self.bits / 8 / 1024


def gcache_overhead(config: "GPUConfig", share_factor: int = 1) -> OverheadReport:
    """Victim bits in the L2 + per-set bypass switches in the L1s."""
    p = config.num_cores
    if share_factor < 1 or p % share_factor:
        raise ValueError(f"share factor {share_factor} must divide {p}")
    l2_sets_total = config.l2_bank_sets * config.num_partitions
    victim_bits = (p // share_factor) * l2_sets_total * config.l2_ways
    switch_bits = p * config.l1_sets
    return OverheadReport(
        name=f"G-Cache (Sv={share_factor})",
        bits=victim_bits + switch_bits,
        description=(
            f"{p // share_factor} victim bits x {l2_sets_total} sets x "
            f"{config.l2_ways} ways + {config.l1_sets} switch bits x {p} L1s"
        ),
    )


def ccws_overhead(
    config: "GPUConfig", vta_entries_per_l1: int = 512, tag_bits: int = 24
) -> OverheadReport:
    """CCWS's per-L1 victim tag array plus per-warp locality counters."""
    vta = config.num_cores * vta_entries_per_l1 * tag_bits
    counters = config.num_cores * config.max_warps_per_core * 16
    return OverheadReport(
        name="CCWS victim tag array",
        bits=vta + counters,
        description=(
            f"{vta_entries_per_l1} tags x {tag_bits}b per L1 + "
            f"{config.max_warps_per_core} 16b locality counters per core"
        ),
    )


def pdp_overhead(
    config: "GPUConfig",
    counter_bits: int = 3,
    fifos_per_set: int = 32,
    fifo_tag_bits: int = 16,
    rdd_counters: int = 256,
    rdd_counter_bits: int = 16,
) -> OverheadReport:
    """Dynamic PDP: per-line PDCs + sampler FIFOs + RDD counter array."""
    p = config.num_cores
    pdc = p * config.l1_sets * config.l1_ways * counter_bits
    fifos = p * config.l1_sets * fifos_per_set * fifo_tag_bits
    rdd = p * rdd_counters * rdd_counter_bits
    return OverheadReport(
        name=f"Dynamic PDP ({counter_bits}-bit)",
        bits=pdc + fifos + rdd,
        description=(
            f"PDCs + {fifos_per_set}-deep per-set FIFOs + "
            f"{rdd_counters} RDD counters per core"
        ),
    )


def overhead_table(config: "GPUConfig") -> Table:
    """Side-by-side storage comparison (the Section 4.3 argument)."""
    table = Table(
        ["mechanism", "storage", "detail"],
        title=f"Hardware storage overhead ({config.describe()})",
    )
    for report in (
        gcache_overhead(config, 1),
        gcache_overhead(config, 4),
        gcache_overhead(config, config.num_cores),
        ccws_overhead(config),
        pdp_overhead(config, 3),
        pdp_overhead(config, 8),
    ):
        table.row([report.name, f"{report.kib:.1f} KiB", report.description])
    return table
