"""G-Cache: the paper's adaptive bypass and insertion policy (Section 4).

:class:`GCachePolicy` is the management policy installed in each **L1**
data cache.  It requires an RRIP-family replacement policy (hotness is
judged by RRPV) and consumes the victim hints produced by the L2-side
:class:`~repro.core.victim_bits.VictimBitDirectory`.

Decision flow on a fill response (Section 4.2, Figure 7):

1. If the response's victim hint is set, the L2 detected contention for
   this line — turn on the target set's bypass switch.
2. If the switch is on and *every* resident line in the set is hot
   (``rrpv < TH_hot``), bypass the fill.  A hint-carrying (reused) block
   uses a *lower* threshold, making it easier for it to find a non-hot
   victim and be inserted.
3. On every bypass (or every ``M``-th with the adaptive-aging extension)
   the RRPVs of all resident lines are incremented, so repeatedly
   bypassed blocks eventually win a slot.
4. Insertion treats hot and cold blocks differently: a hint-carrying
   block inserts near-MRU (RRPV 0); a cold block inserts at the distant
   SRRIP position so streaming data leaves quickly.

The ``M``-th-bypass counter is the extension sketched in Section 5.1 for
very large reuse distances (KMN, NW): ``M`` starts at 1 and is adapted at
runtime from the contention feedback collected via victim hints.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.cache.policies.base import (
    FillContext,
    FillDecision,
    ManagementPolicy,
)
from repro.cache.replacement.rrip import SRRIPPolicy
from repro.core.bypass_switch import BypassSwitchArray
from repro.obs.events import (
    EV_BYPASS_DECISION,
    EV_M_ADAPT,
    EV_SWITCH_ON,
    EV_SWITCH_SHUTDOWN,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.cache import Cache

__all__ = ["GCachePolicy", "GCacheConfig"]


class GCacheConfig:
    """Tunables for the G-Cache L1 policy.

    Attributes:
        th_hot: RRPV threshold below which a resident line counts as hot
            when the incoming block carries *no* victim hint.  ``None``
            (default) resolves to the replacement policy's max RRPV at
            attach time: a line is hot unless it is already an eviction
            candidate.  This permissive default is what produces the
            paper's 30-56 % bypass ratios — with a strict threshold the
            one in-flight streaming line per set defeats the all-hot test
            and bypass almost never engages.
        th_hot_victim: Lower threshold used when the incoming block's
            victim hint is set ("TH_hot will be lower to make it easier
            to replace one of the existing lines").  ``None`` (default)
            resolves to ``th_hot - 1``: a reused block may replace a line
            that is *nearly* an eviction candidate, but recently-touched
            protected lines stay put — a too-permissive victim threshold
            lets homeless hot blocks evict each other in a musical-chairs
            churn that destroys the very protection bypassing buys.
        hot_insert_rrpv: Insertion RRPV for hint-carrying (hot) blocks.
        cold_insert_rrpv: Insertion RRPV for cold blocks; ``None`` means
            the replacement policy's default (SRRIP long: max-1).
        shutdown_interval: L1 accesses between periodic bypass-switch
            shutdowns (0 disables).
        adaptive_aging: Enable the M-th-bypass aging extension.
        initial_m: Starting value of ``M`` (paper: 1).
        max_m: Upper bound for adapted ``M``.
        aging_epoch: Fills between ``M`` adaptation steps.
    """

    def __init__(
        self,
        th_hot: Optional[int] = None,
        th_hot_victim: Optional[int] = None,
        hot_insert_rrpv: int = 0,
        cold_insert_rrpv: Optional[int] = None,
        shutdown_interval: int = 8192,
        adaptive_aging: bool = False,
        initial_m: int = 1,
        max_m: int = 64,
        aging_epoch: int = 512,
    ) -> None:
        if th_hot is not None and th_hot < 1:
            raise ValueError(f"th_hot must be >= 1, got {th_hot}")
        if th_hot_victim is not None and th_hot_victim < 0:
            raise ValueError(f"th_hot_victim must be >= 0, got {th_hot_victim}")
        if initial_m < 1 or max_m < initial_m:
            raise ValueError(f"need 1 <= initial_m <= max_m, got {initial_m}, {max_m}")
        self.th_hot = th_hot
        self.th_hot_victim = th_hot_victim
        self.hot_insert_rrpv = hot_insert_rrpv
        self.cold_insert_rrpv = cold_insert_rrpv
        self.shutdown_interval = shutdown_interval
        self.adaptive_aging = adaptive_aging
        self.initial_m = initial_m
        self.max_m = max_m
        self.aging_epoch = aging_epoch


class GCachePolicy(ManagementPolicy):
    """Adaptive bypass + insertion for the GPU L1 (the paper's G-Cache)."""

    name = "gcache"

    def __init__(self, config: Optional[GCacheConfig] = None) -> None:
        self.config = config if config is not None else GCacheConfig()
        self._cache: Optional["Cache"] = None
        self._rrip: Optional[SRRIPPolicy] = None
        self._store = None
        #: Thresholds resolved against the RRIP width at attach time.
        self.th_hot = 0
        self.th_hot_victim = 0
        self.switches: Optional[BypassSwitchArray] = None
        self._bypass_counters: List[int] = []
        self.m = self.config.initial_m
        # Adaptation bookkeeping.
        self._epoch_fills = 0
        self._epoch_hints = 0
        self._epoch_bypasses = 0
        # Diagnostics.
        self.hint_fills = 0
        self.total_fills = 0
        self.agings = 0
        self.m_history: List[int] = [self.m]

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, cache: "Cache") -> None:
        if not isinstance(cache.replacement, SRRIPPolicy):
            raise TypeError(
                "G-Cache requires an RRIP-family replacement policy in the L1 "
                f"(got {type(cache.replacement).__name__}); hotness is judged "
                "by RRPV"
            )
        max_rrpv = cache.replacement.max_rrpv
        th_hot = self.config.th_hot if self.config.th_hot is not None else max_rrpv
        if th_hot > max_rrpv:
            raise ValueError(
                f"th_hot={th_hot} exceeds the replacement policy's "
                f"max RRPV {max_rrpv}"
            )
        th_victim = (
            min(self.config.th_hot_victim, th_hot)
            if self.config.th_hot_victim is not None
            else max(1, th_hot - 1)
        )
        self.th_hot = th_hot
        self.th_hot_victim = th_victim
        self._cache = cache
        self._rrip = cache.replacement
        # Array-backed caches expose their flat tag store; the per-set
        # scans below then read the parallel arrays directly instead of
        # going through one property call per line field.
        self._store = getattr(cache, "store", None)
        self.switches = BypassSwitchArray(
            cache.num_sets, shutdown_interval=self.config.shutdown_interval
        )
        self._bypass_counters = [0] * cache.num_sets
        self._adaptive_aging = self.config.adaptive_aging
        self._aging_epoch = self.config.aging_epoch
        cache.register_access_tick(
            self.config.shutdown_interval, self._tick_shutdown
        )

    # ------------------------------------------------------------------
    # Access hooks
    # ------------------------------------------------------------------
    def _tick_shutdown(self, cache: "Cache", now: int) -> None:
        """Periodic switch shutdown; driven by the cache's access tick.

        The per-access counting itself lives in
        :meth:`repro.cache.cache.Cache.register_access_tick` (one integer
        countdown inside ``lookup_fast``), so this policy defines no
        ``on_hit``/``on_miss`` hooks and the hot lookup path pays no
        Python call for it.
        """
        sw = self.switches
        sw.reset_all()
        sw.shutdowns += 1
        if self.obs is not None:
            self.obs.emit(
                EV_SWITCH_SHUTDOWN, now, cache.name,
                interval=sw.shutdown_interval,
            )

    # ------------------------------------------------------------------
    # Fill path
    # ------------------------------------------------------------------
    def _all_hot(self, cache: "Cache", set_index: int, threshold: int) -> bool:
        """True when the set is full and every line's RRPV < threshold."""
        store = self._store
        if store is not None:
            ways = store.ways
            base = set_index * ways
            if store.valid_count[set_index] < ways:
                return False
            rrpv = store.rrpv
            for i in range(base, base + ways):
                if rrpv[i] >= threshold:
                    return False
            return True
        for line in cache.sets[set_index]:
            if not line.valid:
                return False
            if line.rrpv >= threshold:
                return False
        return True

    def fill_decision(
        self, cache: "Cache", set_index: int, ctx: FillContext, now: int
    ) -> FillDecision:
        self.total_fills += 1
        self._epoch_fills += 1
        sw = self.switches
        states = sw._switches
        if ctx.victim_hint:
            self.hint_fills += 1
            self._epoch_hints += 1
            if not states[set_index]:
                if self.obs is not None:
                    self.obs.emit(EV_SWITCH_ON, now, cache.name, set=set_index)
                states[set_index] = True
                sw.activations += 1
        # Early-out inline: _maybe_adapt_m only does work once per epoch.
        if self._adaptive_aging and self._epoch_fills >= self._aging_epoch:
            self._maybe_adapt_m(cache, now)

        if not states[set_index]:
            return FillDecision.INSERT

        threshold = self.th_hot_victim if ctx.victim_hint else self.th_hot
        if self._all_hot(cache, set_index, threshold):
            if self.obs is not None:
                self.obs.emit(
                    EV_BYPASS_DECISION, now, cache.name,
                    set=set_index,
                    reason="all_hot_victim_th" if ctx.victim_hint else "all_hot",
                    threshold=threshold,
                    m=self.m,
                )
            return FillDecision.BYPASS
        return FillDecision.INSERT

    def on_bypass(
        self, cache: "Cache", set_index: int, ctx: FillContext, now: int
    ) -> None:
        """Age the set so a persistently bypassed block can eventually enter.

        With adaptive aging, RRPVs are incremented only on every M-th
        bypass to the set, preserving protection across very large reuse
        distances.
        """
        self._epoch_bypasses += 1
        self._bypass_counters[set_index] += 1
        if self._bypass_counters[set_index] < self.m:
            return
        self._bypass_counters[set_index] = 0
        max_rrpv = self._rrip.max_rrpv
        store = self._store
        if store is not None:
            ways = store.ways
            base = set_index * ways
            valid = store.valid
            rrpv = store.rrpv
            for i in range(base, base + ways):
                if valid[i] and rrpv[i] < max_rrpv:
                    rrpv[i] += 1
        else:
            for line in cache.sets[set_index]:
                if line.valid and line.rrpv < max_rrpv:
                    line.rrpv += 1
        self.agings += 1

    def on_insert(
        self, cache: "Cache", set_index: int, way: int, ctx: FillContext, now: int
    ) -> None:
        if ctx.victim_hint:
            # The block demonstrated reuse (and lost it to contention):
            # insert near-MRU so it is protected.
            rrpv = self.config.hot_insert_rrpv
        elif self.config.cold_insert_rrpv is not None:
            rrpv = self.config.cold_insert_rrpv
        else:
            # Keep the replacement policy's default insertion (SRRIP long
            # re-reference: max-1).
            return
        store = self._store
        if store is not None:
            store.rrpv[set_index * store.ways + way] = rrpv
        else:
            cache.sets[set_index][way].rrpv = rrpv

    # ------------------------------------------------------------------
    # M-th bypass adaptation (Section 5.1 extension)
    # ------------------------------------------------------------------
    def _maybe_adapt_m(self, cache: "Cache", now: int) -> None:
        """Adapt M from L2 contention feedback once per epoch.

        Heuristic: when contention hints remain frequent *while* bypassing
        is already heavy, aging on every bypass is evicting hot lines
        before their (large) reuse distance elapses — slow aging down by
        doubling M.  When hints subside, relax M back toward 1.
        """
        if not self.config.adaptive_aging:
            return
        if self._epoch_fills < self.config.aging_epoch:
            return
        hint_rate = self._epoch_hints / self._epoch_fills
        bypass_rate = self._epoch_bypasses / self._epoch_fills
        if hint_rate > 0.25 and bypass_rate > 0.25:
            self.m = min(self.config.max_m, self.m * 2)
        else:
            self.m = max(1, self.m // 2)
        self.m_history.append(self.m)
        if self.obs is not None:
            self.obs.emit(
                EV_M_ADAPT, now, cache.name,
                m=self.m, hint_rate=hint_rate, bypass_rate=bypass_rate,
            )
        self._epoch_fills = 0
        self._epoch_hints = 0
        self._epoch_bypasses = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<GCachePolicy th_hot={self.th_hot}/{self.th_hot_victim} M={self.m}>"
