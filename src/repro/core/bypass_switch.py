"""Per-set L1 bypass switches (paper Section 4.1, Figure 5).

Each L1 cache set carries one bit controlling whether fills into that set
may be bypassed.  The switch is turned on when a fill response arrives
with its victim hint set (the L2 detected contention for that line), and
all switches are shut down periodically to bound the side effects of
bypassing (Section 4.2: "the bypass switch can be shut down periodically
to reduce side effect of bypassing").

The shutdown period is measured in L1 accesses, driven by the owning
policy's access hooks, so the mechanism needs no global clock.
"""

from __future__ import annotations

from typing import List

__all__ = ["BypassSwitchArray"]


class BypassSwitchArray:
    """One bypass bit per cache set with periodic global shutdown.

    Args:
        num_sets: Number of L1 sets.
        shutdown_interval: Number of :meth:`tick` calls (L1 accesses)
            between global resets; ``0`` disables periodic shutdown.
    """

    def __init__(self, num_sets: int, shutdown_interval: int = 8192) -> None:
        if num_sets < 1:
            raise ValueError(f"need at least one set, got {num_sets}")
        if shutdown_interval < 0:
            raise ValueError(
                f"shutdown_interval must be >= 0, got {shutdown_interval}"
            )
        self.num_sets = num_sets
        self.shutdown_interval = shutdown_interval
        self._switches: List[bool] = [False] * num_sets
        self._ticks = 0
        self.activations = 0
        self.shutdowns = 0

    def is_on(self, set_index: int) -> bool:
        return self._switches[set_index]

    def turn_on(self, set_index: int) -> None:
        if not self._switches[set_index]:
            self._switches[set_index] = True
            self.activations += 1

    def turn_off(self, set_index: int) -> None:
        self._switches[set_index] = False

    def tick(self) -> bool:
        """Advance the access clock; reset all switches on period expiry.

        Returns ``True`` when this tick triggered a periodic shutdown, so
        the owning policy can trace the transition with its timestamp.
        """
        if self.shutdown_interval == 0:
            return False
        self._ticks += 1
        if self._ticks >= self.shutdown_interval:
            self._ticks = 0
            self.reset_all()
            self.shutdowns += 1
            return True
        return False

    def reset_all(self) -> None:
        for i in range(self.num_sets):
            self._switches[i] = False

    @property
    def fraction_on(self) -> float:
        """Fraction of sets currently in bypass mode (diagnostics)."""
        return sum(self._switches) / self.num_sets

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BypassSwitchArray {sum(self._switches)}/{self.num_sets} on>"
