"""G-Cache: the paper's primary contribution.

This package contains the adaptive bypass/insertion policy for L1 data
caches (:class:`~repro.core.gcache.GCachePolicy`), the per-set bypass
switches (:class:`~repro.core.bypass_switch.BypassSwitchArray`) and the
L2 victim-bit directory
(:class:`~repro.core.victim_bits.VictimBitDirectory`).
"""

from repro.core.bypass_switch import BypassSwitchArray
from repro.core.gcache import GCacheConfig, GCachePolicy
from repro.core.overhead import gcache_overhead, overhead_table
from repro.core.victim_bits import VictimBitDirectory

__all__ = [
    "BypassSwitchArray",
    "GCacheConfig",
    "GCachePolicy",
    "VictimBitDirectory",
    "gcache_overhead",
    "overhead_table",
]
