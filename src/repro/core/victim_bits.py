"""L2 victim-bit directory (paper Section 4.1, Figure 6).

The L2 tag array is extended with a per-line bitmask holding one bit per
L1 cache (or per group of ``share_factor`` L1s, the paper's overhead
reduction).  Bit *g* is set when the L2 serves a request from group *g*
and cleared when the line leaves the L2.  A request from a group whose bit
is *already* set means that L1 fetched the line before and no longer has
it — it was a victim of early eviction, i.e. **contention**.

The bit's prior value travels back to the requesting L1 with the fill
response ("victim hint"), costing no extra interconnect traffic because it
piggybacks on the data response (Section 4.3).

Storage overhead accounting matches the paper's formula
``O_v = P x N x M`` bits (``L_v = P / S_v`` with sharing).
"""

from __future__ import annotations

from repro.cache.line import CacheLine

__all__ = ["VictimBitDirectory"]


class VictimBitDirectory:
    """Manages the victim bits stored on L2 cache lines.

    Args:
        num_l1s: Number of L1 caches (``P``; one per SIMT core).
        share_factor: ``S_v`` — how many SIMT cores share one victim bit.
            1 gives the full-accuracy design; ``num_l1s`` collapses to a
            single bit shared by every core (cheapest, least accurate).
    """

    def __init__(self, num_l1s: int, share_factor: int = 1) -> None:
        if num_l1s < 1:
            raise ValueError(f"need at least one L1, got {num_l1s}")
        if share_factor < 1 or num_l1s % share_factor != 0:
            raise ValueError(
                f"share_factor {share_factor} must divide the L1 count {num_l1s}"
            )
        self.num_l1s = num_l1s
        self.share_factor = share_factor
        self.bits_per_line = num_l1s // share_factor
        # observe() runs once per L2 read: the group->mask mapping is
        # precomputed per source id (indexing also bounds-checks src_id).
        self._masks = [1 << (i // share_factor) for i in range(num_l1s)]
        self.hints_returned = 0
        self.contentions_detected = 0

    def group(self, src_id: int) -> int:
        """Victim-bit index for SIMT core ``src_id``."""
        if not 0 <= src_id < self.num_l1s:
            raise ValueError(f"src_id {src_id} out of range [0, {self.num_l1s})")
        return src_id // self.share_factor

    def observe(self, line: CacheLine, src_id: int) -> bool:
        """Record that the L2 served ``line`` to ``src_id``.

        Returns the *previous* value of the requester's bit — the victim
        hint attached to the response.  ``True`` means this L1 (group)
        already fetched the line during the current L2 generation:
        contention detected.
        """
        mask = self._masks[src_id]
        store = getattr(line, "_store", None)
        if store is not None:
            # Array-backed line view: read-modify-write the packed field
            # directly instead of two property round-trips.
            vb = store.victim_bits
            idx = line._index
            prev = vb[idx]
            vb[idx] = prev | mask
        else:
            prev = line.victim_bits
            line.victim_bits = prev | mask
        hint = (prev & mask) != 0
        self.hints_returned += 1
        if hint:
            self.contentions_detected += 1
        return hint

    def clear(self, line: CacheLine) -> None:
        """Reset the line's history (called on L2 eviction)."""
        line.victim_bits = 0

    def storage_overhead_bits(self, num_sets: int, num_ways: int) -> int:
        """Total victim-bit storage: ``(P / S_v) x N x M`` bits."""
        return self.bits_per_line * num_sets * num_ways

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<VictimBitDirectory P={self.num_l1s} Sv={self.share_factor} "
            f"bits/line={self.bits_per_line}>"
        )
