"""GDDR5 timing parameters (paper Table 2).

All values are in DRAM command-clock cycles at 1.4 GHz, which matches the
core clock in the modelled configuration, so no domain conversion is
needed (the L2's 700 MHz domain is handled separately by doubling L2
service latencies).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GDDR5Timing"]


@dataclass(frozen=True)
class GDDR5Timing:
    """GDDR5 timing constraints.

    Attributes:
        tCL: CAS latency — column read command to first data.
        tRP: Row precharge time.
        tRC: Activate-to-activate delay, same bank (row cycle).
        tRAS: Activate-to-precharge minimum.
        tRCD: Activate (RAS) to column command (CAS) delay.
        tRRD: Activate-to-activate delay across banks of one device.
        burst_cycles: Data-bus cycles to transfer one 128 B line.
        row_size: Row-buffer (page) size in bytes.
    """

    tCL: int = 12
    tRP: int = 12
    tRC: int = 40
    tRAS: int = 28
    tRCD: int = 12
    tRRD: int = 6
    burst_cycles: int = 4
    row_size: int = 2048

    def __post_init__(self) -> None:
        for field_name in ("tCL", "tRP", "tRC", "tRAS", "tRCD", "tRRD", "burst_cycles"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} cannot be negative")
        if self.row_size <= 0 or self.row_size & (self.row_size - 1):
            raise ValueError(f"row_size must be a positive power of two, got {self.row_size}")
        if self.tRC < self.tRAS:
            raise ValueError(f"tRC ({self.tRC}) must be >= tRAS ({self.tRAS})")

    @property
    def row_miss_latency(self) -> int:
        """Command-to-data latency when the row buffer must be cycled."""
        return self.tRP + self.tRCD + self.tCL

    @property
    def row_hit_latency(self) -> int:
        """Command-to-data latency when the open row is hit."""
        return self.tCL
