"""GDDR5 DRAM model: timing, banks, FR-FCFS-style controllers."""

from repro.dram.bank import DRAMBank
from repro.dram.controller import MemoryController
from repro.dram.timing import GDDR5Timing

__all__ = ["DRAMBank", "MemoryController", "GDDR5Timing"]
