"""DRAM bank: row-buffer state machine with GDDR5 timing.

The simulator computes request completion times at issue, in arrival
order, so it cannot literally reorder commands the way an FR-FCFS
scheduler does.  To recover the first-ready effect — requests to the
currently open row overtake row conflicts — each bank keeps a small LRU
*row window* of recently open rows and charges row-hit timing for any
request falling in the window.  A window of ``row_window`` rows
approximates an FR-FCFS queue deep enough to batch that many row
streams; ``row_window=1`` degenerates to strict open-page arrival order.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.dram.timing import GDDR5Timing

__all__ = ["DRAMBank"]


class DRAMBank:
    """One DRAM bank with FR-FCFS-approximating open-row tracking."""

    __slots__ = (
        "timing",
        "row_window",
        "_open_rows",
        "ready_time",
        "last_activate",
        "row_hits",
        "row_misses",
    )

    def __init__(self, timing: GDDR5Timing, row_window: int = 4) -> None:
        if row_window < 1:
            raise ValueError(f"row_window must be >= 1, got {row_window}")
        self.timing = timing
        self.row_window = row_window
        self._open_rows: "OrderedDict[int, None]" = OrderedDict()
        self.ready_time = 0
        self.last_activate = -(10**9)
        self.row_hits = 0
        self.row_misses = 0

    @property
    def open_row(self) -> int:
        """Most recently activated row (-1 if none)."""
        if not self._open_rows:
            return -1
        return next(reversed(self._open_rows))

    def _touch_row(self, row: int) -> None:
        self._open_rows[row] = None
        self._open_rows.move_to_end(row)
        while len(self._open_rows) > self.row_window:
            self._open_rows.popitem(last=False)

    def service(self, arrival: int, row: int, rrd_gate: int = 0) -> int:
        """Serve a column access to ``row`` arriving at ``arrival``.

        Args:
            arrival: Time the request reaches the bank.
            row: Target row index.
            rrd_gate: Earliest time an activate may issue (tRRD coupling
                across banks, supplied by the controller).

        Returns:
            The time the first data beat is available on the bank's pins
            (the controller adds data-bus serialization).
        """
        t = self.timing
        ready = self.ready_time
        start = arrival if arrival >= ready else ready
        rows = self._open_rows
        if row in rows:
            self.row_hits += 1
            data_at = start + t.row_hit_latency
            self.ready_time = start + t.burst_cycles
            rows.move_to_end(row)
        else:
            self.row_misses += 1
            # Close a row (tRP) and activate the new one, honouring the
            # same-bank row-cycle time tRC and the cross-bank tRRD gate.
            activate_at = start + t.tRP
            gate = self.last_activate + t.tRC
            if gate > activate_at:
                activate_at = gate
            if rrd_gate > activate_at:
                activate_at = rrd_gate
            self.last_activate = activate_at
            data_at = activate_at + t.tRCD + t.tCL
            # The bank cannot take another column command before the burst
            # completes, nor precharge before tRAS from activate.
            ras = activate_at + t.tRAS
            burst_done = data_at + t.burst_cycles
            self.ready_time = ras if ras >= burst_done else burst_done
            rows[row] = None
            if len(rows) > self.row_window:
                rows.popitem(last=False)
        return data_at

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DRAMBank rows={list(self._open_rows)} ready={self.ready_time}>"
