"""Memory controller: FR-FCFS-approximating scheduler over DRAM banks.

One controller per memory partition (Table 2: 8 MCs, 4 banks each).  The
model serves requests in arrival order per bank with open-page timing,
which captures the dominant FR-FCFS effect — spatially local request
streams hitting the open row — while the bounded *write-combining /
row-coalescing window* lets a request that matches the currently open row
overtake a queued row-conflict request, approximating the "first-ready"
part of FR-FCFS without gate-level scheduling (see DESIGN.md fidelity
notes).
"""

from __future__ import annotations

from typing import List

from repro.dram.bank import DRAMBank
from repro.dram.timing import GDDR5Timing
from repro.obs.events import EV_DRAM_ROW_HIT, EV_DRAM_ROW_MISS

__all__ = ["MemoryController"]


class MemoryController:
    """One memory channel: N banks plus a shared data bus.

    Address mapping (line addresses, after partition interleaving by the
    memory system): ``bank = addr % num_banks``; the row index is the
    remaining address divided by lines-per-row.

    Args:
        mc_id: Controller index (diagnostics).
        timing: GDDR5 timing parameters.
        num_banks: Banks per controller (Table 2: 4).
        line_size: Cache-line size in bytes (128).
    """

    def __init__(
        self,
        mc_id: int,
        timing: GDDR5Timing,
        num_banks: int = 4,
        line_size: int = 128,
        row_window: int = 8,
    ) -> None:
        if num_banks < 1:
            raise ValueError(f"need >= 1 bank, got {num_banks}")
        if timing.row_size % line_size != 0:
            raise ValueError(
                f"row size {timing.row_size} not a multiple of line size {line_size}"
            )
        self.mc_id = mc_id
        self.timing = timing
        self.num_banks = num_banks
        self.line_size = line_size
        self.lines_per_row = timing.row_size // line_size
        self.banks: List[DRAMBank] = [
            DRAMBank(timing, row_window=row_window) for _ in range(num_banks)
        ]
        self.bus_next_free = 0
        self.last_activate_any = -(10**9)
        #: Event bus when tracing is enabled (see repro.obs.wire).
        self.obs = None
        self.reads = 0
        self.writes = 0

    def map(self, partition_line_addr: int) -> tuple:
        """Split a partition-local line address into (bank, row)."""
        bank = partition_line_addr % self.num_banks
        row = (partition_line_addr // self.num_banks) // self.lines_per_row
        return bank, row

    def request(self, partition_line_addr: int, now: int, is_write: bool = False) -> int:
        """Issue one line transfer; returns the completion time.

        For reads the completion is when the last data beat arrives at the
        controller; writes complete (from the requester's viewpoint) when
        accepted onto the bus — write latency is hidden by write buffers,
        but the bank and bus occupancy are still charged so writes consume
        bandwidth.
        """
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        # Inlined map(): bank = addr % banks, row = rest / lines-per-row.
        bank_idx = partition_line_addr % self.num_banks
        row = (partition_line_addr // self.num_banks) // self.lines_per_row
        bank = self.banks[bank_idx]
        rrd_gate = self.last_activate_any + self.timing.tRRD
        hits_before = bank.row_hits
        data_at = bank.service(now, row, rrd_gate=rrd_gate)
        if bank.last_activate > self.last_activate_any:
            self.last_activate_any = bank.last_activate
        if self.obs is not None:
            self.obs.emit(
                EV_DRAM_ROW_HIT if bank.row_hits > hits_before else EV_DRAM_ROW_MISS,
                now, f"MC[{self.mc_id}]",
                bank=bank_idx, row=row, write=is_write,
            )
        # Serialize the 128 B burst on the shared channel data bus.
        start = data_at if data_at >= self.bus_next_free else self.bus_next_free
        done = start + self.timing.burst_cycles
        self.bus_next_free = done
        if is_write:
            return start
        return done

    @property
    def row_hit_rate(self) -> float:
        hits = sum(b.row_hits for b in self.banks)
        total = hits + sum(b.row_misses for b in self.banks)
        return hits / total if total else 0.0

    @property
    def total_requests(self) -> int:
        return self.reads + self.writes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<MemoryController {self.mc_id}: {self.num_banks} banks, "
            f"{self.total_requests} reqs, row-hit {self.row_hit_rate:.0%}>"
        )
