"""repro — G-Cache: adaptive cache bypass and insertion for many-core accelerators.

A trace-driven reproduction of Chen et al., "Adaptive Cache Bypass and
Insertion for Many-core Accelerators" (MES '14): a Fermi-class GPU memory
hierarchy simulator with pluggable L1 cache-management designs (baseline
LRU, SRRIP, the PDP family, and the paper's G-Cache), the Table-1
benchmark suite as synthetic trace generators, and harnesses regenerating
every figure and table of the paper's evaluation.

Quickstart::

    from repro import GPUConfig, make_design, simulate
    from repro.trace.suite import build_benchmark

    trace = build_benchmark("SPMV")
    base = simulate(trace, GPUConfig(), make_design("bs"))
    gc = simulate(trace, GPUConfig(), make_design("gc"))
    print(f"speedup: {gc.speedup_over(base):.2f}x")
"""

from repro.core import GCacheConfig, GCachePolicy, VictimBitDirectory
from repro.sim import (
    DESIGN_KEYS,
    DesignSpec,
    GPU,
    GPUConfig,
    RunResult,
    make_design,
    replay,
    simulate,
)

__version__ = "1.1.0"

from repro.runner import CampaignEngine, ResultCache, Task  # noqa: E402
from repro.obs import GCacheDiagnostics, Observability  # noqa: E402

__all__ = [
    "GCacheConfig",
    "GCachePolicy",
    "VictimBitDirectory",
    "GPUConfig",
    "DesignSpec",
    "DESIGN_KEYS",
    "make_design",
    "GPU",
    "RunResult",
    "simulate",
    "replay",
    "CampaignEngine",
    "ResultCache",
    "Task",
    "Observability",
    "GCacheDiagnostics",
    "__version__",
]
