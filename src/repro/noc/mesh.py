"""2D-mesh interconnect model (Table 2: 2D mesh, 32 B channels, 1.4 GHz).

Cores and memory partitions are placed on a rectangular grid and packets
follow dimension-ordered (XY) routing.  Each *directed* link has a
next-free time; a packet reserves every link on its path for its
serialization time (flits at one flit per cycle), which approximates
wormhole switching with per-link contention while staying O(hops) per
packet.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.obs.events import EV_NOC_DEQUEUE, EV_NOC_ENQUEUE

__all__ = ["MeshNoC"]


class MeshNoC:
    """2D mesh carrying request/response traffic between cores and L2 banks.

    Args:
        num_cores: SIMT cores (nodes 0 .. num_cores-1).
        num_partitions: Memory partitions / L2 banks (nodes num_cores ..).
        channel_width: Link width in bytes per cycle (Table 2: 32 B).
        hop_latency: Router + link traversal latency per hop, in cycles.
        ctrl_size: Size of a request/control packet in bytes.
        data_size: Payload size of a data response in bytes (cache line).
    """

    def __init__(
        self,
        num_cores: int = 16,
        num_partitions: int = 8,
        channel_width: int = 32,
        hop_latency: int = 2,
        ctrl_size: int = 8,
        data_size: int = 128,
    ) -> None:
        if num_cores < 1 or num_partitions < 1:
            raise ValueError("need at least one core and one partition")
        if channel_width < 1:
            raise ValueError(f"channel width must be positive, got {channel_width}")
        self.num_cores = num_cores
        self.num_partitions = num_partitions
        self.num_nodes = num_cores + num_partitions
        self.channel_width = channel_width
        self.hop_latency = hop_latency
        self.ctrl_flits = max(1, -(-ctrl_size // channel_width))
        self.data_flits = max(1, -(-(data_size + ctrl_size) // channel_width))

        # Near-square grid big enough for all nodes.  Memory partitions are
        # interleaved through the grid (GPU floorplans spread them around
        # the perimeter; interleaving gives similar average distance).
        self.cols = int(math.ceil(math.sqrt(self.num_nodes)))
        self.rows = int(math.ceil(self.num_nodes / self.cols))
        self._coords: List[Tuple[int, int]] = [
            (i // self.cols, i % self.cols) for i in range(self.num_nodes)
        ]
        # Routes are static (XY), so precompute every (src, dst) path once
        # as a tuple of dense link ids; `send` then walks a flat int list
        # against a flat next-free-time array instead of re-deriving
        # coordinate pairs and hashing them into a dict per packet.
        link_ids: Dict[Tuple[Tuple[int, int], Tuple[int, int]], int] = {}
        self._paths: List[Tuple[int, ...]] = []
        for src in range(self.num_nodes):
            for dst in range(self.num_nodes):
                self._paths.append(tuple(
                    link_ids.setdefault(link, len(link_ids))
                    for link in self._path(src, dst)
                ))
        self._path_lens: List[int] = [len(p) for p in self._paths]
        self._link_free: List[int] = [0] * len(link_ids)
        #: Event bus when tracing is enabled (see repro.obs.wire).
        self.obs = None
        self.packets_sent = 0
        self.total_hops = 0

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    def core_node(self, core_id: int) -> int:
        if not 0 <= core_id < self.num_cores:
            raise ValueError(f"core id {core_id} out of range")
        return core_id

    def partition_node(self, partition_id: int) -> int:
        if not 0 <= partition_id < self.num_partitions:
            raise ValueError(f"partition id {partition_id} out of range")
        return self.num_cores + partition_id

    def hops(self, src_node: int, dst_node: int) -> int:
        """Manhattan distance between two nodes under XY routing."""
        sr, sc = self._coords[src_node]
        dr, dc = self._coords[dst_node]
        return abs(sr - dr) + abs(sc - dc)

    def _path(self, src_node: int, dst_node: int):
        """Yield directed links (as coordinate pairs) along the XY route."""
        r, c = self._coords[src_node]
        dr, dc = self._coords[dst_node]
        while c != dc:
            step = 1 if dc > c else -1
            yield ((r, c), (r, c + step))
            c += step
        while r != dr:
            step = 1 if dr > r else -1
            yield ((r, c), (r + step, c))
            r += step

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def send(self, src_node: int, dst_node: int, start: int, flits: int) -> int:
        """Route one packet; returns its arrival time at ``dst_node``.

        Each link on the path is reserved for ``flits`` cycles; the packet
        waits for busy links (head-of-line contention).
        """
        if src_node == dst_node:
            return start
        self.packets_sent += 1
        link_free = self._link_free
        hop_latency = self.hop_latency
        pidx = src_node * self.num_nodes + dst_node
        path = self._paths[pidx]
        t = start
        for link in path:
            free = link_free[link]
            depart = t if t >= free else free
            link_free[link] = depart + flits
            t = depart + hop_latency
        self.total_hops += self._path_lens[pidx]
        # The tail flit trails the head by the serialization length.
        return t + flits - 1

    def _traced_send(
        self, src_node: int, dst_node: int, start: int, flits: int, kind: str
    ) -> int:
        arrive = self.send(src_node, dst_node, start, flits)
        if self.obs is not None:
            self.obs.emit(
                EV_NOC_ENQUEUE, start, "noc",
                src_node=src_node, dst_node=dst_node, flits=flits, packet=kind,
            )
            self.obs.emit(
                EV_NOC_DEQUEUE, arrive, "noc",
                src_node=src_node, dst_node=dst_node, packet=kind,
                latency=arrive - start,
            )
        return arrive

    # The three public send flavours inline the node arithmetic (cores
    # are nodes 0..C-1, partitions C..C+P-1) and skip the tracing wrapper
    # when no event bus is attached — they run once per packet, and the
    # ids come from the memory system, which already bounds them
    # (core_node/partition_node remain the validated API).

    def send_request(self, core_id: int, partition_id: int, start: int) -> int:
        """Core -> L2 bank control packet (read request / write header)."""
        dst = self.num_cores + partition_id
        if self.obs is not None:
            return self._traced_send(core_id, dst, start, self.ctrl_flits, "request")
        return self.send(core_id, dst, start, self.ctrl_flits)

    def send_data_request(self, core_id: int, partition_id: int, start: int) -> int:
        """Core -> L2 bank packet carrying write data."""
        dst = self.num_cores + partition_id
        if self.obs is not None:
            return self._traced_send(
                core_id, dst, start, self.data_flits, "data_request"
            )
        return self.send(core_id, dst, start, self.data_flits)

    def send_response(self, partition_id: int, core_id: int, start: int) -> int:
        """L2 bank -> core data response (carries the victim-bit hint)."""
        src = self.num_cores + partition_id
        if self.obs is not None:
            return self._traced_send(src, core_id, start, self.data_flits, "response")
        return self.send(src, core_id, start, self.data_flits)

    @property
    def average_hops(self) -> float:
        return self.total_hops / self.packets_sent if self.packets_sent else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MeshNoC {self.rows}x{self.cols}, {self.packets_sent} pkts>"
