"""Crossbar interconnect model (alternative to the 2D mesh).

GPGPU-Sim's Fermi configuration actually models a crossbar between the
SIMT cores and the memory partitions; the paper's Table 2 specifies a
2D mesh, which is our default.  Having both lets the interconnect choice
be ablated: a crossbar has uniform latency and per-*port* rather than
per-*link* contention.

The interface mirrors :class:`~repro.noc.mesh.MeshNoC` (send_request /
send_data_request / send_response plus accounting), so the memory system
can take either.
"""

from __future__ import annotations

from typing import List

from repro.obs.events import EV_NOC_DEQUEUE, EV_NOC_ENQUEUE

__all__ = ["CrossbarNoC"]


class CrossbarNoC:
    """Core <-> partition crossbar with per-output-port contention.

    Args:
        num_cores: SIMT cores.
        num_partitions: Memory partitions.
        channel_width: Port width in bytes/cycle.
        traversal_latency: Fixed crossbar traversal time in cycles.
        ctrl_size: Control packet size in bytes.
        data_size: Data payload size in bytes.
    """

    def __init__(
        self,
        num_cores: int = 16,
        num_partitions: int = 8,
        channel_width: int = 32,
        traversal_latency: int = 6,
        ctrl_size: int = 8,
        data_size: int = 128,
    ) -> None:
        if num_cores < 1 or num_partitions < 1:
            raise ValueError("need at least one core and one partition")
        if channel_width < 1:
            raise ValueError(f"channel width must be positive, got {channel_width}")
        self.num_cores = num_cores
        self.num_partitions = num_partitions
        self.channel_width = channel_width
        self.traversal_latency = traversal_latency
        self.ctrl_flits = max(1, -(-ctrl_size // channel_width))
        self.data_flits = max(1, -(-(data_size + ctrl_size) // channel_width))
        # Output-port next-free times: partitions for the request side,
        # cores for the response side.
        self._to_partition_free: List[int] = [0] * num_partitions
        self._to_core_free: List[int] = [0] * num_cores
        #: Event bus when tracing is enabled (see repro.obs.wire).
        self.obs = None
        self.packets_sent = 0
        self.total_hops = 0  # kept for interface parity (1 "hop" each)

    def _send(self, free: List[int], port: int, start: int, flits: int) -> int:
        self.packets_sent += 1
        self.total_hops += 1
        busy = free[port]
        depart = start if start >= busy else busy
        free[port] = depart + flits
        arrive = depart + self.traversal_latency + flits - 1
        if self.obs is not None:
            self.obs.emit(
                EV_NOC_ENQUEUE, start, "noc", port=port, flits=flits,
            )
            self.obs.emit(
                EV_NOC_DEQUEUE, arrive, "noc", port=port,
                latency=arrive - start,
            )
        return arrive

    def send_request(self, core_id: int, partition_id: int, start: int) -> int:
        self._validate(core_id, partition_id)
        return self._send(self._to_partition_free, partition_id, start, self.ctrl_flits)

    def send_data_request(self, core_id: int, partition_id: int, start: int) -> int:
        self._validate(core_id, partition_id)
        return self._send(self._to_partition_free, partition_id, start, self.data_flits)

    def send_response(self, partition_id: int, core_id: int, start: int) -> int:
        self._validate(core_id, partition_id)
        return self._send(self._to_core_free, core_id, start, self.data_flits)

    def _validate(self, core_id: int, partition_id: int) -> None:
        if not 0 <= core_id < self.num_cores:
            raise ValueError(f"core id {core_id} out of range")
        if not 0 <= partition_id < self.num_partitions:
            raise ValueError(f"partition id {partition_id} out of range")

    @property
    def average_hops(self) -> float:
        return 1.0 if self.packets_sent else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CrossbarNoC {self.num_cores}x{self.num_partitions}, {self.packets_sent} pkts>"
