"""Interconnection network models."""

from repro.noc.mesh import MeshNoC

__all__ = ["MeshNoC"]
