"""Deterministic, seed-driven fault injection for the campaign engine.

Large sweep campaigns die in four characteristic ways: a worker process
crashes, a worker hangs, a task raises a transient error, or an on-disk
cache entry rots.  This module makes every one of those failure modes
*injectable on demand and reproducible bit-for-bit*, so the engine's
recovery paths (retry, backoff, timeout kill, pool rebuild, checksum
quarantine) are ordinary tested code instead of hope.

The injector is stateless and pure: whether a fault fires for a given
``(task key, attempt)`` pair is a function of the :class:`FaultPlan`
alone — a SHA-256 draw over ``(seed, key, attempt)`` compared against
the per-kind rates.  That makes decisions identical in the parent
process, in any worker process, and across reruns, which is what lets
the chaos tests assert that a faulted campaign converges to *exactly*
the fault-free numbers.

Completion guarantee: :attr:`FaultPlan.max_faults_per_task` caps how
many attempts of any single task may fault.  With an engine retry
budget above the cap, every task eventually executes cleanly, so a
seeded chaos schedule can never starve a campaign — the property
``tests/test_runner_determinism.py`` locks in under Hypothesis.

Fault kinds
-----------

``transient``
    The attempt raises :class:`TransientFault` before computing.
``crash``
    In a pool worker the process exits hard (``os._exit``), breaking
    the pool exactly like a segfault or OOM kill; in-process (serial)
    execution raises :class:`WorkerCrashFault` instead, since killing
    the only interpreter would take the campaign down with it.
``hang``
    The attempt sleeps :attr:`FaultPlan.hang_seconds` and then raises
    :class:`HangFault`.  Under a pool with ``task_timeout`` armed the
    engine's deadline fires first and kills the worker; serially the
    finite sleep keeps tests bounded.
``corrupt``
    Not an attempt fault: the engine flips a byte of the just-written
    cache entry (:func:`corrupt_file`), exercising the checksum →
    quarantine → recompute path on the next read.

Activation: pass a :class:`FaultPlan` to ``CampaignEngine(faults=...)``,
or set ``$REPRO_FAULTS`` to a JSON object (see :meth:`FaultPlan.from_env`)
to arm the CLI without code changes — the CI chaos-smoke job does both.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

__all__ = [
    "CRASH_EXIT_CODE",
    "FaultError",
    "FaultPlan",
    "HangFault",
    "TransientFault",
    "WorkerCrashFault",
    "corrupt_file",
    "inject",
]

#: Exit status used by injected worker crashes (distinctive in ps/logs).
CRASH_EXIT_CODE = 23

#: Fault kinds drawn per attempt, in cumulative-rate order.
ATTEMPT_FAULTS = ("crash", "hang", "transient")


class FaultError(RuntimeError):
    """Base class for injected faults (never raised by real failures)."""


class TransientFault(FaultError):
    """Injected one-shot failure; succeeds on a clean retry."""


class WorkerCrashFault(FaultError):
    """Injected crash surfaced as an exception (serial execution only)."""


class HangFault(FaultError):
    """Raised after an injected hang's sleep expires un-killed."""


def _draw(seed: int, *parts: object) -> float:
    """Uniform [0, 1) from a SHA-256 over ``(seed, *parts)``.

    Stable across processes, platforms and ``PYTHONHASHSEED`` — the same
    property the cache-key scheme relies on.
    """
    token = ":".join(str(p) for p in (seed, *parts))
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible fault schedule (picklable; shipped to workers).

    Rates are independent probabilities per *attempt*; an attempt draws
    one uniform and walks the cumulative ``crash → hang → transient``
    ladder, so at most one attempt-fault fires per execution.

    Attributes:
        seed: Schedule seed; every decision derives from it.
        crash_rate: Probability a given attempt hard-kills its worker.
        hang_rate: Probability a given attempt hangs.
        transient_rate: Probability a given attempt raises a transient.
        corrupt_rate: Probability a task's freshly-written cache entry
            gets a byte flipped (keyed per task, not per attempt).
        hang_seconds: How long an injected hang sleeps.  Keep it above
            the engine ``task_timeout`` to exercise the kill path, or
            small to exercise slow-but-completing tasks.
        max_faults_per_task: Hard cap on injected attempt-faults per
            task key; guarantees campaign completion whenever the
            engine's retry budget exceeds it.
        interrupt_after: Engine-side: raise ``KeyboardInterrupt`` after
            this many task completions — a deterministic stand-in for
            Ctrl-C that the resume tests use.
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    transient_rate: float = 0.0
    corrupt_rate: float = 0.0
    hang_seconds: float = 0.25
    max_faults_per_task: int = 2
    interrupt_after: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("crash_rate", "hang_rate", "transient_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.max_faults_per_task < 0:
            raise ValueError("max_faults_per_task must be >= 0")

    # ------------------------------------------------------------------
    # Decisions (pure functions of the plan)
    # ------------------------------------------------------------------
    def _raw_decision(self, key: str, attempt: int) -> Optional[str]:
        u = _draw(self.seed, "attempt", key, attempt)
        edge = 0.0
        for kind, rate in zip(
            ATTEMPT_FAULTS, (self.crash_rate, self.hang_rate, self.transient_rate)
        ):
            edge += rate
            if u < edge:
                return kind
        return None

    def decide(self, key: str, attempt: int) -> Optional[str]:
        """Fault kind for ``(key, attempt)``, or ``None`` for clean.

        Applies :attr:`max_faults_per_task`: once the cap many earlier
        attempts of this key have faulted, every later attempt is clean.
        Computable anywhere without shared state — the cap is enforced
        by replaying the (cheap) draws for attempts ``0..attempt``.
        """
        fired = 0
        for a in range(attempt + 1):
            kind = self._raw_decision(key, a)
            if kind is None:
                continue
            if fired >= self.max_faults_per_task:
                kind = None
            else:
                fired += 1
            if a == attempt:
                return kind
        return None

    def decide_corrupt(self, key: str) -> bool:
        """Whether this task's cache entry gets corrupted after write."""
        return (
            self.corrupt_rate > 0.0
            and _draw(self.seed, "corrupt", key) < self.corrupt_rate
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def chaos(cls, seed: int = 0, rate: float = 0.1, **overrides) -> "FaultPlan":
        """Every fault kind at ``rate`` — the built-in chaos schedule
        the acceptance criteria and the CI smoke job run under."""
        params = dict(
            seed=seed,
            crash_rate=rate,
            hang_rate=rate,
            transient_rate=rate,
            corrupt_rate=rate,
        )
        params.update(overrides)
        return cls(**params)

    @classmethod
    def from_env(cls, var: str = "REPRO_FAULTS") -> Optional["FaultPlan"]:
        """Plan from a JSON env var, or ``None`` when unset/empty.

        ``REPRO_FAULTS='{"seed": 7, "crash_rate": 0.1}'`` arms the CLI
        campaign path without any code change (CI chaos smoke).
        """
        raw = os.environ.get(var, "").strip()
        if not raw:
            return None
        try:
            spec = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"${var} is not valid JSON: {exc}") from exc
        if not isinstance(spec, dict):
            raise ValueError(f"${var} must be a JSON object, got {type(spec).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(spec) - known
        if unknown:
            raise ValueError(f"${var}: unknown fields {sorted(unknown)}")
        return cls(**spec)


def inject(plan: Optional[FaultPlan], key: str, attempt: int) -> None:
    """Fire the planned fault for ``(key, attempt)``, if any.

    Called by the worker-side task wrapper before real work starts.
    ``crash`` exits the process hard when running inside a pool worker
    (detected via :func:`multiprocessing.parent_process`) and degrades
    to :class:`WorkerCrashFault` in-process.
    """
    if plan is None:
        return
    kind = plan.decide(key, attempt)
    if kind is None:
        return
    if kind == "transient":
        raise TransientFault(f"injected transient fault (attempt {attempt})")
    if kind == "hang":
        time.sleep(plan.hang_seconds)
        raise HangFault(
            f"injected hang outlived its {plan.hang_seconds}s sleep "
            f"(attempt {attempt})"
        )
    # kind == "crash"
    if multiprocessing.parent_process() is not None:
        os._exit(CRASH_EXIT_CODE)
    raise WorkerCrashFault(f"injected worker crash (attempt {attempt})")


def corrupt_file(path: Union[str, os.PathLike], seed: int = 0) -> bool:
    """Flip one deterministic byte of ``path`` in place.

    Returns ``False`` (no-op) for missing or empty files.  The flipped
    offset derives from the seed and file name, so a given schedule
    damages a given entry identically on every run.
    """
    path = Path(path)
    try:
        blob = bytearray(path.read_bytes())
    except OSError:
        return False
    if not blob:
        return False
    offset = int(_draw(seed, "corrupt-offset", path.name) * len(blob))
    blob[offset] ^= 0xFF
    path.write_bytes(bytes(blob))
    return True
