"""Report rendering: aligned text tables, CSV, and geometric means.

The experiment harnesses print their results through this module so that
every figure/table reproduction has a consistent, diffable text form
(mirroring how simulator papers tabulate results).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["geomean", "Table", "format_speedup", "format_pct", "render_metrics"]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's aggregation for speedups).

    Raises ``ValueError`` on an empty sequence or non-positive values —
    a non-positive speedup always indicates an upstream bug.
    """
    vals = list(values)
    if not vals:
        raise ValueError("geomean of an empty sequence")
    total = 0.0
    for v in vals:
        if v <= 0:
            raise ValueError(f"geomean requires positive values, got {v}")
        total += math.log(v)
    return math.exp(total / len(vals))


def format_speedup(x: float) -> str:
    return f"{x:.3f}"


def format_pct(x: float) -> str:
    return f"{100.0 * x:.1f}%"


class Table:
    """A small aligned-text table builder.

    >>> t = Table(["bench", "miss"])
    >>> t.row(["BFS", "80.0%"])
    >>> print(t.render())          # doctest: +NORMALIZE_WHITESPACE
    bench  miss
    -----  -----
    BFS    80.0%
    """

    def __init__(self, columns: Sequence[str], title: Optional[str] = None) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = list(columns)
        self.title = title
        self._rows: List[List[str]] = []

    def row(self, cells: Sequence[object]) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self._rows.append([str(c) for c in cells])

    def rule(self) -> None:
        """Insert a horizontal separator (before group summary rows)."""
        self._rows.append(["---"] * len(self.columns))

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        lines: List[str] = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(self.title))
        lines.append(fmt(self.columns))
        lines.append(fmt(["-" * w for w in widths]))
        for row in self._rows:
            if row[0] == "---":
                lines.append(fmt(["-" * w for w in widths]))
            else:
                lines.append(fmt(row))
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Comma-separated form (no quoting: cells never contain commas)."""
        out = [",".join(self.columns)]
        for row in self._rows:
            if row[0] != "---":
                out.append(",".join(row))
        return "\n".join(out)

    def to_markdown(self) -> str:
        """GitHub-flavored pipe table (title as a bold lead line).

        :meth:`rule` separators have no pipe-table equivalent and are
        skipped; pipes in cells are escaped.  Used by the
        ``repro.analysis`` report generator so comparison reports keep
        the same tables the figure harnesses print.
        """

        def esc(cell: str) -> str:
            return cell.replace("|", "\\|")

        lines: List[str] = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(esc(c) for c in self.columns) + " |")
        lines.append("|" + "|".join(" --- " for _ in self.columns) + "|")
        for row in self._rows:
            if row[0] != "---":
                lines.append("| " + " | ".join(esc(c) for c in row) + " |")
        return "\n".join(lines)

    def to_html(self) -> str:
        """A plain ``<table>`` (escaped cells, title as ``<caption>``).

        Styling is left to the embedding document — the analysis HTML
        report ships its own stylesheet.  :meth:`rule` separators become
        a ``class="rule"`` row the stylesheet can draw as a divider.
        """
        from html import escape

        parts: List[str] = ["<table>"]
        if self.title:
            parts.append(f"<caption>{escape(self.title)}</caption>")
        parts.append(
            "<thead><tr>"
            + "".join(f"<th>{escape(c)}</th>" for c in self.columns)
            + "</tr></thead>"
        )
        parts.append("<tbody>")
        for row in self._rows:
            if row[0] == "---":
                parts.append(
                    f'<tr class="rule"><td colspan="{len(self.columns)}"></td></tr>'
                )
            else:
                parts.append(
                    "<tr>" + "".join(f"<td>{escape(c)}</td>" for c in row) + "</tr>"
                )
        parts.append("</tbody></table>")
        return "\n".join(parts)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def render_metrics(
    snapshot: Mapping[str, object],
    title: str = "metrics",
    prefix: Optional[str] = None,
) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as an aligned table.

    Histogram entries (dict values) are flattened to their summary
    statistics; ``prefix`` restricts the table to one namespace.
    """
    table = Table(["metric", "value"], title=title)
    for name in sorted(snapshot):
        if prefix is not None and not name.startswith(prefix):
            continue
        value = snapshot[name]
        if isinstance(value, dict):
            mean = value.get("mean", 0.0)
            table.row([name, f"count={value.get('count', 0)} mean={mean:.2f}"])
        elif isinstance(value, float):
            table.row([name, f"{value:.4f}"])
        else:
            table.row([name, f"{value:,}"])
    return table.render()
