"""Memory-system energy model.

The paper motivates G-Cache partly by energy: fewer L1 misses mean less
interconnect traffic, fewer L2 accesses and fewer DRAM fetches, which
"save bandwidth and energy consumption" (Section 3).  This module turns a
:class:`~repro.sim.simulator.RunResult` into an energy estimate so that
claim can be quantified.

Per-event energies follow the usual CACTI/DRAMPower orders of magnitude
for a 40 nm-class part (Fermi era); they are configurable because the
*relative* comparison between designs is what matters, exactly as with
the timing model.  Static/leakage power is charged per cycle so that a
faster design also saves static energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (stats <- sim)
    from repro.sim.simulator import RunResult

__all__ = ["EnergyModel", "EnergyBreakdown"]


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy parameters (picojoules) and static power.

    Attributes:
        l1_access_pj: One L1 tag+data access (hit or miss probe).
        l2_access_pj: One L2 bank access.
        noc_flit_pj: Moving one 32 B flit one hop.
        dram_access_pj: One 128 B DRAM line transfer (row-hit energy).
        dram_row_act_pj: Additional energy for a row activation.
        static_mw_per_cycle_pj: Chip-level memory-system leakage charged
            per core cycle.
    """

    l1_access_pj: float = 25.0
    l2_access_pj: float = 90.0
    noc_flit_pj: float = 12.0
    dram_access_pj: float = 1100.0
    dram_row_act_pj: float = 900.0
    static_mw_per_cycle_pj: float = 40.0

    def evaluate(self, result: "RunResult", avg_hops: float = 4.0) -> "EnergyBreakdown":
        """Estimate the memory-system energy of one run.

        Args:
            result: A finished simulation.
            avg_hops: Mean NoC hops per packet (available in
                ``result.extras['noc_avg_hops']`` when recorded).
        """
        hops = float(result.extras.get("noc_avg_hops", avg_hops)) or avg_hops
        l1 = result.l1.accesses * self.l1_access_pj
        l2 = result.l2.accesses * self.l2_access_pj
        # Each L2 access implies a request/response packet pair; data
        # packets dominate, ~5 flits each.
        noc = result.l2.accesses * 2 * 5 * hops * self.noc_flit_pj
        row_misses = result.dram_requests * (1.0 - result.dram_row_hit_rate)
        dram = (
            result.dram_requests * self.dram_access_pj
            + row_misses * self.dram_row_act_pj
        )
        static = result.cycles * self.static_mw_per_cycle_pj
        return EnergyBreakdown(
            l1_pj=l1, l2_pj=l2, noc_pj=noc, dram_pj=dram, static_pj=static,
            instructions=result.instructions,
        )


@dataclass
class EnergyBreakdown:
    """Energy totals for one run, in picojoules."""

    l1_pj: float
    l2_pj: float
    noc_pj: float
    dram_pj: float
    static_pj: float
    instructions: int

    @property
    def total_pj(self) -> float:
        return self.l1_pj + self.l2_pj + self.noc_pj + self.dram_pj + self.static_pj

    @property
    def dynamic_pj(self) -> float:
        return self.total_pj - self.static_pj

    @property
    def pj_per_instruction(self) -> float:
        """Energy efficiency: memory-system pJ per warp instruction."""
        return self.total_pj / self.instructions if self.instructions else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "l1_pj": self.l1_pj,
            "l2_pj": self.l2_pj,
            "noc_pj": self.noc_pj,
            "dram_pj": self.dram_pj,
            "static_pj": self.static_pj,
            "total_pj": self.total_pj,
            "pj_per_instruction": self.pj_per_instruction,
        }

    def relative_to(self, baseline: "EnergyBreakdown") -> float:
        """This run's total energy as a fraction of ``baseline``'s."""
        if baseline.total_pj == 0:
            raise ZeroDivisionError("baseline consumed no energy")
        return self.total_pj / baseline.total_pj
