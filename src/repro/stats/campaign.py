"""Campaign-level progress and timing counters.

The :mod:`repro.runner` engine records one :class:`TaskTiming` per
executed-or-cached task and aggregates them into a
:class:`CampaignCounters`, the number the acceptance criteria (and the
manifest) report: how many tasks ran, how many were served from the
persistent cache, and how much simulated wall time the cache saved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.stats.report import Table

__all__ = ["TaskTiming", "CampaignCounters"]


@dataclass
class TaskTiming:
    """Timing record for one campaign task.

    Attributes:
        label: Human-readable task label (``simulate:SPMV/gc``).
        key: Content-addressed cache key (SHA-256 hex).
        cached: Whether the result came from the persistent cache.
        coalesced: Whether the result was shared from another engine's
            in-flight execution of the same key (service-mode request
            coalescing) — never executed here, never a disk hit.
        seconds: Worker-side wall time; ~0 for cache hits.
        metrics: Namespaced metrics snapshot from the task's payload
            (``RunResult.extras["metrics"]``); ``None`` when the payload
            carries none (non-simulation tasks, pre-metrics cache entries).
        attempts: Executions this result took (1 = first try; retried
            tasks count every charged failure plus the final success).
        failed: The task exhausted its retry budget (``keep_going``
            campaigns record these with a ``FAILED`` payload slot).
        fidelity: Simulation fidelity the task ran at (``"timing"`` or
            ``"functional"``); recorded in the manifest so mixed-fidelity
            campaigns stay auditable.
        kind: Task kind (``"simulate"``, ``"replay"``, ``"pd-sweep"``);
            surfaced as a structured manifest field so the analysis
            layer never has to re-parse labels.
        benchmark: Benchmark name the task ran, when known.
        design: Design key the task evaluated (``None`` for kinds that
            have no design, e.g. ``pd-sweep``).
    """

    label: str
    key: str
    cached: bool
    seconds: float
    coalesced: bool = False
    metrics: Optional[Dict[str, object]] = None
    attempts: int = 1
    failed: bool = False
    fidelity: str = "timing"
    kind: Optional[str] = None
    benchmark: Optional[str] = None
    design: Optional[str] = None


@dataclass
class CampaignCounters:
    """Aggregate counters for one campaign engine's lifetime.

    Attributes:
        tasks: Task slots submitted (duplicates included).
        unique_tasks: Distinct cache keys among them.
        cache_hits: Unique tasks served from the persistent cache.
        cache_misses: Unique tasks that had to execute.
        executed: Tasks actually run to completion (``cache_misses``
            minus failed tasks).
        task_seconds: Summed worker wall time of executed tasks.
        elapsed_seconds: Real elapsed time across ``run()`` batches.
        retries: Re-executions scheduled after a charged failure.
        timeouts: Attempts killed by the engine's ``task_timeout``.
        pool_rebuilds: Worker pools torn down and rebuilt (crash or
            hung-worker reclamation).
        failed: Tasks that exhausted their retry budget.
        resumed: Tasks served from the cache because the campaign
            journal recorded them as completed by an earlier run.
        coalesced: Tasks served by following another engine's in-flight
            execution of the same key (service-mode request coalescing)
            instead of executing or re-reading the cache.
        timings: Per-task records, in completion order.
    """

    tasks: int = 0
    unique_tasks: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0
    task_seconds: float = 0.0
    elapsed_seconds: float = 0.0
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    failed: int = 0
    resumed: int = 0
    coalesced: int = 0
    timings: List[TaskTiming] = field(default_factory=list)

    def record(self, timing: TaskTiming) -> None:
        self.timings.append(timing)
        self.unique_tasks += 1
        if timing.cached:
            self.cache_hits += 1
        elif timing.coalesced:
            self.coalesced += 1
        else:
            self.cache_misses += 1
            if not timing.failed:
                self.executed += 1
                self.task_seconds += timing.seconds

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict view for the run manifest / JSON dumps."""
        return {
            "tasks": self.tasks,
            "unique_tasks": self.unique_tasks,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "executed": self.executed,
            "hit_rate": self.hit_rate,
            "task_seconds": round(self.task_seconds, 6),
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "failed": self.failed,
            "resumed": self.resumed,
            "coalesced": self.coalesced,
        }

    def render(self) -> str:
        """One-table summary for CLI output."""
        table = Table(["counter", "value"], title="Campaign summary")
        table.row(["tasks (unique)", f"{self.tasks} ({self.unique_tasks})"])
        table.row(["cache hits", str(self.cache_hits)])
        table.row(["cache misses", str(self.cache_misses)])
        table.row(["hit rate", f"{self.hit_rate:.1%}"])
        table.row(["worker compute", f"{self.task_seconds:.1f}s"])
        table.row(["elapsed", f"{self.elapsed_seconds:.1f}s"])
        if self.resumed:
            table.row(["resumed from journal", str(self.resumed)])
        if self.coalesced:
            table.row(["coalesced (shared in-flight)", str(self.coalesced)])
        if self.retries or self.timeouts or self.pool_rebuilds or self.failed:
            table.row(["retries", str(self.retries)])
            table.row(["timeouts", str(self.timeouts)])
            table.row(["pool rebuilds", str(self.pool_rebuilds)])
            table.row(["failed tasks", str(self.failed)])
        return table.render()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<CampaignCounters {self.unique_tasks} tasks: "
            f"{self.cache_hits} hits / {self.cache_misses} misses>"
        )
