"""Statistics: counters, reuse histograms, energy, timelines, reports,
campaign progress."""

from repro.stats.campaign import CampaignCounters, TaskTiming
from repro.stats.counters import CacheStats, ReuseHistogram
from repro.stats.energy import EnergyBreakdown, EnergyModel
from repro.stats.report import Table, geomean, render_metrics
from repro.stats.timeline import Timeline, TimelinePoint

__all__ = [
    "CacheStats",
    "ReuseHistogram",
    "CampaignCounters",
    "TaskTiming",
    "EnergyModel",
    "EnergyBreakdown",
    "Table",
    "geomean",
    "render_metrics",
    "Timeline",
    "TimelinePoint",
]
