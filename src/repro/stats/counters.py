"""Statistics primitives: cache counters and reuse histograms.

Every cache owns a :class:`CacheStats`; the simulator aggregates them into
run-level reports (:mod:`repro.stats.report`).  The reuse histogram feeds
the paper's Figure 2 (L1 reuse-count distribution).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["CacheStats", "ReuseHistogram"]


class ReuseHistogram:
    """Histogram of per-generation reuse counts.

    A *generation* is one residency of a line (fill to eviction).  The
    reuse count is the number of hits the generation received — zero means
    the fill was never reused, i.e. wasted cache space (Fig. 2).
    """

    def __init__(self) -> None:
        self._counts: Counter = Counter()

    def record(self, reuse_count: int) -> None:
        if reuse_count < 0:
            raise ValueError(f"reuse count cannot be negative: {reuse_count}")
        self._counts[reuse_count] += 1

    @property
    def generations(self) -> int:
        """Total number of recorded generations."""
        return sum(self._counts.values())

    def fraction(self, reuse_count: int) -> float:
        """Fraction of generations with exactly ``reuse_count`` reuses."""
        total = self.generations
        return self._counts[reuse_count] / total if total else 0.0

    def fraction_at_least(self, reuse_count: int) -> float:
        """Fraction of generations with >= ``reuse_count`` reuses."""
        total = self.generations
        if not total:
            return 0.0
        n = sum(c for k, c in self._counts.items() if k >= reuse_count)
        return n / total

    def buckets(self, cutoffs=(0, 1, 2)) -> Dict[str, float]:
        """Bucketed distribution matching the paper's Fig. 2 legend.

        With the default cutoffs this yields fractions for reuse counts
        ``0``, ``1``, ``2`` and ``>=3`` (labelled ``"3+"``).
        """
        out: Dict[str, float] = {}
        for c in cutoffs:
            out[str(c)] = self.fraction(c)
        out[f"{cutoffs[-1] + 1}+"] = self.fraction_at_least(cutoffs[-1] + 1)
        return out

    def merge(self, other: "ReuseHistogram") -> None:
        """Accumulate another histogram into this one (per-core -> GPU)."""
        self._counts.update(other._counts)

    def as_dict(self) -> Dict[int, int]:
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ReuseHistogram n={self.generations}>"


@dataclass
class CacheStats:
    """Flat event counters for one cache.

    Attributes follow GPGPU-Sim naming where a counterpart exists.  The
    *miss rate* counts MSHR-merged accesses as misses (they did not find
    the data ready in the array), matching the very high miss rates the
    paper reports for streaming kernels.
    """

    loads: int = 0
    stores: int = 0
    load_hits: int = 0
    store_hits: int = 0
    mshr_merges: int = 0
    fills: int = 0
    bypasses: int = 0
    evictions: int = 0
    writebacks: int = 0
    reuse: ReuseHistogram = field(default_factory=ReuseHistogram)

    @property
    def accesses(self) -> int:
        return self.loads + self.stores

    @property
    def hits(self) -> int:
        return self.load_hits + self.store_hits

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def miss_rate(self) -> float:
        """Misses / accesses; 0.0 for an untouched cache."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def load_miss_rate(self) -> float:
        return 1.0 - self.load_hits / self.loads if self.loads else 0.0

    @property
    def bypass_ratio(self) -> float:
        """Bypassed fills as a fraction of accesses (paper's Table 3)."""
        return self.bypasses / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Accumulate ``other`` into this instance (per-core -> GPU level)."""
        self.loads += other.loads
        self.stores += other.stores
        self.load_hits += other.load_hits
        self.store_hits += other.store_hits
        self.mshr_merges += other.mshr_merges
        self.fills += other.fills
        self.bypasses += other.bypasses
        self.evictions += other.evictions
        self.writebacks += other.writebacks
        self.reuse.merge(other.reuse)

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict view for reports and JSON dumps."""
        return {
            "accesses": self.accesses,
            "loads": self.loads,
            "stores": self.stores,
            "hits": self.hits,
            "miss_rate": self.miss_rate,
            "mshr_merges": self.mshr_merges,
            "fills": self.fills,
            "bypasses": self.bypasses,
            "bypass_ratio": self.bypass_ratio,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
        }
