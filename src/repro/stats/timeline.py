"""Windowed time-series collection for simulation runs.

A :class:`Timeline` receives snapshots at fixed cycle intervals (the
simulator samples when constructed with ``timeline=``) and exposes
per-window rates — IPC over time, miss rate over time, bypass rate over
time.  Useful for watching G-Cache's detection loop converge (the warmup
the paper's counters hide) and for the adaptive-M dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["TimelinePoint", "Timeline"]


@dataclass(frozen=True)
class TimelinePoint:
    """Cumulative counters sampled at one instant."""

    cycle: int
    instructions: int
    l1_accesses: int
    l1_hits: int
    l1_bypasses: int


@dataclass(frozen=True)
class TimelineWindow:
    """Rates over one sampling window."""

    start_cycle: int
    end_cycle: int
    ipc: float
    miss_rate: float
    bypass_rate: float


class Timeline:
    """Collects snapshots and derives per-window rates.

    Args:
        interval: Cycles between samples.
    """

    def __init__(self, interval: int = 2048) -> None:
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.interval = interval
        self.points: List[TimelinePoint] = []

    def record(self, point: TimelinePoint) -> None:
        if self.points and point.cycle <= self.points[-1].cycle:
            return  # duplicate / out-of-order sample, skip
        self.points.append(point)

    def windows(self) -> List[TimelineWindow]:
        """Per-window rates between consecutive samples."""
        out: List[TimelineWindow] = []
        for prev, cur in zip(self.points, self.points[1:]):
            cycles = cur.cycle - prev.cycle
            accesses = cur.l1_accesses - prev.l1_accesses
            hits = cur.l1_hits - prev.l1_hits
            bypasses = cur.l1_bypasses - prev.l1_bypasses
            out.append(
                TimelineWindow(
                    start_cycle=prev.cycle,
                    end_cycle=cur.cycle,
                    ipc=(cur.instructions - prev.instructions) / cycles if cycles else 0.0,
                    miss_rate=1.0 - hits / accesses if accesses else 0.0,
                    bypass_rate=bypasses / accesses if accesses else 0.0,
                )
            )
        return out

    def to_csv(self) -> str:
        """Windowed rates as CSV (the ``repro run --timeline-csv`` export)."""
        lines = ["start_cycle,end_cycle,ipc,miss_rate,bypass_rate"]
        for w in self.windows():
            lines.append(
                f"{w.start_cycle},{w.end_cycle},"
                f"{w.ipc:.6f},{w.miss_rate:.6f},{w.bypass_rate:.6f}"
            )
        return "\n".join(lines)

    def sparkline(self, metric: str = "miss_rate", width: int = 60) -> str:
        """ASCII sparkline of one metric (for terminal reports)."""
        windows = self.windows()
        if not windows:
            return ""
        values = [getattr(w, metric) for w in windows]
        if len(values) > width:
            stride = len(values) / width
            values = [values[int(i * stride)] for i in range(width)]
        lo, hi = min(values), max(values)
        span = (hi - lo) or 1.0
        glyphs = "▁▂▃▄▅▆▇█"
        return "".join(glyphs[int((v - lo) / span * (len(glyphs) - 1))] for v in values)

    def __len__(self) -> int:
        return len(self.points)
