"""Parameter-sweep utility: run a design/config grid and tabulate.

A small orchestration layer used by the ablation harnesses, examples and
downstream experiments::

    from repro.sim.sweep import Sweep

    sweep = (
        Sweep(build_benchmark("SSC", scale=0.5))
        .designs("bs", "gc")
        .configs(l1_size=[16 * 1024, 32 * 1024, 64 * 1024])
    )
    for point in sweep.run():
        print(point.design, point.overrides, point.result.ipc)
    print(sweep.table("ipc").render())
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.sim.config import GPUConfig
from repro.sim.designs import DesignSpec, make_design
from repro.sim.simulator import RunResult, simulate
from repro.stats.report import Table
from repro.trace.trace import KernelTrace

__all__ = ["Sweep", "SweepPoint"]

#: Metric extractors available to :meth:`Sweep.table`.
METRICS: Dict[str, Callable[[RunResult], str]] = {
    "ipc": lambda r: f"{r.ipc:.3f}",
    "miss_rate": lambda r: f"{r.l1.miss_rate:.1%}",
    "bypass_ratio": lambda r: f"{r.l1.bypass_ratio:.1%}",
    "load_latency": lambda r: f"{r.avg_load_latency:.0f}",
    "dram_requests": lambda r: f"{r.dram_requests}",
    "cycles": lambda r: f"{r.cycles}",
}


@dataclass
class SweepPoint:
    """One completed grid point."""

    design: str
    overrides: Dict[str, object]
    result: RunResult


@dataclass
class Sweep:
    """A benchmark x design x config-override grid.

    Args:
        trace: Kernel to run at every point.
        base_config: Starting configuration (Table 2 by default).
    """

    trace: KernelTrace
    base_config: GPUConfig = field(default_factory=GPUConfig)
    _designs: List[str] = field(default_factory=lambda: ["bs"])
    _grid: Dict[str, Sequence] = field(default_factory=dict)
    _points: Optional[List[SweepPoint]] = None

    def designs(self, *keys: str) -> "Sweep":
        """Select the design keys to evaluate (chainable)."""
        self._designs = list(keys)
        self._points = None
        return self

    def configs(self, **axes: Sequence) -> "Sweep":
        """Add config axes: each kwarg is a GPUConfig field with values."""
        for name in axes:
            if not hasattr(self.base_config, name):
                raise ValueError(f"GPUConfig has no field {name!r}")
        self._grid.update(axes)
        self._points = None
        return self

    def _config_points(self):
        if not self._grid:
            yield {}
            return
        names = list(self._grid)
        for values in itertools.product(*(self._grid[n] for n in names)):
            yield dict(zip(names, values))

    def _design_for(self, key: str) -> DesignSpec:
        if key.startswith("spdp-b:"):
            return make_design("spdp-b", pd=int(key.split(":", 1)[1]))
        return make_design(key)

    def run(self) -> List[SweepPoint]:
        """Execute the whole grid (memoized)."""
        if self._points is not None:
            return self._points
        points: List[SweepPoint] = []
        for overrides in self._config_points():
            config = replace(self.base_config, **overrides) if overrides else self.base_config
            for key in self._designs:
                result = simulate(self.trace, config, self._design_for(key))
                points.append(SweepPoint(design=key, overrides=dict(overrides), result=result))
        self._points = points
        return points

    def table(self, metric: str = "ipc") -> Table:
        """Tabulate one metric: rows = config points, columns = designs."""
        try:
            extract = METRICS[metric]
        except KeyError:
            raise ValueError(
                f"unknown metric {metric!r}; known: {sorted(METRICS)}"
            ) from None
        points = self.run()
        table = Table(
            ["config"] + list(self._designs),
            title=f"{self.trace.name}: {metric} sweep",
        )
        for overrides in self._config_points():
            label = (
                ", ".join(f"{k}={v}" for k, v in overrides.items()) or "default"
            )
            cells = [label]
            for key in self._designs:
                match = next(
                    p for p in points
                    if p.design == key and p.overrides == overrides
                )
                cells.append(extract(match.result))
            table.row(cells)
        return table
