"""Parameter-sweep utility: run a design/config grid and tabulate.

A small orchestration layer used by the ablation harnesses, examples and
downstream experiments::

    from repro.sim.sweep import Sweep

    sweep = (
        Sweep(build_benchmark("SSC", scale=0.5))
        .designs("bs", "gc")
        .configs(l1_size=[16 * 1024, 32 * 1024, 64 * 1024])
    )
    for point in sweep.run(jobs=4):
        print(point.design, point.overrides, point.result.ipc)
    print(sweep.table("ipc").render())

Since the campaign-engine refactor the grid executes through
:class:`repro.runner.CampaignEngine`: pass ``jobs`` to fan the points
out over a process pool and/or ``cache_dir`` to reuse results across
runs.  Because the sweep's trace may be ad-hoc (not necessarily from the
benchmark registry), cache keys embed a content digest of the trace
itself rather than a (benchmark, scale, seed) triple.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.runner import CampaignEngine, ResultCache, Task, trace_digest
from repro.sim.config import GPUConfig
from repro.sim.simulator import RunResult
from repro.stats.report import Table
from repro.trace.trace import KernelTrace

__all__ = ["Sweep", "SweepPoint"]

#: Metric extractors available to :meth:`Sweep.table`.
METRICS: Dict[str, Callable[[RunResult], str]] = {
    "ipc": lambda r: f"{r.ipc:.3f}",
    "miss_rate": lambda r: f"{r.l1.miss_rate:.1%}",
    "bypass_ratio": lambda r: f"{r.l1.bypass_ratio:.1%}",
    "load_latency": lambda r: f"{r.avg_load_latency:.0f}",
    "dram_requests": lambda r: f"{r.dram_requests}",
    "cycles": lambda r: f"{r.cycles}",
}


@dataclass
class SweepPoint:
    """One completed grid point."""

    design: str
    overrides: Dict[str, object]
    result: RunResult


@dataclass
class Sweep:
    """A benchmark x design x config-override grid.

    Args:
        trace: Kernel to run at every point.
        base_config: Starting configuration (Table 2 by default).
        jobs: Default worker-process count for :meth:`run` (1 = serial).
        cache_dir: Persistent result-cache directory (``None`` = off).
        fidelity: ``"timing"`` (cycle-accurate) or ``"functional"``
            (fast vectorized replay; exact cache counters, estimated
            cycles) for every grid point.
    """

    trace: KernelTrace
    base_config: GPUConfig = field(default_factory=GPUConfig)
    jobs: int = 1
    cache_dir: Optional[str] = None
    fidelity: str = "timing"
    _designs: List[str] = field(default_factory=lambda: ["bs"])
    _grid: Dict[str, Sequence] = field(default_factory=dict)
    _points: Optional[List[SweepPoint]] = None

    def designs(self, *keys: str) -> "Sweep":
        """Select the design keys to evaluate (chainable)."""
        self._designs = list(keys)
        self._points = None
        return self

    def configs(self, **axes: Sequence) -> "Sweep":
        """Add config axes: each kwarg is a GPUConfig field with values."""
        for name in axes:
            if not hasattr(self.base_config, name):
                raise ValueError(f"GPUConfig has no field {name!r}")
        self._grid.update(axes)
        self._points = None
        return self

    def _config_points(self):
        if not self._grid:
            yield {}
            return
        names = list(self._grid)
        for values in itertools.product(*(self._grid[n] for n in names)):
            yield dict(zip(names, values))

    @staticmethod
    def _split_design(key: str):
        """``"spdp-b:24"`` -> ("spdp-b", 24); plain keys pass through."""
        if key.startswith("spdp-b:"):
            return "spdp-b", int(key.split(":", 1)[1])
        return key, None

    def run(self, jobs: Optional[int] = None) -> List[SweepPoint]:
        """Execute the whole grid (memoized).

        Args:
            jobs: Override the sweep's worker count for this call.
        """
        if self._points is not None:
            return self._points
        digest = trace_digest(self.trace)
        grid: List[SweepPoint] = []
        tasks: List[Task] = []
        for overrides in self._config_points():
            config = replace(self.base_config, **overrides) if overrides else self.base_config
            for key in self._designs:
                design, pd = self._split_design(key)
                grid.append(SweepPoint(design=key, overrides=dict(overrides), result=None))
                tasks.append(
                    Task(
                        kind="simulate",
                        benchmark=self.trace.name,
                        design=design,
                        pd=pd,
                        config=config,
                        trace=self.trace,
                        key_by_trace=True,
                        trace_key=digest,
                        fidelity=self.fidelity,
                    )
                )
        cache = ResultCache(self.cache_dir) if self.cache_dir is not None else None
        engine = CampaignEngine(jobs=jobs if jobs is not None else self.jobs, cache=cache)
        for point, result in zip(grid, engine.run(tasks)):
            point.result = result
        self._points = grid
        return grid

    def table(self, metric: str = "ipc") -> Table:
        """Tabulate one metric: rows = config points, columns = designs."""
        try:
            extract = METRICS[metric]
        except KeyError:
            raise ValueError(
                f"unknown metric {metric!r}; known: {sorted(METRICS)}"
            ) from None
        points = self.run()
        table = Table(
            ["config"] + list(self._designs),
            title=f"{self.trace.name}: {metric} sweep",
        )
        for overrides in self._config_points():
            label = (
                ", ".join(f"{k}={v}" for k, v in overrides.items()) or "default"
            )
            cells = [label]
            for key in self._designs:
                match = next(
                    p for p in points
                    if p.design == key and p.overrides == overrides
                )
                cells.append(extract(match.result))
            table.row(cells)
        return table
