"""Memory-system wiring: L1s -> mesh -> banked L2 -> GDDR5 DRAM.

This module glues the substrates together and computes, for each memory
transaction, its completion time by walking the hierarchy with
per-resource next-free-time contention (see DESIGN.md Section 6).  It is
also where the G-Cache control flow lives end-to-end:

* an L1 load miss travels to its L2 bank tagged with the source core,
* the L2 consults/updates the victim-bit directory and attaches the
  *victim hint* to the response,
* the hint drives the L1's bypass switch and fill decision.

Transactions must be presented in non-decreasing time order per core
(the event engine guarantees global time order), which keeps the
next-free-time bookkeeping consistent.
"""

from __future__ import annotations

from heapq import heappush
from typing import List, Optional

from repro.cache.cache import Cache
from repro.cache.mshr import MSHREntry, MSHRFile
from repro.cache.policies.base import FillContext
from repro.cache.replacement.lru import LRUPolicy
from repro.core.victim_bits import VictimBitDirectory
from repro.dram.controller import MemoryController
from repro.noc.crossbar import CrossbarNoC
from repro.noc.mesh import MeshNoC
from repro.obs.events import (
    EV_MSHR_ALLOC,
    EV_MSHR_MERGE,
    EV_MSHR_STALL,
    EV_VICTIM_CLEAR,
    EV_VICTIM_SET,
)
from repro.sim.addressing import AddressMap
from repro.sim.config import GPUConfig
from repro.sim.designs import DesignSpec
from repro.stats.counters import CacheStats

__all__ = ["MemorySystem"]


class MemorySystem:
    """The full memory hierarchy for one simulation run.

    Args:
        config: Architectural parameters.
        design: Cache-management design under evaluation.
        victim_share_factor: ``S_v`` — SIMT cores per victim bit (only
            meaningful for designs that use victim bits).
    """

    def __init__(
        self,
        config: GPUConfig,
        design: DesignSpec,
        victim_share_factor: int = 1,
    ) -> None:
        self.config = config
        self.design = design
        p = config.num_partitions

        self.l1s: List[Cache] = [
            Cache(
                name=f"L1[{core}]",
                size_bytes=config.l1_size,
                ways=config.l1_ways,
                line_size=config.line_size,
                replacement=design.make_l1_replacement(),
                mgmt=design.make_l1_mgmt(),
                write_back=False,
                write_allocate=False,
            )
            for core in range(config.num_cores)
        ]
        self.mshrs: List[MSHRFile] = [
            MSHRFile(config.l1_mshr_entries, config.l1_mshr_max_merges)
            for _ in range(config.num_cores)
        ]
        # L2 banks operate on partition-local addresses (see AddressMap),
        # so no pre-shift is needed for set selection.
        self.l2_banks: List[Cache] = [
            Cache(
                name=f"L2[{bank}]",
                size_bytes=config.l2_bank_size,
                ways=config.l2_ways,
                line_size=config.line_size,
                replacement=LRUPolicy(),
                write_back=True,
                write_allocate=True,
            )
            for bank in range(p)
        ]
        if config.noc_topology == "crossbar":
            self.noc = CrossbarNoC(
                num_cores=config.num_cores,
                num_partitions=p,
                channel_width=config.noc_channel_width,
                traversal_latency=3 * config.noc_hop_latency,
                ctrl_size=config.noc_ctrl_size,
                data_size=config.line_size,
            )
        else:
            self.noc = MeshNoC(
                num_cores=config.num_cores,
                num_partitions=p,
                channel_width=config.noc_channel_width,
                hop_latency=config.noc_hop_latency,
                ctrl_size=config.noc_ctrl_size,
                data_size=config.line_size,
            )
        self.mcs: List[MemoryController] = [
            MemoryController(
                mc_id=i,
                timing=config.dram_timing,
                num_banks=config.dram_banks_per_mc,
                line_size=config.line_size,
                row_window=config.dram_row_window,
            )
            for i in range(p)
        ]
        self.victim_dir: Optional[VictimBitDirectory] = (
            VictimBitDirectory(config.num_cores, victim_share_factor)
            if design.uses_victim_bits
            else None
        )

        self.addr_map = AddressMap(p, config.mc_interleave_lines)
        self._l1_port_free = [0] * config.num_cores
        self._l2_port_free = [0] * p
        self._aou_free = [0] * p
        # Hot-loop shortcuts: per-core (L1, MSHR) pairs and scalar
        # latencies, so load() does one index instead of several
        # attribute+index chains per transaction.
        self._per_core = list(zip(self.l1s, self.mshrs))
        self._l1_hit_latency = config.l1_hit_latency
        self._partition = self.addr_map.partition
        self._local = self.addr_map.local
        self._l2_hit_latency = config.l2_hit_latency
        self._l2_port_occupancy = config.l2_port_occupancy
        self._l2_write_validate = config.l2_write_validate

        #: Event bus when tracing is enabled (see repro.obs.wire).
        self.obs = None

        # Diagnostics.
        self.load_latency_sum = 0
        self.load_count = 0

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------
    def partition_of(self, line_addr: int) -> int:
        return self.addr_map.partition(line_addr)

    # ------------------------------------------------------------------
    # L2 + DRAM walk (shared by loads, stores, atomics)
    # ------------------------------------------------------------------
    def _l2_access(
        self,
        core_id: int,
        line_addr: int,
        arrive: int,
        is_write: bool,
        full_line_write: bool = True,
        part: Optional[int] = None,
    ):
        """Access the L2 bank; returns ``(data_time, victim_hint)``.

        ``data_time`` is when the L2 bank has the data (for reads) or has
        accepted the write.  Misses are filled from DRAM, charging the
        memory controller and any dirty-eviction writeback.
        ``full_line_write`` marks stores that cover the whole line and may
        therefore write-validate (skip the allocate fetch); atomics are
        read-modify-write and must not.  Callers that already computed the
        partition pass it via ``part`` to skip the address-map hash.
        """
        if part is None:
            part = self.partition_of(line_addr)
        local = self._local(line_addr)
        ports = self._l2_port_free
        at = ports[part]
        if arrive > at:
            at = arrive
        ports[part] = at + self._l2_port_occupancy
        bank = self.l2_banks[part]
        mc = self.mcs[part]

        idx = bank.lookup_fast(local, at, is_write=is_write)
        if idx >= 0:
            data_time = at + self._l2_hit_latency
            line = bank._views[idx]
        else:
            # Miss: fetch the line from DRAM and write-allocate.  A store
            # that covers the full line skips the fetch (write-validate).
            if is_write and full_line_write and self._l2_write_validate:
                dram_done = at + self._l2_hit_latency
            else:
                dram_done = mc.request(local, at + self._l2_hit_latency)
            # No ctx: the L2 has no management policy, so fill() only
            # builds one if the event bus needs it.
            fill = bank.fill(
                local, dram_done, known_absent=True, is_write=is_write
            )
            if fill.writeback:
                mc.request(fill.evicted_tag, dram_done, is_write=True)
            if (
                self.obs is not None
                and self.victim_dir is not None
                and fill.evicted_tag != -1
            ):
                # The evicted L2 line's victim bits die with it (Fig. 6).
                self.obs.emit(
                    EV_VICTIM_CLEAR, dram_done, f"L2[{part}]",
                    line=fill.evicted_tag, set=fill.set_index,
                )
            data_time = dram_done
            if fill.inserted or fill.already_present:
                line = bank.sets[fill.set_index][fill.way]
            else:  # pragma: no cover - L2 never bypasses in this model
                line = None

        hint = False
        if self.victim_dir is not None and not is_write and line is not None:
            hint = self.victim_dir.observe(line, core_id)
            if self.obs is not None:
                self.obs.emit(
                    EV_VICTIM_SET, data_time, f"L2[{part}]",
                    line=line_addr, l1=f"L1[{core_id}]",
                    group=self.victim_dir.group(core_id), hint=hint,
                )
        return data_time, hint

    # ------------------------------------------------------------------
    # Core-facing operations
    # ------------------------------------------------------------------
    def load(self, core_id: int, line_addr: int, now: int) -> int:
        """One read transaction; returns its data-ready time at the core."""
        ports = self._l1_port_free
        port = ports[core_id]
        if now > port:
            port = now
        ports[core_id] = port + 1

        l1, mshr = self._per_core[core_id]
        # Inlined MSHR expiry early-out (the overwhelmingly common case).
        heap = mshr._ready_heap
        if heap and heap[0][0] <= port:
            mshr.expire(port)

        entry = mshr._pending.get(line_addr)
        if entry is not None:
            # The line is already in flight: merge, complete with the fill.
            l1.stats.loads += 1
            l1.stats.mshr_merges += 1
            mshr.merge(entry)
            if self.obs is not None:
                self.obs.emit(
                    EV_MSHR_MERGE, port, f"MSHR[{core_id}]",
                    line=line_addr, ready=entry.ready_time,
                )
            return entry.ready_time

        if l1.lookup_fast(line_addr, port) >= 0:
            done = port + self._l1_hit_latency
            self.load_latency_sum += done - now
            self.load_count += 1
            return done

        # Miss: wait for a free MSHR, then walk the lower hierarchy.
        t = port + 1
        if mshr.full:
            mshr.note_full_stall()
            stall_until = max(t, mshr.earliest_free())
            if self.obs is not None:
                self.obs.emit(
                    EV_MSHR_STALL, t, f"MSHR[{core_id}]",
                    line=line_addr, until=stall_until,
                )
            t = stall_until
            mshr.expire(t)

        part = self._partition(line_addr)
        arrive = self.noc.send_request(core_id, part, t)
        data_time, hint = self._l2_access(
            core_id, line_addr, arrive, is_write=False, part=part
        )
        resp = self.noc.send_response(part, core_id, data_time)

        if l1._mgmt_needs_ctx or l1.obs is not None:
            fill = l1.fill(
                line_addr,
                resp,
                FillContext(line_addr=line_addr, victim_hint=hint, src_id=core_id),
                known_absent=True,
            )
        else:
            fill = l1.fill(line_addr, resp, known_absent=True)
        # Inlined MSHRFile.allocate: the stall logic above guarantees a
        # free entry, and the pending-dict probe at the top of this method
        # rules out duplicates, so the guard raises cannot trigger here.
        entry = MSHREntry(line_addr, resp, fill.bypassed)
        pending = mshr._pending
        pending[line_addr] = entry
        heappush(mshr._ready_heap, (resp, line_addr))
        mshr.total_allocations += 1
        occ = len(pending)
        if occ > mshr.peak_occupancy:
            mshr.peak_occupancy = occ
        if self.obs is not None:
            self.obs.emit(
                EV_MSHR_ALLOC, t, f"MSHR[{core_id}]",
                line=line_addr, ready=resp, bypassed=fill.bypassed,
            )
        self.load_latency_sum += resp - now
        self.load_count += 1
        return resp

    def store(self, core_id: int, line_addr: int, now: int) -> int:
        """One write transaction (write-through, non-blocking for the warp).

        Returns the time the write is accepted by the L2 — callers may
        ignore it; it exists so tests can observe write timing.
        """
        port = max(now, self._l1_port_free[core_id])
        self._l1_port_free[core_id] = port + 1

        # Write-through, write-no-allocate L1: update on hit, never fill.
        self.l1s[core_id].lookup_fast(line_addr, port, is_write=True)

        part = self.partition_of(line_addr)
        arrive = self.noc.send_data_request(core_id, part, port + 1)
        data_time, _ = self._l2_access(
            core_id, line_addr, arrive, is_write=True, part=part
        )
        return data_time

    def atomic(self, core_id: int, line_addr: int, now: int) -> int:
        """One read-modify-write at the partition's Atomic Operation Unit.

        Atomics bypass the L1 entirely (they are performed at the memory
        partition, Section 2.2) and serialize on the per-partition AOU.
        """
        port = max(now, self._l1_port_free[core_id])
        self._l1_port_free[core_id] = port + 1
        part = self.partition_of(line_addr)

        arrive = self.noc.send_data_request(core_id, part, port + 1)
        at = max(arrive, self._aou_free[part])
        self._aou_free[part] = at + self.config.aou_occupancy
        data_time, _ = self._l2_access(
            core_id, line_addr, at, is_write=True, full_line_write=False, part=part
        )
        return data_time

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Close out reuse generations in every cache (end of run)."""
        for cache in self.l1s:
            cache.finalize()
        for bank in self.l2_banks:
            bank.finalize()

    def l1_stats(self) -> CacheStats:
        """All per-core L1 statistics merged into one view."""
        merged = CacheStats()
        for cache in self.l1s:
            merged.merge(cache.stats)
        return merged

    def l2_stats(self) -> CacheStats:
        merged = CacheStats()
        for bank in self.l2_banks:
            merged.merge(bank.stats)
        return merged

    @property
    def average_load_latency(self) -> float:
        return self.load_latency_sum / self.load_count if self.load_count else 0.0

    @property
    def dram_requests(self) -> int:
        return sum(mc.total_requests for mc in self.mcs)

    @property
    def dram_row_hit_rate(self) -> float:
        hits = sum(b.row_hits for mc in self.mcs for b in mc.banks)
        total = hits + sum(b.row_misses for mc in self.mcs for b in mc.banks)
        return hits / total if total else 0.0
