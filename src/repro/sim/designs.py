"""Design registry: the cache-management designs evaluated in the paper.

Each design names the L1 replacement + management policy combination and
whether the L2 victim-bit directory is active:

========  ===========================================================
key       description (paper Section 5)
========  ===========================================================
bs        Baseline: LRU L1, no bypass.
bs-s      Baseline with 3-bit SRRIP L1 replacement, no bypass.
pdp-3     Dynamic PDP, 3-bit protecting-distance counters.
pdp-8     Dynamic PDP, 8-bit counters.
spdp-b    Static PDP with bypass at a given (per-benchmark best) PD.
gc        G-Cache: SRRIP + adaptive bypass/insertion + victim bits.
gc-m      G-Cache with the adaptive M-th-bypass aging extension.
========  ===========================================================

A :class:`DesignSpec` is a factory bundle — policies are stateful, so a
fresh instance pair is built per simulation run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.cache.policies.base import ManagementPolicy, NullManagementPolicy
from repro.cache.policies.dead_block import DeadBlockPolicy
from repro.cache.policies.pdp import DynamicPDPPolicy, StaticPDPPolicy
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.rrip import SRRIPPolicy
from repro.core.gcache import GCacheConfig, GCachePolicy

__all__ = ["DesignSpec", "make_design", "DESIGN_KEYS"]

DESIGN_KEYS = ("bs", "bs-s", "pdp-3", "pdp-8", "spdp-b", "gc", "gc-m", "dbp")


@dataclass
class DesignSpec:
    """Factories for one cache-management design."""

    key: str
    label: str
    make_l1_replacement: Callable[[], ReplacementPolicy]
    make_l1_mgmt: Callable[[], ManagementPolicy]
    uses_victim_bits: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DesignSpec {self.key}>"


def make_design(
    key: str,
    pd: Optional[int] = None,
    gcache_config: Optional[GCacheConfig] = None,
    rrpv_bits: int = 3,
) -> DesignSpec:
    """Build the :class:`DesignSpec` for a paper design.

    Args:
        key: One of :data:`DESIGN_KEYS`.
        pd: Protecting distance — required for ``spdp-b``.
        gcache_config: Tunables for the ``gc`` / ``gc-m`` designs.
        rrpv_bits: RRPV width for SRRIP-based designs (paper: 3).
    """
    if key == "bs":
        return DesignSpec(
            key="bs",
            label="Baseline (LRU)",
            make_l1_replacement=LRUPolicy,
            make_l1_mgmt=NullManagementPolicy,
        )
    if key == "bs-s":
        return DesignSpec(
            key="bs-s",
            label=f"Baseline + {rrpv_bits}-bit SRRIP",
            make_l1_replacement=lambda: SRRIPPolicy(bits=rrpv_bits),
            make_l1_mgmt=NullManagementPolicy,
        )
    if key in ("pdp-3", "pdp-8"):
        bits = 3 if key == "pdp-3" else 8
        return DesignSpec(
            key=key,
            label=f"Dynamic PDP ({bits}-bit)",
            make_l1_replacement=LRUPolicy,
            make_l1_mgmt=lambda: DynamicPDPPolicy(counter_bits=bits),
        )
    if key == "spdp-b":
        if pd is None:
            raise ValueError("spdp-b requires a protecting distance (pd=...)")
        return DesignSpec(
            key="spdp-b",
            label=f"Static PDP + bypass (PD={pd})",
            make_l1_replacement=LRUPolicy,
            make_l1_mgmt=lambda: StaticPDPPolicy(pd=pd, bypass=True),
        )
    if key == "dbp":
        return DesignSpec(
            key="dbp",
            label="Counter-based dead-block bypass",
            make_l1_replacement=LRUPolicy,
            make_l1_mgmt=DeadBlockPolicy,
        )
    if key in ("gc", "gc-m"):
        base = gcache_config if gcache_config is not None else GCacheConfig()
        if key == "gc-m":
            cfg = GCacheConfig(
                th_hot=base.th_hot,
                th_hot_victim=base.th_hot_victim,
                hot_insert_rrpv=base.hot_insert_rrpv,
                cold_insert_rrpv=base.cold_insert_rrpv,
                shutdown_interval=base.shutdown_interval,
                adaptive_aging=True,
                initial_m=base.initial_m,
                max_m=base.max_m,
                aging_epoch=base.aging_epoch,
            )
        else:
            cfg = base
        return DesignSpec(
            key=key,
            label="G-Cache" + (" (adaptive M)" if key == "gc-m" else ""),
            make_l1_replacement=lambda: SRRIPPolicy(bits=rrpv_bits),
            make_l1_mgmt=lambda: GCachePolicy(cfg),
            uses_victim_bits=True,
        )
    raise ValueError(f"unknown design {key!r}; known: {DESIGN_KEYS}")
