"""Simulation configuration (paper Table 2 defaults).

:class:`GPUConfig` collects every architectural parameter in one frozen
dataclass.  ``GPUConfig()`` reproduces the paper's baseline: a 16-core
Fermi-class GPU with 32 KB 4-way L1s, a 1 MB 16-way L2 in 8 banks, a 2D
mesh and 8 GDDR5 memory controllers.  Latency parameters not given in the
paper (hit latencies, hop latency, ...) follow GPGPU-Sim v3.x Fermi
defaults; all times are in core cycles at 1.4 GHz, with the L2's 700 MHz
domain folded in by doubling its service latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.dram.timing import GDDR5Timing

__all__ = ["GPUConfig"]


@dataclass(frozen=True)
class GPUConfig:
    """Architectural parameters for one simulation run.

    The defaults reproduce Table 2.  Use :meth:`with_l1_size` (or
    ``dataclasses.replace``) for the sensitivity sweeps.
    """

    # --- SIMT cores -------------------------------------------------
    num_cores: int = 16
    simt_width: int = 32
    max_warps_per_core: int = 48
    max_ctas_per_core: int = 8
    scratchpad_bytes: int = 48 * 1024
    alu_latency: int = 4
    smem_latency: int = 24
    warp_scheduler: str = "lrr"

    # --- L1 data cache ------------------------------------------------
    l1_size: int = 32 * 1024
    l1_ways: int = 4
    line_size: int = 128
    l1_hit_latency: int = 28
    l1_mshr_entries: int = 32
    l1_mshr_max_merges: int = 8

    # --- L2 cache -------------------------------------------------------
    num_partitions: int = 8
    l2_bank_size: int = 128 * 1024
    l2_ways: int = 16
    # Core-observed L2 service latency (700 MHz domain, queuing excluded).
    # Fermi microbenchmarks put the full L2-hit round trip at ~250-350
    # core cycles; the NoC model adds ~50 on top of this value.
    l2_hit_latency: int = 160
    l2_port_occupancy: int = 2

    # --- Interconnect ---------------------------------------------------
    #: "mesh" (Table 2) or "crossbar" (GPGPU-Sim's Fermi default).
    noc_topology: str = "mesh"
    noc_channel_width: int = 32
    noc_hop_latency: int = 2
    noc_ctrl_size: int = 8

    # --- DRAM -------------------------------------------------------------
    dram_banks_per_mc: int = 4
    dram_timing: GDDR5Timing = field(default_factory=GDDR5Timing)
    #: FR-FCFS reorder reach: rows per bank treated as open (see
    #: repro.dram.bank for the approximation this parameterizes).  GPU
    #: controllers carry deep (32-64 entry) queues; 24 rows/bank lets the
    #: model batch that many concurrent stream rows.
    dram_row_window: int = 24
    #: Partition interleave granularity in lines (16 lines = 2 KB, one
    #: DRAM row) — see repro.sim.addressing.
    mc_interleave_lines: int = 16
    #: Skip the DRAM fetch when a store write-allocates a fully covered
    #: line in the L2 (write-validate; coalesced warp stores always cover
    #: the full 128 B line).
    l2_write_validate: bool = True
    aou_occupancy: int = 4

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError(f"need >= 1 core, got {self.num_cores}")
        if self.num_partitions < 1:
            raise ValueError(f"need >= 1 partition, got {self.num_partitions}")
        if self.num_partitions & (self.num_partitions - 1):
            raise ValueError(
                f"partition count must be a power of two, got {self.num_partitions}"
            )
        if self.l1_size % (self.l1_ways * self.line_size) != 0:
            raise ValueError("L1 geometry does not divide evenly")
        if self.l2_bank_size % (self.l2_ways * self.line_size) != 0:
            raise ValueError("L2 bank geometry does not divide evenly")
        if self.max_warps_per_core < 1:
            raise ValueError("need at least one warp slot per core")
        if self.noc_topology not in ("mesh", "crossbar"):
            raise ValueError(
                f"unknown NoC topology {self.noc_topology!r}; "
                "known: mesh, crossbar"
            )

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def l1_sets(self) -> int:
        return self.l1_size // (self.l1_ways * self.line_size)

    @property
    def l2_bank_sets(self) -> int:
        return self.l2_bank_size // (self.l2_ways * self.line_size)

    @property
    def l2_total_size(self) -> int:
        return self.l2_bank_size * self.num_partitions

    @property
    def partition_shift(self) -> int:
        """log2(number of partitions), for bank-interleaved set indexing."""
        return self.num_partitions.bit_length() - 1

    # ------------------------------------------------------------------
    # Variants
    # ------------------------------------------------------------------
    def with_l1_size(self, size_bytes: int) -> "GPUConfig":
        """Clone this config with a different L1 capacity (Figs. 3/4/10)."""
        return replace(self, l1_size=size_bytes)

    def with_scheduler(self, name: str) -> "GPUConfig":
        return replace(self, warp_scheduler=name)

    def describe(self) -> str:
        """One-line summary used in report headers."""
        return (
            f"{self.num_cores} cores x {self.max_warps_per_core} warps, "
            f"L1 {self.l1_size >> 10}KB/{self.l1_ways}w, "
            f"L2 {self.l2_total_size >> 10}KB/{self.l2_ways}w x"
            f"{self.num_partitions} banks, {self.warp_scheduler.upper()} sched"
        )
