"""Physical address mapping: line -> (memory partition, local address).

GPUs interleave the physical address space across memory partitions at a
granularity much coarser than one cache line — typically 256 B to 2 KB —
so that a streaming access sequence dwells inside one DRAM row before
moving to the next channel.  Interleaving at line granularity (128 B)
would split every row across all channels and destroy the row-buffer
locality FR-FCFS depends on.

The map is bijective: ``(partition, local)`` identifies the global line,
and the *local* address is what both the L2 bank (tag/set) and the DRAM
controller operate on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["AddressMap"]


class AddressMap:
    """Partition interleaving at ``interleave_lines`` granularity.

    Args:
        num_partitions: Memory partitions (power of two).
        interleave_lines: Consecutive lines mapped to one partition
            before moving to the next (power of two).  16 lines = 2 KB,
            one DRAM row.
    """

    def __init__(self, num_partitions: int, interleave_lines: int = 16) -> None:
        if num_partitions < 1 or num_partitions & (num_partitions - 1):
            raise ValueError(
                f"partition count must be a power of two, got {num_partitions}"
            )
        if interleave_lines < 1 or interleave_lines & (interleave_lines - 1):
            raise ValueError(
                f"interleave granularity must be a power of two, got {interleave_lines}"
            )
        self.num_partitions = num_partitions
        self.interleave_lines = interleave_lines
        self._chunk_shift = interleave_lines.bit_length() - 1
        self._part_bits = num_partitions.bit_length() - 1
        self._part_mask = num_partitions - 1
        self._offset_mask = interleave_lines - 1
        # partition() runs once per memory transaction and is pure in the
        # chunk index, so its XOR-fold result is memoised per chunk.  The
        # working set of distinct chunks is bounded by the footprint
        # (one entry per 2 KB of touched address space by default).
        self._part_cache: dict = {}

    def _hash_hi(self, chunk_hi: int) -> int:
        """XOR-fold the upper chunk bits into a partition-width value.

        Hashing the partition index with higher address bits prevents
        *partition camping*: without it, a hot structure smaller than
        ``num_partitions`` chunks would pin all its traffic on a few
        partitions (GPUs have used exactly this kind of XOR hash since
        Fermi for the same reason).
        """
        if self._part_bits == 0:
            return 0
        h = 0
        x = chunk_hi
        while x:
            h ^= x & self._part_mask
            x >>= self._part_bits
        return h

    def partition(self, line_addr: int) -> int:
        """Memory partition (= L2 bank = MC) holding ``line_addr``."""
        chunk = line_addr >> self._chunk_shift
        part = self._part_cache.get(chunk)
        if part is None:
            part = (chunk ^ self._hash_hi(chunk >> self._part_bits)) & self._part_mask
            self._part_cache[chunk] = part
        return part

    def local(self, line_addr: int) -> int:
        """Partition-local line address (dense within the partition)."""
        chunk = line_addr >> (self._chunk_shift + self._part_bits)
        return (chunk << self._chunk_shift) | (line_addr & self._offset_mask)

    # ------------------------------------------------------------------
    # Vectorized mapping (fast-functional backend)
    # ------------------------------------------------------------------
    def partition_array(self, line_addrs) -> np.ndarray:
        """Vectorized :meth:`partition` over an array of line addresses.

        Bit-identical to the scalar path (same XOR-fold, no memoization
        needed — the fold is a handful of whole-array ops).
        """
        lines = np.asarray(line_addrs, dtype=np.int64)
        if self._part_bits == 0:
            return np.zeros(lines.shape, dtype=np.int64)
        chunk = lines >> self._chunk_shift
        h = np.zeros(lines.shape, dtype=np.int64)
        x = chunk >> self._part_bits
        while np.any(x != 0):
            h ^= x & self._part_mask
            x = x >> self._part_bits
        return (chunk ^ h) & self._part_mask

    def local_array(self, line_addrs) -> np.ndarray:
        """Vectorized :meth:`local` over an array of line addresses."""
        lines = np.asarray(line_addrs, dtype=np.int64)
        chunk = lines >> (self._chunk_shift + self._part_bits)
        return (chunk << self._chunk_shift) | (lines & self._offset_mask)

    def globalize(self, partition: int, local: int) -> int:
        """Inverse mapping (diagnostics and tests)."""
        chunk_hi = local >> self._chunk_shift
        offset = local & self._offset_mask
        low = (partition ^ self._hash_hi(chunk_hi)) & self._part_mask
        return (
            (chunk_hi << (self._chunk_shift + self._part_bits))
            | (low << self._chunk_shift)
            | offset
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<AddressMap {self.num_partitions} partitions x "
            f"{self.interleave_lines} lines>"
        )
