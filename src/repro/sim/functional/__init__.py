"""Vectorized fast-functional replay backend.

Processes whole coalesced address streams with NumPy over set-indexed
structure-of-arrays cache state (extending :class:`FlatTagStore`'s flat
layout with a dense tag plane for bulk probes).  Counters are pinned
bit-identical to the scalar :func:`repro.sim.replay.replay` oracle by
``tests/test_functional_equivalence.py``; a calibrated linear timing
estimator (:mod:`repro.sim.functional.estimator`) supplies cycle numbers
so speedup-style figures still render in ``fidelity="functional"`` runs.
"""

from repro.sim.functional.engine import (
    FunctionalEngine,
    FunctionalUnsupportedError,
    functional_replay,
)
from repro.sim.functional.estimator import TimingEstimator
from repro.sim.functional.streams import build_core_arrays

__all__ = [
    "FunctionalEngine",
    "FunctionalUnsupportedError",
    "functional_replay",
    "TimingEstimator",
    "build_core_arrays",
]
