"""Stream preparation: per-core transaction tuples -> column arrays.

The scalar oracle walks cores round-robin, dropping finished cores out of
the rotation, and increments a global transaction clock ``now`` before
each access.  That interleave is a pure function of the per-core stream
lengths, so every transaction's global ``now`` can be precomputed in
closed form:

    now[c][p] = 1 + sum_c' min(len_c', p) + |{c' < c : len_c' > p}|

(the accesses of earlier rounds, plus the cores ahead of ``c`` in round
``p``).  With ``now`` known up front, per-core runs of private-L1 hits
can be applied eagerly while shared-L2 events are globally ordered by a
heap keyed on ``now``.

Each column is materialized twice: as a NumPy array for the engine's
bulk hit probes, and as a plain Python list for its scalar event path
(element access on a list is several times cheaper than NumPy scalar
extraction, and events dominate on miss-heavy GPU streams).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.sim.addressing import AddressMap
from repro.sim.config import GPUConfig
from repro.sim.replay import Transaction

__all__ = ["CoreArrays", "build_core_arrays"]


class CoreArrays:
    """Column layout of one core's transaction stream."""

    __slots__ = (
        "n",
        "line",
        "write",
        "set1",
        "line_l",
        "write_l",
        "set1_l",
        "now_l",
        "part_l",
        "local_l",
        "set2_l",
    )

    def __init__(self, n: int) -> None:
        self.n = n
        # NumPy columns (probe path).
        self.line: np.ndarray
        self.write: np.ndarray
        self.set1: np.ndarray
        # Python-list columns (scalar event path).
        self.line_l: list
        self.write_l: list
        self.set1_l: list
        self.now_l: list
        self.part_l: Optional[list] = None
        self.local_l: Optional[list] = None
        self.set2_l: Optional[list] = None


def build_core_arrays(
    streams: List[List[Transaction]],
    config: GPUConfig,
    addr_map: Optional[AddressMap] = None,
    include_l2: bool = True,
    now_offset: int = 0,
) -> List[CoreArrays]:
    """Vectorize per-core streams and precompute global access times.

    ``now_offset`` continues the transaction clock across kernels in a
    sequence (the oracle restarts ``now`` per kernel; a warm-cache
    sequence run offsets it so fill-time tie-breaks stay monotonic).
    """
    lengths = np.array([len(s) for s in streams], dtype=np.int64)
    max_len = int(lengths.max()) if lengths.size else 0
    p = np.arange(max_len, dtype=np.int64)
    # base[p]: transactions issued by all cores in rounds before p.
    base = np.zeros(max_len, dtype=np.int64)
    for length in lengths:
        base += np.minimum(int(length), p)
    # rank[p]: cores ahead of the current one still live in round p
    # (built incrementally in core order).
    rank = np.zeros(max_len, dtype=np.int64)

    l1_mask = config.l1_sets - 1
    l2_mask = config.l2_bank_sets - 1
    if include_l2 and addr_map is None:
        addr_map = AddressMap(config.num_partitions, config.mc_interleave_lines)
    out: List[CoreArrays] = []
    for stream in streams:
        n = len(stream)
        arrays = CoreArrays(n)
        # Split the tuple stream into columns first: NumPy converts flat
        # int lists far faster than lists of tuples.
        line_l = [t[0] for t in stream]
        write_l = [t[1] for t in stream]
        arrays.line_l = line_l
        arrays.write_l = write_l
        arrays.line = np.array(line_l, dtype=np.int64)
        arrays.write = np.array(write_l, dtype=np.bool_)
        arrays.set1 = arrays.line & l1_mask
        arrays.set1_l = arrays.set1.tolist()
        arrays.now_l = (now_offset + 1 + base[:n] + rank[:n]).tolist()
        rank[:n] += 1
        if include_l2:
            arrays.part_l = addr_map.partition_array(arrays.line).tolist()
            local = addr_map.local_array(arrays.line)
            arrays.local_l = local.tolist()
            arrays.set2_l = (local & l2_mask).tolist()
        out.append(arrays)
    return out
