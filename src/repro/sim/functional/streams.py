"""Stream preparation: per-core transaction tuples -> column arrays.

The scalar oracle walks cores round-robin, dropping finished cores out of
the rotation, and increments a global transaction clock ``now`` before
each access.  That interleave is a pure function of the per-core stream
lengths, so every transaction's global ``now`` can be precomputed in
closed form:

    now[c][p] = 1 + sum_c' min(len_c', p) + |{c' < c : len_c' > p}|

(the accesses of earlier rounds, plus the cores ahead of ``c`` in round
``p``).  With ``now`` known up front, per-core runs of private-L1 work
can be applied eagerly while shared-L2 events are ordered by their
precomputed times.

Columns are built **lazily**: the engine's per-design replay paths touch
very different subsets (the scalar PDP event loop wants plain Python
lists and never a NumPy array; the fully decoupled burst path wants
NumPy columns and never most of the lists), so only ``line_l``/
``write_l`` (the tuple split every other column derives from) and the
closed-form ``now`` column are materialized up front.  Everything else
is built on first request by an ``ensure_*`` method and cached, so a
sweep sharing one :class:`CoreArrays` across many designs still pays
each conversion at most once.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.sim.addressing import AddressMap
from repro.sim.config import GPUConfig
from repro.sim.replay import Transaction

__all__ = ["CoreArrays", "build_core_arrays"]


class CoreArrays:
    """Column layout of one core's transaction stream.

    ``line_l``/``write_l`` (plain lists) and ``now`` (NumPy) are always
    present; every other column starts as ``None`` and is materialized
    by the matching ``ensure_*`` call.  The engine calls ``ensure_*``
    once per run for exactly the columns its replay path reads, then
    binds the plain attributes in its hot loops — lazy construction
    never adds per-access indirection.
    """

    __slots__ = (
        "n",
        # NumPy columns.
        "line",
        "write",
        "set1",
        "now",
        "part",
        "local",
        "set2",
        # Python-list columns (scalar paths; element access on a list is
        # several times cheaper than NumPy scalar extraction).
        "line_l",
        "write_l",
        "set1_l",
        "now_l",
        "part_l",
        "local_l",
        "set2_l",
        # Deferred-conversion inputs.
        "_l1_mask",
        "_l2_mask",
        "_addr_map",
    )

    def __init__(
        self,
        line_l: list,
        write_l: list,
        now: np.ndarray,
        l1_mask: int,
        l2_mask: int,
        addr_map: Optional[AddressMap],
    ) -> None:
        self.n = len(line_l)
        self.line_l = line_l
        self.write_l = write_l
        self.now = now
        self.line: Optional[np.ndarray] = None
        self.write: Optional[np.ndarray] = None
        self.set1: Optional[np.ndarray] = None
        self.part: Optional[np.ndarray] = None
        self.local: Optional[np.ndarray] = None
        self.set2: Optional[np.ndarray] = None
        self.set1_l: Optional[list] = None
        self.now_l: Optional[list] = None
        self.part_l: Optional[list] = None
        self.local_l: Optional[list] = None
        self.set2_l: Optional[list] = None
        self._l1_mask = l1_mask
        self._l2_mask = l2_mask
        self._addr_map = addr_map

    # ------------------------------------------------------------------
    # Lazy column builders (idempotent; each conversion happens once).
    # ------------------------------------------------------------------
    def _line_np(self) -> np.ndarray:
        if self.line is None:
            self.line = np.array(self.line_l, dtype=np.int64)
        return self.line

    def ensure_probe(self) -> None:
        """NumPy ``line``/``write``/``set1`` for the bulk L1 probes."""
        line = self._line_np()
        if self.write is None:
            self.write = np.array(self.write_l, dtype=np.bool_)
        if self.set1 is None:
            self.set1 = line & self._l1_mask

    def ensure_scalar_l1(self) -> None:
        """List ``set1_l`` for the scalar L1 walk/event paths."""
        if self.set1_l is None:
            if self.set1 is None:
                self.set1 = self._line_np() & self._l1_mask
            self.set1_l = self.set1.tolist()

    def ensure_times(self) -> None:
        """List ``now_l`` for event ordering (heap keys, store times)."""
        if self.now_l is None:
            self.now_l = self.now.tolist()

    def ensure_l2(self) -> None:
        """NumPy ``part``/``local``/``set2`` (L2 routing)."""
        if self.part is None:
            if self._addr_map is None:
                raise ValueError("stream was built with include_l2=False")
            line = self._line_np()
            self.part = self._addr_map.partition_array(line)
            self.local = self._addr_map.local_array(line)
            self.set2 = self.local & self._l2_mask

    def ensure_scalar_l2(self) -> None:
        """List ``part_l``/``local_l``/``set2_l`` for scalar L2 events."""
        if self.part_l is None:
            self.ensure_l2()
            self.part_l = self.part.tolist()
            self.local_l = self.local.tolist()
            self.set2_l = self.set2.tolist()


def build_core_arrays(
    streams: List[List[Transaction]],
    config: GPUConfig,
    addr_map: Optional[AddressMap] = None,
    include_l2: bool = True,
    now_offset: int = 0,
) -> List[CoreArrays]:
    """Vectorize per-core streams and precompute global access times.

    ``now_offset`` continues the transaction clock across kernels in a
    sequence (the oracle restarts ``now`` per kernel; a warm-cache
    sequence run offsets it so fill-time tie-breaks stay monotonic).
    """
    lengths = np.array([len(s) for s in streams], dtype=np.int64)
    max_len = int(lengths.max()) if lengths.size else 0
    p = np.arange(max_len, dtype=np.int64)
    # base[p]: transactions issued by all cores in rounds before p.
    base = np.zeros(max_len, dtype=np.int64)
    for length in lengths:
        base += np.minimum(int(length), p)
    # rank[p]: cores ahead of the current one still live in round p
    # (built incrementally in core order).
    rank = np.zeros(max_len, dtype=np.int64)

    l1_mask = config.l1_sets - 1
    l2_mask = config.l2_bank_sets - 1
    if include_l2 and addr_map is None:
        addr_map = AddressMap(config.num_partitions, config.mc_interleave_lines)
    if not include_l2:
        addr_map = None
    out: List[CoreArrays] = []
    for stream in streams:
        n = len(stream)
        # Split the tuple stream into columns first: NumPy converts flat
        # int lists far faster than lists of tuples.
        line_l = [t[0] for t in stream]
        write_l = [t[1] for t in stream]
        now = now_offset + 1 + base[:n] + rank[:n]
        rank[:n] += 1
        out.append(
            CoreArrays(line_l, write_l, now, l1_mask, l2_mask, addr_map)
        )
    return out
