"""Functional-backend models of the L1 management policies.

Each model replicates one :class:`ManagementPolicy`'s *counter-visible*
behaviour over the engine's structure-of-arrays L1 state.  Models are
parsed from a :class:`DesignSpec` by instantiating the real policy
objects and reading their configuration, so custom specs (small shutdown
intervals, short PDP epochs) drive the functional backend exactly like
the timing one.

A model is *batchable* when L1 load hits leave its decision state
untouched (no ``on_hit``/``on_miss`` hooks): runs of consecutive load
hits can then be fast-forwarded without consulting it.  The PDP family
mutates per-set clocks and samplers on every access and therefore runs
scalar, access by access.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.policies.base import NullManagementPolicy
from repro.cache.policies.dead_block import DeadBlockPolicy
from repro.cache.policies.pdp import (
    DynamicPDPPolicy,
    ReuseDistanceSampler,
    StaticPDPPolicy,
    optimal_pd,
)
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.rrip import SRRIPPolicy
from repro.core.gcache import GCachePolicy
from repro.sim.designs import DesignSpec

__all__ = [
    "FunctionalUnsupportedError",
    "ReplacementModel",
    "MgmtModel",
    "build_models",
]


class FunctionalUnsupportedError(NotImplementedError):
    """The design uses a policy the functional backend does not model."""


# ----------------------------------------------------------------------
# Replacement
# ----------------------------------------------------------------------
class ReplacementModel:
    """LRU or SRRIP over the engine's flat stamp/rrpv lists."""

    __slots__ = ("kind", "max_rrpv", "insertion_rrpv")

    def __init__(self, kind: str, max_rrpv: int = 0, insertion_rrpv: int = 0):
        self.kind = kind
        self.max_rrpv = max_rrpv
        self.insertion_rrpv = insertion_rrpv

    def new_core(self):
        # LRU carries one monotonically increasing stamp tick per cache.
        return [0]

    def on_hit(self, st, l1, idx: int) -> None:
        if self.kind == "lru":
            st[0] += 1
            l1.stamp[idx] = st[0]
        else:
            l1.rrpv[idx] = 0

    def on_fill(self, st, l1, idx: int) -> None:
        if self.kind == "lru":
            st[0] += 1
            l1.stamp[idx] = st[0]
        else:
            l1.rrpv[idx] = self.insertion_rrpv

    def on_hit_run(self, st, l1, slots: list) -> None:
        """Apply one core's run of consecutive load hits (slot order =
        access order, so with duplicate slots the last touch wins —
        exactly the oracle's per-access stamping)."""
        if self.kind == "lru":
            tick = st[0]
            stamp = l1.stamp
            for idx in slots:
                tick += 1
                stamp[idx] = tick
            st[0] = tick
        else:
            rrpv = l1.rrpv
            for idx in slots:
                rrpv[idx] = 0

    def select_victim(self, st, l1, base: int, top: int) -> int:
        if self.kind == "lru":
            seg = l1.stamp[base:top]
            return seg.index(min(seg))
        # SRRIP: bulk-age to max (no clamping happens pre-victim), victim
        # is the first line holding the pre-aging maximum.
        rrpv = l1.rrpv
        seg = rrpv[base:top]
        top_val = max(seg)
        if top_val < self.max_rrpv:
            delta = self.max_rrpv - top_val
            rrpv[base:top] = [v + delta for v in seg]
        return seg.index(top_val)


# ----------------------------------------------------------------------
# Management
# ----------------------------------------------------------------------
class MgmtModel:
    """Base (null) management model: always insert, no hooks."""

    batchable = True
    #: L1 accesses between periodic callbacks (0 = none); the engine owns
    #: the countdown and calls :meth:`on_tick_fire`.
    tick_interval = 0
    #: Declares that ``fill_decision(st, ..., hint=False, ...)`` returns
    #: False with **no side effects** whenever
    #: ``st.switches[set_index] == 0`` — the engine's event loops then
    #: skip the Python call on that (overwhelmingly common) path.
    fill_gate_switches = False
    #: Declares that ``on_insert`` with ``hint=False`` is a no-op, so
    #: the engine can skip the call for ordinary fills.
    insert_skip_cold = False

    def new_core(self, num_sets: int, ways: int):
        return None

    def on_tick_fire(self, st) -> None:  # pragma: no cover - no-tick models
        pass

    # Scalar hooks (mirror ManagementPolicy's call points).
    def on_hit(self, st, l1, set_index: int, idx: int, line: int, now: int):
        pass

    def on_miss(self, st, l1, set_index: int, now: int) -> None:
        pass

    def fill_decision(
        self, st, l1, set_index: int, line: int, hint: bool, now: int
    ) -> bool:
        """Return True to bypass the fill."""
        return False

    def on_bypass(self, st, l1, set_index: int, now: int) -> None:
        pass

    def choose_victim(self, st, l1, set_index: int, now: int) -> Optional[int]:
        return None

    def on_insert(self, st, l1, idx: int, hint: bool, now: int) -> None:
        pass

    def on_evict(self, st, l1, idx: int, now: int) -> None:
        pass


class _GCacheState:
    __slots__ = (
        "switches",
        "bypass_counters",
        "m",
        "epoch_fills",
        "epoch_hints",
        "epoch_bypasses",
    )

    def __init__(self, num_sets: int, initial_m: int) -> None:
        self.switches = bytearray(num_sets)
        self.bypass_counters = [0] * num_sets
        self.m = initial_m
        self.epoch_fills = 0
        self.epoch_hints = 0
        self.epoch_bypasses = 0


class GCacheModel(MgmtModel):
    """G-Cache bypass/insertion over flat RRPV lists (gc / gc-m)."""

    batchable = True

    def __init__(self, policy: GCachePolicy, max_rrpv: int) -> None:
        cfg = policy.config
        th_hot = cfg.th_hot if cfg.th_hot is not None else max_rrpv
        if th_hot > max_rrpv:
            raise ValueError(
                f"th_hot={th_hot} exceeds the replacement policy's "
                f"max RRPV {max_rrpv}"
            )
        self.th_hot = th_hot
        self.th_hot_victim = (
            min(cfg.th_hot_victim, th_hot)
            if cfg.th_hot_victim is not None
            else max(1, th_hot - 1)
        )
        self.hot_insert_rrpv = cfg.hot_insert_rrpv
        self.cold_insert_rrpv = cfg.cold_insert_rrpv
        self.tick_interval = cfg.shutdown_interval
        self.adaptive_aging = cfg.adaptive_aging
        self.initial_m = cfg.initial_m
        self.max_m = cfg.max_m
        self.aging_epoch = cfg.aging_epoch
        self.max_rrpv = max_rrpv
        # Fixed-M fill_decision with hint=False touches no state before
        # the switch test; the adaptive variant counts every fill.
        self.fill_gate_switches = not cfg.adaptive_aging
        self.insert_skip_cold = cfg.cold_insert_rrpv is None

    def new_core(self, num_sets: int, ways: int):
        return _GCacheState(num_sets, self.initial_m)

    def on_tick_fire(self, st) -> None:
        st.switches[:] = bytes(len(st.switches))

    def fill_decision(self, st, l1, set_index, line, hint, now) -> bool:
        # The epoch rates are only ever read by the adaptive-aging
        # update, so the fixed-M variant skips that accounting.
        if self.adaptive_aging:
            st.epoch_fills += 1
            if hint:
                st.epoch_hints += 1
                st.switches[set_index] = 1
            if st.epoch_fills >= self.aging_epoch:
                hint_rate = st.epoch_hints / st.epoch_fills
                bypass_rate = st.epoch_bypasses / st.epoch_fills
                if hint_rate > 0.25 and bypass_rate > 0.25:
                    st.m = min(self.max_m, st.m * 2)
                else:
                    st.m = max(1, st.m // 2)
                st.epoch_fills = 0
                st.epoch_hints = 0
                st.epoch_bypasses = 0
        elif hint:
            st.switches[set_index] = 1
        if not st.switches[set_index]:
            return False
        ways = l1.ways
        if l1.valid_count[set_index] < ways:
            return False
        threshold = self.th_hot_victim if hint else self.th_hot
        base = set_index * ways
        return max(l1.rrpv[base : base + ways]) < threshold

    def on_bypass(self, st, l1, set_index, now) -> None:
        if self.adaptive_aging:
            st.epoch_bypasses += 1
        st.bypass_counters[set_index] += 1
        if st.bypass_counters[set_index] < st.m:
            return
        st.bypass_counters[set_index] = 0
        # Bypass implies the set is full (all-hot test), so every slot is
        # valid: age the whole segment, saturating at max.
        max_rrpv = self.max_rrpv
        rrpv = l1.rrpv
        base = set_index * l1.ways
        top = base + l1.ways
        rrpv[base:top] = [
            v + 1 if v < max_rrpv else v for v in rrpv[base:top]
        ]

    def on_insert(self, st, l1, idx, hint, now) -> None:
        if hint:
            l1.rrpv[idx] = self.hot_insert_rrpv
        elif self.cold_insert_rrpv is not None:
            l1.rrpv[idx] = self.cold_insert_rrpv


class DeadBlockModel(MgmtModel):
    """Counter-based dead-block bypass (dbp)."""

    batchable = True

    def __init__(self, policy: DeadBlockPolicy) -> None:
        self.table_size = policy.table_size
        self.region_shift = policy.region_shift
        self.confidence = policy.confidence
        self.table_mask = policy.table_size - 1

    def new_core(self, num_sets: int, ways: int):
        return {}  # region index -> (predicted reuses, dead streak)

    def _index(self, line: int) -> int:
        # Kept as the hash's one readable definition; the hooks below
        # inline it (they run once per L1 miss, several probes each).
        region = line >> self.region_shift
        return (region ^ (region >> 7)) & self.table_mask

    def fill_decision(self, st, l1, set_index, line, hint, now) -> bool:
        region = line >> self.region_shift
        predicted, streak = st.get(
            (region ^ (region >> 7)) & self.table_mask, (1, 0)
        )
        return predicted == 0 and streak >= self.confidence

    def choose_victim(self, st, l1, set_index, now) -> Optional[int]:
        base = set_index * l1.ways
        tag = l1.tag
        use = l1.use
        shift = self.region_shift
        mask = self.table_mask
        get = st.get
        for way in range(l1.ways):
            region = tag[base + way] >> shift
            predicted, _ = get((region ^ (region >> 7)) & mask, (1, 0))
            if use[base + way] >= predicted > 0:
                return way
        return None

    def on_evict(self, st, l1, idx, now) -> None:
        region = l1.tag[idx] >> self.region_shift
        table_idx = (region ^ (region >> 7)) & self.table_mask
        _, streak = st.get(table_idx, (1, 0))
        use = l1.use[idx]
        st[table_idx] = (0, streak + 1) if use == 0 else (use, 0)


class _PDPState:
    __slots__ = (
        "ticks",
        "pd",
        "step",
        "initial_pdc",
        "sampler",
        "since_epoch",
    )

    def __init__(self, num_sets: int, sampler: Optional[ReuseDistanceSampler]):
        self.ticks = [0] * num_sets
        self.pd = 0
        self.step = 1
        self.initial_pdc = 0
        self.sampler = sampler
        self.since_epoch = 0


class PDPModel(MgmtModel):
    """Static/dynamic PDP (pdp-3, pdp-8, spdp-b).

    Not batchable: every access ticks the set clock (possibly decrementing
    the whole set's protection counters) and the dynamic variant feeds the
    reuse-distance sampler on hits.
    """

    batchable = False

    def __init__(self, policy: StaticPDPPolicy) -> None:
        self.counter_max = policy.counter_max
        self.bypass = policy.bypass
        self.dynamic = isinstance(policy, DynamicPDPPolicy)
        if self.dynamic:
            self.initial_pd = policy.pd
            self.fifo_depth = policy.fifo_depth
            self.rdd_size = policy.rdd_size
            self.epoch_accesses = policy.epoch_accesses
            self.max_pd = policy.max_pd
        else:
            self.initial_pd = policy.pd

    def new_core(self, num_sets: int, ways: int):
        sampler = None
        if self.dynamic:
            sampler = ReuseDistanceSampler(
                num_sets=num_sets,
                fifo_depth=self.fifo_depth,
                rdd_size=self.rdd_size,
            )
        st = _PDPState(num_sets, sampler)
        self._set_pd(st, self.initial_pd)
        return st

    def _set_pd(self, st: _PDPState, pd: int) -> None:
        st.pd = pd
        st.step = max(1, -(-pd // self.counter_max))
        st.initial_pdc = min(self.counter_max, -(-pd // st.step))

    def _tick_set(self, st: _PDPState, l1, set_index: int) -> None:
        st.ticks[set_index] += 1
        if st.ticks[set_index] % st.step != 0:
            return
        tag = l1.tag
        pd = l1.pd
        base = set_index * l1.ways
        for i in range(base, base + l1.ways):
            if tag[i] != -1 and pd[i] > 0:
                pd[i] -= 1

    def _observe(self, st: _PDPState, set_index: int, line: int) -> None:
        st.sampler.observe(set_index, line)
        st.since_epoch += 1
        if st.since_epoch >= self.epoch_accesses:
            st.since_epoch = 0
            new_pd = optimal_pd(st.sampler.rdd, st.sampler.total, self.max_pd)
            st.sampler.decay()
            self._set_pd(st, new_pd)

    def on_hit(self, st, l1, set_index, idx, line, now) -> None:
        if self.dynamic:
            self._observe(st, set_index, line)
        self._tick_set(st, l1, set_index)
        l1.pd[idx] = st.initial_pdc

    def on_miss(self, st, l1, set_index, now) -> None:
        self._tick_set(st, l1, set_index)

    def _unprotected_way(self, st, l1, set_index: int) -> Optional[int]:
        base = set_index * l1.ways
        tag = l1.tag
        pd = l1.pd
        fill_time = l1.fill_time
        best = None
        best_ft = None
        for way in range(l1.ways):
            i = base + way
            if tag[i] == -1:
                return way
            if pd[i] == 0 and (best is None or fill_time[i] < best_ft):
                best = way
                best_ft = fill_time[i]
        return best

    def fill_decision(self, st, l1, set_index, line, hint, now) -> bool:
        if self.dynamic:
            self._observe(st, set_index, line)
        if not self.bypass:
            return False
        return self._unprotected_way(st, l1, set_index) is None

    def choose_victim(self, st, l1, set_index, now) -> Optional[int]:
        way = self._unprotected_way(st, l1, set_index)
        if way is not None:
            return way
        # Reachable only with bypass disabled: evict the smallest PDC.
        base = set_index * l1.ways
        return min(range(l1.ways), key=lambda w: l1.pd[base + w])

    def on_insert(self, st, l1, idx, hint, now) -> None:
        l1.pd[idx] = st.initial_pdc


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
def build_models(design: DesignSpec) -> tuple:
    """Derive (ReplacementModel, MgmtModel) from a design's factories."""
    repl = design.make_l1_replacement()
    if type(repl) is LRUPolicy:
        repl_model = ReplacementModel("lru")
    elif type(repl) is SRRIPPolicy:
        repl_model = ReplacementModel(
            "srrip", max_rrpv=repl.max_rrpv, insertion_rrpv=repl.insertion_rrpv
        )
    else:
        raise FunctionalUnsupportedError(
            f"functional backend does not model replacement policy "
            f"{type(repl).__name__} (design {design.key!r})"
        )

    mgmt = design.make_l1_mgmt()
    if isinstance(mgmt, NullManagementPolicy):
        mgmt_model: MgmtModel = MgmtModel()
    elif isinstance(mgmt, GCachePolicy):
        if repl_model.kind != "srrip":
            raise FunctionalUnsupportedError(
                "G-Cache requires an RRIP-family replacement policy"
            )
        mgmt_model = GCacheModel(mgmt, repl_model.max_rrpv)
    elif isinstance(mgmt, DeadBlockPolicy):
        mgmt_model = DeadBlockModel(mgmt)
    elif isinstance(mgmt, StaticPDPPolicy):
        # DynamicPDPPolicy subclasses StaticPDPPolicy; PDPModel handles both.
        mgmt_model = PDPModel(mgmt)
    else:
        raise FunctionalUnsupportedError(
            f"functional backend does not model management policy "
            f"{type(mgmt).__name__} (design {design.key!r})"
        )
    return repl_model, mgmt_model
