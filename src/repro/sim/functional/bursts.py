"""Batched per-set burst processing for the functional backend.

The scalar oracle orders every shared-L2 access through one global
clock, but the only ordering that is *observable* in the counters is the
per-(bank, set) ordering: all L2 state (tags, recency stamps, dirty
bits, use counts, victim bits) is per-set, and the bank-wide recency
tick only ever feeds ``stamp.index(min(stamp))`` **within one set**, so
any per-set monotone clock selects the same victims.  Designs that
never raise victim-bit hints (no cross-core feedback into L1 decisions)
can therefore replay their whole L2 event stream *grouped by (bank,
set)* instead of interleaved.

This module implements that replay as **rounds over a CSR grouping**:
events are sorted by ``(group, time)``; round ``r`` processes the
``r``-th event of every still-active group at once.  Each group
contributes at most one event per round, so every gather/scatter in the
round body is conflict-free and the tag compare, hit classification,
victim selection (arg-min recency stamp) and fill updates all vectorize
across groups.  When the number of active groups drops below a
threshold (a few long, skewed groups — e.g. a set-conflict storm), the
remaining events finish in a tight per-group scalar loop, so wall-clock
never degrades to one vector op per event.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["csr_group", "l1_burst", "l2_burst"]

#: Below this many active groups a vectorized round costs more than the
#: per-group scalar tail; measured crossover is ~20-40 on CPython 3.12.
_TAIL_THRESHOLD = 24


def csr_group(
    group: np.ndarray, time: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Sort events by ``(group, time)`` and find group extents.

    Returns ``(perm, gids, starts, counts)`` with groups ordered by
    descending event count, so round ``r`` always touches a prefix of
    the group list.
    """
    perm = np.lexsort((time, group))
    g = group[perm]
    starts = np.flatnonzero(np.r_[True, g[1:] != g[:-1]])
    counts = np.diff(np.r_[starts, g.size])
    order = np.argsort(-counts, kind="stable")
    return perm, g[starts][order], starts[order], counts[order]


def l1_burst(
    l1s: List,
    num_sets: int,
    kind: str,
    max_rrpv: int,
    insertion_rrpv: int,
    repl_st: List,
    group: np.ndarray,
    line: np.ndarray,
    write: np.ndarray,
    reuse,
    tail_threshold: int = _TAIL_THRESHOLD,
) -> Tuple[int, int, int, int, int, int, np.ndarray]:
    """Replay every core's whole L1 stream grouped by (core, set).

    Only valid for **null-management** designs (no fill/evict/insert
    hooks, no tick): L1 state is then core-private and every decision —
    hit classification, LRU/SRRIP victim selection, insertion — is a
    pure per-(core, set) function, so the per-set ordering argument that
    justifies :func:`l2_burst` applies verbatim with "set" meaning
    "(core, set)".  LRU stamps use a per-group clock (only within-set
    stamp order is observable; each core's shared counter ``repl_st`` is
    re-seeded to its resident maximum afterwards so later scalar kernels
    stay monotone).

    ``group`` is ``core * num_sets + l1_set`` over the cores'
    concatenated streams; ``line``/``write`` are the matching columns.
    L1 is write-through no-allocate: store hits restamp like load hits,
    store misses touch nothing.  Returns ``(loads, load_hits, stores,
    store_hits, fills, evictions, events)`` where ``events`` holds the
    concatenated-stream positions of every L2 event (all stores + all
    load misses), unordered.
    """
    n_ev = int(group.size)
    if not n_ev:
        return 0, 0, 0, 0, 0, 0, np.empty(0, dtype=np.int64)
    stores = int(np.count_nonzero(write))
    loads = n_ev - stores
    lru = kind == "lru"
    C = len(l1s)
    ways = l1s[0].ways
    n_rows = C * num_sets
    tag2d = np.concatenate([l1.tag_np for l1 in l1s]).reshape(n_rows, ways)
    use2d = np.array([l1.use for l1 in l1s], dtype=np.int64).reshape(
        n_rows, ways
    )
    vc = np.array(
        [l1.valid_count for l1 in l1s], dtype=np.int64
    ).reshape(n_rows)
    if lru:
        stamp2d = np.array(
            [l1.stamp for l1 in l1s], dtype=np.int64
        ).reshape(n_rows, ways)
        tick = stamp2d.max(axis=1)
        rrpv2d = None
    else:
        rrpv2d = np.array(
            [l1.rrpv for l1 in l1s], dtype=np.int64
        ).reshape(n_rows, ways)
        stamp2d = tick = None

    perm, gids, starts, counts = csr_group(
        group, np.arange(n_ev, dtype=np.int64)
    )
    ln = line[perm]
    wr = write[perm]

    # Flat views over the same buffers: one `row*ways + way` index per
    # scatter beats NumPy's 2-array fancy indexing in the round loop.
    tag1 = tag2d.reshape(-1)
    use1 = use2d.reshape(-1)
    stamp1 = stamp2d.reshape(-1) if lru else None
    rrpv1 = rrpv2d.reshape(-1) if not lru else None

    load_hits = store_hits = fills = evictions = 0
    miss_pos: List[np.ndarray] = []
    evict_use: List[np.ndarray] = []
    counts_asc = np.sort(counts)
    n_groups = counts.size
    max_rounds = int(counts[0])
    searchsorted = np.searchsorted

    r = 0
    while r < max_rounds:
        k = n_groups - int(searchsorted(counts_asc, r, side="right"))
        if k < tail_threshold:
            break
        rows = gids[:k]
        base = rows * ways
        idx = starts[:k] + r
        lv = ln[idx]
        w = wr[idx]
        t = tag2d[rows]
        eq = t == lv[:, None]
        hitm = eq.any(axis=1)
        way = eq.argmax(axis=1)
        if lru:
            tk = tick[rows] + 1
            tick[rows] = tk
        hflat = base[hitm] + way[hitm]
        if hflat.size:
            use1[hflat] += 1
            if lru:
                stamp1[hflat] = tk[hitm]
            else:
                rrpv1[hflat] = 0
            hw = w[hitm]
            sh = int(np.count_nonzero(hw))
            store_hits += sh
            load_hits += hflat.size - sh
        # Load misses fill; store misses touch nothing (no-allocate).
        fm = ~(hitm | w)
        frows = rows[fm]
        if frows.size:
            miss_pos.append(perm[idx[fm]])
            fvc = vc[frows]
            cold = fvc < ways
            wayf = fvc.copy()
            evm = ~cold
            if evm.any():
                erows = frows[evm]
                if lru:
                    vway = stamp2d[erows].argmin(axis=1)
                else:
                    sub = rrpv2d[erows]
                    mx = sub.max(axis=1)
                    vway = sub.argmax(axis=1)
                    # Bulk-age every line to max; the victim slot is
                    # overwritten by the insertion value below.
                    rrpv2d[erows] += (max_rrpv - mx)[:, None]
                wayf[evm] = vway
                evictions += erows.size
                evict_use.append(use1[erows * ways + vway].copy())
            if cold.any():
                vc[frows[cold]] += 1
            fflat = base[fm] + wayf
            tag1[fflat] = lv[fm]
            use1[fflat] = 0
            if lru:
                stamp1[fflat] = tk[fm]
            else:
                rrpv1[fflat] = insertion_rrpv
            fills += frows.size
        r += 1

    # Scalar tail for the few groups still active (set-conflict storms).
    if r < max_rounds:
        k = n_groups - int(searchsorted(counts_asc, r, side="right"))
        tail_use: List[int] = []
        tail_miss: List[int] = []
        perm_l = None
        for j in range(k):
            gid = int(gids[j])
            lo = int(starts[j]) + r
            hi = int(starts[j]) + int(counts[j])
            seg = tag2d[gid].tolist()
            us = use2d[gid].tolist()
            vcg = int(vc[gid])
            if lru:
                stp = stamp2d[gid].tolist()
                tkg = int(tick[gid])
            else:
                rv = rrpv2d[gid].tolist()
            if perm_l is None:
                perm_l = perm.tolist()
            loc_l = ln[lo:hi].tolist()
            wr_l = wr[lo:hi].tolist()
            for o, (lvv, ww) in enumerate(zip(loc_l, wr_l)):
                if lru:
                    tkg += 1
                if lvv in seg:
                    i = seg.index(lvv)
                    us[i] += 1
                    if lru:
                        stp[i] = tkg
                    else:
                        rv[i] = 0
                    if ww:
                        store_hits += 1
                    else:
                        load_hits += 1
                elif not ww:
                    tail_miss.append(perm_l[lo + o])
                    if vcg < ways:
                        i = vcg
                        vcg += 1
                    else:
                        if lru:
                            i = stp.index(min(stp))
                        else:
                            top_val = max(rv)
                            i = rv.index(top_val)
                            if top_val < max_rrpv:
                                delta = max_rrpv - top_val
                                rv = [v + delta for v in rv]
                        evictions += 1
                        tail_use.append(us[i])
                    seg[i] = lvv
                    us[i] = 0
                    if lru:
                        stp[i] = tkg
                    else:
                        rv[i] = insertion_rrpv
                    fills += 1
            tag2d[gid] = seg
            use2d[gid] = us
            vc[gid] = vcg
            if lru:
                stamp2d[gid] = stp
                tick[gid] = tkg
            else:
                rrpv2d[gid] = rv
        for u in tail_use:
            reuse[u] += 1
        if tail_miss:
            miss_pos.append(np.array(tail_miss, dtype=np.int64))

    if evict_use:
        vals, cnts = np.unique(np.concatenate(evict_use), return_counts=True)
        for v, cnt in zip(vals.tolist(), cnts.tolist()):
            reuse[v] += cnt

    # Write state back per core.  `tag_np` is assigned in place so the
    # engine's `tag2d` per-set view over the same buffer stays valid.
    tagf = tag2d.reshape(C, num_sets * ways)
    usef = use2d.reshape(C, num_sets * ways)
    vcf = vc.reshape(C, num_sets)
    if lru:
        stampf = stamp2d.reshape(C, num_sets * ways)
        tickf = tick.reshape(C, num_sets)
    else:
        rrpvf = rrpv2d.reshape(C, num_sets * ways)
    for c, l1 in enumerate(l1s):
        l1.tag = tagf[c].tolist()
        l1.tag_np[:] = tagf[c]
        l1.use = usef[c].tolist()
        l1.valid_count = vcf[c].tolist()
        if lru:
            l1.stamp = stampf[c].tolist()
            repl_st[c][0] = int(tickf[c].max())
        else:
            l1.rrpv = rrpvf[c].tolist()

    if miss_pos:
        events = np.concatenate(
            [np.flatnonzero(write)] + miss_pos
        )
    else:
        events = np.flatnonzero(write)
    return loads, load_hits, stores, store_hits, fills, evictions, events


def l2_burst(
    banks: List,
    num_sets: int,
    now: np.ndarray,
    part: np.ndarray,
    local: np.ndarray,
    set2: np.ndarray,
    write: np.ndarray,
    reuse,
    tail_threshold: int = _TAIL_THRESHOLD,
) -> Tuple[int, int, int, int, int, int, int]:
    """Replay all L2 events grouped by (bank, set), vectorized.

    ``banks`` are the engine's ``_L2Bank`` objects; their list state is
    loaded into stacked arrays, mutated in rounds, and written back, so
    callers (and :meth:`FunctionalEngine.result`) keep seeing the plain
    lists.  Eviction-time reuse generations are merged into ``reuse``
    (a ``Counter``).  Returns ``(loads, stores, load_hits, store_hits,
    fills, evictions, writebacks)``.

    Only valid for designs without victim-bit hints: per-(bank, set)
    event order is then equivalent to the oracle's global order (see the
    module docstring), and ``vb`` state stays identically zero.
    """
    n_ev = int(now.size)
    stores = int(np.count_nonzero(write)) if n_ev else 0
    loads = n_ev - stores
    if not n_ev:
        return 0, 0, 0, 0, 0, 0, 0
    P = len(banks)
    ways = banks[0].ways
    # ------------------------------------------------------------------
    # Load bank state into stacked (bank*set, way) planes.
    # ------------------------------------------------------------------
    tag2d = np.array([b.tag for b in banks], dtype=np.int64).reshape(
        P * num_sets, ways
    )
    stamp2d = np.array([b.stamp for b in banks], dtype=np.int64).reshape(
        P * num_sets, ways
    )
    use2d = np.array([b.use for b in banks], dtype=np.int64).reshape(
        P * num_sets, ways
    )
    dirty2d = np.frombuffer(
        b"".join(bytes(b.dirty) for b in banks), dtype=np.uint8
    ).reshape(P * num_sets, ways).copy()
    vc = np.array(
        [b.valid_count for b in banks], dtype=np.int64
    ).reshape(P * num_sets)
    # Per-group recency clock.  The oracle's clock is bank-wide, but only
    # within-set stamp *order* is observable; seeding from the resident
    # maximum keeps warm-engine stamps monotone.
    tick = stamp2d.max(axis=1)

    perm, gids, starts, counts = csr_group(part * num_sets + set2, now)
    loc = local[perm]
    wr = write[perm]

    # Flat views over the same buffers: one `row*ways + way` index per
    # scatter beats NumPy's 2-array fancy indexing in the round loop.
    tag1 = tag2d.reshape(-1)
    stamp1 = stamp2d.reshape(-1)
    use1 = use2d.reshape(-1)
    dirty1 = dirty2d.reshape(-1)

    load_hits = store_hits = fills = evictions = writebacks = 0
    evict_use: List[np.ndarray] = []
    counts_asc = np.sort(counts)
    n_groups = counts.size
    max_rounds = int(counts[0])
    searchsorted = np.searchsorted

    r = 0
    while r < max_rounds:
        k = n_groups - int(searchsorted(counts_asc, r, side="right"))
        if k < tail_threshold:
            break
        rows = gids[:k]
        base = rows * ways
        idx = starts[:k] + r
        lv = loc[idx]
        w = wr[idx]
        t = tag2d[rows]
        eq = t == lv[:, None]
        hitm = eq.any(axis=1)
        way = eq.argmax(axis=1)
        tk = tick[rows] + 1
        tick[rows] = tk
        # Hits: bump use, restamp, dirty on store hits.
        hflat = base[hitm] + way[hitm]
        if hflat.size:
            use1[hflat] += 1
            stamp1[hflat] = tk[hitm]
            hw = w[hitm]
            sh = int(np.count_nonzero(hw))
            store_hits += sh
            load_hits += hflat.size - sh
            if sh:
                dirty1[hflat[hw]] = 1
        # Misses: fill into the cold prefix or the min-stamp victim.
        mm = ~hitm
        mrows = rows[mm]
        if mrows.size:
            mvc = vc[mrows]
            cold = mvc < ways
            wayf = mvc.copy()
            ev = ~cold
            if ev.any():
                erows = mrows[ev]
                vway = stamp2d[erows].argmin(axis=1)
                wayf[ev] = vway
                eflat = erows * ways + vway
                evictions += erows.size
                writebacks += int(dirty1[eflat].sum())
                evict_use.append(use1[eflat].copy())
            if cold.any():
                crows = mrows[cold]
                vc[crows] += 1
            mflat = base[mm] + wayf
            tag1[mflat] = lv[mm]
            dirty1[mflat] = w[mm]
            use1[mflat] = 0
            stamp1[mflat] = tk[mm]
            fills += mrows.size
        r += 1

    # ------------------------------------------------------------------
    # Scalar tail: the few groups still active after round r finish in
    # per-group scalar loops over plain lists (set-conflict storms land
    # here instead of degrading the round loop to one event per op).
    # ------------------------------------------------------------------
    if r < max_rounds:
        k = n_groups - int(searchsorted(counts_asc, r, side="right"))
        tail_use: List[int] = []
        for j in range(k):
            gid = int(gids[j])
            lo = int(starts[j]) + r
            hi = int(starts[j]) + int(counts[j])
            seg = tag2d[gid].tolist()
            stp = stamp2d[gid].tolist()
            us = use2d[gid].tolist()
            dt = dirty2d[gid].tolist()
            vcg = int(vc[gid])
            tkg = int(tick[gid])
            loc_l = loc[lo:hi].tolist()
            wr_l = wr[lo:hi].tolist()
            for lvv, ww in zip(loc_l, wr_l):
                tkg += 1
                if lvv in seg:
                    i = seg.index(lvv)
                    us[i] += 1
                    stp[i] = tkg
                    if ww:
                        store_hits += 1
                        dt[i] = 1
                    else:
                        load_hits += 1
                else:
                    if vcg < ways:
                        i = vcg
                        vcg += 1
                    else:
                        i = stp.index(min(stp))
                        evictions += 1
                        if dt[i]:
                            writebacks += 1
                        tail_use.append(us[i])
                    seg[i] = lvv
                    dt[i] = 1 if ww else 0
                    us[i] = 0
                    stp[i] = tkg
                    fills += 1
            tag2d[gid] = seg
            stamp2d[gid] = stp
            use2d[gid] = us
            dirty2d[gid] = dt
            vc[gid] = vcg
            tick[gid] = tkg
        for u in tail_use:
            reuse[u] += 1

    if evict_use:
        vals, cnts = np.unique(np.concatenate(evict_use), return_counts=True)
        for v, cnt in zip(vals.tolist(), cnts.tolist()):
            reuse[v] += cnt

    # ------------------------------------------------------------------
    # Write state back to the banks' plain lists.
    # ------------------------------------------------------------------
    tagf = tag2d.reshape(P, num_sets * ways)
    stampf = stamp2d.reshape(P, num_sets * ways)
    usef = use2d.reshape(P, num_sets * ways)
    dirtyf = dirty2d.reshape(P, num_sets * ways)
    vcf = vc.reshape(P, num_sets)
    tickf = tick.reshape(P, num_sets)
    for b, bank in enumerate(banks):
        bank.tag = tagf[b].tolist()
        bank.stamp = stampf[b].tolist()
        bank.use = usef[b].tolist()
        bank.dirty = bytearray(dirtyf[b].tobytes())
        bank.valid_count = vcf[b].tolist()
        bank.tick = int(tickf[b].max())
    return loads, stores, load_hits, store_hits, fills, evictions, writebacks
