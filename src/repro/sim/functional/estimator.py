"""Calibrated linear timing estimator for functional-fidelity runs.

The functional backend produces exact cache counters but no cycle count.
Speedup-style figures (IPC ratios) still need one, so this module fits a
small linear model

    cycles ~= c0 + c1*instr + c2*l1_misses + c3*l2_misses + c4*writebacks

with every feature normalized per core.  The default coefficients are
derived from the configuration's latency parameters (issue throughput of
one instruction per core-cycle, L1 misses serviced at the L2 round-trip
over a memory-level-parallelism factor, L2 misses adding a DRAM
round-trip); :meth:`fit` replaces them with a least-squares fit against
paired timing runs when calibration data is available.

Estimated cycles are *estimates*: they track trends (which design is
faster, how much a sweep moves IPC) but are not bit-comparable to the
timing engine.  Functional-fidelity results are tagged
``extras["fidelity"] = "functional"`` so downstream consumers can tell.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.config import GPUConfig

__all__ = ["TimingEstimator"]

#: Overlapping-miss factor: a GPU core hides most of a miss's latency
#: behind other warps; only 1/MLP of the service latency is exposed.
_MLP = 8.0

#: Approximate DRAM service latency on top of an L2 hit, in core cycles
#: (GDDR5 CL+tRCD+transfer at the paper's clocks lands near this).
_DRAM_EXTRA = 220.0


class TimingEstimator:
    """Linear cycle model over per-core-normalized counters.

    Args:
        config: Configuration whose latency parameters seed the default
            coefficients.
        coefficients: Explicit ``(c0, c1, c2, c3, c4)`` override
            (intercept, instructions, L1 misses, L2 misses, writebacks).
    """

    FEATURE_NAMES = ("instructions", "l1_misses", "l2_misses", "l2_writebacks")

    def __init__(
        self,
        config: Optional[GPUConfig] = None,
        coefficients: Optional[Sequence[float]] = None,
    ) -> None:
        self.config = config if config is not None else GPUConfig()
        if coefficients is None:
            coefficients = (
                0.0,
                1.0,
                float(self.config.l2_hit_latency) / _MLP,
                _DRAM_EXTRA / _MLP,
                _DRAM_EXTRA / (2.0 * _MLP),
            )
        self.coefficients = tuple(float(c) for c in coefficients)
        self.calibrated = False

    # ------------------------------------------------------------------
    def features(
        self, instructions: int, l1_stats, l2_stats
    ) -> Tuple[float, float, float, float]:
        """Per-core-normalized feature vector for one run."""
        n = max(1, self.config.num_cores)
        return (
            instructions / n,
            l1_stats.misses / n,
            l2_stats.misses / n,
            l2_stats.writebacks / n,
        )

    def estimate(self, instructions: int, l1_stats, l2_stats) -> int:
        """Estimated cycle count (always >= 1 for a non-empty run)."""
        x = self.features(instructions, l1_stats, l2_stats)
        c = self.coefficients
        cycles = c[0] + sum(ci * xi for ci, xi in zip(c[1:], x))
        return max(1, int(round(cycles)))

    def estimate_load_latency(self, l1_stats, l2_stats) -> float:
        """Mean core-observed load latency under the same latency model."""
        loads = l1_stats.loads
        if not loads:
            return 0.0
        l1_misses = loads - l1_stats.load_hits
        l2_misses = max(0, l2_stats.loads - l2_stats.load_hits)
        cfg = self.config
        total = (
            l1_stats.load_hits * cfg.l1_hit_latency
            + l1_misses * cfg.l2_hit_latency
            + l2_misses * _DRAM_EXTRA
        )
        return total / loads

    # ------------------------------------------------------------------
    def fit(
        self,
        feature_rows: Sequence[Sequence[float]],
        cycles: Sequence[float],
    ) -> "TimingEstimator":
        """Least-squares calibration against observed timing runs.

        ``feature_rows`` holds :meth:`features` vectors; ``cycles`` the
        matching timing-engine cycle counts.  With fewer samples than
        coefficients the fit is the minimum-norm solution — usable, but
        calibrate on at least a handful of diverse runs.
        """
        rows = np.asarray(feature_rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[1] != len(self.FEATURE_NAMES):
            raise ValueError(
                f"expected Nx{len(self.FEATURE_NAMES)} feature matrix, "
                f"got shape {rows.shape}"
            )
        y = np.asarray(cycles, dtype=np.float64)
        if y.shape != (rows.shape[0],):
            raise ValueError("cycles length must match feature rows")
        design_matrix = np.hstack([np.ones((rows.shape[0], 1)), rows])
        coef, *_ = np.linalg.lstsq(design_matrix, y, rcond=None)
        self.coefficients = tuple(float(c) for c in coef)
        self.calibrated = True
        return self

    def calibrate_on(self, samples: Sequence[Tuple[int, object, object, float]]):
        """Convenience: fit from ``(instructions, l1, l2, cycles)`` tuples."""
        rows: List[Tuple[float, ...]] = []
        y: List[float] = []
        for instructions, l1_stats, l2_stats, observed in samples:
            rows.append(self.features(instructions, l1_stats, l2_stats))
            y.append(float(observed))
        return self.fit(rows, y)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tag = "calibrated" if self.calibrated else "default"
        return f"<TimingEstimator {tag} c={self.coefficients}>"
