"""The vectorized functional replay engine.

Bit-identical (by contract and by ``tests/test_functional_equivalence.py``)
to the scalar oracle :func:`repro.sim.replay.replay`, at a fraction of the
cost.  The speed comes from four observations about the oracle:

1. Its global interleave is a pure function of the per-core stream
   lengths, so every transaction's global time is precomputed up front
   (:mod:`repro.sim.functional.streams`).
2. L1 state is core-private, and for the batchable designs (bs, bs-s,
   gc, gc-m, dbp) neither load hits **nor stores** touch any bypass
   decision state (L1 is write-through no-allocate: store misses leave
   L1 untouched, store hits restamp exactly like load hits).  Runs of
   hits and stores are therefore applied eagerly per core — walked
   scalar over plain-list state, escalating to chunked NumPy probes
   once a run proves long — without consulting the global order.
3. The only globally-ordered state is the shared L2 (tags, recency,
   dirty bits, victim bits), and it is all **per-(bank, set)**: the
   observable order is per-set order, not global order.  Designs that
   never feed L2 state back into L1 decisions (no victim-bit hints:
   bs, bs-s, dbp) replay L1 to completion per core, then apply the
   entire L2 event stream as batched per-set bursts with vectorized
   victim selection (:mod:`repro.sim.functional.bursts`) — no heap at
   all.
4. The hint-coupled G-Cache designs (gc, gc-m) must resolve each load
   miss in order (the hint changes the fill, which changes the core's
   future hits), so their load misses still drain through a min-heap —
   but *only* load misses: stores are folded into the per-core runs and
   their L2 effects parked in per-(bank, set) buffers, flushed in time
   order just before the next same-set miss.  A store's time is always
   below every parked miss time when its core walks past it, so the
   deferral never reorders observable same-set state.

The PDP designs mutate per-set clocks and samplers on every access, so
they run through the generic event loop with batching disabled (every
access is an event); their win comes only from the precomputed streams.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from collections import Counter
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim.addressing import AddressMap
from repro.sim.config import GPUConfig
from repro.sim.designs import DesignSpec, make_design
from repro.sim.functional.bursts import l1_burst, l2_burst
from repro.sim.functional.policies import (
    FunctionalUnsupportedError,
    MgmtModel,
    build_models,
)
from repro.sim.functional.streams import build_core_arrays
from repro.sim.replay import ReplayResult, build_core_streams
from repro.stats.counters import CacheStats
from repro.trace.trace import KernelTrace

__all__ = ["FunctionalEngine", "FunctionalUnsupportedError", "functional_replay"]

#: Consecutive non-miss accesses walked scalar before escalating to
#: NumPy probes.
_PROBE_THRESHOLD = 32
_MIN_CHUNK = 16
_MAX_CHUNK = 4096


class _L1State:
    """Structure-of-arrays L1 mirror (FlatTagStore's flat layout).

    Hot state lives in plain Python lists — scalar element access on a
    list is several times cheaper than NumPy item extraction, and the
    event path is scalar.  ``tag`` alone is mirrored into a dense NumPy
    plane (``tag_np`` flat / ``tag2d`` per-set view of the same buffer)
    for the bulk hit probes; the mirror is refreshed on fill only.
    """

    __slots__ = (
        "num_sets",
        "ways",
        "tag",
        "tag_np",
        "tag2d",
        "stamp",
        "rrpv",
        "use",
        "fill_time",
        "pd",
        "valid_count",
    )

    def __init__(self, num_sets: int, ways: int) -> None:
        n = num_sets * ways
        self.num_sets = num_sets
        self.ways = ways
        self.tag = [-1] * n
        self.tag_np = np.full(n, -1, dtype=np.int64)
        self.tag2d = self.tag_np.reshape(num_sets, ways)
        self.stamp = [0] * n
        self.rrpv = [0] * n
        self.use = [0] * n
        self.fill_time = [0] * n
        self.pd = [0] * n
        self.valid_count = [0] * num_sets


class _L2Bank:
    """One L2 bank: scalar-only state (plain Python lists)."""

    __slots__ = (
        "ways",
        "tag",
        "stamp",
        "dirty",
        "use",
        "vb",
        "valid_count",
        "tick",
    )

    def __init__(self, num_sets: int, ways: int) -> None:
        n = num_sets * ways
        self.ways = ways
        self.tag = [-1] * n
        self.stamp = [0] * n
        self.dirty = bytearray(n)
        self.use = [0] * n
        self.vb = [0] * n
        self.valid_count = [0] * num_sets
        self.tick = 0


class FunctionalEngine:
    """Replays kernel traces through structure-of-arrays cache state.

    Persistent across :meth:`run` calls, so a warm-cache kernel sequence
    behaves like the oracle driven over the same cache objects.  Call
    :meth:`result` to snapshot merged statistics (resident generations
    are counted into the snapshot without disturbing live state, so the
    engine can keep running afterwards).

    With ``profile=True`` the engine accumulates a wall-clock breakdown
    in :attr:`phase_seconds` — ``"burst"`` (vectorized per-set L2
    rounds), ``"probe"`` (chunked NumPy L1 probes) and
    ``"scalar_event"`` (everything scalar: walks, heap events, store
    flushes) — so the remaining scalar residue is measurable.
    """

    def __init__(
        self,
        config: Optional[GPUConfig] = None,
        design: Optional[DesignSpec] = None,
        include_l2: bool = True,
        victim_share_factor: int = 1,
        scheduler: str = "lrr",
        profile: bool = False,
    ) -> None:
        self.config = config if config is not None else GPUConfig()
        self.design = design if design is not None else make_design("bs")
        self.include_l2 = include_l2
        self.scheduler = scheduler
        self.repl, self.mgmt = build_models(self.design)
        self._batchable = self.mgmt.batchable
        self._lru = self.repl.kind == "lru"
        # Which hooks the model actually overrides; the event loop skips
        # the Python call entirely for base-class no-ops.
        mgmt_cls = type(self.mgmt)
        self._null_mgmt = mgmt_cls is MgmtModel
        self._has_choose = mgmt_cls.choose_victim is not MgmtModel.choose_victim
        self._has_evict = mgmt_cls.on_evict is not MgmtModel.on_evict
        self._has_insert = mgmt_cls.on_insert is not MgmtModel.on_insert
        cfg = self.config
        self.l1 = [
            _L1State(cfg.l1_sets, cfg.l1_ways) for _ in range(cfg.num_cores)
        ]
        self._repl_st = [self.repl.new_core() for _ in range(cfg.num_cores)]
        self._mgmt_st = [
            self.mgmt.new_core(cfg.l1_sets, cfg.l1_ways)
            for _ in range(cfg.num_cores)
        ]
        self._tick_interval = self.mgmt.tick_interval
        self._tick_left = [self._tick_interval] * cfg.num_cores
        self._chunk = [64] * cfg.num_cores
        self.l2: List[_L2Bank] = []
        self._vd_masks: Optional[List[int]] = None
        if include_l2:
            self.l2 = [
                _L2Bank(cfg.l2_bank_sets, cfg.l2_ways)
                for _ in range(cfg.num_partitions)
            ]
            if self.design.uses_victim_bits:
                if victim_share_factor < 1 or (
                    cfg.num_cores % victim_share_factor
                ):
                    raise ValueError(
                        f"share_factor {victim_share_factor} must divide "
                        f"the L1 count {cfg.num_cores}"
                    )
                self._vd_masks = [
                    1 << (i // victim_share_factor)
                    for i in range(cfg.num_cores)
                ]
        self.addr_map = AddressMap(cfg.num_partitions, cfg.mc_interleave_lines)
        self.phase_seconds = {"burst": 0.0, "probe": 0.0, "scalar_event": 0.0}
        self._prof = self.phase_seconds if profile else None
        # Merged counters (per-core/per-bank breakdown is never reported).
        self.l1_loads = 0
        self.l1_stores = 0
        self.l1_load_hits = 0
        self.l1_store_hits = 0
        self.l1_fills = 0
        self.l1_bypasses = 0
        self.l1_evictions = 0
        self.l1_reuse: Counter = Counter()
        self.l2_loads = 0
        self.l2_stores = 0
        self.l2_load_hits = 0
        self.l2_store_hits = 0
        self.l2_fills = 0
        self.l2_evictions = 0
        self.l2_writebacks = 0
        self.l2_reuse: Counter = Counter()
        self.hints_returned = 0
        self.contentions_detected = 0
        self.instructions = 0
        self.transactions = 0
        self.kernels: List[str] = []
        # Per-run scratch.
        self._arrays = None
        self._pos: List[int] = []

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run(self, trace: KernelTrace, streams=None, arrays=None) -> None:
        """Replay one kernel, continuing from the current cache state.

        ``streams`` (from :func:`build_core_streams`) and ``arrays``
        (from :func:`~repro.sim.functional.streams.build_core_arrays`)
        are design-independent, so sweeps replaying one trace through
        many designs can prepare them once.  Prebuilt ``arrays`` carry
        absolute transaction times and are only valid on a cold engine.
        """
        if arrays is not None:
            if self.transactions:
                raise ValueError(
                    "prebuilt arrays carry kernel-start transaction "
                    "times; they cannot continue a warm engine"
                )
        else:
            if streams is None:
                streams = build_core_streams(
                    trace, self.config, self.scheduler
                )
            arrays = build_core_arrays(
                streams,
                self.config,
                addr_map=self.addr_map,
                include_l2=self.include_l2,
                now_offset=self.transactions,
            )
        self._arrays = arrays
        self._pos = [0] * len(arrays)
        prof = self._prof
        if self._batchable and self.include_l2:
            if self._vd_masks is None and not self._tick_interval:
                # No cross-core feedback into L1: replay each core to
                # completion, then burst the whole L2 event stream.
                self._run_decoupled(arrays)
            else:
                # Hint-coupled (G-Cache): load misses through a heap,
                # stores folded into the walks and flushed per set.
                for A in arrays:
                    A.ensure_probe()
                    A.ensure_scalar_l1()
                    A.ensure_times()
                    A.ensure_scalar_l2()
                if prof is None:
                    self._drain_missheap(arrays)
                else:
                    t0 = perf_counter()
                    p0 = prof["probe"]
                    self._drain_missheap(arrays)
                    prof["scalar_event"] += (
                        perf_counter() - t0 - (prof["probe"] - p0)
                    )
        else:
            for A in arrays:
                A.ensure_scalar_l1()
                A.ensure_times()
                if self._batchable:
                    A.ensure_probe()
                if self.include_l2:
                    A.ensure_scalar_l2()
            if prof is None:
                self._drain(arrays)
            else:
                t0 = perf_counter()
                p0 = prof["probe"]
                self._drain(arrays)
                prof["scalar_event"] += (
                    perf_counter() - t0 - (prof["probe"] - p0)
                )
        self.transactions += sum(a.n for a in arrays)
        self.instructions += trace.instruction_count()
        self.kernels.append(trace.name)
        self._arrays = None

    def _drain(self, arrays) -> None:
        """Generic event loop (scalar designs, or L2 disabled)."""
        heap: List = []
        push = heapq.heappush
        pop = heapq.heappop
        advance = self._advance
        process = self._process_event
        pos_l = self._pos
        batchable = self._batchable
        for c in range(len(arrays)):
            t = advance(c)
            if t is not None:
                push(heap, (t, c))
        while heap:
            now, c = pop(heap)
            process(c, now)
            # Fast re-arm: when the core's next access is itself an event
            # (store, or any access on a scalar design), skip the full
            # _advance call and push its precomputed time directly.
            A = arrays[c]
            pos = pos_l[c]
            if pos < A.n:
                if batchable and not A.write_l[pos]:
                    t = advance(c)
                    if t is not None:
                        push(heap, (t, c))
                else:
                    push(heap, (A.now_l[pos], c))

    # ------------------------------------------------------------------
    # Fully decoupled path (bs, bs-s, dbp): per-core L1 walks, then one
    # batched per-set L2 burst.
    # ------------------------------------------------------------------
    def _run_decoupled(self, arrays) -> None:
        """Replay without any global ordering structure.

        Valid when the design raises no victim-bit hints and has no
        periodic tick: L1 evolution is then a pure function of the
        core-private stream (mgmt state is per-core and never reads
        ``now``), and the L2 event stream is order-observable only
        within each (bank, set) — exactly what the burst kernel
        preserves.  ``fill_time`` is not maintained on this path (only
        the PDP family reads it, and PDP never routes here).
        """
        if self._null_mgmt:
            self._run_decoupled_burst(arrays)
            return
        prof = self._prof
        if prof is not None:
            t0 = perf_counter()
            p0 = prof["probe"]
        ev_now: List[np.ndarray] = []
        ev_part: List[np.ndarray] = []
        ev_local: List[np.ndarray] = []
        ev_set2: List[np.ndarray] = []
        ev_write: List[np.ndarray] = []
        for c in range(len(arrays)):
            A = arrays[c]
            A.ensure_probe()
            A.ensure_scalar_l1()
            ev: List[int] = []
            self._walk_core(c, A, ev)
            if ev:
                A.ensure_l2()
                ep = np.array(ev, dtype=np.int64)
                ev_now.append(A.now[ep])
                ev_part.append(A.part[ep])
                ev_local.append(A.local[ep])
                ev_set2.append(A.set2[ep])
                ev_write.append(A.write[ep])
        if prof is not None:
            prof["scalar_event"] += (
                perf_counter() - t0 - (prof["probe"] - p0)
            )
        if not ev_now:
            return
        if prof is not None:
            t1 = perf_counter()
        (
            l2_loads,
            l2_stores,
            l2_load_hits,
            l2_store_hits,
            l2_fills,
            l2_evictions,
            l2_writebacks,
        ) = l2_burst(
            self.l2,
            self.config.l2_bank_sets,
            np.concatenate(ev_now),
            np.concatenate(ev_part),
            np.concatenate(ev_local),
            np.concatenate(ev_set2),
            np.concatenate(ev_write),
            self.l2_reuse,
        )
        self.l2_loads += l2_loads
        self.l2_stores += l2_stores
        self.l2_load_hits += l2_load_hits
        self.l2_store_hits += l2_store_hits
        self.l2_fills += l2_fills
        self.l2_evictions += l2_evictions
        self.l2_writebacks += l2_writebacks
        if prof is not None:
            prof["burst"] += perf_counter() - t1

    def _run_decoupled_burst(self, arrays) -> None:
        """Null-management fast path (bs, bs-s): no scalar L1 at all.

        With no management hooks and no tick, L1 behaviour is a pure
        per-(core, set) function of the stream, so the whole L1 replay
        runs as one :func:`l1_burst` over every core's concatenated
        columns, and the events it emits feed :func:`l2_burst` directly.
        """
        prof = self._prof
        if prof is not None:
            t0 = perf_counter()
        S1 = self.config.l1_sets
        for A in arrays:
            A.ensure_probe()
        group = np.concatenate(
            [A.set1 + c * S1 for c, A in enumerate(arrays)]
        )
        line = np.concatenate([A.line for A in arrays])
        write = np.concatenate([A.write for A in arrays])
        (
            loads,
            load_hits,
            stores,
            store_hits,
            fills,
            evictions,
            ev,
        ) = l1_burst(
            self.l1,
            S1,
            self.repl.kind,
            self.repl.max_rrpv,
            self.repl.insertion_rrpv,
            self._repl_st,
            group,
            line,
            write,
            self.l1_reuse,
        )
        self.l1_loads += loads
        self.l1_load_hits += load_hits
        self.l1_stores += stores
        self.l1_store_hits += store_hits
        self.l1_fills += fills
        self.l1_evictions += evictions
        if ev.size:
            for A in arrays:
                A.ensure_l2()
            (
                l2_loads,
                l2_stores,
                l2_load_hits,
                l2_store_hits,
                l2_fills,
                l2_evictions,
                l2_writebacks,
            ) = l2_burst(
                self.l2,
                self.config.l2_bank_sets,
                np.concatenate([A.now for A in arrays])[ev],
                np.concatenate([A.part for A in arrays])[ev],
                np.concatenate([A.local for A in arrays])[ev],
                np.concatenate([A.set2 for A in arrays])[ev],
                write[ev],
                self.l2_reuse,
            )
            self.l2_loads += l2_loads
            self.l2_stores += l2_stores
            self.l2_load_hits += l2_load_hits
            self.l2_store_hits += l2_store_hits
            self.l2_fills += l2_fills
            self.l2_evictions += l2_evictions
            self.l2_writebacks += l2_writebacks
        if prof is not None:
            prof["burst"] += perf_counter() - t0

    def _walk_core(self, c: int, A, ev: List[int]) -> None:
        """Sequential start-to-finish replay of one core's L1.

        Hits and stores are applied inline (escalating to NumPy probes
        on long runs); load misses fill immediately with ``hint=False``.
        Every L2 event's stream position (all stores + all load misses)
        is appended to ``ev``, unordered — the burst kernel re-sorts per
        (bank, set) by precomputed time.
        """
        l1 = self.l1[c]
        ways = l1.ways
        tag = l1.tag
        tag_np = l1.tag_np
        use = l1.use
        stamp = l1.stamp
        rrpv = l1.rrpv
        vc_l = l1.valid_count
        line_l = A.line_l
        write_l = A.write_l
        set1_l = A.set1_l
        n = A.n
        lru = self._lru
        rst = self._repl_st[c]
        null_mgmt = self._null_mgmt
        mgmt = self.mgmt
        mst = self._mgmt_st[c]
        has_choose = self._has_choose
        has_evict = self._has_evict
        has_insert = self._has_insert
        insertion_rrpv = self.repl.insertion_rrpv
        select_victim = self.repl.select_victim
        fill_decision = mgmt.fill_decision
        on_bypass = mgmt.on_bypass
        choose_victim = mgmt.choose_victim
        on_evict = mgmt.on_evict
        on_insert = mgmt.on_insert
        reuse = self.l1_reuse
        append = ev.append
        probe_fold = self._probe_fold
        loads = stores = load_hits = store_hits = 0
        fills = bypasses = evictions = 0
        pos = 0
        streak = 0
        while pos < n:
            line = line_l[pos]
            set_index = set1_l[pos]
            base = set_index * ways
            seg = tag[base : base + ways]
            if line in seg:
                idx = base + seg.index(line)
                use[idx] += 1
                if lru:
                    t = rst[0] + 1
                    rst[0] = t
                    stamp[idx] = t
                else:
                    rrpv[idx] = 0
                if write_l[pos]:
                    stores += 1
                    store_hits += 1
                    append(pos)
                else:
                    loads += 1
                    load_hits += 1
                pos += 1
                streak += 1
                if streak >= _PROBE_THRESHOLD:
                    pos, dl, dlh, ds, dsh = probe_fold(c, A, l1, pos, n, ev)
                    loads += dl
                    load_hits += dlh
                    stores += ds
                    store_hits += dsh
                    streak = 0
                continue
            if write_l[pos]:
                # Write-through no-allocate: store misses skip L1 state.
                stores += 1
                append(pos)
                pos += 1
                streak += 1
                continue
            # Load miss: fill inline.  Hints never fire on this path and
            # no mgmt model here reads `now` (see docstring), so pass 0.
            loads += 1
            append(pos)
            streak = 0
            bypass = False
            if not null_mgmt:
                bypass = fill_decision(mst, l1, set_index, line, False, 0)
            if bypass:
                bypasses += 1
                on_bypass(mst, l1, set_index, 0)
            else:
                vcv = vc_l[set_index]
                if vcv < ways:
                    way = vcv
                    vc_l[set_index] = vcv + 1
                else:
                    way = (
                        choose_victim(mst, l1, set_index, 0)
                        if has_choose
                        else None
                    )
                    if way is None:
                        if lru:
                            sseg = stamp[base : base + ways]
                            way = sseg.index(min(sseg))
                        else:
                            way = select_victim(rst, l1, base, base + ways)
                    idx = base + way
                    evictions += 1
                    reuse[use[idx]] += 1
                    if has_evict:
                        on_evict(mst, l1, idx, 0)
                idx = base + way
                tag[idx] = line
                tag_np[idx] = line
                use[idx] = 0
                fills += 1
                if lru:
                    t = rst[0] + 1
                    rst[0] = t
                    stamp[idx] = t
                else:
                    rrpv[idx] = insertion_rrpv
                if has_insert:
                    on_insert(mst, l1, idx, False, 0)
            pos += 1
        self.l1_loads += loads
        self.l1_stores += stores
        self.l1_load_hits += load_hits
        self.l1_store_hits += store_hits
        self.l1_fills += fills
        self.l1_bypasses += bypasses
        self.l1_evictions += evictions

    def _probe_fold(
        self, c: int, A, l1: _L1State, pos: int, n: int, store_sink: List[int]
    ) -> Tuple[int, int, int, int, int]:
        """Chunked NumPy classification of a run of hits **and stores**.

        Stops only at load misses (store misses touch no L1 state and
        store hits restamp like load hits, so neither breaks the run).
        Store positions are appended to ``store_sink``; hits are applied
        through ``on_hit_run`` in access order (store hits included, so
        last-touch-wins stamping matches the oracle).  Returns
        ``(new_pos, loads, load_hits, stores, store_hits)``.
        """
        prof = self._prof
        if prof is not None:
            t0 = perf_counter()
        tag2d = l1.tag2d
        line = A.line
        set1 = A.set1
        write = A.write
        use = l1.use
        ways = l1.ways
        rst = self._repl_st[c]
        on_hit_run = self.repl.on_hit_run
        chunk = self._chunk[c]
        loads = load_hits = stores = store_hits = 0
        while True:
            end = pos + chunk
            if end > n:
                end = n
            sets = set1[pos:end]
            eq = tag2d[sets] == line[pos:end, None]
            hit = eq.any(axis=1)
            wv = write[pos:end]
            stop = ~(hit | wv)
            nz = np.flatnonzero(stop)
            k = int(nz[0]) if nz.size else end - pos
            if k:
                hitk = hit[:k]
                wk = wv[:k]
                nstores = int(np.count_nonzero(wk))
                if nstores:
                    store_sink.extend((pos + np.flatnonzero(wk)).tolist())
                    store_hits += int(np.count_nonzero(hitk & wk))
                    slots = (
                        sets[:k][hitk] * ways + eq[:k][hitk].argmax(axis=1)
                    ).tolist()
                else:
                    slots = (
                        sets[:k] * ways + eq[:k].argmax(axis=1)
                    ).tolist()
                stores += nstores
                # Every load in the prefix is a hit (stops are misses).
                loads += k - nstores
                load_hits += k - nstores
                for idx in slots:
                    use[idx] += 1
                on_hit_run(rst, l1, slots)
                pos += k
            if nz.size:
                # Adapt the probe width to the observed run length.
                self._chunk[c] = min(_MAX_CHUNK, max(_MIN_CHUNK, 2 * k))
                break
            if pos >= n:
                self._chunk[c] = chunk
                break
            chunk = min(_MAX_CHUNK, chunk * 2)
        if prof is not None:
            prof["probe"] += perf_counter() - t0
        return pos, loads, load_hits, stores, store_hits

    # ------------------------------------------------------------------
    # Hint-coupled path (gc, gc-m): miss-only heap + deferred stores.
    # ------------------------------------------------------------------
    def _drain_missheap(self, arrays) -> None:
        """Event loop whose heap carries **load misses only**.

        Stores are folded into the per-core walks
        (:meth:`_advance_fold`); their L2 effect is parked in
        per-(bank, set) buffers keyed by precomputed time and flushed —
        oldest first — just before any same-set load miss executes, and
        once more when the heap drains.  Deferral is safe because a
        popped miss holds the minimum parked time: every other core has
        already walked past (and therefore emitted) all its stores below
        that time.  Within a set this replays the oracle's exact access
        order; across sets, order is unobservable.
        """
        heap: List = []
        push = heapq.heappush
        pop = heapq.heappop
        advance = self._advance_fold
        pos_l = self._pos
        null_mgmt = self._null_mgmt
        has_choose = self._has_choose
        has_evict = self._has_evict
        has_insert = self._has_insert
        tick_interval = self._tick_interval
        tick_left = self._tick_left
        mgmt = self.mgmt
        mgmt_st = self._mgmt_st
        repl_st = self._repl_st
        l1s = self.l1
        l2 = self.l2
        vd_masks = self._vd_masks
        lru = self._lru
        insertion_rrpv = self.repl.insertion_rrpv
        max_rrpv = self.repl.max_rrpv
        fill_gate = mgmt.fill_gate_switches and not null_mgmt
        insert_skip_cold = mgmt.insert_skip_cold
        select_victim = self.repl.select_victim
        fill_decision = mgmt.fill_decision
        on_bypass = mgmt.on_bypass
        choose_victim = mgmt.choose_victim
        on_evict = mgmt.on_evict
        on_insert = mgmt.on_insert
        flush = self._flush_stores
        S2 = self.config.l2_bank_sets
        l1_reuse = self.l1_reuse
        l2_reuse = self.l2_reuse
        pending: Dict[int, list] = {}
        l1_loads = l1_load_hits = l1_stores = l1_store_hits = 0
        l1_fills = l1_bypasses = l1_evictions = 0
        l2_loads = l2_load_hits = l2_fills = 0
        l2_evictions = l2_writebacks = 0
        hints_returned = contentions = 0

        # One tuple per core / per bank bundling every hot attribute; a
        # single indexed load + unpack per event replaces ~25 attribute
        # lookups through __slots__ descriptors.  All bundled objects are
        # mutated in place, so the bindings stay valid for the whole
        # drain (`bank.tick` is a plain int and stays an attribute).
        core_cols = [
            (
                A.line_l, A.write_l, A.set1_l, A.now_l, A.part_l,
                A.local_l, A.set2_l, A.n, l1s[c], l1s[c].tag,
                l1s[c].tag_np, l1s[c].use, l1s[c].stamp, l1s[c].rrpv,
                l1s[c].valid_count, l1s[c].ways, repl_st[c], mgmt_st[c],
            )
            for c, A in enumerate(arrays)
        ]
        bank_cols = [
            (b, b.tag, b.stamp, b.use, b.dirty, b.vb, b.valid_count,
             b.ways)
            for b in l2
        ]

        for c in range(len(arrays)):
            t = advance(c, pending)
            if t is not None:
                push(heap, (t, c))
        while heap:
            now, c = pop(heap)
            (line_l, write_l, set1_l, now_l, part_l, local_l, set2_l,
             n, l1, tag, tag_np, use, stamp, rrpv, l1_vc, ways, rst,
             mst) = core_cols[c]
            p = pos_l[c]
            pos_l[c] = p + 1
            line = line_l[p]
            set_index = set1_l[p]
            base = set_index * ways
            if tick_interval:
                left = tick_left[c] - 1
                if left:
                    tick_left[c] = left
                else:
                    tick_left[c] = tick_interval
                    mgmt.on_tick_fire(mst)
            # The walk stops only at L1 load misses, so this event is one.
            l1_loads += 1
            part = part_l[p]
            bset = set2_l[p]
            (bank, btag, bstamp_l, buse, bdirty, bvb, bvc_l,
             bways) = bank_cols[part]
            buf = pending.get(part * S2 + bset)
            if buf:
                flush(bank, bset, buf, now)
            bbase = bset * bways
            l2_loads += 1
            bseg = btag[bbase : bbase + bways]
            local = local_l[p]
            if local in bseg:
                bidx = bbase + bseg.index(local)
                buse[bidx] += 1
                l2_load_hits += 1
                bank.tick += 1
                bstamp_l[bidx] = bank.tick
            else:
                vc = bvc_l[bset]
                if vc < bways:
                    bidx = bbase + vc
                    bvc_l[bset] = vc + 1
                else:
                    bstamp = bstamp_l[bbase : bbase + bways]
                    bidx = bbase + bstamp.index(min(bstamp))
                    l2_evictions += 1
                    if bdirty[bidx]:
                        l2_writebacks += 1
                    l2_reuse[buse[bidx]] += 1
                btag[bidx] = local
                bdirty[bidx] = 0
                buse[bidx] = 0
                bvb[bidx] = 0
                l2_fills += 1
                bank.tick += 1
                bstamp_l[bidx] = bank.tick
            hint = False
            if vd_masks is not None:
                mask = vd_masks[c]
                prev = bvb[bidx]
                bvb[bidx] = prev | mask
                hints_returned += 1
                if prev & mask:
                    contentions += 1
                    hint = True
            # L1 fill.
            bypass = False
            if not null_mgmt:
                if fill_gate and not hint and not mst.switches[set_index]:
                    pass  # declared no-op path: never bypasses
                else:
                    bypass = fill_decision(
                        mst, l1, set_index, line, hint, now
                    )
            if bypass:
                l1_bypasses += 1
                on_bypass(mst, l1, set_index, now)
            else:
                vc = l1_vc[set_index]
                if vc < ways:
                    way = vc
                    l1_vc[set_index] = vc + 1
                else:
                    way = (
                        choose_victim(mst, l1, set_index, now)
                        if has_choose
                        else None
                    )
                    if way is None:
                        if lru:
                            sseg = stamp[base : base + ways]
                            way = sseg.index(min(sseg))
                        else:
                            # Inline of ReplacementModel.select_victim
                            # (SRRIP): age to max, take the first line
                            # that held the pre-aging maximum.
                            rseg = rrpv[base : base + ways]
                            top_val = max(rseg)
                            if top_val < max_rrpv:
                                delta = max_rrpv - top_val
                                rrpv[base : base + ways] = [
                                    v + delta for v in rseg
                                ]
                            way = rseg.index(top_val)
                    idx = base + way
                    l1_evictions += 1
                    l1_reuse[use[idx]] += 1
                    if has_evict:
                        on_evict(mst, l1, idx, now)
                idx = base + way
                tag[idx] = line
                tag_np[idx] = line
                use[idx] = 0
                # fill_time is not maintained here: only the PDP family
                # reads it, and PDP never routes through the miss heap.
                l1_fills += 1
                if lru:
                    rst[0] += 1
                    stamp[idx] = rst[0]
                else:
                    rrpv[idx] = insertion_rrpv
                if has_insert and (hint or not insert_skip_cold):
                    on_insert(mst, l1, idx, hint, now)
            # Re-arm: walk this core inline through hits and stores to
            # its next load miss.  Runs here are short (the heap only
            # exists because the stream is miss-heavy), so the per-call
            # rebinding of a full _advance_fold would dominate; it is
            # only invoked when a run grows long enough to probe.
            p = pos_l[c]
            if p >= n:
                continue
            processed = 0
            streak = 0
            while p < n:
                line = line_l[p]
                base = set1_l[p] * ways
                seg = tag[base : base + ways]
                if line in seg:
                    idx = base + seg.index(line)
                    use[idx] += 1
                    if lru:
                        t = rst[0] + 1
                        rst[0] = t
                        stamp[idx] = t
                    else:
                        rrpv[idx] = 0
                    if write_l[p]:
                        l1_stores += 1
                        l1_store_hits += 1
                        key = part_l[p] * S2 + set2_l[p]
                        b = pending.get(key)
                        if b is None:
                            pending[key] = b = []
                        b.append((now_l[p], local_l[p]))
                    else:
                        l1_loads += 1
                        l1_load_hits += 1
                    p += 1
                    processed += 1
                    streak += 1
                    if streak >= _PROBE_THRESHOLD:
                        break
                elif write_l[p]:
                    l1_stores += 1
                    key = part_l[p] * S2 + set2_l[p]
                    b = pending.get(key)
                    if b is None:
                        pending[key] = b = []
                    b.append((now_l[p], local_l[p]))
                    p += 1
                    processed += 1
                    streak += 1
                else:
                    break
            pos_l[c] = p
            if tick_interval and processed:
                left = tick_left[c]
                if processed >= left:
                    mgmt.on_tick_fire(mgmt_st[c])
                    tick_left[c] = tick_interval - (
                        (processed - left) % tick_interval
                    )
                else:
                    tick_left[c] = left - processed
            if p < n:
                if streak >= _PROBE_THRESHOLD:
                    t = advance(c, pending)
                    if t is not None:
                        push(heap, (t, c))
                else:
                    push(heap, (now_l[p], c))
        # Stores past every stream's final load miss are still parked.
        for gkey, buf in pending.items():
            if buf:
                flush(l2[gkey // S2], gkey % S2, buf, None)

        self.l1_loads += l1_loads
        self.l1_load_hits += l1_load_hits
        self.l1_stores += l1_stores
        self.l1_store_hits += l1_store_hits
        self.l1_fills += l1_fills
        self.l1_bypasses += l1_bypasses
        self.l1_evictions += l1_evictions
        self.l2_loads += l2_loads
        self.l2_load_hits += l2_load_hits
        self.l2_fills += l2_fills
        self.l2_evictions += l2_evictions
        self.l2_writebacks += l2_writebacks
        self.hints_returned += hints_returned
        self.contentions_detected += contentions

    def _advance_fold(self, c: int, pending: Dict[int, list]) -> Optional[int]:
        """Walk core ``c`` forward through hits *and* stores.

        L1 effects apply inline; each store's L2 effect is appended to
        its (bank, set) pending buffer as ``(now, local)``.  Stops at
        the next L1 load miss and returns its precomputed time (``None``
        at end of stream).  The periodic tick counts every access walked
        here; all fires within the run collapse to one because nothing
        inside a run reads switch state (only load-miss fill decisions
        do) and neither hits nor stores re-arm switches.
        """
        A = self._arrays[c]
        pos = self._pos[c]
        n = A.n
        if pos >= n:
            return None
        l1 = self.l1[c]
        tag = l1.tag
        ways = l1.ways
        line_l = A.line_l
        write_l = A.write_l
        set1_l = A.set1_l
        now_l = A.now_l
        part_l = A.part_l
        local_l = A.local_l
        set2_l = A.set2_l
        use = l1.use
        rst = self._repl_st[c]
        lru = self._lru
        stamp = l1.stamp
        rrpv = l1.rrpv
        S2 = self.config.l2_bank_sets
        probe_fold = self._probe_fold
        start = pos
        loads = load_hits = stores = store_hits = 0
        streak = 0
        while pos < n:
            line = line_l[pos]
            w = write_l[pos]
            base = set1_l[pos] * ways
            seg = tag[base : base + ways]
            if line in seg:
                idx = base + seg.index(line)
                use[idx] += 1
                if lru:
                    t = rst[0] + 1
                    rst[0] = t
                    stamp[idx] = t
                else:
                    rrpv[idx] = 0
                if w:
                    stores += 1
                    store_hits += 1
                    key = part_l[pos] * S2 + set2_l[pos]
                    b = pending.get(key)
                    if b is None:
                        pending[key] = b = []
                    b.append((now_l[pos], local_l[pos]))
                else:
                    loads += 1
                    load_hits += 1
                pos += 1
                streak += 1
                if streak >= _PROBE_THRESHOLD:
                    spos: List[int] = []
                    pos, dl, dlh, ds, dsh = probe_fold(
                        c, A, l1, pos, n, spos
                    )
                    loads += dl
                    load_hits += dlh
                    stores += ds
                    store_hits += dsh
                    for q in spos:
                        key = part_l[q] * S2 + set2_l[q]
                        b = pending.get(key)
                        if b is None:
                            pending[key] = b = []
                        b.append((now_l[q], local_l[q]))
                    streak = 0
                continue
            if w:
                stores += 1
                key = part_l[pos] * S2 + set2_l[pos]
                b = pending.get(key)
                if b is None:
                    pending[key] = b = []
                b.append((now_l[pos], local_l[pos]))
                pos += 1
                streak += 1
                continue
            break  # load miss: park in the heap
        processed = pos - start
        if self._tick_interval and processed:
            left = self._tick_left[c]
            if processed >= left:
                self.mgmt.on_tick_fire(self._mgmt_st[c])
                self._tick_left[c] = self._tick_interval - (
                    (processed - left) % self._tick_interval
                )
            else:
                self._tick_left[c] = left - processed
        self._pos[c] = pos
        self.l1_loads += loads
        self.l1_load_hits += load_hits
        self.l1_stores += stores
        self.l1_store_hits += store_hits
        if pos >= n:
            return None
        return now_l[pos]

    def _flush_stores(
        self, bank: _L2Bank, bset: int, buf: list, upto: Optional[int]
    ) -> None:
        """Apply pending stores for one (bank, set), oldest first.

        ``buf`` holds ``(now, local)`` pairs (unsorted: it merges one
        sorted run per core); entries with ``now < upto`` are applied
        and removed (all of them when ``upto`` is None).  Times are
        globally unique, so the sort is total.
        """
        buf.sort()
        k = len(buf) if upto is None else bisect_left(buf, (upto,))
        if not k:
            return
        entries = buf[:k]
        del buf[:k]
        ways = bank.ways
        base = bset * ways
        tag = bank.tag
        use = bank.use
        stamp = bank.stamp
        dirty = bank.dirty
        vb = bank.vb
        vc_l = bank.valid_count
        tick = bank.tick
        l2_reuse = self.l2_reuse
        stores = store_hits = fills = evictions = writebacks = 0
        for _, local in entries:
            stores += 1
            seg = tag[base : base + ways]
            tick += 1
            if local in seg:
                i = base + seg.index(local)
                use[i] += 1
                store_hits += 1
                dirty[i] = 1
                stamp[i] = tick
            else:
                vcv = vc_l[bset]
                if vcv < ways:
                    i = base + vcv
                    vc_l[bset] = vcv + 1
                else:
                    sseg = stamp[base : base + ways]
                    i = base + sseg.index(min(sseg))
                    evictions += 1
                    if dirty[i]:
                        writebacks += 1
                    l2_reuse[use[i]] += 1
                tag[i] = local
                dirty[i] = 1
                use[i] = 0
                vb[i] = 0
                fills += 1
                stamp[i] = tick
        bank.tick = tick
        self.l2_stores += stores
        self.l2_store_hits += store_hits
        self.l2_fills += fills
        self.l2_evictions += evictions
        self.l2_writebacks += writebacks

    # ------------------------------------------------------------------
    # Fast-forward: apply runs of L1 load hits, return next event time
    # ------------------------------------------------------------------
    def _advance(self, c: int) -> Optional[int]:
        A = self._arrays[c]
        pos = self._pos[c]
        if pos >= A.n:
            return None
        now_l = A.now_l
        if not self._batchable:
            # Every access is an event for scalar designs (PDP family).
            return now_l[pos]
        write_l = A.write_l
        if write_l[pos]:
            return now_l[pos]
        l1 = self.l1[c]
        tag = l1.tag
        ways = l1.ways
        line_l = A.line_l
        set1_l = A.set1_l
        line = line_l[pos]
        base = set1_l[pos] * ways
        seg = tag[base : base + ways]
        if line not in seg:
            return now_l[pos]
        # At least one load hit: bind the rest of the state and walk.
        n = A.n
        use = l1.use
        st = self._repl_st[c]
        lru = self._lru
        stamp = l1.stamp
        rrpv = l1.rrpv
        hits = 0
        while True:
            idx = base + seg.index(line)
            use[idx] += 1
            if lru:
                st[0] += 1
                stamp[idx] = st[0]
            else:
                rrpv[idx] = 0
            pos += 1
            hits += 1
            if hits >= _PROBE_THRESHOLD:
                pos, probed = self._probe_forward(c, l1, pos, n)
                hits += probed
                break
            if pos >= n or write_l[pos]:
                break
            line = line_l[pos]
            base = set1_l[pos] * ways
            seg = tag[base : base + ways]
            if line not in seg:
                break
        self.l1_loads += hits
        self.l1_load_hits += hits
        if self._tick_interval:
            # `hits` accesses of shutdown countdown; all fires within
            # the run collapse to one (hits never re-arm switches).
            left = self._tick_left[c]
            if hits >= left:
                self.mgmt.on_tick_fire(self._mgmt_st[c])
                self._tick_left[c] = self._tick_interval - (
                    (hits - left) % self._tick_interval
                )
            else:
                self._tick_left[c] = left - hits
        self._pos[c] = pos
        if pos >= n:
            return None
        return now_l[pos]

    def _probe_forward(
        self, c: int, l1: _L1State, pos: int, n: int
    ) -> Tuple[int, int]:
        """Chunked NumPy classification of a long load-hit run.

        Returns ``(new_pos, hits_applied)``; stops at the first store or
        load miss (the next event) or the end of the stream.
        """
        prof = self._prof
        if prof is not None:
            t0 = perf_counter()
        A = self._arrays[c]
        tag2d = l1.tag2d
        line = A.line
        set1 = A.set1
        write = A.write
        use = l1.use
        ways = l1.ways
        st = self._repl_st[c]
        chunk = self._chunk[c]
        total = 0
        while True:
            end = pos + chunk
            if end > n:
                end = n
            sets = set1[pos:end]
            eq = tag2d[sets] == line[pos:end, None]
            stop = write[pos:end] | ~eq.any(axis=1)
            nz = np.flatnonzero(stop)
            k = int(nz[0]) if nz.size else end - pos
            if k:
                slots = (sets[:k] * ways + eq[:k].argmax(axis=1)).tolist()
                for idx in slots:
                    use[idx] += 1
                self.repl.on_hit_run(st, l1, slots)
                total += k
                pos += k
            if nz.size:
                # Adapt the probe width to the observed run length.
                self._chunk[c] = min(_MAX_CHUNK, max(_MIN_CHUNK, 2 * k))
                break
            if pos >= n:
                break
            chunk = min(_MAX_CHUNK, chunk * 2)
            self._chunk[c] = chunk
        if prof is not None:
            prof["probe"] += perf_counter() - t0
        return pos, total

    # ------------------------------------------------------------------
    # Events: stores and load misses, in global `now` order
    # ------------------------------------------------------------------
    def _process_event(self, c: int, now: int) -> None:
        # The oracle's lookup/fill sequence, inlined: the per-access
        # method dispatch the oracle pays is most of what this backend
        # saves on miss-heavy streams.
        A = self._arrays[c]
        p = self._pos[c]
        self._pos[c] = p + 1
        line = A.line_l[p]
        set_index = A.set1_l[p]
        l1 = self.l1[c]
        ways = l1.ways
        base = set_index * ways
        seg = l1.tag[base : base + ways]
        if self._tick_interval:
            left = self._tick_left[c] - 1
            if left:
                self._tick_left[c] = left
            else:
                self._tick_left[c] = self._tick_interval
                self.mgmt.on_tick_fire(self._mgmt_st[c])
        is_write = A.write_l[p]
        if is_write:
            self.l1_stores += 1
        else:
            self.l1_loads += 1
        if line in seg:
            hit = True
            idx = base + seg.index(line)
            l1.use[idx] += 1
            if is_write:
                self.l1_store_hits += 1
            else:
                self.l1_load_hits += 1
            if self._lru:
                st = self._repl_st[c]
                st[0] += 1
                l1.stamp[idx] = st[0]
            else:
                l1.rrpv[idx] = 0
            if not self._batchable:
                # Only the PDP family defines hit/miss hooks.
                self.mgmt.on_hit(
                    self._mgmt_st[c], l1, set_index, idx, line, now
                )
        else:
            hit = False
            if not self._batchable:
                self.mgmt.on_miss(self._mgmt_st[c], l1, set_index, now)
        if is_write:
            if self.include_l2:
                self._l2_access(
                    c, A.part_l[p], A.local_l[p], A.set2_l[p], now, True
                )
        elif not hit:
            hint = False
            if self.include_l2:
                hint = self._l2_access(
                    c, A.part_l[p], A.local_l[p], A.set2_l[p], now, False
                )
            self._l1_fill(c, line, set_index, now, hint)

    def _l1_fill(
        self, c: int, line: int, set_index: int, now: int, hint: bool
    ) -> None:
        l1 = self.l1[c]
        st = self._mgmt_st[c]
        if not self._null_mgmt:
            if self.mgmt.fill_decision(st, l1, set_index, line, hint, now):
                self.l1_bypasses += 1
                self.mgmt.on_bypass(st, l1, set_index, now)
                return
        ways = l1.ways
        base = set_index * ways
        vc = l1.valid_count[set_index]
        if vc < ways:
            # Fills always take the first invalid way and nothing ever
            # invalidates, so the valid ways form a prefix.
            way = vc
            l1.valid_count[set_index] = vc + 1
        else:
            way = (
                self.mgmt.choose_victim(st, l1, set_index, now)
                if self._has_choose
                else None
            )
            if way is None:
                way = self.repl.select_victim(
                    self._repl_st[c], l1, base, base + ways
                )
            idx = base + way
            self.l1_evictions += 1
            self.l1_reuse[l1.use[idx]] += 1
            if self._has_evict:
                self.mgmt.on_evict(st, l1, idx, now)
        idx = base + way
        l1.tag[idx] = line
        l1.tag_np[idx] = line
        l1.use[idx] = 0
        l1.fill_time[idx] = now
        self.l1_fills += 1
        if self._lru:
            rst = self._repl_st[c]
            rst[0] += 1
            l1.stamp[idx] = rst[0]
        else:
            l1.rrpv[idx] = self.repl.insertion_rrpv
        if self._has_insert:
            self.mgmt.on_insert(st, l1, idx, hint, now)

    def _l2_access(
        self, core: int, part: int, local: int, set_index: int, now: int,
        is_write: bool,
    ) -> bool:
        bank = self.l2[part]
        ways = bank.ways
        base = set_index * ways
        if is_write:
            self.l2_stores += 1
        else:
            self.l2_loads += 1
        seg = bank.tag[base : base + ways]
        if local in seg:
            idx = base + seg.index(local)
            bank.use[idx] += 1
            if is_write:
                self.l2_store_hits += 1
                bank.dirty[idx] = 1
            else:
                self.l2_load_hits += 1
            bank.tick += 1
            bank.stamp[idx] = bank.tick
        else:
            vc = bank.valid_count[set_index]
            if vc < ways:
                idx = base + vc
                bank.valid_count[set_index] = vc + 1
            else:
                seg = bank.stamp[base : base + ways]
                idx = base + seg.index(min(seg))
                self.l2_evictions += 1
                if bank.dirty[idx]:
                    self.l2_writebacks += 1
                self.l2_reuse[bank.use[idx]] += 1
            bank.tag[idx] = local
            bank.dirty[idx] = 1 if is_write else 0
            bank.use[idx] = 0
            bank.vb[idx] = 0
            self.l2_fills += 1
            bank.tick += 1
            bank.stamp[idx] = bank.tick
        if self._vd_masks is not None and not is_write:
            mask = self._vd_masks[core]
            prev = bank.vb[idx]
            bank.vb[idx] = prev | mask
            self.hints_returned += 1
            if prev & mask:
                self.contentions_detected += 1
                return True
        return False

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def result(self, benchmark: Optional[str] = None) -> ReplayResult:
        """Snapshot merged statistics as a :class:`ReplayResult`.

        Resident lines' reuse generations are finalized into the snapshot
        copy only — the engine remains usable for further kernels.
        """
        l1_reuse = Counter(self.l1_reuse)
        if self.l1:
            use = np.array([l1.use for l1 in self.l1], dtype=np.int64)
            tag = np.array([l1.tag for l1 in self.l1], dtype=np.int64)
            vals, cnts = np.unique(use[tag != -1], return_counts=True)
            for v, cnt in zip(vals.tolist(), cnts.tolist()):
                l1_reuse[v] += cnt
        l2_reuse = Counter(self.l2_reuse)
        if self.l2:
            use = np.array([b.use for b in self.l2], dtype=np.int64)
            tag = np.array([b.tag for b in self.l2], dtype=np.int64)
            vals, cnts = np.unique(use[tag != -1], return_counts=True)
            for v, cnt in zip(vals.tolist(), cnts.tolist()):
                l2_reuse[v] += cnt
        l1_stats = CacheStats(
            loads=self.l1_loads,
            stores=self.l1_stores,
            load_hits=self.l1_load_hits,
            store_hits=self.l1_store_hits,
            fills=self.l1_fills,
            bypasses=self.l1_bypasses,
            evictions=self.l1_evictions,
        )
        l1_stats.reuse._counts = l1_reuse
        l2_stats = CacheStats(
            loads=self.l2_loads,
            stores=self.l2_stores,
            load_hits=self.l2_load_hits,
            store_hits=self.l2_store_hits,
            fills=self.l2_fills,
            evictions=self.l2_evictions,
            writebacks=self.l2_writebacks,
        )
        l2_stats.reuse._counts = l2_reuse
        extras = {}
        if self._vd_masks is not None:
            extras["contentions_detected"] = self.contentions_detected
        return ReplayResult(
            benchmark=(
                benchmark
                if benchmark is not None
                else "+".join(self.kernels) or "<empty>"
            ),
            design=self.design.key,
            l1=l1_stats,
            l2=l2_stats,
            extras=extras,
        )


def functional_replay(
    trace: KernelTrace,
    config: Optional[GPUConfig] = None,
    design: Optional[DesignSpec] = None,
    streams=None,
    arrays=None,
    include_l2: bool = True,
    scheduler: str = "lrr",
) -> ReplayResult:
    """One-shot functional replay; mirrors :func:`repro.sim.replay.replay`."""
    engine = FunctionalEngine(
        config, design, include_l2=include_l2, scheduler=scheduler
    )
    engine.run(trace, streams=streams, arrays=arrays)
    return engine.result(benchmark=trace.name)
