"""The vectorized functional replay engine.

Bit-identical (by contract and by ``tests/test_functional_equivalence.py``)
to the scalar oracle :func:`repro.sim.replay.replay`, at a fraction of the
cost.  The speed comes from three observations about the oracle:

1. Its global interleave is a pure function of the per-core stream
   lengths, so every transaction's global time is precomputed up front
   (:mod:`repro.sim.functional.streams`).
2. L1 *load hits* touch only private per-core state, and for the
   batchable designs (bs, bs-s, gc, gc-m, dbp) they leave all bypass
   decision state untouched — so runs of consecutive load hits can be
   applied eagerly without consulting the global order.  Short runs are
   walked scalar over plain-list state (no per-access object dispatch,
   no FillContext, no observer hooks — the oracle's overhead); once a
   run proves long, the walk escalates to chunked NumPy probes against a
   dense tag plane that classify dozens of accesses per vector op.
3. Only the *events* — stores and load misses — touch shared L2/victim-bit
   state; they are globally ordered through a min-heap keyed on the
   precomputed transaction times and handled scalar, exactly like the
   oracle.

The PDP designs mutate per-set clocks and samplers on every access, so
they run through the same event loop with batching disabled (every access
is an event); their win comes only from the precomputed streams.
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import List, Optional, Tuple

import numpy as np

from repro.sim.addressing import AddressMap
from repro.sim.config import GPUConfig
from repro.sim.designs import DesignSpec, make_design
from repro.sim.functional.policies import (
    FunctionalUnsupportedError,
    MgmtModel,
    build_models,
)
from repro.sim.functional.streams import build_core_arrays
from repro.sim.replay import ReplayResult, build_core_streams
from repro.stats.counters import CacheStats
from repro.trace.trace import KernelTrace

__all__ = ["FunctionalEngine", "FunctionalUnsupportedError", "functional_replay"]

#: Consecutive load hits walked scalar before escalating to NumPy probes.
_PROBE_THRESHOLD = 32
_MIN_CHUNK = 16
_MAX_CHUNK = 4096


class _L1State:
    """Structure-of-arrays L1 mirror (FlatTagStore's flat layout).

    Hot state lives in plain Python lists — scalar element access on a
    list is several times cheaper than NumPy item extraction, and the
    event path is scalar.  ``tag`` alone is mirrored into a dense NumPy
    plane (``tag_np`` flat / ``tag2d`` per-set view of the same buffer)
    for the bulk hit probes; the mirror is refreshed on fill only.
    """

    __slots__ = (
        "num_sets",
        "ways",
        "tag",
        "tag_np",
        "tag2d",
        "stamp",
        "rrpv",
        "use",
        "fill_time",
        "pd",
        "valid_count",
    )

    def __init__(self, num_sets: int, ways: int) -> None:
        n = num_sets * ways
        self.num_sets = num_sets
        self.ways = ways
        self.tag = [-1] * n
        self.tag_np = np.full(n, -1, dtype=np.int64)
        self.tag2d = self.tag_np.reshape(num_sets, ways)
        self.stamp = [0] * n
        self.rrpv = [0] * n
        self.use = [0] * n
        self.fill_time = [0] * n
        self.pd = [0] * n
        self.valid_count = [0] * num_sets


class _L2Bank:
    """One L2 bank: scalar-only state (plain Python lists)."""

    __slots__ = (
        "ways",
        "tag",
        "stamp",
        "dirty",
        "use",
        "vb",
        "valid_count",
        "tick",
    )

    def __init__(self, num_sets: int, ways: int) -> None:
        n = num_sets * ways
        self.ways = ways
        self.tag = [-1] * n
        self.stamp = [0] * n
        self.dirty = bytearray(n)
        self.use = [0] * n
        self.vb = [0] * n
        self.valid_count = [0] * num_sets
        self.tick = 0


class FunctionalEngine:
    """Replays kernel traces through structure-of-arrays cache state.

    Persistent across :meth:`run` calls, so a warm-cache kernel sequence
    behaves like the oracle driven over the same cache objects.  Call
    :meth:`result` to snapshot merged statistics (resident generations
    are counted into the snapshot without disturbing live state, so the
    engine can keep running afterwards).
    """

    def __init__(
        self,
        config: Optional[GPUConfig] = None,
        design: Optional[DesignSpec] = None,
        include_l2: bool = True,
        victim_share_factor: int = 1,
        scheduler: str = "lrr",
    ) -> None:
        self.config = config if config is not None else GPUConfig()
        self.design = design if design is not None else make_design("bs")
        self.include_l2 = include_l2
        self.scheduler = scheduler
        self.repl, self.mgmt = build_models(self.design)
        self._batchable = self.mgmt.batchable
        self._lru = self.repl.kind == "lru"
        # Which hooks the model actually overrides; the event loop skips
        # the Python call entirely for base-class no-ops.
        mgmt_cls = type(self.mgmt)
        self._null_mgmt = mgmt_cls is MgmtModel
        self._has_choose = mgmt_cls.choose_victim is not MgmtModel.choose_victim
        self._has_evict = mgmt_cls.on_evict is not MgmtModel.on_evict
        self._has_insert = mgmt_cls.on_insert is not MgmtModel.on_insert
        cfg = self.config
        self.l1 = [
            _L1State(cfg.l1_sets, cfg.l1_ways) for _ in range(cfg.num_cores)
        ]
        self._repl_st = [self.repl.new_core() for _ in range(cfg.num_cores)]
        self._mgmt_st = [
            self.mgmt.new_core(cfg.l1_sets, cfg.l1_ways)
            for _ in range(cfg.num_cores)
        ]
        self._tick_interval = self.mgmt.tick_interval
        self._tick_left = [self._tick_interval] * cfg.num_cores
        self._chunk = [64] * cfg.num_cores
        self.l2: List[_L2Bank] = []
        self._vd_masks: Optional[List[int]] = None
        if include_l2:
            self.l2 = [
                _L2Bank(cfg.l2_bank_sets, cfg.l2_ways)
                for _ in range(cfg.num_partitions)
            ]
            if self.design.uses_victim_bits:
                if victim_share_factor < 1 or (
                    cfg.num_cores % victim_share_factor
                ):
                    raise ValueError(
                        f"share_factor {victim_share_factor} must divide "
                        f"the L1 count {cfg.num_cores}"
                    )
                self._vd_masks = [
                    1 << (i // victim_share_factor)
                    for i in range(cfg.num_cores)
                ]
        self.addr_map = AddressMap(cfg.num_partitions, cfg.mc_interleave_lines)
        # Merged counters (per-core/per-bank breakdown is never reported).
        self.l1_loads = 0
        self.l1_stores = 0
        self.l1_load_hits = 0
        self.l1_store_hits = 0
        self.l1_fills = 0
        self.l1_bypasses = 0
        self.l1_evictions = 0
        self.l1_reuse: Counter = Counter()
        self.l2_loads = 0
        self.l2_stores = 0
        self.l2_load_hits = 0
        self.l2_store_hits = 0
        self.l2_fills = 0
        self.l2_evictions = 0
        self.l2_writebacks = 0
        self.l2_reuse: Counter = Counter()
        self.hints_returned = 0
        self.contentions_detected = 0
        self.instructions = 0
        self.transactions = 0
        self.kernels: List[str] = []
        # Per-run scratch.
        self._arrays = None
        self._pos: List[int] = []

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run(self, trace: KernelTrace, streams=None, arrays=None) -> None:
        """Replay one kernel, continuing from the current cache state.

        ``streams`` (from :func:`build_core_streams`) and ``arrays``
        (from :func:`~repro.sim.functional.streams.build_core_arrays`)
        are design-independent, so sweeps replaying one trace through
        many designs can prepare them once.  Prebuilt ``arrays`` carry
        absolute transaction times and are only valid on a cold engine.
        """
        if arrays is not None:
            if self.transactions:
                raise ValueError(
                    "prebuilt arrays carry kernel-start transaction "
                    "times; they cannot continue a warm engine"
                )
        else:
            if streams is None:
                streams = build_core_streams(
                    trace, self.config, self.scheduler
                )
            arrays = build_core_arrays(
                streams,
                self.config,
                addr_map=self.addr_map,
                include_l2=self.include_l2,
                now_offset=self.transactions,
            )
        self._arrays = arrays
        self._pos = [0] * len(arrays)
        if self._batchable and self.include_l2:
            self._drain_fast(arrays)
        else:
            self._drain(arrays)
        self.transactions += sum(a.n for a in arrays)
        self.instructions += trace.instruction_count()
        self.kernels.append(trace.name)
        self._arrays = None

    def _drain(self, arrays) -> None:
        """Generic event loop (scalar designs, or L2 disabled)."""
        heap: List = []
        push = heapq.heappush
        pop = heapq.heappop
        advance = self._advance
        process = self._process_event
        pos_l = self._pos
        batchable = self._batchable
        for c in range(len(arrays)):
            t = advance(c)
            if t is not None:
                push(heap, (t, c))
        while heap:
            now, c = pop(heap)
            process(c, now)
            # Fast re-arm: when the core's next access is itself an event
            # (store, or any access on a scalar design), skip the full
            # _advance call and push its precomputed time directly.
            A = arrays[c]
            pos = pos_l[c]
            if pos < A.n:
                if batchable and not A.write_l[pos]:
                    t = advance(c)
                    if t is not None:
                        push(heap, (t, c))
                else:
                    push(heap, (A.now_l[pos], c))

    def _drain_fast(self, arrays) -> None:
        """Event loop for batchable designs with L2 — the hot shape.

        Semantically identical to :meth:`_drain` +
        :meth:`_process_event`, with the per-event work inlined and all
        counters held in locals (flushed once at the end): on miss-heavy
        GPU streams the event loop IS the backend's cost, and attribute
        traffic is a third of it.  The differential harness pins this
        path against the oracle bit for bit.
        """
        heap: List = []
        push = heapq.heappush
        pop = heapq.heappop
        advance = self._advance
        pos_l = self._pos
        lru = self._lru
        null_mgmt = self._null_mgmt
        has_choose = self._has_choose
        has_evict = self._has_evict
        has_insert = self._has_insert
        tick_interval = self._tick_interval
        tick_left = self._tick_left
        mgmt = self.mgmt
        mgmt_st = self._mgmt_st
        repl_st = self._repl_st
        l1s = self.l1
        l2 = self.l2
        vd_masks = self._vd_masks
        insertion_rrpv = self.repl.insertion_rrpv
        select_victim = self.repl.select_victim
        fill_decision = mgmt.fill_decision
        on_bypass = mgmt.on_bypass
        choose_victim = mgmt.choose_victim
        on_evict = mgmt.on_evict
        on_insert = mgmt.on_insert
        l1_reuse = self.l1_reuse
        l2_reuse = self.l2_reuse
        l1_loads = l1_stores = l1_load_hits = l1_store_hits = 0
        l1_fills = l1_bypasses = l1_evictions = 0
        l2_loads = l2_stores = l2_load_hits = l2_store_hits = 0
        l2_fills = l2_evictions = l2_writebacks = 0
        hints_returned = contentions = 0

        for c in range(len(arrays)):
            t = advance(c)
            if t is not None:
                push(heap, (t, c))
        while heap:
            now, c = pop(heap)
            A = arrays[c]
            p = pos_l[c]
            pos_l[c] = p + 1
            line = A.line_l[p]
            l1 = l1s[c]
            ways = l1.ways
            set_index = A.set1_l[p]
            base = set_index * ways
            tag = l1.tag
            seg = tag[base : base + ways]
            if tick_interval:
                left = tick_left[c] - 1
                if left:
                    tick_left[c] = left
                else:
                    tick_left[c] = tick_interval
                    mgmt.on_tick_fire(mgmt_st[c])
            is_write = A.write_l[p]
            hit = line in seg
            if hit:
                idx = base + seg.index(line)
                l1.use[idx] += 1
                if is_write:
                    l1_stores += 1
                    l1_store_hits += 1
                else:
                    l1_loads += 1
                    l1_load_hits += 1
                if lru:
                    st = repl_st[c]
                    st[0] += 1
                    l1.stamp[idx] = st[0]
                else:
                    l1.rrpv[idx] = 0
            elif is_write:
                l1_stores += 1
            else:
                l1_loads += 1
            # Shared L2 (stores are write-through; load misses fetch).
            hint = False
            if is_write or not hit:
                bank = l2[A.part_l[p]]
                local = A.local_l[p]
                bways = bank.ways
                bbase = A.set2_l[p] * bways
                if is_write:
                    l2_stores += 1
                else:
                    l2_loads += 1
                bseg = bank.tag[bbase : bbase + bways]
                if local in bseg:
                    bidx = bbase + bseg.index(local)
                    bank.use[bidx] += 1
                    if is_write:
                        l2_store_hits += 1
                        bank.dirty[bidx] = 1
                    else:
                        l2_load_hits += 1
                    bank.tick += 1
                    bank.stamp[bidx] = bank.tick
                else:
                    bset = A.set2_l[p]
                    vc = bank.valid_count[bset]
                    if vc < bways:
                        bidx = bbase + vc
                        bank.valid_count[bset] = vc + 1
                    else:
                        bstamp = bank.stamp[bbase : bbase + bways]
                        bidx = bbase + bstamp.index(min(bstamp))
                        l2_evictions += 1
                        if bank.dirty[bidx]:
                            l2_writebacks += 1
                        l2_reuse[bank.use[bidx]] += 1
                    bank.tag[bidx] = local
                    bank.dirty[bidx] = 1 if is_write else 0
                    bank.use[bidx] = 0
                    bank.vb[bidx] = 0
                    l2_fills += 1
                    bank.tick += 1
                    bank.stamp[bidx] = bank.tick
                if vd_masks is not None and not is_write:
                    mask = vd_masks[c]
                    prev = bank.vb[bidx]
                    bank.vb[bidx] = prev | mask
                    hints_returned += 1
                    if prev & mask:
                        contentions += 1
                        hint = True
                # L1 fill on a load miss.
                if not is_write:
                    bypass = False
                    if not null_mgmt:
                        bypass = fill_decision(
                            mgmt_st[c], l1, set_index, line, hint, now
                        )
                    if bypass:
                        l1_bypasses += 1
                        on_bypass(mgmt_st[c], l1, set_index, now)
                    else:
                        vc = l1.valid_count[set_index]
                        if vc < ways:
                            way = vc
                            l1.valid_count[set_index] = vc + 1
                        else:
                            way = (
                                choose_victim(mgmt_st[c], l1, set_index, now)
                                if has_choose
                                else None
                            )
                            if way is None:
                                way = select_victim(
                                    repl_st[c], l1, base, base + ways
                                )
                            idx = base + way
                            l1_evictions += 1
                            l1_reuse[l1.use[idx]] += 1
                            if has_evict:
                                on_evict(mgmt_st[c], l1, idx, now)
                        idx = base + way
                        tag[idx] = line
                        l1.tag_np[idx] = line
                        l1.use[idx] = 0
                        l1.fill_time[idx] = now
                        l1_fills += 1
                        if lru:
                            st = repl_st[c]
                            st[0] += 1
                            l1.stamp[idx] = st[0]
                        else:
                            l1.rrpv[idx] = insertion_rrpv
                        if has_insert:
                            on_insert(mgmt_st[c], l1, idx, hint, now)
            # Re-arm this core in the heap.  The next access is usually
            # another event (store or load miss) — probe inline and only
            # fall back to the full _advance walk on a load hit.
            p = pos_l[c]
            if p < A.n:
                if A.write_l[p]:
                    push(heap, (A.now_l[p], c))
                else:
                    nbase = A.set1_l[p] * ways
                    if A.line_l[p] in tag[nbase : nbase + ways]:
                        t = advance(c)
                        if t is not None:
                            push(heap, (t, c))
                    else:
                        push(heap, (A.now_l[p], c))

        self.l1_loads += l1_loads
        self.l1_stores += l1_stores
        self.l1_load_hits += l1_load_hits
        self.l1_store_hits += l1_store_hits
        self.l1_fills += l1_fills
        self.l1_bypasses += l1_bypasses
        self.l1_evictions += l1_evictions
        self.l2_loads += l2_loads
        self.l2_stores += l2_stores
        self.l2_load_hits += l2_load_hits
        self.l2_store_hits += l2_store_hits
        self.l2_fills += l2_fills
        self.l2_evictions += l2_evictions
        self.l2_writebacks += l2_writebacks
        self.hints_returned += hints_returned
        self.contentions_detected += contentions

    # ------------------------------------------------------------------
    # Fast-forward: apply runs of L1 load hits, return next event time
    # ------------------------------------------------------------------
    def _advance(self, c: int) -> Optional[int]:
        A = self._arrays[c]
        pos = self._pos[c]
        if pos >= A.n:
            return None
        now_l = A.now_l
        if not self._batchable:
            # Every access is an event for scalar designs (PDP family).
            return now_l[pos]
        write_l = A.write_l
        if write_l[pos]:
            return now_l[pos]
        l1 = self.l1[c]
        tag = l1.tag
        ways = l1.ways
        line_l = A.line_l
        set1_l = A.set1_l
        line = line_l[pos]
        base = set1_l[pos] * ways
        seg = tag[base : base + ways]
        if line not in seg:
            return now_l[pos]
        # At least one load hit: bind the rest of the state and walk.
        n = A.n
        use = l1.use
        st = self._repl_st[c]
        lru = self._lru
        stamp = l1.stamp
        rrpv = l1.rrpv
        hits = 0
        while True:
            idx = base + seg.index(line)
            use[idx] += 1
            if lru:
                st[0] += 1
                stamp[idx] = st[0]
            else:
                rrpv[idx] = 0
            pos += 1
            hits += 1
            if hits >= _PROBE_THRESHOLD:
                pos, probed = self._probe_forward(c, l1, pos, n)
                hits += probed
                break
            if pos >= n or write_l[pos]:
                break
            line = line_l[pos]
            base = set1_l[pos] * ways
            seg = tag[base : base + ways]
            if line not in seg:
                break
        self.l1_loads += hits
        self.l1_load_hits += hits
        if self._tick_interval:
            # `hits` accesses of shutdown countdown; all fires within
            # the run collapse to one (hits never re-arm switches).
            left = self._tick_left[c]
            if hits >= left:
                self.mgmt.on_tick_fire(self._mgmt_st[c])
                self._tick_left[c] = self._tick_interval - (
                    (hits - left) % self._tick_interval
                )
            else:
                self._tick_left[c] = left - hits
        self._pos[c] = pos
        if pos >= n:
            return None
        return now_l[pos]

    def _probe_forward(
        self, c: int, l1: _L1State, pos: int, n: int
    ) -> Tuple[int, int]:
        """Chunked NumPy classification of a long load-hit run.

        Returns ``(new_pos, hits_applied)``; stops at the first store or
        load miss (the next event) or the end of the stream.
        """
        A = self._arrays[c]
        tag2d = l1.tag2d
        line = A.line
        set1 = A.set1
        write = A.write
        use = l1.use
        ways = l1.ways
        st = self._repl_st[c]
        chunk = self._chunk[c]
        total = 0
        while True:
            end = pos + chunk
            if end > n:
                end = n
            sets = set1[pos:end]
            eq = tag2d[sets] == line[pos:end, None]
            stop = write[pos:end] | ~eq.any(axis=1)
            nz = np.flatnonzero(stop)
            k = int(nz[0]) if nz.size else end - pos
            if k:
                slots = (sets[:k] * ways + eq[:k].argmax(axis=1)).tolist()
                for idx in slots:
                    use[idx] += 1
                self.repl.on_hit_run(st, l1, slots)
                total += k
                pos += k
            if nz.size:
                # Adapt the probe width to the observed run length.
                self._chunk[c] = min(_MAX_CHUNK, max(_MIN_CHUNK, 2 * k))
                return pos, total
            if pos >= n:
                return pos, total
            chunk = min(_MAX_CHUNK, chunk * 2)
            self._chunk[c] = chunk

    # ------------------------------------------------------------------
    # Events: stores and load misses, in global `now` order
    # ------------------------------------------------------------------
    def _process_event(self, c: int, now: int) -> None:
        # The oracle's lookup/fill sequence, inlined: the per-access
        # method dispatch the oracle pays is most of what this backend
        # saves on miss-heavy streams.
        A = self._arrays[c]
        p = self._pos[c]
        self._pos[c] = p + 1
        line = A.line_l[p]
        set_index = A.set1_l[p]
        l1 = self.l1[c]
        ways = l1.ways
        base = set_index * ways
        seg = l1.tag[base : base + ways]
        if self._tick_interval:
            left = self._tick_left[c] - 1
            if left:
                self._tick_left[c] = left
            else:
                self._tick_left[c] = self._tick_interval
                self.mgmt.on_tick_fire(self._mgmt_st[c])
        is_write = A.write_l[p]
        if is_write:
            self.l1_stores += 1
        else:
            self.l1_loads += 1
        if line in seg:
            hit = True
            idx = base + seg.index(line)
            l1.use[idx] += 1
            if is_write:
                self.l1_store_hits += 1
            else:
                self.l1_load_hits += 1
            if self._lru:
                st = self._repl_st[c]
                st[0] += 1
                l1.stamp[idx] = st[0]
            else:
                l1.rrpv[idx] = 0
            if not self._batchable:
                # Only the PDP family defines hit/miss hooks.
                self.mgmt.on_hit(
                    self._mgmt_st[c], l1, set_index, idx, line, now
                )
        else:
            hit = False
            if not self._batchable:
                self.mgmt.on_miss(self._mgmt_st[c], l1, set_index, now)
        if is_write:
            if self.include_l2:
                self._l2_access(
                    c, A.part_l[p], A.local_l[p], A.set2_l[p], now, True
                )
        elif not hit:
            hint = False
            if self.include_l2:
                hint = self._l2_access(
                    c, A.part_l[p], A.local_l[p], A.set2_l[p], now, False
                )
            self._l1_fill(c, line, set_index, now, hint)

    def _l1_fill(
        self, c: int, line: int, set_index: int, now: int, hint: bool
    ) -> None:
        l1 = self.l1[c]
        st = self._mgmt_st[c]
        if not self._null_mgmt:
            if self.mgmt.fill_decision(st, l1, set_index, line, hint, now):
                self.l1_bypasses += 1
                self.mgmt.on_bypass(st, l1, set_index, now)
                return
        ways = l1.ways
        base = set_index * ways
        vc = l1.valid_count[set_index]
        if vc < ways:
            # Fills always take the first invalid way and nothing ever
            # invalidates, so the valid ways form a prefix.
            way = vc
            l1.valid_count[set_index] = vc + 1
        else:
            way = (
                self.mgmt.choose_victim(st, l1, set_index, now)
                if self._has_choose
                else None
            )
            if way is None:
                way = self.repl.select_victim(
                    self._repl_st[c], l1, base, base + ways
                )
            idx = base + way
            self.l1_evictions += 1
            self.l1_reuse[l1.use[idx]] += 1
            if self._has_evict:
                self.mgmt.on_evict(st, l1, idx, now)
        idx = base + way
        l1.tag[idx] = line
        l1.tag_np[idx] = line
        l1.use[idx] = 0
        l1.fill_time[idx] = now
        self.l1_fills += 1
        if self._lru:
            rst = self._repl_st[c]
            rst[0] += 1
            l1.stamp[idx] = rst[0]
        else:
            l1.rrpv[idx] = self.repl.insertion_rrpv
        if self._has_insert:
            self.mgmt.on_insert(st, l1, idx, hint, now)

    def _l2_access(
        self, core: int, part: int, local: int, set_index: int, now: int,
        is_write: bool,
    ) -> bool:
        bank = self.l2[part]
        ways = bank.ways
        base = set_index * ways
        if is_write:
            self.l2_stores += 1
        else:
            self.l2_loads += 1
        seg = bank.tag[base : base + ways]
        if local in seg:
            idx = base + seg.index(local)
            bank.use[idx] += 1
            if is_write:
                self.l2_store_hits += 1
                bank.dirty[idx] = 1
            else:
                self.l2_load_hits += 1
            bank.tick += 1
            bank.stamp[idx] = bank.tick
        else:
            vc = bank.valid_count[set_index]
            if vc < ways:
                idx = base + vc
                bank.valid_count[set_index] = vc + 1
            else:
                seg = bank.stamp[base : base + ways]
                idx = base + seg.index(min(seg))
                self.l2_evictions += 1
                if bank.dirty[idx]:
                    self.l2_writebacks += 1
                self.l2_reuse[bank.use[idx]] += 1
            bank.tag[idx] = local
            bank.dirty[idx] = 1 if is_write else 0
            bank.use[idx] = 0
            bank.vb[idx] = 0
            self.l2_fills += 1
            bank.tick += 1
            bank.stamp[idx] = bank.tick
        if self._vd_masks is not None and not is_write:
            mask = self._vd_masks[core]
            prev = bank.vb[idx]
            bank.vb[idx] = prev | mask
            self.hints_returned += 1
            if prev & mask:
                self.contentions_detected += 1
                return True
        return False

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def result(self, benchmark: Optional[str] = None) -> ReplayResult:
        """Snapshot merged statistics as a :class:`ReplayResult`.

        Resident lines' reuse generations are finalized into the snapshot
        copy only — the engine remains usable for further kernels.
        """
        l1_reuse = Counter(self.l1_reuse)
        for l1 in self.l1:
            use = l1.use
            for idx, tag in enumerate(l1.tag):
                if tag != -1:
                    l1_reuse[use[idx]] += 1
        l2_reuse = Counter(self.l2_reuse)
        for bank in self.l2:
            use = bank.use
            for idx, tag in enumerate(bank.tag):
                if tag != -1:
                    l2_reuse[use[idx]] += 1
        l1_stats = CacheStats(
            loads=self.l1_loads,
            stores=self.l1_stores,
            load_hits=self.l1_load_hits,
            store_hits=self.l1_store_hits,
            fills=self.l1_fills,
            bypasses=self.l1_bypasses,
            evictions=self.l1_evictions,
        )
        l1_stats.reuse._counts = l1_reuse
        l2_stats = CacheStats(
            loads=self.l2_loads,
            stores=self.l2_stores,
            load_hits=self.l2_load_hits,
            store_hits=self.l2_store_hits,
            fills=self.l2_fills,
            evictions=self.l2_evictions,
            writebacks=self.l2_writebacks,
        )
        l2_stats.reuse._counts = l2_reuse
        extras = {}
        if self._vd_masks is not None:
            extras["contentions_detected"] = self.contentions_detected
        return ReplayResult(
            benchmark=(
                benchmark
                if benchmark is not None
                else "+".join(self.kernels) or "<empty>"
            ),
            design=self.design.key,
            l1=l1_stats,
            l2=l2_stats,
            extras=extras,
        )


def functional_replay(
    trace: KernelTrace,
    config: Optional[GPUConfig] = None,
    design: Optional[DesignSpec] = None,
    streams=None,
    arrays=None,
    include_l2: bool = True,
    scheduler: str = "lrr",
) -> ReplayResult:
    """One-shot functional replay; mirrors :func:`repro.sim.replay.replay`."""
    engine = FunctionalEngine(
        config, design, include_l2=include_l2, scheduler=scheduler
    )
    engine.run(trace, streams=streams, arrays=arrays)
    return engine.result(benchmark=trace.name)
