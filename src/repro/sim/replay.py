"""Timing-free trace replay through the cache hierarchy.

Some studies need only *cache content* dynamics, not timing: the Fig. 2
reuse-count characterization, Belady-optimal comparisons (Section 3.1's
"even OPT barely helps" argument), and the offline protecting-distance
sweep that defines SPDP-B.  This driver replays a kernel's coalesced
transaction streams through per-core L1s and the banked L2 in a
round-robin interleave that mimics LRR warp scheduling, at a small
fraction of the cost of the full timing simulation.

The access *sequence* is independent of the cache design (bypassing never
changes which addresses a kernel touches), so the per-core streams are
built once and can be replayed through many designs — and pre-scanned to
provide next-use oracles for :class:`~repro.cache.replacement.BeladyPolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cache.cache import Cache
from repro.cache.policies.base import FillContext
from repro.cache.replacement.belady import NEVER, BeladyPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.core.victim_bits import VictimBitDirectory
from repro.gpu.coalescer import Coalescer
from repro.sim.addressing import AddressMap
from repro.sim.config import GPUConfig
from repro.sim.designs import DesignSpec
from repro.stats.counters import CacheStats
from repro.trace.trace import KernelTrace, OP_ATOM, OP_LOAD, OP_STORE

__all__ = ["build_core_streams", "replay", "ReplayResult", "SCHEDULERS"]

#: One transaction: (line address, is_write).
Transaction = Tuple[int, bool]

#: Warp interleavings understood by :func:`build_core_streams`.
SCHEDULERS = ("lrr", "gto", "two-level")

#: Active-warp window for the two-level interleave (fetch group size).
_TWO_LEVEL_WINDOW = 8


def _emit(op: int, arg, coalescer: Coalescer, stream: List[Transaction]) -> None:
    # ALU / SMEM / BAR / ATOM produce no L1 traffic.
    if op == OP_LOAD:
        for line in coalescer.coalesce(arg):
            stream.append((line, False))
    elif op == OP_STORE:
        for line in coalescer.coalesce(arg):
            stream.append((line, True))


def _interleave_wave(warps, scheduler, coalescer, stream) -> None:
    """Append one wave's transactions in the chosen warp interleave."""
    coalesce = coalescer.coalesce
    append = stream.append
    if scheduler == "gto":
        # Greedy-then-oldest analogue: run each warp to completion,
        # oldest (lowest-numbered) first.
        for warp in warps:
            for op, arg in warp:
                if op == OP_LOAD:
                    for line in coalesce(arg):
                        append((line, False))
                elif op == OP_STORE:
                    for line in coalesce(arg):
                        append((line, True))
        return
    if scheduler == "two-level":
        # Round-robin inside a small active window; a finished warp's
        # slot is backfilled by the next pending warp in arrival order.
        active = list(range(min(_TWO_LEVEL_WINDOW, len(warps))))
        next_warp = len(active)
        pcs = [0] * len(warps)
        while active:
            i = 0
            while i < len(active):
                w = active[i]
                warp = warps[w]
                pc = pcs[w]
                if pc < len(warp):
                    op, arg = warp[pc]
                    pcs[w] = pc + 1
                    _emit(op, arg, coalescer, stream)
                if pcs[w] >= len(warp):
                    if next_warp < len(warps):
                        active[i] = next_warp
                        next_warp += 1
                        i += 1
                    else:
                        active.pop(i)
                else:
                    i += 1
        return
    # "lrr": round-robin one instruction per live warp per pass.  Track
    # the live warps in an order-preserving list so finished warps drop
    # out of the rotation instead of being re-scanned every pass.  This
    # default path inlines Coalescer.coalesce (same shift/dedup, minus
    # the per-warp call and statistics bumps — the coalescer object is
    # discarded by build_core_streams, so its counters are unobservable).
    shift = coalescer._shift
    max_lanes = coalescer.max_lanes
    pcs = [0] * len(warps)
    order = [i for i, w in enumerate(warps) if w]
    while order:
        nxt = []
        for i in order:
            warp = warps[i]
            pc = pcs[i]
            op, arg = warp[pc]
            pc += 1
            pcs[i] = pc
            if pc < len(warp):
                nxt.append(i)
            if op == OP_LOAD:
                is_write = False
            elif op == OP_STORE:
                is_write = True
            else:
                continue
            n = len(arg)
            if n > max_lanes:
                raise ValueError(
                    f"warp presented {n} lanes, max is {max_lanes}"
                )
            if not n:
                continue
            lines = [a >> shift for a in arg]
            first = lines[0]
            if lines.count(first) == n:
                append((first, is_write))
            else:
                for line in dict.fromkeys(lines):
                    append((line, is_write))
        order = nxt


def build_core_streams(
    trace: KernelTrace,
    config: Optional[GPUConfig] = None,
    scheduler: str = "lrr",
) -> List[List[Transaction]]:
    """Flatten a kernel into one coalesced transaction stream per core.

    CTAs are placed round-robin; each core executes its CTAs in waves of
    ``max_ctas_per_core``, interleaving the wave's warps according to
    ``scheduler`` — the no-timing analogue of the warp scheduler.  Atomics
    are excluded: they bypass the L1 entirely.

    Schedulers: ``"lrr"`` (loose round-robin, one instruction per warp
    per pass — the historical default), ``"gto"`` (greedy-then-oldest:
    each warp runs to completion in order) and ``"two-level"``
    (round-robin within an 8-warp active window).
    """
    if config is None:
        config = GPUConfig()
    if scheduler not in SCHEDULERS:
        raise ValueError(
            f"unknown scheduler {scheduler!r}; expected one of {SCHEDULERS}"
        )
    coalescer = Coalescer(config.line_size, config.simt_width)

    # Round-robin CTA placement.
    per_core_ctas: List[List] = [[] for _ in range(config.num_cores)]
    for i, cta in enumerate(trace.ctas):
        per_core_ctas[i % config.num_cores].append(cta)

    streams: List[List[Transaction]] = []
    for ctas in per_core_ctas:
        stream: List[Transaction] = []
        for wave_start in range(0, len(ctas), config.max_ctas_per_core):
            wave = ctas[wave_start : wave_start + config.max_ctas_per_core]
            # Warps are read-only here; no defensive copies.
            warps = [w for cta in wave for w in cta.warps]
            _interleave_wave(warps, scheduler, coalescer, stream)
        streams.append(stream)
    return streams


def _next_use_chain(stream: List[Transaction]) -> List[int]:
    """For each position, the index of the next access to the same line."""
    next_use = [NEVER] * len(stream)
    last_seen: Dict[int, int] = {}
    for pos in range(len(stream) - 1, -1, -1):
        line = stream[pos][0]
        next_use[pos] = last_seen.get(line, NEVER)
        last_seen[line] = pos
    return next_use


@dataclass
class ReplayResult:
    """Aggregate statistics from a timing-free replay."""

    benchmark: str
    design: str
    l1: CacheStats
    l2: CacheStats
    extras: Dict[str, object] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ReplayResult {self.benchmark}/{self.design}: "
            f"L1 miss={self.l1.miss_rate:.1%}>"
        )


def replay(
    trace: KernelTrace,
    config: Optional[GPUConfig] = None,
    design: Optional[DesignSpec] = None,
    streams: Optional[List[List[Transaction]]] = None,
    oracle: bool = False,
    include_l2: bool = True,
    scheduler: str = "lrr",
) -> ReplayResult:
    """Replay a kernel through the cache hierarchy without timing.

    Args:
        trace: Kernel to replay.
        config: Architectural parameters (geometry only is used).
        design: Cache design; ignored when ``oracle`` is set.
        streams: Pre-built per-core streams (reuse across designs).
        oracle: Replace the L1 replacement policy with Belady OPT.
        include_l2: Model the shared L2 (needed for G-Cache hints).
        scheduler: Warp interleave used when building streams (ignored
            when ``streams`` is given).
    """
    if config is None:
        config = GPUConfig()
    if streams is None:
        streams = build_core_streams(trace, config, scheduler=scheduler)

    if oracle:
        l1_policies = [BeladyPolicy() for _ in range(config.num_cores)]
        l1s = [
            Cache(
                f"L1[{i}]",
                config.l1_size,
                config.l1_ways,
                config.line_size,
                replacement=pol,
            )
            for i, pol in enumerate(l1_policies)
        ]
        next_uses = [_next_use_chain(s) for s in streams]
        design_key = "opt"
        uses_victim_bits = False
    else:
        if design is None:
            from repro.sim.designs import make_design

            design = make_design("bs")
        l1_policies = None
        next_uses = None
        l1s = [
            Cache(
                f"L1[{i}]",
                config.l1_size,
                config.l1_ways,
                config.line_size,
                replacement=design.make_l1_replacement(),
                mgmt=design.make_l1_mgmt(),
            )
            for i in range(config.num_cores)
        ]
        design_key = design.key
        uses_victim_bits = design.uses_victim_bits

    l2s: List[Cache] = []
    victim_dir = None
    if include_l2:
        l2s = [
            Cache(
                f"L2[{b}]",
                config.l2_bank_size,
                config.l2_ways,
                config.line_size,
                replacement=LRUPolicy(),
                write_back=True,
                write_allocate=True,
            )
            for b in range(config.num_partitions)
        ]
        if uses_victim_bits:
            victim_dir = VictimBitDirectory(config.num_cores)

    addr_map = AddressMap(config.num_partitions, config.mc_interleave_lines)

    def l2_access(core: int, line: int, now: int, is_write: bool) -> bool:
        """Returns the victim hint for loads; False otherwise."""
        if not include_l2:
            return False
        bank = l2s[addr_map.partition(line)]
        local = addr_map.local(line)
        res = bank.lookup(local, now, is_write=is_write)
        if res.hit:
            line_obj = res.line
        else:
            fill = bank.fill(
                local, now, FillContext(line_addr=local, src_id=core, is_write=is_write)
            )
            line_obj = bank.sets[fill.set_index][fill.way]
        if victim_dir is not None and not is_write:
            return victim_dir.observe(line_obj, core)
        return False

    positions = [0] * len(streams)
    live = sum(1 for s in streams if s)
    now = 0
    while live:
        for core, stream in enumerate(streams):
            pos = positions[core]
            if pos >= len(stream):
                continue
            line, is_write = stream[pos]
            positions[core] += 1
            if positions[core] >= len(stream):
                live -= 1
            now += 1
            l1 = l1s[core]
            if oracle:
                l1_policies[core].next_use_hint = next_uses[core][pos]
            if is_write:
                l1.lookup(line, now, is_write=True)
                l2_access(core, line, now, is_write=True)
            else:
                res = l1.lookup(line, now)
                if not res.hit:
                    hint = l2_access(core, line, now, is_write=False)
                    l1.fill(
                        line,
                        now,
                        FillContext(line_addr=line, victim_hint=hint, src_id=core),
                    )

    merged_l1 = CacheStats()
    for c in l1s:
        c.finalize()
        merged_l1.merge(c.stats)
    merged_l2 = CacheStats()
    for c in l2s:
        c.finalize()
        merged_l2.merge(c.stats)

    extras: Dict[str, object] = {}
    if victim_dir is not None:
        extras["contentions_detected"] = victim_dir.contentions_detected
    return ReplayResult(
        benchmark=trace.name,
        design=design_key,
        l1=merged_l1,
        l2=merged_l2,
        extras=extras,
    )
