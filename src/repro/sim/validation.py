"""Cross-model consistency validation.

The repository contains two executions of every workload: the timing
simulator (:func:`repro.sim.simulator.simulate`) and the timing-free
replay driver (:func:`repro.sim.replay.replay`).  They share the cache
substrate but differ in interleaving (event-driven vs round-robin) and
in MSHR modelling.  :func:`validate_run` checks the invariants that must
hold regardless, and that the two models' L1 miss rates agree to within
a tolerance — a cheap, strong regression tripwire for the whole stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.config import GPUConfig
from repro.sim.designs import DesignSpec, make_design
from repro.sim.replay import replay
from repro.sim.simulator import RunResult, simulate
from repro.trace.trace import KernelTrace

__all__ = ["ValidationReport", "validate_run"]


@dataclass
class ValidationReport:
    """Outcome of one validation pass."""

    benchmark: str
    design: str
    checks: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def _check(self, name: str, condition: bool, detail: str = "") -> None:
        self.checks.append(name)
        if not condition:
            self.failures.append(f"{name}: {detail}" if detail else name)

    def summary(self) -> str:
        status = "OK" if self.ok else "FAILED"
        lines = [f"{self.benchmark}/{self.design}: {status} "
                 f"({len(self.checks)} checks)"]
        lines.extend(f"  ! {f}" for f in self.failures)
        return "\n".join(lines)


def validate_run(
    trace: KernelTrace,
    config: Optional[GPUConfig] = None,
    design: Optional[DesignSpec] = None,
    miss_rate_tolerance: float = 0.15,
    timing_result: Optional[RunResult] = None,
) -> ValidationReport:
    """Run the consistency checks for one (trace, config, design) triple.

    Args:
        trace: Workload to validate.
        config: Architecture (Table 2 default).
        design: Cache design (baseline default).
        miss_rate_tolerance: Allowed |timing - replay| L1 miss-rate gap.
            The models intentionally differ in warp interleaving and MSHR
            handling, so this is a coarse envelope, not equality.
        timing_result: Reuse an existing timing run instead of re-running.
    """
    if config is None:
        config = GPUConfig()
    if design is None:
        design = make_design("bs")
    report = ValidationReport(benchmark=trace.name, design=design.key)

    timing = timing_result if timing_result is not None else simulate(trace, config, design)
    untimed = replay(trace, config, design)

    # --- conservation laws -------------------------------------------------
    report._check(
        "instruction conservation",
        timing.instructions == trace.instruction_count(),
        f"{timing.instructions} != {trace.instruction_count()}",
    )
    l1 = timing.l1
    report._check(
        "hits+misses == accesses",
        l1.hits + l1.misses == l1.accesses,
    )
    report._check(
        "fills+bypasses <= misses",
        l1.fills + l1.bypasses <= l1.misses,
        f"{l1.fills}+{l1.bypasses} > {l1.misses}",
    )
    report._check("evictions <= fills", l1.evictions <= l1.fills)
    report._check(
        "L2 traffic bounded by L1 misses+stores",
        timing.l2.accesses <= l1.misses + l1.stores + timing.instructions,
    )
    report._check(
        "DRAM bounded by L2 misses+writebacks",
        timing.dram_requests
        <= timing.l2.misses + timing.l2.writebacks + timing.l2.stores,
        f"{timing.dram_requests} DRAM vs L2 misses {timing.l2.misses}",
    )

    # --- physical sanity ----------------------------------------------------
    report._check("positive cycles", timing.cycles > 0)
    report._check(
        "IPC within issue bound",
        0 < timing.ipc <= config.num_cores,
        f"ipc={timing.ipc}",
    )
    report._check(
        "load latency >= L1 hit latency",
        timing.avg_load_latency >= config.l1_hit_latency,
    )
    report._check(
        "row-hit rate in [0,1]",
        0.0 <= timing.dram_row_hit_rate <= 1.0,
    )

    # --- cross-model agreement ----------------------------------------------
    # The timing model counts MSHR-merged accesses as misses; the replay
    # driver has no MSHRs (those accesses hit the already-applied fill).
    # Compare merge-adjusted content misses, which both models define.
    adjusted_timing_miss = (
        (l1.misses - l1.mshr_merges) / l1.accesses if l1.accesses else 0.0
    )
    gap = abs(adjusted_timing_miss - untimed.l1.miss_rate)
    report._check(
        "timing vs replay miss-rate agreement",
        gap <= miss_rate_tolerance,
        f"gap {gap:.3f} > {miss_rate_tolerance} "
        f"(timing adj {adjusted_timing_miss:.3f}, replay "
        f"{untimed.l1.miss_rate:.3f})",
    )
    return report
