"""Top-level simulator: event engine, CTA scheduling, run API.

:func:`simulate` is the main entry point of the library::

    from repro import simulate, GPUConfig, make_design
    from repro.trace.suite import build_benchmark

    trace = build_benchmark("SPMV")
    result = simulate(trace, GPUConfig(), make_design("gc"))
    print(result.ipc, result.l1.miss_rate)

The engine keeps one pending wake event per core in a min-heap and
processes them in global time order, which the memory system's
next-free-time contention model relies on.  The CTA scheduler dispatches
CTAs round-robin across cores (Table 2) and backfills a core as soon as
one of its CTAs completes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.gpu.core import SIMTCore
from repro.obs import Observability, wire
from repro.obs.metrics import collect_run_metrics
from repro.sim.config import GPUConfig
from repro.sim.designs import DesignSpec, make_design
from repro.sim.memory_system import MemorySystem
from repro.stats.counters import CacheStats
from repro.trace.trace import KernelTrace

__all__ = ["RunResult", "simulate", "simulate_sequence", "GPU", "FIDELITIES"]

#: Supported simulation fidelities: the cycle-accurate timing engine and
#: the vectorized fast-functional replay backend (exact cache counters,
#: estimated cycles).
FIDELITIES = ("timing", "functional")


@dataclass
class RunResult:
    """Outcome of one kernel simulation.

    Attributes:
        benchmark: Kernel / benchmark name.
        design: Design key (``"bs"``, ``"gc"``, ...).
        cycles: Total elapsed core cycles.
        instructions: Dynamic warp instructions issued.
        l1: Merged L1 statistics across all cores.
        l2: Merged L2 statistics across all banks.
        avg_load_latency: Mean core-observed load latency in cycles.
        dram_requests: Line transfers performed by the DRAM controllers.
        dram_row_hit_rate: Row-buffer hit rate across all banks.
        extras: Design-specific diagnostics (PD history, M history, ...).
    """

    benchmark: str
    design: str
    cycles: int
    instructions: int
    l1: CacheStats
    l2: CacheStats
    avg_load_latency: float
    dram_requests: int
    dram_row_hit_rate: float
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Warp instructions per cycle (the paper's performance metric)."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def speedup_over(self, baseline: "RunResult") -> float:
        """IPC ratio vs a baseline run of the same kernel."""
        if baseline.benchmark != self.benchmark:
            raise ValueError(
                f"speedup compares runs of the same kernel "
                f"({self.benchmark} vs {baseline.benchmark})"
            )
        if baseline.ipc == 0:
            raise ZeroDivisionError("baseline IPC is zero")
        return self.ipc / baseline.ipc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<RunResult {self.benchmark}/{self.design}: IPC={self.ipc:.3f} "
            f"L1 miss={self.l1.miss_rate:.1%}>"
        )


class GPU:
    """One GPU instance executing one kernel trace.

    Args:
        config: Architectural parameters.
        design: Cache-management design.
        victim_share_factor: ``S_v`` for victim-bit sharing studies.
        timeline: Optional :class:`~repro.stats.timeline.Timeline`; when
            given, cumulative counters are sampled every
            ``timeline.interval`` cycles during the run.
        obs: Optional :class:`~repro.obs.Observability`; when given, the
            event bus is wired through every component (caches, policy,
            NoC, DRAM, cores) and metrics are collected into its
            registry.  ``None`` (the default) leaves tracing compiled
            out to a per-site attribute check.
    """

    def __init__(
        self,
        config: GPUConfig,
        design: DesignSpec,
        victim_share_factor: int = 1,
        timeline=None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.config = config
        self.design = design
        self.memory = MemorySystem(config, design, victim_share_factor)
        self.cores: List[SIMTCore] = [
            SIMTCore(i, config, self.memory) for i in range(config.num_cores)
        ]
        self.timeline = timeline
        self.obs = obs
        if obs is not None:
            wire(self, obs)
        self._pending: List = []
        self._scratchpad = 0
        self._rr_core = 0

    def _sample_timeline(self, now: int) -> None:
        from repro.stats.timeline import TimelinePoint

        stats = self.memory.l1_stats()
        self.timeline.record(
            TimelinePoint(
                cycle=now,
                instructions=sum(c.instructions for c in self.cores),
                l1_accesses=stats.accesses,
                l1_hits=stats.hits,
                l1_bypasses=stats.bypasses,
            )
        )

    # ------------------------------------------------------------------
    # CTA dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, now: int, heap: List) -> None:
        """Round-robin CTAs onto cores with available resources."""
        n = self.config.num_cores
        stuck = 0
        while self._pending and stuck < n:
            core = self.cores[self._rr_core]
            self._rr_core = (self._rr_core + 1) % n
            if core.can_accept(self._pending[-1], self._scratchpad):
                cta = self._pending.pop()
                core.launch(cta, self._scratchpad, now)
                stuck = 0
                if core.wake is None or core.wake > now + 1:
                    core.wake = now + 1
                    heapq.heappush(heap, (now + 1, core.core_id))
            else:
                stuck += 1

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self, trace: KernelTrace, start_time: int = 0, finalize: bool = True
    ) -> RunResult:
        """Execute ``trace`` to completion and collect statistics.

        ``start_time`` supports sequential kernel launches on a warm GPU
        (see :func:`simulate_sequence`): resource reservations from a
        previous kernel remain valid because time keeps moving forward.
        ``finalize=False`` defers closing the caches' reuse generations
        (pass it for every kernel of a sequence except the last, so
        resident lines are not double-counted).
        """
        trace.validate(self.config.simt_width)
        # Reverse so list.pop() yields CTAs in launch order.
        self._pending = list(reversed(trace.ctas))
        self._scratchpad = trace.scratchpad_per_cta
        if self._scratchpad > self.config.scratchpad_bytes:
            raise ValueError(
                f"CTA scratchpad {self._scratchpad} exceeds the core's "
                f"{self.config.scratchpad_bytes} bytes"
            )

        heap: List = []
        for core in self.cores:
            core.wake = None
        self._dispatch(start_time, heap)
        if not heap:
            raise RuntimeError("no CTA could be placed on any core")

        next_sample = None
        if self.timeline is not None:
            # Anchor the window grid at the launch time and record a
            # baseline point so the first window has a left edge even
            # when the interval exceeds the run length.
            self._sample_timeline(start_time)
            next_sample = start_time + self.timeline.interval

        # Same-cycle wakeups are drained as one batch: core steps never
        # generate events at the current cycle (step() returns >= now+1
        # and _dispatch schedules at now+1), so every event for `now` is
        # already in the heap when the first one surfaces.  Draining them
        # together keeps the per-cycle bookkeeping (timeline sampling)
        # out of the per-core loop, and the batch preserves heap order
        # (core id ties broken ascending) so results are bit-identical to
        # the one-pop-at-a-time engine.  Staleness (core.wake != now) is
        # re-checked at processing time: a stale entry's core either woke
        # earlier (wake moved past now) or was rescheduled by _dispatch,
        # and nothing inside the batch can move a wake *to* now.
        cores = self.cores
        pop = heapq.heappop
        push = heapq.heappush
        while heap:
            now, core_id = pop(heap)
            if heap and heap[0][0] == now:
                # Same-cycle batch: drain every event for `now` in heap
                # order (core-id ties ascending, exactly the order the
                # one-pop-at-a-time engine used).  Safe because steps
                # never generate same-cycle events: step() returns
                # >= now+1 and _dispatch schedules at now+1.  Staleness
                # (core.wake != now) is re-checked at processing time;
                # nothing inside the batch can move a wake *to* now.
                batch = [core_id]
                while heap and heap[0][0] == now:
                    batch.append(pop(heap)[1])
                if next_sample is not None and now >= next_sample:
                    self._sample_timeline(now)
                    next_sample = now + self.timeline.interval
                for core_id in batch:
                    core = cores[core_id]
                    if core.wake != now:
                        continue  # stale event
                    nxt = core.step(now)
                    core.wake = nxt
                    if nxt is not None:
                        push(heap, (nxt, core_id))
                    if core.completed_cta and self._pending:
                        # Backfill freed resources; may reschedule any
                        # core, including this one (the wake guard drops
                        # stale events).
                        self._dispatch(now, heap)
                continue
            core = cores[core_id]
            if core.wake != now:
                continue  # stale event
            # Single-event fast path: keep stepping this core inline
            # while its next wake precedes every other scheduled event
            # ((nxt, core_id) <= heap[0] matches heap order, including
            # the core-id tiebreak) — this skips a push+pop+stale-check
            # round per continued step.  A CTA completion exits to the
            # slow path because _dispatch may reschedule any core.
            while True:
                if next_sample is not None and now >= next_sample:
                    self._sample_timeline(now)
                    next_sample = now + self.timeline.interval
                nxt = core.step(now)
                core.wake = nxt
                if core.completed_cta and self._pending:
                    if nxt is not None:
                        push(heap, (nxt, core_id))
                    self._dispatch(now, heap)
                    break
                if nxt is None:
                    break
                if heap and (nxt, core_id) > heap[0]:
                    push(heap, (nxt, core_id))
                    break
                now = nxt

        if self._pending:  # pragma: no cover - defensive
            raise RuntimeError(f"{len(self._pending)} CTAs were never scheduled")

        if finalize:
            self.memory.finalize()
        cycles = max((c.finish_time for c in self.cores), default=0)
        instructions = sum(c.instructions for c in self.cores)
        if self.timeline is not None:
            # Flush the final partial window: runs rarely end exactly on
            # a sampling boundary, and without this point the tail of the
            # run (up to interval-1 cycles) vanished from the timeline.
            self._sample_timeline(cycles)
        if self.obs is not None:
            self.obs.bus.flush()
        return self._build_result(trace.name, cycles, instructions)

    def _build_result(self, name: str, cycles: int, instructions: int) -> RunResult:
        extras: Dict[str, object] = {
            "coalescer_avg_txn": (
                sum(c.coalescer.transactions for c in self.cores)
                / max(1, sum(c.coalescer.warp_accesses for c in self.cores))
            ),
            "noc_avg_hops": self.memory.noc.average_hops,
        }
        mgmt = self.memory.l1s[0].mgmt
        if hasattr(mgmt, "pd_history"):
            extras["pd_history"] = list(mgmt.pd_history)
            extras["final_pd"] = mgmt.pd
        if hasattr(mgmt, "m_history"):
            extras["m_history"] = list(mgmt.m_history)
        if self.memory.victim_dir is not None:
            extras["contentions_detected"] = self.memory.victim_dir.contentions_detected
        # Namespaced metrics snapshot (repro.obs.metrics).  Collected into
        # a fresh registry every time because component counters are
        # cumulative; an attached Observability is rebound to the latest.
        registry = collect_run_metrics(self)
        if self.obs is not None:
            self.obs.metrics = registry
        extras["metrics"] = registry.snapshot()
        return RunResult(
            benchmark=name,
            design=self.design.key,
            cycles=cycles,
            instructions=instructions,
            l1=self.memory.l1_stats(),
            l2=self.memory.l2_stats(),
            avg_load_latency=self.memory.average_load_latency,
            dram_requests=self.memory.dram_requests,
            dram_row_hit_rate=self.memory.dram_row_hit_rate,
            extras=extras,
        )


def _check_functional_args(timeline, obs) -> None:
    if timeline is not None or obs is not None:
        raise ValueError(
            "fidelity='functional' replays cache traffic without a clock: "
            "timeline sampling and observability tracing need the timing "
            "engine"
        )


def _functional_stream_scheduler(config: GPUConfig) -> str:
    """Map the config's warp scheduler onto a stream interleave."""
    from repro.sim.replay import SCHEDULERS

    return (
        config.warp_scheduler
        if config.warp_scheduler in SCHEDULERS
        else "lrr"
    )


def _run_functional(
    traces,
    config: GPUConfig,
    design: DesignSpec,
    victim_share_factor: int,
) -> RunResult:
    """Drive the fast-functional backend and dress its counters as a
    :class:`RunResult` (cycles/latency from the calibrated estimator)."""
    from repro.sim.functional import FunctionalEngine, TimingEstimator

    engine = FunctionalEngine(
        config,
        design,
        victim_share_factor=victim_share_factor,
        scheduler=_functional_stream_scheduler(config),
    )
    for trace in traces:
        engine.run(trace)
    rep = engine.result(benchmark="+".join(t.name for t in traces))
    estimator = TimingEstimator(config)
    cycles = estimator.estimate(engine.instructions, rep.l1, rep.l2)
    extras: Dict[str, object] = {
        "fidelity": "functional",
        "estimated_cycles": True,
    }
    extras.update(rep.extras)
    return RunResult(
        benchmark=rep.benchmark,
        design=design.key,
        cycles=cycles,
        instructions=engine.instructions,
        l1=rep.l1,
        l2=rep.l2,
        avg_load_latency=estimator.estimate_load_latency(rep.l1, rep.l2),
        dram_requests=rep.l2.fills + rep.l2.writebacks,
        dram_row_hit_rate=0.0,
        extras=extras,
    )


def simulate_sequence(
    traces,
    config: Optional[GPUConfig] = None,
    design: Optional[DesignSpec] = None,
    victim_share_factor: int = 1,
    timeline=None,
    obs: Optional[Observability] = None,
    fidelity: str = "timing",
) -> RunResult:
    """Run several kernels back-to-back on one warm GPU.

    The paper assumes kernels execute sequentially (Section 2.1); real
    applications like srad launch SD1 then SD2 per iteration.  Caches,
    victim bits and bypass switches persist across launches — cross-kernel
    cache behaviour is exactly what this API exposes.

    ``timeline`` and ``obs`` are threaded through to the underlying
    :class:`GPU` exactly as in :func:`simulate`; a single timeline /
    event stream then spans every kernel of the sequence.

    Returns an aggregate :class:`RunResult` whose name joins the kernel
    names and whose counters cover the whole sequence.  The top-level
    ``extras`` keep the final kernel's view (histories are cumulative, so
    that view covers the whole run), and ``extras["per_kernel"]`` maps
    each kernel's name to the extras snapshot taken when it finished —
    previously the intermediate snapshots were simply overwritten.  A
    kernel name launched more than once gets a ``name#index`` key for
    every repeat after the first.
    """
    traces = list(traces)
    if not traces:
        raise ValueError("simulate_sequence needs at least one kernel")
    if config is None:
        config = GPUConfig()
    if design is None:
        design = make_design("bs")
    if fidelity not in FIDELITIES:
        raise ValueError(
            f"unknown fidelity {fidelity!r}; expected one of {FIDELITIES}"
        )
    if fidelity == "functional":
        _check_functional_args(timeline, obs)
        return _run_functional(traces, config, design, victim_share_factor)
    gpu = GPU(config, design, victim_share_factor, timeline=timeline, obs=obs)
    start = 0
    result: Optional[RunResult] = None
    per_kernel: Dict[str, Dict[str, object]] = {}
    for i, trace in enumerate(traces):
        last = i == len(traces) - 1
        result = gpu.run(trace, start_time=start, finalize=last)
        key = trace.name if trace.name not in per_kernel else f"{trace.name}#{i}"
        per_kernel[key] = result.extras
        start = result.cycles + 1
    assert result is not None
    extras: Dict[str, object] = dict(result.extras)
    extras["per_kernel"] = per_kernel
    return RunResult(
        benchmark="+".join(t.name for t in traces),
        design=design.key,
        cycles=result.cycles,
        instructions=result.instructions,
        l1=result.l1,
        l2=result.l2,
        avg_load_latency=result.avg_load_latency,
        dram_requests=result.dram_requests,
        dram_row_hit_rate=result.dram_row_hit_rate,
        extras=extras,
    )


def simulate(
    trace: KernelTrace,
    config: Optional[GPUConfig] = None,
    design: Optional[DesignSpec] = None,
    victim_share_factor: int = 1,
    timeline=None,
    obs: Optional[Observability] = None,
    fidelity: str = "timing",
) -> RunResult:
    """Run one kernel on one GPU design and return its statistics.

    Args:
        trace: Kernel trace (see :mod:`repro.trace`).
        config: Architectural parameters; defaults to the paper's Table 2.
        design: Cache-management design; defaults to the baseline (BS).
        victim_share_factor: ``S_v`` for victim-bit sharing ablations.
        timeline: Optional :class:`~repro.stats.timeline.Timeline` to
            sample during the run.
        obs: Optional :class:`~repro.obs.Observability` for event tracing
            and metrics collection.
        fidelity: ``"timing"`` (default) runs the cycle-accurate engine;
            ``"functional"`` runs the vectorized replay backend — cache
            counters are bit-identical to :func:`repro.sim.replay.replay`
            while ``cycles``/``avg_load_latency`` come from the linear
            timing estimator (``extras["estimated_cycles"]`` marks them).
            Functional runs reject ``timeline``/``obs``.
    """
    if config is None:
        config = GPUConfig()
    if design is None:
        design = make_design("bs")
    if fidelity not in FIDELITIES:
        raise ValueError(
            f"unknown fidelity {fidelity!r}; expected one of {FIDELITIES}"
        )
    if fidelity == "functional":
        _check_functional_args(timeline, obs)
        return _run_functional([trace], config, design, victim_share_factor)
    return GPU(config, design, victim_share_factor, timeline=timeline, obs=obs).run(trace)
