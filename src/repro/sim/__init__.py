"""Simulator: configuration, designs, memory system, engine, replay."""

from repro.sim.config import GPUConfig
from repro.sim.designs import DESIGN_KEYS, DesignSpec, make_design
from repro.sim.replay import ReplayResult, build_core_streams, replay
from repro.sim.simulator import GPU, RunResult, simulate, simulate_sequence
from repro.sim.sweep import Sweep, SweepPoint
from repro.sim.validation import ValidationReport, validate_run

__all__ = [
    "GPUConfig",
    "DesignSpec",
    "DESIGN_KEYS",
    "make_design",
    "GPU",
    "RunResult",
    "simulate",
    "simulate_sequence",
    "replay",
    "ReplayResult",
    "build_core_streams",
    "Sweep",
    "SweepPoint",
    "ValidationReport",
    "validate_run",
]
