"""Miss Status Holding Registers (MSHRs).

Each L1 cache owns an MSHR file (Table 2: 32 MSHRs/core).  Outstanding
line fills occupy one entry from the time the miss is issued until the
fill response arrives.  Requests to a line that already has an entry are
*merged*: they complete when the original fill does and generate no new
L2 traffic.  When the file is full the core's memory stage stalls until an
entry retires — in the timing model, a transaction's start time is pushed
to :meth:`MSHRFile.earliest_free`.

Entries are expired lazily: the memory system calls :meth:`expire` with
the current time before consulting the file, which is correct because
transactions are processed in global time order.

The file keeps a min-heap of ``(ready_time, line_addr)`` alongside the
address-keyed dict, so :meth:`expire` is O(1) when nothing has retired
(the overwhelmingly common case — it runs on *every* load) and
:meth:`earliest_free` needs no scan.  An entry's ready time is fixed at
allocation and entries are only removed via :meth:`expire`/:meth:`reset`,
so heap and dict stay exactly in sync — no lazy-deletion bookkeeping.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

__all__ = ["MSHREntry", "MSHRFile"]


class MSHREntry:
    """One in-flight line fill."""

    __slots__ = ("line_addr", "ready_time", "merges", "bypassed")

    def __init__(self, line_addr: int, ready_time: int, bypassed: bool = False) -> None:
        self.line_addr = line_addr
        self.ready_time = ready_time
        self.merges = 0
        self.bypassed = bypassed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<MSHREntry line={self.line_addr:#x} ready={self.ready_time} "
            f"merges={self.merges}>"
        )


class MSHRFile:
    """Fixed-capacity table of in-flight misses, keyed by line address."""

    def __init__(self, entries: int = 32, max_merges: int = 8) -> None:
        if entries < 1:
            raise ValueError(f"MSHR file needs >= 1 entry, got {entries}")
        if max_merges < 1:
            raise ValueError(f"max_merges must be >= 1, got {max_merges}")
        self.capacity = entries
        self.max_merges = max_merges
        self._pending: Dict[int, MSHREntry] = {}
        self._ready_heap: List[Tuple[int, int]] = []
        self.peak_occupancy = 0
        self.total_allocations = 0
        self.total_merges = 0
        self.full_stalls = 0

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def full(self) -> bool:
        return len(self._pending) >= self.capacity

    def expire(self, now: int) -> None:
        """Retire entries whose fill response has arrived by ``now``."""
        heap = self._ready_heap
        if not heap or heap[0][0] > now:
            return
        pending = self._pending
        while heap and heap[0][0] <= now:
            _, addr = heapq.heappop(heap)
            del pending[addr]

    def lookup(self, line_addr: int) -> Optional[MSHREntry]:
        """Return the in-flight entry for ``line_addr``, if any."""
        return self._pending.get(line_addr)

    def merge(self, entry: MSHREntry) -> bool:
        """Attach a request to an existing entry.

        Returns ``False`` when the entry's merge capacity is exhausted, in
        which case the requester must stall and retry (modelled upstream
        as a delay to the entry's ready time).
        """
        if entry.merges + 1 >= self.max_merges:
            return False
        entry.merges += 1
        self.total_merges += 1
        return True

    def allocate(self, line_addr: int, ready_time: int, bypassed: bool = False) -> MSHREntry:
        """Create an entry for a new outstanding miss.

        The caller must ensure the file is not full (``full`` property /
        :meth:`earliest_free`); allocating into a full file is a modelling
        bug and raises.
        """
        if self.full:
            raise RuntimeError("MSHR allocate on a full file; caller must stall")
        if line_addr in self._pending:
            raise RuntimeError(f"duplicate MSHR allocation for line {line_addr:#x}")
        entry = MSHREntry(line_addr, ready_time, bypassed)
        self._pending[line_addr] = entry
        heapq.heappush(self._ready_heap, (ready_time, line_addr))
        self.total_allocations += 1
        if len(self._pending) > self.peak_occupancy:
            self.peak_occupancy = len(self._pending)
        return entry

    def earliest_free(self) -> int:
        """Time at which the next entry retires (stall-until time).

        Only meaningful when the file is non-empty.
        """
        heap = self._ready_heap
        return heap[0][0] if heap else 0

    def note_full_stall(self) -> None:
        self.full_stalls += 1

    def reset(self) -> None:
        self._pending.clear()
        self._ready_heap.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MSHRFile {len(self._pending)}/{self.capacity}>"
