"""Uniform-random replacement (seeded, deterministic)."""

from __future__ import annotations

import random
from typing import Sequence

from repro.cache.line import CacheLine
from repro.cache.replacement.base import ReplacementPolicy

__all__ = ["RandomPolicy"]


class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random way.

    Random replacement is a common GPU L1 design point (it needs no
    recency state at all) and a useful control in policy studies.
    """

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def on_fill(self, ways: Sequence[CacheLine], way: int, now: int) -> None:
        pass

    def on_hit(self, ways: Sequence[CacheLine], way: int, now: int) -> None:
        pass

    def select_victim(self, ways: Sequence[CacheLine], now: int) -> int:
        return self._rng.randrange(len(ways))
