"""Classic recency-stamp replacement policies: LRU, MRU and FIFO.

LRU is the paper's baseline (BS) L1 replacement policy.  The stamp-based
implementation is O(ways) per victim selection, which is exact and cheap
at GPU associativities (4–16 ways).
"""

from __future__ import annotations

from typing import Sequence

from repro.cache.line import CacheLine
from repro.cache.replacement.base import ReplacementPolicy

__all__ = ["LRUPolicy", "MRUPolicy", "FIFOPolicy"]


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used replacement.

    Each line carries a monotonically increasing access stamp; the victim
    is the line with the smallest stamp.
    """

    name = "lru"

    def __init__(self) -> None:
        self._tick = 0
        self._stamps = None

    def _next_tick(self) -> int:
        self._tick += 1
        return self._tick

    def on_fill(self, ways: Sequence[CacheLine], way: int, now: int) -> None:
        ways[way].stamp = self._next_tick()

    def on_hit(self, ways: Sequence[CacheLine], way: int, now: int) -> None:
        ways[way].stamp = self._next_tick()

    def select_victim(self, ways: Sequence[CacheLine], now: int) -> int:
        victim = 0
        best = ways[0].stamp
        for i in range(1, len(ways)):
            if ways[i].stamp < best:
                best = ways[i].stamp
                victim = i
        return victim

    # -- flat fast path -------------------------------------------------
    def flat_bind(self, store) -> bool:
        if self._stamps is not None and self._stamps is not store.stamp:
            # Already serving another cache's arrays; that cache keeps the
            # flat path, later caches sharing this instance fall back to
            # the object path (both write the same per-line state).
            return False
        self._stamps = store.stamp
        return True

    def flat_on_fill(self, index: int, now: int) -> None:
        self._tick += 1
        self._stamps[index] = self._tick

    def flat_on_hit(self, index: int, now: int) -> None:
        self._tick += 1
        self._stamps[index] = self._tick

    def flat_select_victim(self, base: int, top: int, now: int) -> int:
        # Stamps are unique, so index-of-min is exact; min()+.index() are
        # both C-speed, and first-minimum matches the object-path loop.
        seg = self._stamps[base:top]
        return seg.index(min(seg))


class MRUPolicy(LRUPolicy):
    """Most-recently-used replacement (anti-LRU; useful for thrashing tests)."""

    name = "mru"

    def select_victim(self, ways: Sequence[CacheLine], now: int) -> int:
        victim = 0
        best = ways[0].stamp
        for i in range(1, len(ways)):
            if ways[i].stamp > best:
                best = ways[i].stamp
                victim = i
        return victim

    def flat_select_victim(self, base: int, top: int, now: int) -> int:
        seg = self._stamps[base:top]
        return seg.index(max(seg))


class FIFOPolicy(LRUPolicy):
    """First-in-first-out replacement: stamp is set on fill only."""

    name = "fifo"

    def on_hit(self, ways: Sequence[CacheLine], way: int, now: int) -> None:
        # FIFO ignores hits: eviction order is fill order.
        pass

    def flat_on_hit(self, index: int, now: int) -> None:
        pass
