"""Re-Reference Interval Prediction (RRIP) replacement [Jaleel et al., ISCA'10].

The paper's BS-S design is the baseline with *3-bit SRRIP* in the L1, and
G-Cache itself is built "on top of RRIP": line hotness is judged by RRPV
and bypass ages RRPVs.  This module provides:

* :class:`SRRIPPolicy` — static RRIP with hit-priority (RRPV=0 on hit) and
  long-re-reference insertion (RRPV = max-1).
* :class:`BRRIPPolicy` — bimodal RRIP: inserts at RRPV=max most of the
  time, max-1 with low probability; resists thrashing.
* :class:`DRRIPPolicy` — dynamic set-dueling between SRRIP and BRRIP.

All of them store the prediction value in ``CacheLine.rrpv``.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.cache.line import CacheLine
from repro.cache.replacement.base import ReplacementPolicy

__all__ = ["SRRIPPolicy", "BRRIPPolicy", "DRRIPPolicy"]


class SRRIPPolicy(ReplacementPolicy):
    """Static RRIP with hit-priority promotion.

    Args:
        bits: Width of the RRPV field.  The paper uses 3 bits, giving
            RRPVs in [0, 7].
        insertion_rrpv: RRPV assigned on fill.  Defaults to ``max - 1``
            ("long" re-reference interval), the SRRIP-HP configuration.
    """

    name = "srrip"

    def __init__(self, bits: int = 3, insertion_rrpv: int | None = None) -> None:
        if bits < 1:
            raise ValueError(f"RRPV width must be >= 1 bit, got {bits}")
        self.bits = bits
        self.max_rrpv = (1 << bits) - 1
        if insertion_rrpv is None:
            insertion_rrpv = self.max_rrpv - 1
        if not 0 <= insertion_rrpv <= self.max_rrpv:
            raise ValueError(
                f"insertion RRPV {insertion_rrpv} out of range [0, {self.max_rrpv}]"
            )
        self.insertion_rrpv = insertion_rrpv
        self._rrpvs = None

    def fill_rrpv(self) -> int:
        """RRPV to assign to a newly inserted line (hook for BRRIP)."""
        return self.insertion_rrpv

    def on_fill(self, ways: Sequence[CacheLine], way: int, now: int) -> None:
        ways[way].rrpv = self.fill_rrpv()

    def on_hit(self, ways: Sequence[CacheLine], way: int, now: int) -> None:
        # Hit-priority (HP) promotion: a reused line is predicted
        # near-immediate re-reference.
        ways[way].rrpv = 0

    def select_victim(self, ways: Sequence[CacheLine], now: int) -> int:
        # Find a line with distant prediction (RRPV == max); if none, age
        # everyone until one appears.  Ties break toward the lowest way,
        # matching the hardware priority encoder in the RRIP paper.
        while True:
            for i, line in enumerate(ways):
                if line.rrpv >= self.max_rrpv:
                    return i
            for line in ways:
                line.rrpv += 1

    # -- flat fast path -------------------------------------------------
    def flat_bind(self, store) -> bool:
        if self._rrpvs is not None and self._rrpvs is not store.rrpv:
            # One policy instance per cache is the contract; a shared
            # instance keeps the flat path only for its first cache.
            return False
        self._rrpvs = store.rrpv
        return True

    def flat_on_fill(self, index: int, now: int) -> None:
        self._rrpvs[index] = self.fill_rrpv()

    def flat_on_hit(self, index: int, now: int) -> None:
        self._rrpvs[index] = 0

    def flat_select_victim(self, base: int, top: int, now: int) -> int:
        # The aging loop increments every line once per round until some
        # RRPV reaches max; that is equivalent to one bulk add of
        # ``max_rrpv - max(seg)`` (no clamping happens in the loop), and
        # the victim is the first line holding the pre-aging maximum.
        rrpvs = self._rrpvs
        seg = rrpvs[base:top]
        top_val = max(seg)
        if top_val < self.max_rrpv:
            delta = self.max_rrpv - top_val
            for i in range(base, top):
                rrpvs[i] += delta
        elif top_val > self.max_rrpv:
            # Out-of-range RRPV planted by external code: fall back to the
            # object path's first->=max rule rather than first-of-max.
            for i, value in enumerate(seg):
                if value >= self.max_rrpv:
                    return i
        return seg.index(top_val)


class BRRIPPolicy(SRRIPPolicy):
    """Bimodal RRIP: thrash-resistant insertion.

    Inserts at ``max`` RRPV with probability ``1 - epsilon`` and at
    ``max - 1`` with probability ``epsilon`` (default 1/32, per the RRIP
    paper).  A seeded RNG keeps runs deterministic.
    """

    name = "brrip"

    def __init__(self, bits: int = 3, epsilon: float = 1.0 / 32.0, seed: int = 0) -> None:
        super().__init__(bits=bits)
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        self.epsilon = epsilon
        self._rng = random.Random(seed)

    def fill_rrpv(self) -> int:
        if self._rng.random() < self.epsilon:
            return self.max_rrpv - 1
        return self.max_rrpv


class DRRIPPolicy(ReplacementPolicy):
    """Dynamic RRIP via set dueling.

    A handful of *leader sets* are dedicated to SRRIP and to BRRIP; a
    saturating policy-selection counter (PSEL) tracks which leader group
    misses less, and follower sets use the winner's insertion rule.

    Set identity is communicated through :meth:`bind_set`, called by the
    cache before each operation (the replacement interface itself is
    set-index-agnostic).
    """

    name = "drrip"

    def __init__(
        self,
        num_sets: int,
        bits: int = 3,
        dueling_sets: int = 4,
        psel_bits: int = 10,
        seed: int = 0,
    ) -> None:
        if num_sets < 2 * dueling_sets:
            raise ValueError(
                f"{num_sets} sets cannot host 2x{dueling_sets} leader sets"
            )
        self.num_sets = num_sets
        self._srrip = SRRIPPolicy(bits=bits)
        self._brrip = BRRIPPolicy(bits=bits, seed=seed)
        self.max_rrpv = self._srrip.max_rrpv
        self.psel_max = (1 << psel_bits) - 1
        self.psel = self.psel_max // 2
        stride = num_sets // dueling_sets
        self.srrip_leaders = frozenset(range(0, num_sets, stride))
        self.brrip_leaders = frozenset(
            (s + stride // 2) % num_sets for s in self.srrip_leaders
        )
        self._set_index = 0

    def bind_set(self, set_index: int) -> None:
        """Tell the policy which set the next hooks refer to."""
        self._set_index = set_index

    def record_miss(self, set_index: int) -> None:
        """Update PSEL when a leader set misses.

        A miss in an SRRIP leader is evidence against SRRIP (PSEL up);
        a miss in a BRRIP leader is evidence against BRRIP (PSEL down).
        """
        if set_index in self.srrip_leaders:
            self.psel = min(self.psel_max, self.psel + 1)
        elif set_index in self.brrip_leaders:
            self.psel = max(0, self.psel - 1)

    def _insertion_policy(self) -> SRRIPPolicy:
        if self._set_index in self.srrip_leaders:
            return self._srrip
        if self._set_index in self.brrip_leaders:
            return self._brrip
        # Followers: PSEL below midpoint favours SRRIP.
        return self._srrip if self.psel < (self.psel_max + 1) // 2 else self._brrip

    def on_fill(self, ways: Sequence[CacheLine], way: int, now: int) -> None:
        ways[way].rrpv = self._insertion_policy().fill_rrpv()

    def on_hit(self, ways: Sequence[CacheLine], way: int, now: int) -> None:
        ways[way].rrpv = 0

    def select_victim(self, ways: Sequence[CacheLine], now: int) -> int:
        return self._srrip.select_victim(ways, now)
