"""Pluggable replacement policies for the generic cache substrate."""

from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.belady import NEVER, BeladyPolicy
from repro.cache.replacement.lru import FIFOPolicy, LRUPolicy, MRUPolicy
from repro.cache.replacement.nru import NRUPolicy
from repro.cache.replacement.random_policy import RandomPolicy
from repro.cache.replacement.rrip import BRRIPPolicy, DRRIPPolicy, SRRIPPolicy

__all__ = [
    "ReplacementPolicy",
    "LRUPolicy",
    "MRUPolicy",
    "FIFOPolicy",
    "NRUPolicy",
    "RandomPolicy",
    "SRRIPPolicy",
    "BRRIPPolicy",
    "DRRIPPolicy",
    "BeladyPolicy",
    "NEVER",
]


def make_replacement(name: str, **kwargs) -> ReplacementPolicy:
    """Build a replacement policy by name (used by configs and CLIs)."""
    registry = {
        "lru": LRUPolicy,
        "mru": MRUPolicy,
        "fifo": FIFOPolicy,
        "nru": NRUPolicy,
        "random": RandomPolicy,
        "srrip": SRRIPPolicy,
        "brrip": BRRIPPolicy,
        "drrip": DRRIPPolicy,
        "opt": BeladyPolicy,
    }
    try:
        cls = registry[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; known: {sorted(registry)}"
        ) from None
    return cls(**kwargs)
