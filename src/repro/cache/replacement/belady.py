"""Belady's optimal replacement (OPT) for offline analysis.

Section 3.1 of the paper argues that *"even the optimal replacement policy
shows very limited improvement due to frequent early eviction"* — the
motivation for bypassing rather than smarter replacement.  This policy lets
us reproduce that argument quantitatively.

OPT requires future knowledge, so it only works with the trace-replay
driver (:mod:`repro.sim.replay`), which precomputes, for every access, the
position of the *next* access to the same line and publishes it through
:attr:`BeladyPolicy.next_use_hint` just before invoking the cache.  The
policy stores the hint in ``CacheLine.stamp`` and evicts the line whose
next use is furthest in the future.
"""

from __future__ import annotations

from typing import Sequence

from repro.cache.line import CacheLine
from repro.cache.replacement.base import ReplacementPolicy

__all__ = ["BeladyPolicy", "NEVER"]

#: Sentinel next-use position for lines that are never referenced again.
NEVER = 1 << 62


class BeladyPolicy(ReplacementPolicy):
    """Optimal (clairvoyant) replacement.

    Attributes:
        next_use_hint: Position of the next access to the line being
            filled / hit.  Must be set by the driver before each cache
            access; defaults to :data:`NEVER` so that forgetting to set it
            degrades to "evict the current fill first" rather than
            crashing.
    """

    name = "opt"

    def __init__(self) -> None:
        self.next_use_hint: int = NEVER

    def on_fill(self, ways: Sequence[CacheLine], way: int, now: int) -> None:
        ways[way].stamp = self.next_use_hint

    def on_hit(self, ways: Sequence[CacheLine], way: int, now: int) -> None:
        ways[way].stamp = self.next_use_hint

    def select_victim(self, ways: Sequence[CacheLine], now: int) -> int:
        victim = 0
        furthest = ways[0].stamp
        for i in range(1, len(ways)):
            if ways[i].stamp > furthest:
                furthest = ways[i].stamp
                victim = i
        return victim
