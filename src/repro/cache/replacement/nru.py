"""Not-recently-used (NRU) replacement.

NRU is the 1-bit ancestor of RRIP (RRIP with ``bits=1`` degenerates to
NRU); real GPUs often ship NRU-like pseudo-LRU in the L1.  Included both
as a baseline and to exercise the degenerate end of the RRIP family.
"""

from __future__ import annotations

from typing import Sequence

from repro.cache.line import CacheLine
from repro.cache.replacement.rrip import SRRIPPolicy

__all__ = ["NRUPolicy"]


class NRUPolicy(SRRIPPolicy):
    """NRU expressed as 1-bit RRIP.

    The "referenced" bit is ``rrpv == 0``; a victim is any line with the
    bit clear, and when all lines are referenced every bit is cleared
    (which is exactly the RRIP aging loop at 1 bit).
    """

    name = "nru"

    def __init__(self) -> None:
        super().__init__(bits=1, insertion_rrpv=0)
