"""Replacement-policy interface.

A replacement policy owns the *recency state* of the lines in one cache
(it is instantiated per cache, and operates on one set at a time).  It is
deliberately minimal — three hooks — so that management policies (bypass /
insertion, :mod:`repro.cache.policies`) can compose with any of them.

All hooks receive the full list of ways for the affected set so that
policies with set-global behaviour (e.g. RRIP aging) can be expressed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, List, Sequence

from repro.cache.line import CacheLine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.tagstore import FlatTagStore

__all__ = ["ReplacementPolicy"]


class ReplacementPolicy(ABC):
    """Chooses victims and maintains per-line recency state.

    Subclasses must be stateless with respect to sets (all per-line state
    lives on the :class:`~repro.cache.line.CacheLine` itself) so that one
    policy instance can serve an entire cache.
    """

    #: Short identifier used in reports (e.g. ``"lru"``, ``"srrip"``).
    name: str = "base"

    @abstractmethod
    def on_fill(self, ways: Sequence[CacheLine], way: int, now: int) -> None:
        """Initialise recency state of ``ways[way]`` after a fill."""

    @abstractmethod
    def on_hit(self, ways: Sequence[CacheLine], way: int, now: int) -> None:
        """Update recency state of ``ways[way]`` after a hit."""

    @abstractmethod
    def select_victim(self, ways: Sequence[CacheLine], now: int) -> int:
        """Return the way index to evict.

        Called only when every way is valid; an invalid way is always
        filled first by the cache itself.
        """

    # ------------------------------------------------------------------
    # Flat (array-backed) fast path
    # ------------------------------------------------------------------
    # A policy may additionally operate directly on the cache's packed
    # tag-store arrays (see repro.cache.tagstore).  The cache offers the
    # store once at construction via ``flat_bind``; a policy that returns
    # True promises that, for any access sequence, the ``flat_*`` hooks
    # leave the store in *exactly* the state the object hooks would have
    # left the equivalent CacheLine list in (bit-identical replacement
    # decisions included) — the property suite in
    # tests/test_cache_equivalence.py enforces this promise.
    #
    # Flat hooks receive flat slot indices: ``idx = base + way`` where
    # ``base = set_index * ways``.  ``flat_select_victim`` returns the
    # *way* (not the flat index), mirroring ``select_victim``.

    def flat_bind(self, store: "FlatTagStore") -> bool:
        """Adopt ``store`` for array-based updates; False = unsupported."""
        return False

    def flat_on_fill(self, index: int, now: int) -> None:  # pragma: no cover
        raise NotImplementedError

    def flat_on_hit(self, index: int, now: int) -> None:  # pragma: no cover
        raise NotImplementedError

    def flat_select_victim(self, base: int, top: int, now: int) -> int:  # pragma: no cover
        raise NotImplementedError

    def invalid_way(self, ways: Sequence[CacheLine]) -> int:
        """Return the index of an invalid way, or ``-1`` if the set is full."""
        for i, line in enumerate(ways):
            if not line.valid:
                return i
        return -1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__}>"


def validate_full(ways: Sequence[CacheLine]) -> None:
    """Debug helper: assert that every way is valid (victim precondition)."""
    for line in ways:
        if not line.valid:
            raise AssertionError("select_victim called with an invalid way present")
