"""Protection-Distance Policies (PDP) [Duong et al., MICRO-45 '12].

The paper compares G-Cache against three PDP configurations applied to the
GPU L1:

* **PDP-3** — dynamic PDP with 3-bit per-line protecting-distance counters
  (coarsely quantized decrements, cheaper but less stable),
* **PDP-8** — dynamic PDP with 8-bit counters (near-exact),
* **SPDP-B** — *static* PDP with bypass, using the best per-benchmark PD
  found by an offline sweep (the paper's Table 3 lists the optimal PDs).

Mechanism: every line carries a protecting-distance counter (PDC).  A fill
or a hit (re)sets the PDC; every access to the set decrements the PDCs of
all its lines (once per ``step`` accesses when quantized).  A line is
*protected* while its PDC is positive.  The victim must be an unprotected
line; if every line is protected, the incoming fill is **bypassed**.

The dynamic variants sample reuse distances (RD, measured in accesses to
the same set) through per-set FIFOs into an RDD histogram and periodically
choose the PD maximizing the hits-per-unit-occupancy estimator from the
PDP paper:

    E(dp) = sum_{i<=dp} N_i  /  ( sum_{i<=dp} i*N_i + (N_t - sum_{i<=dp} N_i) * dp )

where ``N_i`` is the RDD count at distance ``i`` and ``N_t`` the total
number of sampled accesses.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional

from repro.cache.policies.base import (
    FillContext,
    FillDecision,
    ManagementPolicy,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.cache import Cache

__all__ = ["StaticPDPPolicy", "DynamicPDPPolicy", "ReuseDistanceSampler", "optimal_pd"]


def optimal_pd(rdd: List[int], total: int, max_pd: int, min_pd: int = 1) -> int:
    """Choose the protecting distance maximizing the PDP estimator.

    Args:
        rdd: Histogram of sampled reuse distances; ``rdd[i]`` counts
            accesses whose previous touch was ``i`` set-accesses earlier.
            Index 0 is unused (an RD of 0 is impossible).
        total: Total number of sampled accesses, including those whose
            reuse distance exceeded the sampler's reach (treated as
            never-reused within any candidate PD).
        max_pd: Largest representable PD.
        min_pd: Smallest PD to consider.

    Returns:
        The PD in ``[min_pd, max_pd]`` with the highest estimated hit rate
        per unit of cache occupancy; ties go to the smaller PD.
    """
    if total <= 0:
        return max(min_pd, 1)
    best_pd = min_pd
    best_e = -1.0
    hits = 0
    weighted = 0
    limit = min(max_pd, len(rdd) - 1)
    for dp in range(1, limit + 1):
        n = rdd[dp] if dp < len(rdd) else 0
        hits += n
        weighted += dp * n
        if dp < min_pd:
            continue
        denom = weighted + (total - hits) * dp
        e = hits / denom if denom > 0 else 0.0
        if e > best_e + 1e-12:
            best_e = e
            best_pd = dp
    return best_pd


class ReuseDistanceSampler:
    """Per-set FIFO reuse-distance sampler feeding an RDD histogram.

    Each sampled set keeps a FIFO of the last ``fifo_depth`` line
    addresses accessed in it.  An access whose line appears at position
    ``d`` from the most-recent end has reuse distance ``d``; accesses not
    found in the FIFO count only toward the total (distance unknown and
    larger than the FIFO reach).

    Args:
        num_sets: Sets in the cache being sampled.
        fifo_depth: FIFO length (paper: 32 for PDP-3/PDP-8, 256 for
            SPDP-B's offline characterization).
        rdd_size: Number of RDD counters (paper: 256).
        sample_every: Sample one set in ``sample_every`` (1 = all sets).
    """

    def __init__(
        self,
        num_sets: int,
        fifo_depth: int = 32,
        rdd_size: int = 256,
        sample_every: int = 1,
    ) -> None:
        if fifo_depth < 1:
            raise ValueError(f"fifo_depth must be >= 1, got {fifo_depth}")
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.fifo_depth = fifo_depth
        self.rdd_size = rdd_size
        self.sample_every = sample_every
        self._fifos: dict[int, Deque[int]] = {
            s: deque(maxlen=fifo_depth)
            for s in range(num_sets)
            if s % sample_every == 0
        }
        self.rdd: List[int] = [0] * (rdd_size + 1)
        self.total = 0

    def observe(self, set_index: int, line_addr: int) -> Optional[int]:
        """Record an access; returns the measured RD or ``None``."""
        fifo = self._fifos.get(set_index)
        if fifo is None:
            return None
        self.total += 1
        rd: Optional[int] = None
        # Scan from the most recent entry (right end of the deque).
        for pos, addr in enumerate(reversed(fifo), start=1):
            if addr == line_addr:
                rd = pos
                break
        if rd is not None:
            self.rdd[min(rd, self.rdd_size)] += 1
        fifo.append(line_addr)
        return rd

    def decay(self) -> None:
        """Halve all counters (epoch aging, as in the PDP paper)."""
        self.rdd = [c >> 1 for c in self.rdd]
        self.total >>= 1


class StaticPDPPolicy(ManagementPolicy):
    """PDP with a fixed protecting distance and bypass (SPDP-B).

    Args:
        pd: The protecting distance.
        counter_bits: Width of the per-line PDC.  When ``pd`` exceeds the
            representable range, decrements happen once every
            ``ceil(pd / (2**bits - 1))`` set accesses (the PDP paper's
            quantization scheme).
        bypass: Whether a fully protected set bypasses the incoming fill
            (the "-B" in SPDP-B).  Without bypass, the line with the
            smallest PDC is evicted.
    """

    name = "spdp-b"

    def __init__(self, pd: int, counter_bits: int = 8, bypass: bool = True) -> None:
        if pd < 1:
            raise ValueError(f"protecting distance must be >= 1, got {pd}")
        if counter_bits < 1:
            raise ValueError(f"counter_bits must be >= 1, got {counter_bits}")
        self.counter_bits = counter_bits
        self.counter_max = (1 << counter_bits) - 1
        self.bypass = bypass
        self._cache: Optional["Cache"] = None
        self._set_ticks: List[int] = []
        self.pd = 0
        self.step = 1
        self.set_pd(pd)

    def set_pd(self, pd: int) -> None:
        """Change the protecting distance (used by the dynamic variant)."""
        self.pd = pd
        # Quantization: a PDC decrement represents `step` set accesses.
        self.step = max(1, -(-pd // self.counter_max))  # ceil division

    def _initial_pdc(self) -> int:
        return min(self.counter_max, -(-self.pd // self.step))

    def attach(self, cache: "Cache") -> None:
        self._cache = cache
        self._set_ticks = [0] * cache.num_sets

    def _tick_set(self, cache: "Cache", set_index: int) -> None:
        """Advance the set's access clock; decrement PDCs on step boundary."""
        self._set_ticks[set_index] += 1
        if self._set_ticks[set_index] % self.step != 0:
            return
        for line in cache.sets[set_index]:
            if line.valid and line.pd_counter > 0:
                line.pd_counter -= 1

    def on_hit(self, cache: "Cache", set_index: int, way: int, now: int) -> None:
        self._tick_set(cache, set_index)
        cache.sets[set_index][way].pd_counter = self._initial_pdc()

    def on_miss(self, cache: "Cache", set_index: int, now: int) -> None:
        self._tick_set(cache, set_index)

    def _unprotected_way(self, cache: "Cache", set_index: int) -> Optional[int]:
        ways = cache.sets[set_index]
        best = None
        best_pdc = None
        for i, line in enumerate(ways):
            if not line.valid:
                return i
            if line.pd_counter == 0:
                # Among unprotected lines prefer the least-recently filled.
                if best is None or line.fill_time < best_pdc:
                    best = i
                    best_pdc = line.fill_time
        return best

    def fill_decision(
        self, cache: "Cache", set_index: int, ctx: FillContext, now: int
    ) -> FillDecision:
        if not self.bypass:
            return FillDecision.INSERT
        if self._unprotected_way(cache, set_index) is None:
            return FillDecision.BYPASS
        return FillDecision.INSERT

    def choose_victim(self, cache: "Cache", set_index: int, now: int) -> Optional[int]:
        way = self._unprotected_way(cache, set_index)
        if way is not None:
            return way
        # Reachable only with bypass disabled: evict the smallest PDC.
        ways = cache.sets[set_index]
        return min(range(len(ways)), key=lambda i: ways[i].pd_counter)

    def on_insert(
        self, cache: "Cache", set_index: int, way: int, ctx: FillContext, now: int
    ) -> None:
        cache.sets[set_index][way].pd_counter = self._initial_pdc()


class DynamicPDPPolicy(StaticPDPPolicy):
    """Dynamic PDP (PDP-3 / PDP-8): PD recomputed from sampled RDDs.

    Args:
        counter_bits: PDC width — 3 for PDP-3, 8 for PDP-8.
        fifo_depth: Reuse-distance sampler FIFO length (paper: 32).
        rdd_size: Number of RDD counters (paper: 256).
        epoch_accesses: Recompute the PD every this many observed
            accesses; counters decay (halve) at each recompute.
        initial_pd: PD used before the first recompute.
        max_pd: Upper bound on the chosen PD (defaults to the sampler's
            RDD reach).
    """

    def __init__(
        self,
        counter_bits: int = 3,
        fifo_depth: int = 32,
        rdd_size: int = 256,
        epoch_accesses: int = 4096,
        initial_pd: int = 4,
        max_pd: Optional[int] = None,
    ) -> None:
        super().__init__(pd=initial_pd, counter_bits=counter_bits, bypass=True)
        self.name = f"pdp-{counter_bits}"
        self.fifo_depth = fifo_depth
        self.rdd_size = rdd_size
        self.epoch_accesses = epoch_accesses
        self.max_pd = max_pd if max_pd is not None else rdd_size
        self._sampler: Optional[ReuseDistanceSampler] = None
        self._since_epoch = 0
        self.pd_history: List[int] = [initial_pd]

    def attach(self, cache: "Cache") -> None:
        super().attach(cache)
        self._sampler = ReuseDistanceSampler(
            num_sets=cache.num_sets,
            fifo_depth=self.fifo_depth,
            rdd_size=self.rdd_size,
        )

    def _observe(self, cache: "Cache", set_index: int, line_addr: int) -> None:
        assert self._sampler is not None
        self._sampler.observe(set_index, line_addr)
        self._since_epoch += 1
        if self._since_epoch >= self.epoch_accesses:
            self._since_epoch = 0
            new_pd = optimal_pd(self._sampler.rdd, self._sampler.total, self.max_pd)
            self._sampler.decay()
            self.set_pd(new_pd)
            self.pd_history.append(new_pd)

    def on_hit(self, cache: "Cache", set_index: int, way: int, now: int) -> None:
        self._observe(cache, set_index, cache.sets[set_index][way].tag)
        super().on_hit(cache, set_index, way, now)

    def on_miss(self, cache: "Cache", set_index: int, now: int) -> None:
        # The missing address is observed at fill time (on_insert/on_bypass
        # both funnel through fill_decision, where ctx carries the address).
        super().on_miss(cache, set_index, now)

    def fill_decision(
        self, cache: "Cache", set_index: int, ctx: FillContext, now: int
    ) -> FillDecision:
        self._observe(cache, set_index, ctx.line_addr)
        return super().fill_decision(cache, set_index, ctx, now)
