"""Cache management (bypass / insertion) policies.

The baseline designs use :class:`NullManagementPolicy`; the PDP family
(PDP-3, PDP-8, SPDP-B) lives in :mod:`repro.cache.policies.pdp`; the
paper's G-Cache policy lives in :mod:`repro.core.gcache`.
"""

from repro.cache.policies.base import (
    FillContext,
    FillDecision,
    ManagementPolicy,
    NullManagementPolicy,
)
from repro.cache.policies.dead_block import DeadBlockPolicy
from repro.cache.policies.pdp import (
    DynamicPDPPolicy,
    ReuseDistanceSampler,
    StaticPDPPolicy,
    optimal_pd,
)

__all__ = [
    "FillContext",
    "FillDecision",
    "ManagementPolicy",
    "NullManagementPolicy",
    "StaticPDPPolicy",
    "DynamicPDPPolicy",
    "ReuseDistanceSampler",
    "DeadBlockPolicy",
    "optimal_pd",
]
