"""Management-policy interface: bypass + insertion control.

A *management policy* sits above the replacement policy and decides, per
fill, whether to insert or bypass, which victim to evict, and with what
insertion state.  The baseline designs (BS, BS-S) use the
:class:`NullManagementPolicy`, which never bypasses and delegates fully to
the replacement policy; PDP and G-Cache override the hooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.cache import Cache
    from repro.cache.line import CacheLine

__all__ = ["FillDecision", "FillContext", "ManagementPolicy", "NullManagementPolicy"]


class FillDecision(Enum):
    """Outcome of the fill-time bypass decision."""

    INSERT = "insert"
    BYPASS = "bypass"


@dataclass(slots=True)
class FillContext:
    """Metadata accompanying a fill request into a cache.

    Attributes:
        line_addr: Line address being filled.
        victim_hint: The victim-bit value attached to the L2 response
            (G-Cache, Section 4.2): ``True`` means this L1 requested the
            line before and lost it to early eviction.
        src_id: Identifier of the requesting L1 / SIMT core (used by the
            L2 victim-bit directory).
        is_write: Whether the triggering access was a store (only relevant
            for write-allocate caches).
    """

    line_addr: int
    victim_hint: bool = False
    src_id: int = 0
    is_write: bool = False


class ManagementPolicy:
    """Bypass / insertion hooks layered over a replacement policy.

    All hooks are optional; the defaults implement "always insert, let the
    replacement policy pick victims", i.e. a conventional cache.

    ``obs`` holds the run's event bus when tracing is enabled
    (:func:`repro.obs.wire`); ``None`` — the default — disables all
    emission at the cost of one attribute check per site.
    """

    name = "none"
    obs = None

    def attach(self, cache: "Cache") -> None:
        """Called once when the policy is bound to its cache."""

    def on_hit(self, cache: "Cache", set_index: int, way: int, now: int) -> None:
        """A lookup hit ``cache[set_index][way]``."""

    def on_miss(self, cache: "Cache", set_index: int, now: int) -> None:
        """A lookup missed in ``set_index`` (before any fill)."""

    def fill_decision(
        self, cache: "Cache", set_index: int, ctx: FillContext, now: int
    ) -> FillDecision:
        """Decide whether the incoming fill is inserted or bypassed."""
        return FillDecision.INSERT

    def choose_victim(
        self, cache: "Cache", set_index: int, now: int
    ) -> Optional[int]:
        """Pick the victim way, or ``None`` to defer to replacement."""
        return None

    def on_insert(
        self, cache: "Cache", set_index: int, way: int, ctx: FillContext, now: int
    ) -> None:
        """Adjust insertion state after the replacement policy's on_fill."""

    def on_bypass(
        self, cache: "Cache", set_index: int, ctx: FillContext, now: int
    ) -> None:
        """A fill into ``set_index`` was bypassed."""

    def on_evict(
        self, cache: "Cache", set_index: int, way: int, line: "CacheLine", now: int
    ) -> None:
        """``line`` is about to be evicted from ``cache[set_index][way]``."""

    def epoch(self, now: int) -> None:
        """Periodic housekeeping (e.g. G-Cache bypass-switch shutdown)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__}>"


class NullManagementPolicy(ManagementPolicy):
    """Conventional cache behaviour: insert everything, never bypass."""

    name = "none"
