"""Counter-based dead-block prediction bypass.

An additional comparison point from the paper's related work (Kharbutli &
Solihin, IEEE TC '08, and the dead-block line of work [15, 18, 20]): a
prediction table remembers how many times lines from each address region
were reused in their previous generation.  A line predicted *dead on
arrival* (zero prior reuse) is bypassed; a resident line that has
consumed its predicted reuses is marked dead and becomes the preferred
victim.

This is intentionally the CPU-style heuristic the paper argues is "less
effective" on GPUs: its learning signal is destroyed by the same early
evictions it is trying to predict — under heavy inter-warp contention
every generation looks dead, so it over-bypasses genuinely hot data.
Including it lets the repository quantify that argument.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.cache.policies.base import (
    FillContext,
    FillDecision,
    ManagementPolicy,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.cache import Cache

__all__ = ["DeadBlockPolicy"]


class DeadBlockPolicy(ManagementPolicy):
    """Counter-based dead-block predictor with bypass.

    Args:
        table_bits: log2 of the prediction-table size.
        region_shift: Line-address bits dropped when indexing the table
            (lines of one region share a predictor entry).
        confidence: Consecutive dead generations required before the
            predictor starts bypassing fills of that region.
    """

    name = "dbp"

    def __init__(
        self,
        table_bits: int = 12,
        region_shift: int = 2,
        confidence: int = 2,
    ) -> None:
        if table_bits < 1:
            raise ValueError(f"table_bits must be >= 1, got {table_bits}")
        if confidence < 1:
            raise ValueError(f"confidence must be >= 1, got {confidence}")
        self.table_size = 1 << table_bits
        self.region_shift = region_shift
        self.confidence = confidence
        #: region index -> (predicted reuses, dead-generation streak)
        self._table: Dict[int, tuple] = {}
        self.predictions = 0
        self.dead_on_arrival = 0

    def _index(self, line_addr: int) -> int:
        region = line_addr >> self.region_shift
        return (region ^ (region >> 7)) & (self.table_size - 1)

    def _entry(self, line_addr: int) -> tuple:
        return self._table.get(self._index(line_addr), (1, 0))

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def fill_decision(
        self, cache: "Cache", set_index: int, ctx: FillContext, now: int
    ) -> FillDecision:
        predicted, streak = self._entry(ctx.line_addr)
        self.predictions += 1
        if predicted == 0 and streak >= self.confidence:
            self.dead_on_arrival += 1
            return FillDecision.BYPASS
        return FillDecision.INSERT

    def choose_victim(self, cache: "Cache", set_index: int, now: int) -> Optional[int]:
        # Prefer a resident line that already consumed its predicted
        # reuses (dead); otherwise defer to the replacement policy.
        for way, line in enumerate(cache.sets[set_index]):
            predicted, _ = self._entry(line.tag)
            if line.use_count >= predicted > 0:
                return way
        return None

    def on_evict(self, cache: "Cache", set_index: int, way: int, line, now: int) -> None:
        idx = self._index(line.tag)
        _, streak = self._table.get(idx, (1, 0))
        if line.use_count == 0:
            self._table[idx] = (0, streak + 1)
        else:
            self._table[idx] = (line.use_count, 0)

    @property
    def dead_prediction_rate(self) -> float:
        return self.dead_on_arrival / self.predictions if self.predictions else 0.0
