"""Reference (object-per-line) cache implementation.

This is the original :class:`~repro.cache.cache.Cache` hot-loop retained
verbatim after the array-backed rewrite (see
:mod:`repro.cache.tagstore`).  It walks per-way
:class:`~repro.cache.line.CacheLine` objects exactly as the pre-overhaul
model did, and exists for one purpose: the equivalence property suite
(``tests/test_cache_equivalence.py``) drives it and the production
:class:`~repro.cache.cache.Cache` with identical random access streams
and asserts bit-identical hit/miss/bypass/eviction behaviour.

It intentionally shares the :class:`LookupResult` / :class:`FillResult`
types and the policy interfaces with the production cache, so any future
policy change is automatically cross-checked against both
implementations.  Do not "optimise" this module — its slowness is the
point.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.cache import FillResult, LookupResult, _is_pow2
from repro.cache.line import CacheLine
from repro.cache.policies.base import (
    FillContext,
    FillDecision,
    ManagementPolicy,
    NullManagementPolicy,
)
from repro.cache.replacement.base import ReplacementPolicy
from repro.stats.counters import CacheStats

__all__ = ["ReferenceCache"]


class ReferenceCache:
    """One set-associative cache bank, modelled line-object by line-object.

    Constructor arguments mirror :class:`~repro.cache.cache.Cache`.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        line_size: int,
        replacement: ReplacementPolicy,
        mgmt: Optional[ManagementPolicy] = None,
        write_back: bool = False,
        write_allocate: bool = False,
        pre_shift: int = 0,
    ) -> None:
        if size_bytes % (ways * line_size) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by ways*line "
                f"({ways}*{line_size})"
            )
        num_sets = size_bytes // (ways * line_size)
        if not _is_pow2(num_sets):
            raise ValueError(f"{name}: number of sets must be a power of two, got {num_sets}")
        if write_allocate and not write_back:
            raise ValueError(f"{name}: write-allocate requires write-back in this model")

        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_size = line_size
        self.num_sets = num_sets
        self.pre_shift = pre_shift
        self.write_back = write_back
        self.write_allocate = write_allocate
        self.replacement = replacement
        self.mgmt = mgmt if mgmt is not None else NullManagementPolicy()
        self.obs = None
        self.stats = CacheStats()
        self.sets: List[List[CacheLine]] = [
            [CacheLine() for _ in range(ways)] for _ in range(num_sets)
        ]
        self._set_mask = num_sets - 1
        self._repl_binds = hasattr(replacement, "bind_set")
        self._repl_misses = hasattr(replacement, "record_miss")
        self._tick_cb = None
        self._tick_interval = 0
        self._tick_left = 0
        self.mgmt.attach(self)

    def register_access_tick(self, interval: int, callback) -> None:
        """Same periodic access-tick contract as the production Cache."""
        if interval > 0:
            self._tick_cb = callback
            self._tick_interval = interval
            self._tick_left = interval

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def set_index(self, line_addr: int) -> int:
        return (line_addr >> self.pre_shift) & self._set_mask

    def find_way(self, line_addr: int) -> int:
        ways = self.sets[self.set_index(line_addr)]
        for i, line in enumerate(ways):
            if line.valid and line.tag == line_addr:
                return i
        return -1

    def probe(self, line_addr: int) -> bool:
        return self.find_way(line_addr) >= 0

    # ------------------------------------------------------------------
    # Access operations
    # ------------------------------------------------------------------
    def lookup(self, line_addr: int, now: int, is_write: bool = False) -> LookupResult:
        set_index = self.set_index(line_addr)
        ways = self.sets[set_index]
        if self._repl_binds:
            self.replacement.bind_set(set_index)

        if is_write:
            self.stats.stores += 1
        else:
            self.stats.loads += 1

        interval = self._tick_interval
        if interval:
            left = self._tick_left - 1
            if left:
                self._tick_left = left
            else:
                self._tick_left = interval
                self._tick_cb(self, now)

        for way, line in enumerate(ways):
            if line.valid and line.tag == line_addr:
                line.use_count += 1
                line.last_access = now
                if is_write:
                    self.stats.store_hits += 1
                    if self.write_back:
                        line.dirty = True
                else:
                    self.stats.load_hits += 1
                self.replacement.on_hit(ways, way, now)
                self.mgmt.on_hit(self, set_index, way, now)
                return LookupResult(hit=True, set_index=set_index, way=way, line=line)

        if self._repl_misses:
            self.replacement.record_miss(set_index)
        self.mgmt.on_miss(self, set_index, now)
        return LookupResult(hit=False, set_index=set_index)

    def fill(self, line_addr: int, now: int, ctx: Optional[FillContext] = None) -> FillResult:
        if ctx is None:
            ctx = FillContext(line_addr=line_addr)
        set_index = self.set_index(line_addr)
        ways = self.sets[set_index]
        if self._repl_binds:
            self.replacement.bind_set(set_index)

        for way, line in enumerate(ways):
            if line.valid and line.tag == line_addr:
                return FillResult(set_index=set_index, already_present=True, way=way)

        decision = self.mgmt.fill_decision(self, set_index, ctx, now)
        if decision is FillDecision.BYPASS:
            self.stats.bypasses += 1
            self.mgmt.on_bypass(self, set_index, ctx, now)
            return FillResult(set_index=set_index, bypassed=True)

        way = -1
        for i, line in enumerate(ways):
            if not line.valid:
                way = i
                break

        evicted_tag = -1
        writeback = False
        if way < 0:
            chosen = self.mgmt.choose_victim(self, set_index, now)
            way = chosen if chosen is not None else self.replacement.select_victim(ways, now)
            victim = ways[way]
            evicted_tag = victim.tag
            writeback = self.write_back and victim.dirty
            self._retire(set_index, way, victim, now)

        line = ways[way]
        line.fill(line_addr, now)
        if ctx.is_write and self.write_allocate:
            line.dirty = True
        self.stats.fills += 1
        self.replacement.on_fill(ways, way, now)
        self.mgmt.on_insert(self, set_index, way, ctx, now)
        return FillResult(
            set_index=set_index,
            inserted=True,
            way=way,
            evicted_tag=evicted_tag,
            writeback=writeback,
        )

    def invalidate(self, line_addr: int, now: int = 0) -> bool:
        set_index = self.set_index(line_addr)
        for way, line in enumerate(self.sets[set_index]):
            if line.valid and line.tag == line_addr:
                self._retire(set_index, way, line, now)
                line.reset()
                return True
        return False

    def _retire(self, set_index: int, way: int, line: CacheLine, now: int) -> None:
        self.stats.evictions += 1
        if self.write_back and line.dirty:
            self.stats.writebacks += 1
        self.stats.reuse.record(line.use_count)
        self.mgmt.on_evict(self, set_index, way, line, now)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        for set_lines in self.sets:
            for line in set_lines:
                if line.valid:
                    self.stats.reuse.record(line.use_count)

    def flush(self) -> int:
        dirty = 0
        for set_lines in self.sets:
            for line in set_lines:
                if line.valid:
                    if self.write_back and line.dirty:
                        dirty += 1
                    line.reset()
        return dirty

    def resident_lines(self) -> List[int]:
        return [
            line.tag
            for set_lines in self.sets
            for line in set_lines
            if line.valid
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ReferenceCache {self.name}: {self.size_bytes >> 10}KB "
            f"{self.ways}-way x{self.num_sets} sets, "
            f"repl={self.replacement.name}, mgmt={self.mgmt.name}>"
        )
