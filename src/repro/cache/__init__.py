"""Generic set-associative cache substrate.

Provides tag-array modelling (:class:`~repro.cache.cache.Cache`), MSHRs,
pluggable replacement policies (:mod:`repro.cache.replacement`) and
management policies (:mod:`repro.cache.policies`).
"""

from repro.cache.cache import Cache, FillResult, LookupResult
from repro.cache.line import CacheLine
from repro.cache.mshr import MSHREntry, MSHRFile

__all__ = [
    "Cache",
    "CacheLine",
    "FillResult",
    "LookupResult",
    "MSHREntry",
    "MSHRFile",
]
