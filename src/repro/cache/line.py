"""Cache line (tag-array entry) model.

A :class:`CacheLine` models one way of one set in a set-associative cache.
Only the *tag array* state is modelled — data payloads are irrelevant to
management-policy studies, so no data is stored.

The entry carries the fields described in the paper's Figure 6 for the
extended L2 tag entry (state bits, RRPV, tag, victim bits) plus generic
bookkeeping used by the statistics layer (fill time, per-generation reuse
count) and by the PDP policy family (remaining protection distance).
"""

from __future__ import annotations

__all__ = ["CacheLine"]


class CacheLine:
    """One tag-array entry.

    Attributes:
        tag: Line tag (full line address; sets are selected externally, so
            storing the whole line address keeps lookups trivial).
        valid: Whether the entry holds a line.
        dirty: Write-back dirtiness (only meaningful for write-back caches).
        rrpv: Re-Reference Prediction Value (RRIP state); also reused as the
            recency stamp holder for LRU-style policies via ``stamp``.
        stamp: Generic recency/insertion stamp used by LRU/FIFO policies.
        use_count: Number of *re*-uses (hits) since the current fill; the
            fill itself is not counted.  Feeds the Fig. 2 reuse histogram.
        fill_time: Time at which the current generation was filled.
        last_access: Time of the most recent access to this generation.
        pd_counter: Remaining-protection-distance counter for PDP policies.
        victim_bits: Per-L1 access-history bitmask (L2 extension, Fig. 6).
            Bit *i* set means L1 cache *i* (or its sharing group) fetched
            this line during the current L2 generation.
    """

    __slots__ = (
        "tag",
        "valid",
        "dirty",
        "rrpv",
        "stamp",
        "use_count",
        "fill_time",
        "last_access",
        "pd_counter",
        "victim_bits",
    )

    def __init__(self) -> None:
        self.tag = -1
        self.valid = False
        self.dirty = False
        self.rrpv = 0
        self.stamp = 0
        self.use_count = 0
        self.fill_time = 0
        self.last_access = 0
        self.pd_counter = 0
        self.victim_bits = 0

    def reset(self) -> None:
        """Invalidate the entry and clear all generation state."""
        self.tag = -1
        self.valid = False
        self.dirty = False
        self.rrpv = 0
        self.stamp = 0
        self.use_count = 0
        self.fill_time = 0
        self.last_access = 0
        self.pd_counter = 0
        self.victim_bits = 0

    def fill(self, tag: int, now: int) -> None:
        """Begin a new generation holding ``tag``, filled at time ``now``."""
        self.tag = tag
        self.valid = True
        self.dirty = False
        self.use_count = 0
        self.fill_time = now
        self.last_access = now
        self.victim_bits = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if not self.valid:
            return "<CacheLine invalid>"
        return (
            f"<CacheLine tag={self.tag:#x} rrpv={self.rrpv} "
            f"uses={self.use_count} dirty={self.dirty}>"
        )
