"""Set-associative cache with pluggable replacement and management.

The cache models the *tag array only* and works in **line addresses**
(byte address >> log2(line size)); coalescing happens upstream in
:mod:`repro.gpu.coalescer`.  Write semantics (write-through no-allocate
for the GPU L1, write-back write-allocate for the L2) are selected by
constructor flags, matching Section 2.2 of the paper.

Lookups and fills are separate operations because in the modelled GPU an
L1 miss travels to the L2 and the *response* (carrying the victim-bit
hint) triggers the fill — the management policy needs that hint to make
its bypass/insertion decision.

Hot-path layout (see docs/performance.md): tag/RRPV/dirty/victim state
lives in the packed parallel arrays of a
:class:`~repro.cache.tagstore.FlatTagStore`; the tag scan is a C-speed
``list.index`` over the set's slice, and LRU/RRIP replacement updates go
through the policies' ``flat_*`` hooks without materialising a line
object.  ``cache.sets[s][w]`` still yields a
:class:`~repro.cache.tagstore.CacheLineView` with the full
:class:`~repro.cache.line.CacheLine` attribute API, so management
policies and the observability layer are unchanged — and the retained
:class:`~repro.cache.reference.ReferenceCache` pins both
implementations to bit-identical behaviour under property test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.line import CacheLine  # noqa: F401  (re-exported API type)
from repro.cache.policies.base import (
    FillContext,
    FillDecision,
    ManagementPolicy,
    NullManagementPolicy,
)
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.tagstore import CacheLineView, FlatTagStore
from repro.obs.events import EV_BYPASS, EV_EVICT, EV_FILL, EV_HIT, EV_MISS
from repro.stats.counters import CacheStats

__all__ = ["Cache", "LookupResult", "FillResult"]


@dataclass(slots=True)
class LookupResult:
    """Outcome of a tag lookup."""

    hit: bool
    set_index: int
    way: int = -1
    line: Optional[CacheLineView] = None


@dataclass(slots=True)
class FillResult:
    """Outcome of a fill attempt."""

    set_index: int
    inserted: bool = False
    bypassed: bool = False
    already_present: bool = False
    way: int = -1
    evicted_tag: int = -1
    writeback: bool = False


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class Cache:
    """One set-associative cache bank.

    Args:
        name: Human-readable identifier (appears in reports).
        size_bytes: Total data capacity.
        ways: Associativity.
        line_size: Line size in bytes (Table 2: 128 B).
        replacement: Replacement policy instance (one per cache).
        mgmt: Management (bypass/insertion) policy; defaults to a
            conventional always-insert policy.
        write_back: ``True`` for write-back (L2), ``False`` for
            write-through (L1).
        write_allocate: Whether store misses allocate a line (L2 yes,
            L1 no).
        pre_shift: Number of low line-address bits consumed by bank
            interleaving before set selection (log2 of the bank count for
            an L2 bank; 0 for a private L1).
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        line_size: int,
        replacement: ReplacementPolicy,
        mgmt: Optional[ManagementPolicy] = None,
        write_back: bool = False,
        write_allocate: bool = False,
        pre_shift: int = 0,
    ) -> None:
        if size_bytes % (ways * line_size) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by ways*line "
                f"({ways}*{line_size})"
            )
        num_sets = size_bytes // (ways * line_size)
        if not _is_pow2(num_sets):
            raise ValueError(f"{name}: number of sets must be a power of two, got {num_sets}")
        if write_allocate and not write_back:
            raise ValueError(f"{name}: write-allocate requires write-back in this model")

        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_size = line_size
        self.num_sets = num_sets
        self.pre_shift = pre_shift
        self.write_back = write_back
        self.write_allocate = write_allocate
        self.replacement = replacement
        self.mgmt = mgmt if mgmt is not None else NullManagementPolicy()
        #: Event bus when tracing is enabled (see repro.obs.wire).
        self.obs = None
        self.stats = CacheStats()
        #: Packed tag-array state (structure-of-arrays).
        self.store = FlatTagStore(num_sets, ways)
        self._views: List[CacheLineView] = [
            CacheLineView(self.store, i) for i in range(num_sets * ways)
        ]
        #: Line-object view of the tag array; ``sets[s][w]`` is a live
        #: proxy onto the packed arrays (CacheLine attribute API).
        self.sets: List[List[CacheLineView]] = [
            self._views[s * ways : (s + 1) * ways] for s in range(num_sets)
        ]
        self._set_mask = num_sets - 1
        self._repl_binds = hasattr(replacement, "bind_set")
        self._repl_misses = hasattr(replacement, "record_miss")
        # Periodic access-tick service (see register_access_tick); must
        # exist before attach() so policies can register during it.
        self._tick_cb = None
        self._tick_interval = 0
        self._tick_left = 0
        self.mgmt.attach(self)

        # Flat replacement hooks (bound methods, or None -> object path).
        self._flat_on_hit = None
        self._flat_on_fill = None
        self._flat_select_victim = None
        if replacement.flat_bind(self.store):
            self._flat_on_hit = replacement.flat_on_hit
            self._flat_on_fill = replacement.flat_on_fill
            self._flat_select_victim = replacement.flat_select_victim

        # Management hooks that are base-class no-ops are skipped on the
        # hot path entirely (bound method, or None when default).
        mgmt_cls = type(self.mgmt)

        def _hook(hook_name: str):
            if getattr(mgmt_cls, hook_name) is getattr(ManagementPolicy, hook_name):
                return None
            return getattr(self.mgmt, hook_name)

        self._mgmt_on_hit = _hook("on_hit")
        self._mgmt_on_miss = _hook("on_miss")
        self._mgmt_fill_decision = _hook("fill_decision")
        self._mgmt_choose_victim = _hook("choose_victim")
        self._mgmt_on_insert = _hook("on_insert")
        self._mgmt_on_bypass = _hook("on_bypass")
        self._mgmt_on_evict = _hook("on_evict")
        # fill() only materialises a FillContext when some hook (or the
        # event bus, checked at call time) will actually read it.
        self._mgmt_needs_ctx = (
            self._mgmt_fill_decision is not None
            or self._mgmt_on_insert is not None
            or self._mgmt_on_bypass is not None
        )

    def register_access_tick(self, interval: int, callback) -> None:
        """Invoke ``callback(cache, now)`` every ``interval`` demand lookups.

        Management policies that only need a periodic access counter (the
        G-Cache switch shutdown) register here instead of overriding
        ``on_hit``/``on_miss``: the cache then pays one integer countdown
        per access instead of a Python method call.  ``interval <= 0``
        disables the tick.
        """
        if interval > 0:
            self._tick_cb = callback
            self._tick_interval = interval
            self._tick_left = interval

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def set_index(self, line_addr: int) -> int:
        """Map a line address to its set."""
        return (line_addr >> self.pre_shift) & self._set_mask

    def _find_slot(self, line_addr: int, base: int, top: int) -> int:
        """Flat index of the valid slot holding ``line_addr``, or -1.

        Invalid slots carry tag ``-1``, so a demand address never matches
        them; the validity re-check only loops if external code planted an
        inconsistent tag/valid pair.
        """
        tags = self.store.tag
        valid = self.store.valid
        start = base
        while True:
            try:
                idx = tags.index(line_addr, start, top)
            except ValueError:
                return -1
            if valid[idx]:
                return idx
            start = idx + 1

    def find_way(self, line_addr: int) -> int:
        """Return the way holding ``line_addr``, or -1 (no state change)."""
        set_index = (line_addr >> self.pre_shift) & self._set_mask
        base = set_index * self.ways
        idx = self._find_slot(line_addr, base, base + self.ways)
        return idx - base if idx >= 0 else -1

    def probe(self, line_addr: int) -> bool:
        """Tag check with no statistics or state updates."""
        return self.find_way(line_addr) >= 0

    # ------------------------------------------------------------------
    # Access operations
    # ------------------------------------------------------------------
    def lookup_fast(self, line_addr: int, now: int, is_write: bool = False) -> int:
        """Demand lookup; returns the flat slot index on a hit, -1 on a miss.

        Identical statistics and policy effects to :meth:`lookup` — that
        method is a thin wrapper over this one — but no
        :class:`LookupResult` is allocated, which matters to the memory
        system's per-transaction path (most callers only need the hit
        boolean or the hit line, never the full result object).
        """
        store = self.store
        set_index = (line_addr >> self.pre_shift) & self._set_mask
        base = set_index * self.ways
        top = base + self.ways
        if self._repl_binds:
            self.replacement.bind_set(set_index)

        stats = self.stats
        if is_write:
            stats.stores += 1
        else:
            stats.loads += 1

        interval = self._tick_interval
        if interval:
            left = self._tick_left - 1
            if left:
                self._tick_left = left
            else:
                self._tick_left = interval
                self._tick_cb(self, now)

        # Inlined _find_slot (this is the hottest loop in the simulator).
        tags = store.tag
        valid = store.valid
        idx = -1
        start = base
        while True:
            try:
                i = tags.index(line_addr, start, top)
            except ValueError:
                break
            if valid[i]:
                idx = i
                break
            start = i + 1
        if idx >= 0:
            store.use_count[idx] += 1
            store.last_access[idx] = now
            if is_write:
                stats.store_hits += 1
                if self.write_back:
                    store.dirty[idx] = 1
            else:
                stats.load_hits += 1
            flat_hit = self._flat_on_hit
            if flat_hit is not None:
                flat_hit(idx, now)
            else:
                self.replacement.on_hit(self.sets[set_index], idx - base, now)
            mgmt_hit = self._mgmt_on_hit
            if mgmt_hit is not None:
                mgmt_hit(self, set_index, idx - base, now)
            if self.obs is not None:
                self.obs.emit(
                    EV_HIT, now, self.name,
                    line=line_addr, set=set_index, way=idx - base, write=is_write,
                )
            return idx

        if self._repl_misses:
            self.replacement.record_miss(set_index)
        mgmt_miss = self._mgmt_on_miss
        if mgmt_miss is not None:
            mgmt_miss(self, set_index, now)
        if self.obs is not None:
            self.obs.emit(
                EV_MISS, now, self.name,
                line=line_addr, set=set_index, write=is_write,
            )
        return -1

    def lookup(self, line_addr: int, now: int, is_write: bool = False) -> LookupResult:
        """Perform a demand lookup, updating stats and recency state."""
        idx = self.lookup_fast(line_addr, now, is_write)
        set_index = (line_addr >> self.pre_shift) & self._set_mask
        if idx >= 0:
            return LookupResult(
                True, set_index, idx - set_index * self.ways, self._views[idx]
            )
        return LookupResult(False, set_index)

    def fill(
        self,
        line_addr: int,
        now: int,
        ctx: Optional[FillContext] = None,
        known_absent: bool = False,
        is_write: bool = False,
    ) -> FillResult:
        """Bring ``line_addr`` into the cache, subject to the management policy.

        Returns a :class:`FillResult` describing whether the line was
        inserted, bypassed, or found already present (e.g. filled by a
        concurrent request that was merged in the MSHRs).

        ``known_absent=True`` skips the presence re-scan.  The memory
        system may assert it because each transaction's lookup-miss and
        fill execute back to back with nothing else touching that cache
        in between (in-flight duplicates are merged in the MSHRs before
        the lookup ever runs).

        ``is_write`` is consulted only when ``ctx`` is omitted (an
        explicit context carries its own ``is_write``); it lets callers
        of policy-free caches skip building a context entirely.
        """
        if ctx is not None:
            is_write = ctx.is_write
        elif self._mgmt_needs_ctx or self.obs is not None:
            ctx = FillContext(line_addr=line_addr, is_write=is_write)
        store = self.store
        set_index = (line_addr >> self.pre_shift) & self._set_mask
        base = set_index * self.ways
        top = base + self.ways
        if self._repl_binds:
            self.replacement.bind_set(set_index)

        if not known_absent:
            # Inlined _find_slot (see lookup).
            tags = store.tag
            valid = store.valid
            idx = -1
            start = base
            while True:
                try:
                    i = tags.index(line_addr, start, top)
                except ValueError:
                    break
                if valid[i]:
                    idx = i
                    break
                start = i + 1
            if idx >= 0:
                return FillResult(set_index, already_present=True, way=idx - base)

        fill_decision = self._mgmt_fill_decision
        if fill_decision is not None:
            decision = fill_decision(self, set_index, ctx, now)
            if decision is FillDecision.BYPASS:
                self.stats.bypasses += 1
                on_bypass = self._mgmt_on_bypass
                if on_bypass is not None:
                    on_bypass(self, set_index, ctx, now)
                if self.obs is not None:
                    self.obs.emit(
                        EV_BYPASS, now, self.name,
                        line=line_addr, set=set_index, hint=ctx.victim_hint,
                    )
                return FillResult(set_index, bypassed=True)

        # Prefer an invalid way; otherwise ask the management policy, then
        # the replacement policy, for a victim.
        evicted_tag = -1
        writeback = False
        if store.valid_count[set_index] < self.ways:
            way = store.valid.index(0, base, top) - base
            idx = base + way
        else:
            choose_victim = self._mgmt_choose_victim
            chosen = None if choose_victim is None else choose_victim(self, set_index, now)
            if chosen is not None:
                way = chosen
            elif self._flat_select_victim is not None:
                way = self._flat_select_victim(base, top, now)
            else:
                way = self.replacement.select_victim(self.sets[set_index], now)
            idx = base + way
            evicted_tag = store.tag[idx]
            writeback = self.write_back and bool(store.dirty[idx])
            # Inlined _retire (eviction accounting; invalidate() still
            # uses the method).  use_count is never negative, so the
            # histogram's Counter is bumped directly.
            stats = self.stats
            stats.evictions += 1
            if writeback:
                stats.writebacks += 1
            stats.reuse._counts[store.use_count[idx]] += 1
            on_evict = self._mgmt_on_evict
            if on_evict is not None:
                on_evict(self, set_index, way, self._views[idx], now)
            if self.obs is not None:
                self.obs.emit(
                    EV_EVICT, now, self.name,
                    line=evicted_tag, set=set_index, way=way,
                    uses=store.use_count[idx], dirty=bool(store.dirty[idx]),
                )

        store.fill_slot(idx, line_addr, now)
        if is_write and self.write_allocate:
            store.dirty[idx] = 1
        self.stats.fills += 1
        flat_fill = self._flat_on_fill
        if flat_fill is not None:
            flat_fill(idx, now)
        else:
            self.replacement.on_fill(self.sets[set_index], way, now)
        on_insert = self._mgmt_on_insert
        if on_insert is not None:
            on_insert(self, set_index, way, ctx, now)
        if self.obs is not None:
            self.obs.emit(
                EV_FILL, now, self.name,
                line=line_addr, set=set_index, way=way,
                hint=ctx.victim_hint, evicted=evicted_tag,
            )
        return FillResult(
            set_index,
            inserted=True,
            way=way,
            evicted_tag=evicted_tag,
            writeback=writeback,
        )

    def invalidate(self, line_addr: int, now: int = 0) -> bool:
        """Drop ``line_addr`` if present; returns whether it was resident."""
        set_index = (line_addr >> self.pre_shift) & self._set_mask
        base = set_index * self.ways
        idx = self._find_slot(line_addr, base, base + self.ways)
        if idx < 0:
            return False
        self._retire(set_index, idx - base, idx, now)
        self.store.reset_slot(idx)
        return True

    def _retire(self, set_index: int, way: int, idx: int, now: int) -> None:
        """Account for the end of a generation (eviction path)."""
        store = self.store
        stats = self.stats
        stats.evictions += 1
        dirty = bool(store.dirty[idx])
        if self.write_back and dirty:
            stats.writebacks += 1
        stats.reuse.record(store.use_count[idx])
        on_evict = self._mgmt_on_evict
        if on_evict is not None:
            on_evict(self, set_index, way, self._views[idx], now)
        if self.obs is not None:
            self.obs.emit(
                EV_EVICT, now, self.name,
                line=store.tag[idx], set=set_index, way=way,
                uses=store.use_count[idx], dirty=dirty,
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Close out remaining generations (call once, at end of run)."""
        store = self.store
        record = self.stats.reuse.record
        use_count = store.use_count
        for i, v in enumerate(store.valid):
            if v:
                record(use_count[i])

    def flush(self) -> int:
        """Invalidate everything; returns the number of dirty writebacks."""
        store = self.store
        dirty = 0
        for i, v in enumerate(store.valid):
            if v:
                if self.write_back and store.dirty[i]:
                    dirty += 1
                store.reset_slot(i)
        return dirty

    def resident_lines(self) -> List[int]:
        """Line addresses currently resident (diagnostics and tests)."""
        store = self.store
        return [store.tag[i] for i, v in enumerate(store.valid) if v]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Cache {self.name}: {self.size_bytes >> 10}KB "
            f"{self.ways}-way x{self.num_sets} sets, "
            f"repl={self.replacement.name}, mgmt={self.mgmt.name}>"
        )
