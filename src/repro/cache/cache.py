"""Set-associative cache with pluggable replacement and management.

The cache models the *tag array only* and works in **line addresses**
(byte address >> log2(line size)); coalescing happens upstream in
:mod:`repro.gpu.coalescer`.  Write semantics (write-through no-allocate
for the GPU L1, write-back write-allocate for the L2) are selected by
constructor flags, matching Section 2.2 of the paper.

Lookups and fills are separate operations because in the modelled GPU an
L1 miss travels to the L2 and the *response* (carrying the victim-bit
hint) triggers the fill — the management policy needs that hint to make
its bypass/insertion decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.line import CacheLine
from repro.cache.policies.base import (
    FillContext,
    FillDecision,
    ManagementPolicy,
    NullManagementPolicy,
)
from repro.cache.replacement.base import ReplacementPolicy
from repro.obs.events import EV_BYPASS, EV_EVICT, EV_FILL, EV_HIT, EV_MISS
from repro.stats.counters import CacheStats

__all__ = ["Cache", "LookupResult", "FillResult"]


@dataclass
class LookupResult:
    """Outcome of a tag lookup."""

    hit: bool
    set_index: int
    way: int = -1
    line: Optional[CacheLine] = None


@dataclass
class FillResult:
    """Outcome of a fill attempt."""

    set_index: int
    inserted: bool = False
    bypassed: bool = False
    already_present: bool = False
    way: int = -1
    evicted_tag: int = -1
    writeback: bool = False


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class Cache:
    """One set-associative cache bank.

    Args:
        name: Human-readable identifier (appears in reports).
        size_bytes: Total data capacity.
        ways: Associativity.
        line_size: Line size in bytes (Table 2: 128 B).
        replacement: Replacement policy instance (one per cache).
        mgmt: Management (bypass/insertion) policy; defaults to a
            conventional always-insert policy.
        write_back: ``True`` for write-back (L2), ``False`` for
            write-through (L1).
        write_allocate: Whether store misses allocate a line (L2 yes,
            L1 no).
        pre_shift: Number of low line-address bits consumed by bank
            interleaving before set selection (log2 of the bank count for
            an L2 bank; 0 for a private L1).
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        line_size: int,
        replacement: ReplacementPolicy,
        mgmt: Optional[ManagementPolicy] = None,
        write_back: bool = False,
        write_allocate: bool = False,
        pre_shift: int = 0,
    ) -> None:
        if size_bytes % (ways * line_size) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by ways*line "
                f"({ways}*{line_size})"
            )
        num_sets = size_bytes // (ways * line_size)
        if not _is_pow2(num_sets):
            raise ValueError(f"{name}: number of sets must be a power of two, got {num_sets}")
        if write_allocate and not write_back:
            raise ValueError(f"{name}: write-allocate requires write-back in this model")

        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_size = line_size
        self.num_sets = num_sets
        self.pre_shift = pre_shift
        self.write_back = write_back
        self.write_allocate = write_allocate
        self.replacement = replacement
        self.mgmt = mgmt if mgmt is not None else NullManagementPolicy()
        #: Event bus when tracing is enabled (see repro.obs.wire).
        self.obs = None
        self.stats = CacheStats()
        self.sets: List[List[CacheLine]] = [
            [CacheLine() for _ in range(ways)] for _ in range(num_sets)
        ]
        self._set_mask = num_sets - 1
        self._repl_binds = hasattr(replacement, "bind_set")
        self._repl_misses = hasattr(replacement, "record_miss")
        self.mgmt.attach(self)

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def set_index(self, line_addr: int) -> int:
        """Map a line address to its set."""
        return (line_addr >> self.pre_shift) & self._set_mask

    def find_way(self, line_addr: int) -> int:
        """Return the way holding ``line_addr``, or -1 (no state change)."""
        ways = self.sets[self.set_index(line_addr)]
        for i, line in enumerate(ways):
            if line.valid and line.tag == line_addr:
                return i
        return -1

    def probe(self, line_addr: int) -> bool:
        """Tag check with no statistics or state updates."""
        return self.find_way(line_addr) >= 0

    # ------------------------------------------------------------------
    # Access operations
    # ------------------------------------------------------------------
    def lookup(self, line_addr: int, now: int, is_write: bool = False) -> LookupResult:
        """Perform a demand lookup, updating stats and recency state."""
        set_index = self.set_index(line_addr)
        ways = self.sets[set_index]
        if self._repl_binds:
            self.replacement.bind_set(set_index)

        if is_write:
            self.stats.stores += 1
        else:
            self.stats.loads += 1

        for way, line in enumerate(ways):
            if line.valid and line.tag == line_addr:
                line.use_count += 1
                line.last_access = now
                if is_write:
                    self.stats.store_hits += 1
                    if self.write_back:
                        line.dirty = True
                else:
                    self.stats.load_hits += 1
                self.replacement.on_hit(ways, way, now)
                self.mgmt.on_hit(self, set_index, way, now)
                if self.obs is not None:
                    self.obs.emit(
                        EV_HIT, now, self.name,
                        line=line_addr, set=set_index, way=way, write=is_write,
                    )
                return LookupResult(hit=True, set_index=set_index, way=way, line=line)

        if self._repl_misses:
            self.replacement.record_miss(set_index)
        self.mgmt.on_miss(self, set_index, now)
        if self.obs is not None:
            self.obs.emit(
                EV_MISS, now, self.name,
                line=line_addr, set=set_index, write=is_write,
            )
        return LookupResult(hit=False, set_index=set_index)

    def fill(self, line_addr: int, now: int, ctx: Optional[FillContext] = None) -> FillResult:
        """Bring ``line_addr`` into the cache, subject to the management policy.

        Returns a :class:`FillResult` describing whether the line was
        inserted, bypassed, or found already present (e.g. filled by a
        concurrent request that was merged in the MSHRs).
        """
        if ctx is None:
            ctx = FillContext(line_addr=line_addr)
        set_index = self.set_index(line_addr)
        ways = self.sets[set_index]
        if self._repl_binds:
            self.replacement.bind_set(set_index)

        for way, line in enumerate(ways):
            if line.valid and line.tag == line_addr:
                return FillResult(set_index=set_index, already_present=True, way=way)

        decision = self.mgmt.fill_decision(self, set_index, ctx, now)
        if decision is FillDecision.BYPASS:
            self.stats.bypasses += 1
            self.mgmt.on_bypass(self, set_index, ctx, now)
            if self.obs is not None:
                self.obs.emit(
                    EV_BYPASS, now, self.name,
                    line=line_addr, set=set_index, hint=ctx.victim_hint,
                )
            return FillResult(set_index=set_index, bypassed=True)

        # Prefer an invalid way; otherwise ask the management policy, then
        # the replacement policy, for a victim.
        way = -1
        for i, line in enumerate(ways):
            if not line.valid:
                way = i
                break

        evicted_tag = -1
        writeback = False
        if way < 0:
            chosen = self.mgmt.choose_victim(self, set_index, now)
            way = chosen if chosen is not None else self.replacement.select_victim(ways, now)
            victim = ways[way]
            evicted_tag = victim.tag
            writeback = self.write_back and victim.dirty
            self._retire(set_index, way, victim, now)

        line = ways[way]
        line.fill(line_addr, now)
        if ctx.is_write and self.write_allocate:
            line.dirty = True
        self.stats.fills += 1
        self.replacement.on_fill(ways, way, now)
        self.mgmt.on_insert(self, set_index, way, ctx, now)
        if self.obs is not None:
            self.obs.emit(
                EV_FILL, now, self.name,
                line=line_addr, set=set_index, way=way,
                hint=ctx.victim_hint, evicted=evicted_tag,
            )
        return FillResult(
            set_index=set_index,
            inserted=True,
            way=way,
            evicted_tag=evicted_tag,
            writeback=writeback,
        )

    def invalidate(self, line_addr: int, now: int = 0) -> bool:
        """Drop ``line_addr`` if present; returns whether it was resident."""
        set_index = self.set_index(line_addr)
        for way, line in enumerate(self.sets[set_index]):
            if line.valid and line.tag == line_addr:
                self._retire(set_index, way, line, now)
                line.reset()
                return True
        return False

    def _retire(self, set_index: int, way: int, line: CacheLine, now: int) -> None:
        """Account for the end of a generation (eviction path)."""
        self.stats.evictions += 1
        if self.write_back and line.dirty:
            self.stats.writebacks += 1
        self.stats.reuse.record(line.use_count)
        self.mgmt.on_evict(self, set_index, way, line, now)
        if self.obs is not None:
            self.obs.emit(
                EV_EVICT, now, self.name,
                line=line.tag, set=set_index, way=way,
                uses=line.use_count, dirty=line.dirty,
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Close out remaining generations (call once, at end of run)."""
        for set_lines in self.sets:
            for line in set_lines:
                if line.valid:
                    self.stats.reuse.record(line.use_count)

    def flush(self) -> int:
        """Invalidate everything; returns the number of dirty writebacks."""
        dirty = 0
        for set_lines in self.sets:
            for line in set_lines:
                if line.valid:
                    if self.write_back and line.dirty:
                        dirty += 1
                    line.reset()
        return dirty

    def resident_lines(self) -> List[int]:
        """Line addresses currently resident (diagnostics and tests)."""
        return [
            line.tag
            for set_lines in self.sets
            for line in set_lines
            if line.valid
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Cache {self.name}: {self.size_bytes >> 10}KB "
            f"{self.ways}-way x{self.num_sets} sets, "
            f"repl={self.replacement.name}, mgmt={self.mgmt.name}>"
        )
