"""Packed, array-backed tag-array storage (structure-of-arrays).

The original :class:`~repro.cache.cache.Cache` kept one
:class:`~repro.cache.line.CacheLine` object per way and every lookup
walked those objects attribute by attribute.  Profiling showed the tag
scan and the per-hit state updates dominating full-kernel simulation
time, so the tag array is restructured the way ATA-style hardware
proposals restructure it: one flat parallel array per field, indexed by
``set_index * ways + way``.

* The **tag scan** becomes a single C-speed ``list.index`` call over the
  set's slice of the ``tag`` array instead of a Python loop over objects.
* **Replacement state** (RRPV / recency stamps) lives in flat integer
  arrays that RRIP/LRU-family policies can update and scan without ever
  materialising a line object (see ``flat_bind`` in
  :mod:`repro.cache.replacement.base`).
* The object API survives as :class:`CacheLineView` — a 16-byte proxy
  whose properties read and write the packed arrays — so management
  policies, the observability layer, and every existing test keep
  working against ``cache.sets[s][w].rrpv`` unchanged.

Plain Python lists are used rather than ``array('q')``: CPython stores
small ints as shared pointers, so list element access avoids the
box/unbox round-trip ``array`` pays on every read, and ``list.index``
over small-int lists is the fastest membership scan available without
third-party dependencies.  ``valid``/``dirty`` are single-byte flags and
do live in ``bytearray`` (which also supports C-speed ``.index`` for the
free-way scan).

Invariants maintained by :class:`~repro.cache.cache.Cache`:

* an invalid slot's ``tag`` is ``-1`` (so demand addresses, which are
  non-negative, can never false-hit an invalid slot on the fast scan);
* ``valid_count[s]`` equals the number of valid ways in set ``s`` (so
  the fill path knows without scanning whether a free way exists).

Both invariants are *defensively re-checked* where cheap: the lookup
scan confirms ``valid`` before declaring a hit, so even direct
``view.valid = False`` writes from diagnostic code cannot corrupt
results.
"""

from __future__ import annotations

from typing import List

__all__ = ["FlatTagStore", "CacheLineView"]


class FlatTagStore:
    """Parallel per-field arrays for ``num_sets * ways`` tag entries.

    Field semantics are identical to :class:`~repro.cache.line.CacheLine`
    (they are the same fields, transposed into structure-of-arrays form).
    """

    __slots__ = (
        "num_sets",
        "ways",
        "size",
        "tag",
        "valid",
        "dirty",
        "rrpv",
        "stamp",
        "use_count",
        "fill_time",
        "last_access",
        "pd_counter",
        "victim_bits",
        "valid_count",
    )

    def __init__(self, num_sets: int, ways: int) -> None:
        if num_sets < 1 or ways < 1:
            raise ValueError(f"need >= 1 set and way, got {num_sets}x{ways}")
        n = num_sets * ways
        self.num_sets = num_sets
        self.ways = ways
        self.size = n
        self.tag: List[int] = [-1] * n
        self.valid = bytearray(n)
        self.dirty = bytearray(n)
        self.rrpv: List[int] = [0] * n
        self.stamp: List[int] = [0] * n
        self.use_count: List[int] = [0] * n
        self.fill_time: List[int] = [0] * n
        self.last_access: List[int] = [0] * n
        self.pd_counter: List[int] = [0] * n
        self.victim_bits: List[int] = [0] * n
        self.valid_count: List[int] = [0] * num_sets

    # ------------------------------------------------------------------
    # Slot lifecycle (shared by Cache and CacheLineView)
    # ------------------------------------------------------------------
    def fill_slot(self, index: int, tag: int, now: int) -> None:
        """Begin a new generation in ``index`` (mirrors ``CacheLine.fill``)."""
        self.tag[index] = tag
        if not self.valid[index]:
            self.valid[index] = 1
            self.valid_count[index // self.ways] += 1
        self.dirty[index] = 0
        self.use_count[index] = 0
        self.fill_time[index] = now
        self.last_access[index] = now
        self.victim_bits[index] = 0

    def reset_slot(self, index: int) -> None:
        """Invalidate ``index`` and clear all its generation state."""
        self.tag[index] = -1
        if self.valid[index]:
            self.valid[index] = 0
            self.valid_count[index // self.ways] -= 1
        self.dirty[index] = 0
        self.rrpv[index] = 0
        self.stamp[index] = 0
        self.use_count[index] = 0
        self.fill_time[index] = 0
        self.last_access[index] = 0
        self.pd_counter[index] = 0
        self.victim_bits[index] = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FlatTagStore {self.num_sets}x{self.ways}>"


def _field(name: str):
    """Build a property proxying one packed array field."""

    def fget(self):
        return getattr(self._store, name)[self._index]

    def fset(self, value):
        getattr(self._store, name)[self._index] = value

    return property(fget, fset, doc=f"Packed `{name}` field of this entry.")


class CacheLineView:
    """One tag entry viewed through the :class:`CacheLine` attribute API.

    Views are allocated once per slot at cache construction and returned
    by ``cache.sets[s][w]`` / ``LookupResult.line``; reads and writes go
    straight through to the packed arrays, so a view is always current.
    """

    __slots__ = ("_store", "_index")

    def __init__(self, store: FlatTagStore, index: int) -> None:
        self._store = store
        self._index = index

    tag = _field("tag")
    rrpv = _field("rrpv")
    stamp = _field("stamp")
    use_count = _field("use_count")
    fill_time = _field("fill_time")
    last_access = _field("last_access")
    pd_counter = _field("pd_counter")
    victim_bits = _field("victim_bits")

    @property
    def valid(self) -> bool:
        return bool(self._store.valid[self._index])

    @valid.setter
    def valid(self, value: bool) -> None:
        store, index = self._store, self._index
        new = 1 if value else 0
        if store.valid[index] != new:
            store.valid[index] = new
            store.valid_count[index // store.ways] += 1 if new else -1

    @property
    def dirty(self) -> bool:
        return bool(self._store.dirty[self._index])

    @dirty.setter
    def dirty(self, value: bool) -> None:
        self._store.dirty[self._index] = 1 if value else 0

    def fill(self, tag: int, now: int) -> None:
        """Begin a new generation holding ``tag``, filled at time ``now``."""
        self._store.fill_slot(self._index, tag, now)

    def reset(self) -> None:
        """Invalidate the entry and clear all generation state."""
        self._store.reset_slot(self._index)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if not self.valid:
            return "<CacheLineView invalid>"
        return (
            f"<CacheLineView tag={self.tag:#x} rrpv={self.rrpv} "
            f"uses={self.use_count} dirty={self.dirty}>"
        )
