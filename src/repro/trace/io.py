"""Kernel-trace serialization.

Traces are deterministic functions of (generator, scale, seed), but
saving them matters in practice: sharing a workload with a collaborator,
pinning the exact trace a bug reproduced on, or importing access streams
produced by an external tool.  The format is a compact JSON document —
line-oriented enough to diff, explicit enough to hand-write small cases.

Format (version 1)::

    {
      "format": "repro-trace",
      "version": 1,
      "name": "SPMV",
      "scratchpad_per_cta": 0,
      "meta": {...},
      "ctas": [ [ [ [op, arg], ... ], ... ], ... ]
    }

Memory-op payloads are address lists; ALU/SMEM/BAR payloads are counts.

Round-trip contract: for any valid trace, ``dumps -> loads -> dumps``
is byte-identical, and every instruction kind — OP_ATOM, OP_SMEM and
OP_BAR included — survives structurally intact (memory payloads are
normalized to tuples on load, matching what the generators emit).
Files are always written and read as UTF-8 so the bytes are stable
across platforms and locales.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import IO, Union

from repro.trace.trace import (
    CTATrace,
    KernelTrace,
    OP_ALU,
    OP_BAR,
    OP_SMEM,
)

__all__ = ["save_trace", "load_trace", "dumps_trace", "loads_trace"]

FORMAT_NAME = "repro-trace"
FORMAT_VERSION = 1

_COUNT_OPS = (OP_ALU, OP_SMEM, OP_BAR)


def _encode(trace: KernelTrace) -> dict:
    ctas = []
    for cta in trace.ctas:
        warps = []
        for warp in cta.warps:
            # Memory payloads may arrive as tuples (generator output) or
            # lists (hand-built traces); both encode identically, so the
            # on-disk bytes never depend on the container type.
            warps.append(
                [
                    [op, arg if op in _COUNT_OPS else list(arg)]
                    for op, arg in warp
                ]
            )
        ctas.append(warps)
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "name": trace.name,
        "scratchpad_per_cta": trace.scratchpad_per_cta,
        "meta": trace.meta,
        "ctas": ctas,
    }


def _decode(doc: dict) -> KernelTrace:
    if doc.get("format") != FORMAT_NAME:
        raise ValueError(
            f"not a {FORMAT_NAME} document (format={doc.get('format')!r})"
        )
    if doc.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace version {doc.get('version')!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    ctas = []
    for warps in doc["ctas"]:
        decoded_warps = []
        for warp in warps:
            decoded_warps.append(
                [
                    (op, arg if op in _COUNT_OPS else tuple(arg))
                    for op, arg in warp
                ]
            )
        ctas.append(CTATrace(warps=decoded_warps))
    trace = KernelTrace(
        name=doc["name"],
        ctas=ctas,
        scratchpad_per_cta=doc.get("scratchpad_per_cta", 0),
        meta=doc.get("meta", {}),
    )
    trace.validate()
    return trace


def dumps_trace(trace: KernelTrace) -> str:
    """Serialize a trace to a JSON string."""
    return json.dumps(_encode(trace), separators=(",", ":"))


def loads_trace(text: str) -> KernelTrace:
    """Parse a trace from a JSON string (validates before returning)."""
    return _decode(json.loads(text))


def save_trace(trace: KernelTrace, path: Union[str, Path, IO[str]]) -> None:
    """Write a trace to ``path`` (a filesystem path or open text file)."""
    if isinstance(path, (str, Path)):
        Path(path).write_text(dumps_trace(trace), encoding="utf-8")
    else:
        path.write(dumps_trace(trace))


def load_trace(path: Union[str, Path, IO[str]]) -> KernelTrace:
    """Read a trace written by :func:`save_trace`."""
    if isinstance(path, (str, Path)):
        text = Path(path).read_text(encoding="utf-8")
    else:
        text = path.read()
    return loads_trace(text)
