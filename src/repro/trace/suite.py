"""Benchmark registry (paper Table 1).

All 17 benchmarks with their sensitivity classification::

    from repro.trace.suite import build_benchmark, CACHE_SENSITIVE

    trace = build_benchmark("SPMV", scale=0.5, seed=1)

The classes drive the per-group geometric means reported in Figs. 8-10.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.trace.generators.base import BenchmarkGenerator, TraceParams
from repro.trace.generators.dense import (
    FFTGenerator,
    FWTGenerator,
    NWGenerator,
    SYRKGenerator,
)
from repro.trace.generators.graph import BFSGenerator
from repro.trace.generators.kmeans import KMNGenerator
from repro.trace.generators.mapreduce import (
    IIXGenerator,
    PVCGenerator,
    PVRGenerator,
    SSCGenerator,
)
from repro.trace.generators.ml import BPGenerator, CFDGenerator
from repro.trace.generators.spmv import SPMVGenerator
from repro.trace.generators.stencil import (
    SD1Generator,
    SD2Generator,
    STLGenerator,
    WPGenerator,
)
from repro.trace.trace import KernelTrace

__all__ = [
    "GENERATORS",
    "ALL_BENCHMARKS",
    "BENCHMARKS",
    "CACHE_SENSITIVE",
    "MODERATELY_SENSITIVE",
    "CACHE_INSENSITIVE",
    "sensitivity_of",
    "build_benchmark",
]

#: Generator class per benchmark, in the paper's Table-1 order.
GENERATORS: Dict[str, Type[BenchmarkGenerator]] = {
    "BFS": BFSGenerator,
    "KMN": KMNGenerator,
    "PVC": PVCGenerator,
    "SSC": SSCGenerator,
    "SD2": SD2Generator,
    "SPMV": SPMVGenerator,
    "SYRK": SYRKGenerator,
    "IIX": IIXGenerator,
    "FFT": FFTGenerator,
    "CFD": CFDGenerator,
    "PVR": PVRGenerator,
    "NW": NWGenerator,
    "SD1": SD1Generator,
    "BP": BPGenerator,
    "STL": STLGenerator,
    "WP": WPGenerator,
    "FWT": FWTGenerator,
}

ALL_BENCHMARKS: List[str] = list(GENERATORS)

#: Canonical alias used by parameterized test harnesses and docs.
BENCHMARKS: List[str] = ALL_BENCHMARKS

CACHE_SENSITIVE: List[str] = [
    "BFS", "KMN", "PVC", "SSC", "SD2", "SPMV", "SYRK", "IIX",
]
MODERATELY_SENSITIVE: List[str] = ["FFT", "CFD", "PVR", "NW"]
CACHE_INSENSITIVE: List[str] = ["SD1", "BP", "STL", "WP", "FWT"]


def sensitivity_of(name: str) -> str:
    """Sensitivity class (``sensitive`` / ``moderate`` / ``insensitive``)."""
    return GENERATORS[_canonical(name)].sensitivity


def _canonical(name: str) -> str:
    key = name.upper()
    if key not in GENERATORS:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(GENERATORS)}"
        )
    return key


def build_benchmark(
    name: str,
    scale: float = 1.0,
    seed: int = 0,
    params: Optional[TraceParams] = None,
) -> KernelTrace:
    """Generate the kernel trace for one Table-1 benchmark.

    Args:
        name: Benchmark short name (case insensitive).
        scale: Work-volume multiplier (CTA count); 1.0 is experiment size.
        seed: RNG seed for the generator.
        params: Full :class:`TraceParams`, overriding scale/seed.
    """
    cls = GENERATORS[_canonical(name)]
    if params is None:
        params = TraceParams(scale=scale, seed=seed)
    return cls(params).build()
