"""Kernel traces: IR and synthetic Table-1 benchmark generators."""

from repro.trace.trace import (
    CTATrace,
    KernelTrace,
    OP_ALU,
    OP_ATOM,
    OP_BAR,
    OP_LOAD,
    OP_SMEM,
    OP_STORE,
)

__all__ = [
    "CTATrace",
    "KernelTrace",
    "OP_ALU",
    "OP_ATOM",
    "OP_BAR",
    "OP_LOAD",
    "OP_SMEM",
    "OP_STORE",
]
