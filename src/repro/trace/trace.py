"""Kernel trace intermediate representation.

A *kernel trace* is the unit of work the simulator executes: a grid of
CTAs, each CTA a list of per-warp instruction streams.  Traces are
produced by the synthetic benchmark generators
(:mod:`repro.trace.generators`) and are deliberately simple — plain
tuples in hot paths — because the simulator iterates them millions of
times.

Instruction encoding (tuples, first element is an opcode constant):

======== =======================  =========================================
opcode   payload                  semantics
======== =======================  =========================================
OP_ALU   ``count``                ``count`` back-to-back arithmetic instrs
OP_LOAD  ``(addr, addr, ...)``    global load; one byte address per active
                                  lane (<= 32); warp blocks until data
OP_STORE ``(addr, addr, ...)``    global store; write-through, non-blocking
OP_SMEM  ``count``                scratchpad accesses (fixed low latency)
OP_ATOM  ``(addr, addr, ...)``    atomic op at the memory partition's AOU
OP_BAR   ``0``                    CTA-wide barrier
======== =======================  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

__all__ = [
    "OP_ALU",
    "OP_LOAD",
    "OP_STORE",
    "OP_SMEM",
    "OP_ATOM",
    "OP_BAR",
    "OP_NAMES",
    "Instruction",
    "WarpTrace",
    "CTATrace",
    "KernelTrace",
]

OP_ALU = 0
OP_LOAD = 1
OP_STORE = 2
OP_SMEM = 3
OP_ATOM = 4
OP_BAR = 5

OP_NAMES = {
    OP_ALU: "alu",
    OP_LOAD: "ld",
    OP_STORE: "st",
    OP_SMEM: "smem",
    OP_ATOM: "atom",
    OP_BAR: "bar",
}

#: One instruction: ``(opcode, payload)``.
Instruction = Tuple[int, object]

#: One warp's instruction stream.
WarpTrace = List[Instruction]


def instruction_count(program: WarpTrace) -> int:
    """Number of dynamic instructions in a warp program.

    ALU/SMEM groups of ``n`` count as ``n`` instructions; everything else
    counts as one.
    """
    total = 0
    for op, arg in program:
        if op in (OP_ALU, OP_SMEM):
            total += int(arg)
        else:
            total += 1
    return total


@dataclass
class CTATrace:
    """One cooperative thread array: a list of warp programs."""

    warps: List[WarpTrace]

    @property
    def num_warps(self) -> int:
        return len(self.warps)

    def instruction_count(self) -> int:
        return sum(instruction_count(w) for w in self.warps)


@dataclass
class KernelTrace:
    """One kernel launch: the full grid plus identification metadata.

    Attributes:
        name: Benchmark short name (e.g. ``"SPMV"``).
        ctas: The grid, in launch order (the CTA scheduler walks this
            list round-robin across cores).
        scratchpad_per_cta: Bytes of scratchpad each CTA occupies (limits
            CTA concurrency per core alongside warp/thread caps).
        meta: Free-form generator metadata (footprints, seeds, ...).
    """

    name: str
    ctas: List[CTATrace]
    scratchpad_per_cta: int = 0
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def num_ctas(self) -> int:
        return len(self.ctas)

    def instruction_count(self) -> int:
        # Cached: traces are immutable once built, and warm-cache
        # sequence replays re-query this per kernel.
        cached = self.__dict__.get("_instruction_count")
        if cached is None:
            cached = sum(cta.instruction_count() for cta in self.ctas)
            self.__dict__["_instruction_count"] = cached
        return cached

    def memory_access_count(self) -> int:
        """Number of LOAD/STORE/ATOM warp instructions in the kernel."""
        n = 0
        for cta in self.ctas:
            for warp in cta.warps:
                for op, _ in warp:
                    if op in (OP_LOAD, OP_STORE, OP_ATOM):
                        n += 1
        return n

    def iter_warp_programs(self) -> Iterator[WarpTrace]:
        for cta in self.ctas:
            yield from cta.warps

    def validate(self, max_lanes: int = 32) -> None:
        """Sanity-check the trace; raises ``ValueError`` on malformed input."""
        if not self.ctas:
            raise ValueError(f"kernel {self.name!r} has no CTAs")
        for c, cta in enumerate(self.ctas):
            if not cta.warps:
                raise ValueError(f"kernel {self.name!r} CTA {c} has no warps")
            for w, warp in enumerate(cta.warps):
                for i, (op, arg) in enumerate(warp):
                    if op in (OP_ALU, OP_SMEM):
                        if not isinstance(arg, int) or arg < 1:
                            raise ValueError(
                                f"{self.name} cta{c} warp{w} instr{i}: "
                                f"ALU/SMEM count must be a positive int, got {arg!r}"
                            )
                    elif op in (OP_LOAD, OP_STORE, OP_ATOM):
                        if not arg or len(arg) > max_lanes:
                            raise ValueError(
                                f"{self.name} cta{c} warp{w} instr{i}: "
                                f"memory op needs 1..{max_lanes} lane addresses"
                            )
                    elif op == OP_BAR:
                        pass
                    else:
                        raise ValueError(
                            f"{self.name} cta{c} warp{w} instr{i}: "
                            f"unknown opcode {op}"
                        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<KernelTrace {self.name}: {self.num_ctas} CTAs, "
            f"{self.instruction_count()} instrs>"
        )
