"""Typed validation errors shared by trace generators and scenario specs.

Both the classic :class:`~repro.trace.generators.base.TraceParams`
validation and the declarative scenario schema
(:mod:`repro.scenarios.schema`) raise the same exception type, so
callers — the CLI, the campaign engine, the service layer — can handle
bad workload parameters uniformly regardless of whether the workload
came from a hand-written generator or a JSON spec.
"""

from __future__ import annotations

__all__ = ["SpecError"]


class SpecError(ValueError):
    """A workload parameter or spec field failed validation.

    Attributes:
        path: Dotted path of the offending field, using ``[i]`` for list
            indices — e.g. ``phases[2].params.table_lines`` — so the
            error is actionable even for deeply nested specs.
        reason: What was wrong with the value.
    """

    def __init__(self, path: str, reason: str) -> None:
        self.path = path
        self.reason = reason
        super().__init__(f"{path}: {reason}")
