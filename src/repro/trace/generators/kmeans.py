"""KMN — k-means clustering (Rodinia).

Every warp compares its streamed points against the full shared centroid
array, scanning it cyclically.  The centroid footprint (60 KB by default)
exceeds the 32 KB L1, so under LRU the scan thrashes: each line is evicted
just before its next use.  The reuse distance is large but *finite* — this
is the benchmark where SPDP-B's long protection distance (optimal PD 24,
Table 3) beats G-Cache, whose per-bypass RRPV aging evicts protected lines
before such distant reuse arrives (the Section 5.1 discussion and the
motivation for the M-th-bypass extension).
"""

from __future__ import annotations

from repro.trace.generators.base import (
    BenchmarkGenerator,
    TraceParams,
    alu,
    load,
    store,
)
from repro.trace.trace import WarpTrace

__all__ = ["KMNGenerator"]


class KMNGenerator(BenchmarkGenerator):
    """Streaming points vs a cyclically scanned shared centroid array."""

    name = "KMN"
    sensitivity = "sensitive"
    suite = "Rodinia"
    description = "K-means Clustering"
    base_ctas = 96

    points_per_warp = 20
    #: Centroid lines read per point (a chunk of the cyclic scan).
    chunk_lines = 6
    #: Shared centroid footprint in lines (60 KB: thrashes a 32 KB L1,
    #: fits a 64-128 KB one — the Fig. 3/4 size-sensitivity shape).
    centroid_lines = 480

    def __init__(self, params: TraceParams = TraceParams()) -> None:
        super().__init__(params)
        self.points_base = self.regions.region()
        self.centroid_base = self.regions.region()
        self.assign_base = self.regions.region()

    def warp_program(self, cta_id: int, warp_id: int) -> WarpTrace:
        wpc = self.params.warps_per_cta
        warp_index = cta_id * wpc + warp_id
        program: WarpTrace = []
        # Phase-offset the scans so the centroid array stays uniformly hot
        # rather than being walked in lockstep by every warp.
        cursor = (warp_index * 37) % self.centroid_lines
        n = self.points_per_warp

        for point in range(n):
            program.append(load(self.stream_addr(self.points_base, cta_id, warp_id, point, n)))
            program.append(alu(2))
            for _ in range(self.chunk_lines):
                program.append(load(self.line_addr(self.centroid_base, cursor)))
                program.append(alu(2))
                cursor = (cursor + 1) % self.centroid_lines
            program.append(store(self.stream_addr(self.assign_base, cta_id, warp_id, point, n)))
        return program
