"""Synthetic benchmark generators, one per Table-1 workload."""

from repro.trace.generators.base import BenchmarkGenerator, TraceParams

__all__ = ["BenchmarkGenerator", "TraceParams"]
