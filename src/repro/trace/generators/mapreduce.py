"""Mars MapReduce kernels: PVC, SSC, IIX, PVR.

All four stream their input records and differ in how they touch the
shared key/value state:

* **PVC** (Page View Count) — hash-counter increments over a medium table
  with skewed key popularity; uses atomics at the memory partitions.
* **SSC** (Similarity Score) — pairs a streamed document against a small,
  intensely reused set of reference vectors (the most cache-friendly of
  the four once contention is controlled).
* **IIX** (Inverted Index) — scattered postings-list updates over a large
  index with moderate skew; high zero-reuse fraction.
* **PVR** (Page View Rank) — only *moderately* cache sensitive: a small
  hot rank table over a dominant stream.  Notably, SPDP-B bypasses 0 % on
  PVR while G-Cache bypasses 39.9 % (Table 3).
"""

from __future__ import annotations

from repro.trace.generators.base import (
    BenchmarkGenerator,
    TraceParams,
    alu,
    atom,
    load,
    store,
)
from repro.trace.trace import WarpTrace

__all__ = ["PVCGenerator", "SSCGenerator", "IIXGenerator", "PVRGenerator"]


class PVCGenerator(BenchmarkGenerator):
    """Page View Count: streamed log + skewed hash-counter atomics."""

    name = "PVC"
    sensitivity = "sensitive"
    suite = "Mars"
    description = "Page View Count"
    base_ctas = 96

    records_per_warp = 28
    hash_lines = 320
    key_skew = 1.5
    lanes_per_probe = 3
    #: Per-warp intermediate key/value buffer in global memory (the Mars
    #: framework emits map output through per-thread buffers): a small
    #: private working set re-touched every record.
    emit_lines = 2

    def __init__(self, params: TraceParams = TraceParams()) -> None:
        super().__init__(params)
        self.log_base = self.regions.region()
        self.hash_base = self.regions.region()
        self.emit_base = self.regions.region()

    def warp_program(self, cta_id: int, warp_id: int) -> WarpTrace:
        rng = self.rng_for(cta_id, warp_id)
        wpc = self.params.warps_per_cta
        warp_index = cta_id * wpc + warp_id
        program: WarpTrace = []
        emit0 = warp_index * self.emit_lines

        for rec in range(self.records_per_warp):
            program.append(
                load(
                    self.stream_addr(
                        self.log_base, cta_id, warp_id, rec, self.records_per_warp
                    )
                )
            )
            program.append(alu(3))
            # Probe the hash bucket (read) then increment it (atomic).
            lanes = tuple(
                self.line_addr(
                    self.hash_base,
                    self.skewed_index(rng, self.hash_lines, self.key_skew),
                )
                for _ in range(self.lanes_per_probe)
            )
            program.append(load(*lanes))
            program.append(alu(2))
            program.append(atom(lanes[0]))
            # Append to the warp's private emit buffer: read the cursor
            # line, write the record through it.
            emit = emit0 + rec % self.emit_lines
            program.append(load(self.line_addr(self.emit_base, emit)))
            program.append(alu(1))
            program.append(store(self.line_addr(self.emit_base, emit)))
        return program


class SSCGenerator(BenchmarkGenerator):
    """Similarity Score: streamed docs vs a small hot reference set."""

    name = "SSC"
    sensitivity = "sensitive"
    suite = "Mars"
    description = "Similarity Score"
    base_ctas = 96

    docs_per_warp = 24
    #: Reference-vector footprint: 320 lines (40 KB) — just beyond the
    #: 256-line L1, the classic LRU cliff: LRU evicts every line right
    #: before its cyclic reuse, while a protection policy keeps a
    #: near-capacity subset alive across scans.
    ref_lines = 320
    ref_reads_per_doc = 5
    #: Per-warp partial-score accumulators, re-touched every document.
    partial_lines = 2

    def __init__(self, params: TraceParams = TraceParams()) -> None:
        super().__init__(params)
        self.docs_base = self.regions.region()
        self.ref_base = self.regions.region()
        self.score_base = self.regions.region()
        self.partial_base = self.regions.region()

    def warp_program(self, cta_id: int, warp_id: int) -> WarpTrace:
        wpc = self.params.warps_per_cta
        warp_index = cta_id * wpc + warp_id
        program: WarpTrace = []
        # Each warp scans the shared reference vectors cyclically from its
        # own phase (documents are compared against every reference).
        ref_cursor = (warp_index * 53) % self.ref_lines
        partial0 = warp_index * self.partial_lines

        for doc in range(self.docs_per_warp):
            # Stream the document vector.
            program.append(
                load(self.stream_addr(self.docs_base, cta_id, warp_id, doc, self.docs_per_warp))
            )
            program.append(alu(2))
            # Dot products against the reference set: cyclic scan.
            for _ in range(self.ref_reads_per_doc):
                program.append(load(self.line_addr(self.ref_base, ref_cursor)))
                program.append(alu(3))
                ref_cursor = (ref_cursor + 1) % self.ref_lines
            # Update the warp's partial-score accumulators (read-modify-
            # write through global memory, as Mars does).
            for k in range(2):
                part = partial0 + (doc + k) % self.partial_lines
                program.append(load(self.line_addr(self.partial_base, part)))
                program.append(alu(1))
                program.append(store(self.line_addr(self.partial_base, part)))
            program.append(
                store(
                    self.stream_addr(self.score_base, cta_id, warp_id, doc, self.docs_per_warp)
                )
            )
        return program


class IIXGenerator(BenchmarkGenerator):
    """Inverted Index: streamed text + scattered postings updates."""

    name = "IIX"
    sensitivity = "sensitive"
    suite = "Mars"
    description = "Inverted Index"
    base_ctas = 96

    chunks_per_warp = 20
    index_lines = 4096
    word_skew = 4.0
    lanes_per_update = 5
    #: Per-warp postings staging buffer, re-touched every chunk.
    buffer_lines = 2

    def __init__(self, params: TraceParams = TraceParams()) -> None:
        super().__init__(params)
        self.text_base = self.regions.region()
        self.index_base = self.regions.region()
        self.buffer_base = self.regions.region()

    def warp_program(self, cta_id: int, warp_id: int) -> WarpTrace:
        rng = self.rng_for(cta_id, warp_id)
        wpc = self.params.warps_per_cta
        warp_index = cta_id * wpc + warp_id
        program: WarpTrace = []
        buf0 = warp_index * self.buffer_lines

        for chunk in range(self.chunks_per_warp):
            program.append(
                load(
                    self.stream_addr(
                        self.text_base, cta_id, warp_id, chunk, self.chunks_per_warp
                    )
                )
            )
            program.append(alu(4))
            lanes = tuple(
                self.line_addr(
                    self.index_base,
                    self.skewed_index(rng, self.index_lines, self.word_skew),
                )
                for _ in range(self.lanes_per_update)
            )
            program.append(load(*lanes))
            program.append(alu(2))
            # Stage postings through the warp's private buffer.
            for k in range(2):
                buf = buf0 + (chunk + k) % self.buffer_lines
                program.append(load(self.line_addr(self.buffer_base, buf)))
                program.append(alu(1))
                program.append(store(self.line_addr(self.buffer_base, buf)))
            program.append(store(lanes[0], lanes[1]))
        return program


class PVRGenerator(BenchmarkGenerator):
    """Page View Rank: dominant stream + small hot rank table."""

    name = "PVR"
    sensitivity = "moderate"
    suite = "Mars"
    description = "Page View Rank"
    base_ctas = 96

    records_per_warp = 28
    rank_lines = 320
    rank_skew = 2.5

    def __init__(self, params: TraceParams = TraceParams()) -> None:
        super().__init__(params)
        self.log_base = self.regions.region()
        self.rank_base = self.regions.region()
        self.out_base = self.regions.region()

    def warp_program(self, cta_id: int, warp_id: int) -> WarpTrace:
        rng = self.rng_for(cta_id, warp_id)
        program: WarpTrace = []
        stream_iters = self.records_per_warp * 2

        for rec in range(self.records_per_warp):
            # The stream dominates: two lines per record.
            program.append(
                load(self.stream_addr(self.log_base, cta_id, warp_id, 2 * rec, stream_iters))
            )
            program.append(
                load(
                    self.stream_addr(self.log_base, cta_id, warp_id, 2 * rec + 1, stream_iters)
                )
            )
            program.append(alu(4))
            for _ in range(2):
                idx = self.skewed_index(rng, self.rank_lines, self.rank_skew)
                program.append(load(self.line_addr(self.rank_base, idx)))
                program.append(alu(3))
            program.append(
                store(
                    self.stream_addr(self.out_base, cta_id, warp_id, rec, self.records_per_warp)
                )
            )
        return program
