"""Shared framework for the synthetic benchmark generators.

Each generator reproduces the *memory-access structure* of one Table-1
benchmark — streaming fractions, reuse distances, sharing and coalescing
behaviour — rather than its arithmetic.  Traces are deterministic given
``(scale, seed)``.

Modelling conventions:

* Addresses are byte addresses; distinct data structures live in disjoint
  1 GiB *regions* so they never alias.
* A *fully coalesced* warp access is emitted as a single lane address:
  the coalescing unit would merge all 32 lanes into that one transaction
  anyway, and the compact form keeps traces small.  Divergent accesses
  emit one lane address per distinct line touched.
* Generators interleave ALU groups between memory operations to set the
  kernel's compute-to-memory ratio, which is what determines how much of
  the memory latency multithreading can hide.
"""

from __future__ import annotations

import math
import random
import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.trace.errors import SpecError

from repro.trace.trace import (
    CTATrace,
    Instruction,
    KernelTrace,
    OP_ALU,
    OP_ATOM,
    OP_BAR,
    OP_LOAD,
    OP_SMEM,
    OP_STORE,
    WarpTrace,
)

__all__ = [
    "TraceParams",
    "RegionAllocator",
    "BenchmarkGenerator",
    "SpecError",
    "validate_workload_params",
    "alu",
    "smem",
    "bar",
    "load",
    "store",
    "atom",
    "LINE",
    "MAX_SCALE",
    "MAX_SEED",
    "MAX_WARPS_PER_CTA",
]

#: Line size assumed by the generators (matches Table 2).
LINE = 128

#: Bounds shared by :class:`TraceParams` and the scenario schema.  The
#: caps are deliberately generous — they exist to catch sign errors and
#: unit confusion (a scale of 1e9, a negative seed), not to limit real
#: experiments.
MAX_SCALE = 1024.0
MAX_SEED = 2**63 - 1
MAX_WARPS_PER_CTA = 64


def validate_workload_params(
    scale: float, seed: int, warps_per_cta: int = 8, path: str = "params"
) -> None:
    """Validate the (scale, seed, warps_per_cta) triple every workload shares.

    The single authority for these ranges: :class:`TraceParams` calls it
    on construction (so *every* generator validates centrally, instead
    of each constructor silently accepting garbage), and the scenario
    schema calls it for spec-level fields — raising the same typed
    :class:`~repro.trace.errors.SpecError` with an actionable field path.
    """
    if isinstance(scale, bool) or not isinstance(scale, (int, float)):
        raise SpecError(f"{path}.scale",
                        f"expected a number, got {type(scale).__name__}")
    if not math.isfinite(scale) or not 0 < scale <= MAX_SCALE:
        raise SpecError(f"{path}.scale",
                        f"expected 0 < scale <= {MAX_SCALE}, got {scale!r}")
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise SpecError(f"{path}.seed",
                        f"expected an int, got {type(seed).__name__}")
    if not 0 <= seed <= MAX_SEED:
        raise SpecError(f"{path}.seed",
                        f"expected 0 <= seed <= 2**63-1, got {seed!r}")
    if isinstance(warps_per_cta, bool) or not isinstance(warps_per_cta, int):
        raise SpecError(f"{path}.warps_per_cta",
                        f"expected an int, got {type(warps_per_cta).__name__}")
    if not 1 <= warps_per_cta <= MAX_WARPS_PER_CTA:
        raise SpecError(
            f"{path}.warps_per_cta",
            f"expected 1 <= warps_per_cta <= {MAX_WARPS_PER_CTA}, "
            f"got {warps_per_cta!r}",
        )


@dataclass(frozen=True)
class TraceParams:
    """Knobs shared by every generator.

    Attributes:
        scale: Multiplies the CTA count (work volume); 1.0 is the default
            experiment size, smaller values make unit tests fast.
        seed: RNG seed; traces are deterministic given (scale, seed).
        warps_per_cta: Warps in each CTA.
    """

    scale: float = 1.0
    seed: int = 0
    warps_per_cta: int = 8

    def __post_init__(self) -> None:
        # Central validation: every generator constructor goes through
        # here, so out-of-range scale/seed can never be accepted
        # silently anywhere in the suite.
        validate_workload_params(self.scale, self.seed, self.warps_per_cta)

    def scaled(self, base_ctas: int, minimum: int = 8) -> int:
        """CTA count after applying ``scale``."""
        return max(minimum, int(round(base_ctas * self.scale)))


class RegionAllocator:
    """Hands out disjoint 1 GiB address regions for data structures."""

    REGION_BYTES = 1 << 30

    def __init__(self) -> None:
        self._next = 1  # region 0 is reserved / never used

    def region(self) -> int:
        """Base byte address of a fresh region."""
        base = self._next * self.REGION_BYTES
        self._next += 1
        return base


# ----------------------------------------------------------------------
# Instruction constructors (tiny, but they keep generators readable)
# ----------------------------------------------------------------------
def alu(count: int) -> Instruction:
    return (OP_ALU, count)


def smem(count: int) -> Instruction:
    return (OP_SMEM, count)


def bar() -> Instruction:
    return (OP_BAR, 0)


def load(*lane_addrs: int) -> Instruction:
    return (OP_LOAD, tuple(lane_addrs))


def store(*lane_addrs: int) -> Instruction:
    return (OP_STORE, tuple(lane_addrs))


def atom(*lane_addrs: int) -> Instruction:
    return (OP_ATOM, tuple(lane_addrs))


class BenchmarkGenerator(ABC):
    """Base class: one subclass per Table-1 benchmark.

    Subclasses implement :meth:`warp_program`, which emits the instruction
    stream of one warp, and declare their shape through class attributes.

    Attributes:
        name: Benchmark short name (Table 1).
        sensitivity: ``"sensitive"``, ``"moderate"`` or ``"insensitive"``.
        suite: Origin suite in the paper (Rodinia, Parboil, Mars, SDK).
        description: Table 1 description.
        base_ctas: CTA count at scale 1.0.
        scratchpad_per_cta: Scratchpad footprint (limits CTA concurrency).
    """

    name: str = "?"
    sensitivity: str = "sensitive"
    suite: str = "?"
    description: str = ""
    base_ctas: int = 96
    scratchpad_per_cta: int = 0

    def __init__(self, params: TraceParams = TraceParams()) -> None:
        self.params = params
        self.regions = RegionAllocator()
        self._rng = random.Random(self._name_seed() ^ params.seed)

    # ------------------------------------------------------------------
    # Randomness helpers
    # ------------------------------------------------------------------
    def _name_seed(self) -> int:
        # crc32, not hash(): str hashing is salted per interpreter, which
        # would break the documented (scale, seed) determinism contract
        # and invalidate persistent result-cache entries across sessions.
        return zlib.crc32(self.name.encode()) & 0xFFFF

    def rng_for(self, cta_id: int, warp_id: int) -> random.Random:
        """Deterministic per-warp RNG (stable across design sweeps)."""
        return random.Random(
            self._name_seed() * 1_000_003
            + self.params.seed * 7919
            + cta_id * 131
            + warp_id
        )

    @staticmethod
    def skewed_index(rng: random.Random, n: int, skew: float) -> int:
        """Popularity-skewed index in [0, n): ``skew`` > 1 favours low indices.

        ``skew == 1`` is uniform; 3-6 gives the hot-head distributions of
        hash tables and hub-dominated graphs.
        """
        return min(n - 1, int(n * (rng.random() ** skew)))

    @staticmethod
    def line_addr(base: int, line_index: int) -> int:
        """Byte address of line ``line_index`` within the region at ``base``."""
        return base + line_index * LINE

    def stream_addr(
        self,
        base: int,
        cta_id: int,
        warp_id: int,
        iteration: int,
        iters_per_warp: int,
    ) -> int:
        """Streaming address with the coalesced-kernel layout.

        Real data-parallel kernels assign *adjacent* elements to adjacent
        warps: at any instant, the warps of one CTA fetch a contiguous
        run of lines.  This layout (iteration-major within a CTA block)
        is what gives GPU streams their DRAM row-buffer locality; giving
        each warp a distant private cursor would make every stream a
        row-conflict storm that no FR-FCFS scheduler could fix.
        """
        wpc = self.params.warps_per_cta
        line = cta_id * wpc * iters_per_warp + iteration * wpc + warp_id
        return base + line * LINE

    # ------------------------------------------------------------------
    # Trace assembly
    # ------------------------------------------------------------------
    @abstractmethod
    def warp_program(self, cta_id: int, warp_id: int) -> WarpTrace:
        """Emit the instruction stream of one warp."""

    def build(self) -> KernelTrace:
        """Generate the full kernel trace."""
        num_ctas = self.params.scaled(self.base_ctas)
        ctas: List[CTATrace] = []
        for cta_id in range(num_ctas):
            warps = [
                self.warp_program(cta_id, w)
                for w in range(self.params.warps_per_cta)
            ]
            ctas.append(CTATrace(warps=warps))
        trace = KernelTrace(
            name=self.name,
            ctas=ctas,
            scratchpad_per_cta=self.scratchpad_per_cta,
            meta={
                "sensitivity": self.sensitivity,
                "suite": self.suite,
                "description": self.description,
                "scale": self.params.scale,
                "seed": self.params.seed,
            },
        )
        trace.validate()
        return trace
