"""Parameterized synthetic microbenchmark generators.

Controlled single-pattern workloads for calibration studies, policy
debugging and documentation — the "unit tests" of workload space, as
opposed to the composite Table-1 benchmarks:

* :class:`StreamingGenerator` — pure coalesced streaming, zero reuse.
* :class:`CyclicScanGenerator` — every warp cyclically scans one shared
  array of configurable footprint (the LRU-cliff probe).
* :class:`ZipfGatherGenerator` — popularity-skewed random gathers.
* :class:`PrivateHotGenerator` — small per-warp working sets destroyed
  by inter-warp contention (the paper's core scenario).
* :class:`PointerChaseGenerator` — serial dependent misses (latency
  probe; one transaction outstanding per warp).
"""

from __future__ import annotations

from repro.trace.generators.base import (
    BenchmarkGenerator,
    TraceParams,
    alu,
    load,
    store,
)
from repro.trace.trace import WarpTrace

__all__ = [
    "StreamingGenerator",
    "CyclicScanGenerator",
    "ZipfGatherGenerator",
    "PrivateHotGenerator",
    "PointerChaseGenerator",
]


class StreamingGenerator(BenchmarkGenerator):
    """Pure streaming: every line touched exactly once, coalesced."""

    name = "SYN-STREAM"
    sensitivity = "insensitive"
    suite = "synthetic"
    description = "pure streaming"
    base_ctas = 64

    iters_per_warp = 16
    alu_per_iter = 4

    def __init__(self, params: TraceParams = TraceParams()) -> None:
        super().__init__(params)
        self.data_base = self.regions.region()

    def warp_program(self, cta_id: int, warp_id: int) -> WarpTrace:
        n = self.iters_per_warp
        program: WarpTrace = []
        for i in range(n):
            program.append(load(self.stream_addr(self.data_base, cta_id, warp_id, i, n)))
            program.append(alu(self.alu_per_iter))
        return program


class CyclicScanGenerator(BenchmarkGenerator):
    """All warps scan one shared array cyclically from private phases.

    ``footprint_lines`` is the knob: below the L1 line count everything
    hits; just above it LRU collapses while protection policies keep a
    near-capacity subset (the cliff the paper's Section 3 describes).
    """

    name = "SYN-SCAN"
    sensitivity = "sensitive"
    suite = "synthetic"
    description = "shared cyclic scan"
    base_ctas = 64

    footprint_lines = 320
    reads_per_iter = 4
    iters_per_warp = 12
    stream_fraction_den = 4  # one streaming load per this many scan reads

    def __init__(self, params: TraceParams = TraceParams()) -> None:
        super().__init__(params)
        self.scan_base = self.regions.region()
        self.stream_base = self.regions.region()

    def warp_program(self, cta_id: int, warp_id: int) -> WarpTrace:
        wpc = self.params.warps_per_cta
        warp_index = cta_id * wpc + warp_id
        cursor = (warp_index * 37) % self.footprint_lines
        program: WarpTrace = []
        n = self.iters_per_warp
        for i in range(n):
            program.append(load(self.stream_addr(self.stream_base, cta_id, warp_id, i, n)))
            for _ in range(self.reads_per_iter):
                program.append(load(self.line_addr(self.scan_base, cursor)))
                program.append(alu(2))
                cursor = (cursor + 1) % self.footprint_lines
        return program


class ZipfGatherGenerator(BenchmarkGenerator):
    """Popularity-skewed random gathers over a configurable table."""

    name = "SYN-ZIPF"
    sensitivity = "sensitive"
    suite = "synthetic"
    description = "zipf gathers"
    base_ctas = 64

    table_lines = 1024
    skew = 3.0
    gathers_per_warp = 48
    lanes_per_gather = 4

    def __init__(self, params: TraceParams = TraceParams()) -> None:
        super().__init__(params)
        self.table_base = self.regions.region()

    def warp_program(self, cta_id: int, warp_id: int) -> WarpTrace:
        rng = self.rng_for(cta_id, warp_id)
        program: WarpTrace = []
        for _ in range(self.gathers_per_warp):
            lanes = tuple(
                self.line_addr(
                    self.table_base,
                    self.skewed_index(rng, self.table_lines, self.skew),
                )
                for _ in range(self.lanes_per_gather)
            )
            program.append(load(*lanes))
            program.append(alu(3))
        return program


class PrivateHotGenerator(BenchmarkGenerator):
    """Per-warp hot lines + stream pressure: the contention scenario.

    Each warp re-touches ``hot_lines`` private lines every iteration
    while a stream churns the cache.  Whether the hot lines survive is
    purely a question of management policy — this is the minimal
    workload on which G-Cache's victim-hint protection is visible.
    """

    name = "SYN-HOT"
    sensitivity = "sensitive"
    suite = "synthetic"
    description = "private hot lines under stream pressure"
    base_ctas = 64

    hot_lines = 2
    iters_per_warp = 16
    stream_loads_per_iter = 2

    def __init__(self, params: TraceParams = TraceParams()) -> None:
        super().__init__(params)
        self.hot_base = self.regions.region()
        self.stream_base = self.regions.region()

    def warp_program(self, cta_id: int, warp_id: int) -> WarpTrace:
        wpc = self.params.warps_per_cta
        warp_index = cta_id * wpc + warp_id
        hot0 = warp_index * self.hot_lines
        program: WarpTrace = []
        n = self.iters_per_warp * self.stream_loads_per_iter
        k = 0
        for i in range(self.iters_per_warp):
            for _ in range(self.stream_loads_per_iter):
                program.append(load(self.stream_addr(self.stream_base, cta_id, warp_id, k, n)))
                k += 1
            hot = hot0 + i % self.hot_lines
            program.append(load(self.line_addr(self.hot_base, hot)))
            program.append(alu(2))
            program.append(store(self.line_addr(self.hot_base, hot)))
        return program


class PointerChaseGenerator(BenchmarkGenerator):
    """Dependent random loads: a pure memory-latency probe."""

    name = "SYN-CHASE"
    sensitivity = "insensitive"
    suite = "synthetic"
    description = "pointer chasing"
    base_ctas = 32

    chain_length = 24
    pool_lines = 1 << 18

    def __init__(self, params: TraceParams = TraceParams()) -> None:
        super().__init__(params)
        self.pool_base = self.regions.region()

    def warp_program(self, cta_id: int, warp_id: int) -> WarpTrace:
        rng = self.rng_for(cta_id, warp_id)
        program: WarpTrace = []
        for _ in range(self.chain_length):
            program.append(load(self.line_addr(self.pool_base, rng.randrange(self.pool_lines))))
            program.append(alu(1))
        return program
