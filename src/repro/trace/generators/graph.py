"""BFS — breadth-first search (Rodinia).

Frontier-driven graph traversal: the frontier and adjacency lists are
streamed (never reused), while per-node status lookups scatter over the
node array with hub-skewed popularity.  The paper's Fig. 2 shows ~80 % of
BFS's L1 fills are never reused — the highest zero-reuse fraction in the
suite — yet the hub nodes provide enough hot lines for bypassing to pay
off (GC bypasses 30.2 % of accesses, Table 3).
"""

from __future__ import annotations

from repro.trace.generators.base import (
    BenchmarkGenerator,
    TraceParams,
    alu,
    load,
    store,
)
from repro.trace.trace import WarpTrace

__all__ = ["BFSGenerator"]


class BFSGenerator(BenchmarkGenerator):
    """Frontier expansion with hub-skewed status lookups."""

    name = "BFS"
    sensitivity = "sensitive"
    suite = "Rodinia"
    description = "Breadth First Search"
    base_ctas = 128

    nodes_per_warp = 16
    #: Divergent lanes per status gather (uncoalesced neighbour checks).
    lanes_per_gather = 6
    #: Node-status array size in lines and hub skew.
    status_lines = 4096
    hub_skew = 5.0
    #: Edges of one node span this many consecutive adjacency lines.
    adj_segment_lines = 2

    def __init__(self, params: TraceParams = TraceParams()) -> None:
        super().__init__(params)
        self.frontier_base = self.regions.region()
        self.adjacency_base = self.regions.region()
        self.status_base = self.regions.region()
        self.next_frontier_base = self.regions.region()
        self._adj_lines = 1 << 20

    def warp_program(self, cta_id: int, warp_id: int) -> WarpTrace:
        rng = self.rng_for(cta_id, warp_id)
        program: WarpTrace = []

        for node in range(self.nodes_per_warp):
            # Pop a frontier chunk: coalesced streaming.
            program.append(
                load(
                    self.stream_addr(
                        self.frontier_base, cta_id, warp_id, node, self.nodes_per_warp
                    )
                )
            )
            program.append(alu(2))
            # Walk the node's edge list: a short streaming burst at a
            # random adjacency offset (edge lists are contiguous even
            # though nodes are visited in irregular order).
            seg = rng.randrange(self._adj_lines - self.adj_segment_lines)
            for k in range(self.adj_segment_lines):
                program.append(load(self.line_addr(self.adjacency_base, seg + k)))
            program.append(alu(2))
            # Check neighbour status: divergent gather, hub nodes are hot.
            lanes = tuple(
                self.line_addr(
                    self.status_base,
                    self.skewed_index(rng, self.status_lines, self.hub_skew),
                )
                for _ in range(self.lanes_per_gather)
            )
            program.append(load(*lanes))
            program.append(alu(3))
            # Push discovered nodes: coalesced streaming store.
            program.append(
                store(
                    self.stream_addr(
                        self.next_frontier_base, cta_id, warp_id, node, self.nodes_per_warp
                    )
                )
            )
        return program
