"""Dense / regular kernels: SYRK, NW, FFT, FWT.

* **SYRK** (PolyBench) — blocked symmetric rank-K update: each CTA reuses
  its A-tile across the k-loop while streaming C; tile reuse is what the
  L1 should capture (cache sensitive, optimal PD 9).
* **NW** (Rodinia Needleman-Wunsch) — wavefront dynamic programming with
  limited parallelism and a *very* large reuse distance (optimal PD 68,
  the largest in Table 3).  SPDP-B bypasses 59 % of accesses; G-Cache
  only 5.1 % and trails it — the paper's worst case for G-Cache.
* **FFT** (Parboil) — strided butterflies over per-CTA blocks; the
  aggregate block footprint mildly exceeds the L1 (moderately sensitive).
* **FWT** (CUDA SDK) — Walsh transform, pure strided streaming; cache
  insensitive and the one benchmark where G-Cache bypasses 0 %.
"""

from __future__ import annotations

from repro.trace.generators.base import (
    BenchmarkGenerator,
    TraceParams,
    alu,
    load,
    smem,
    store,
)
from repro.trace.trace import WarpTrace

__all__ = ["SYRKGenerator", "NWGenerator", "FFTGenerator", "FWTGenerator"]


class SYRKGenerator(BenchmarkGenerator):
    """Blocked rank-K update: per-CTA hot tile + streamed C."""

    name = "SYRK"
    sensitivity = "sensitive"
    suite = "PolyBench"
    description = "Symmetric Rank-K"
    base_ctas = 96
    scratchpad_per_cta = 8 * 1024

    k_steps = 14
    #: Shared A panel scanned cyclically by every warp: 320 lines (40 KB),
    #: just past the LRU cliff of the 256-line L1 — LRU loses the whole
    #: panel, protection keeps nearly all of it.
    panel_lines = 320
    panel_reads_per_step = 4
    #: Per-warp C accumulator tile: read-modify-written every k-step,
    #: the short-reuse working set contention destroys under LRU.
    c_tile_lines = 2

    def __init__(self, params: TraceParams = TraceParams()) -> None:
        super().__init__(params)
        self.a_base = self.regions.region()
        self.c_base = self.regions.region()

    def warp_program(self, cta_id: int, warp_id: int) -> WarpTrace:
        wpc = self.params.warps_per_cta
        warp_index = cta_id * wpc + warp_id
        program: WarpTrace = []
        # Rank-K update reads the shared A panel for every output tile;
        # each warp walks it cyclically from a private phase.
        cursor = (warp_index * 41) % self.panel_lines
        c_tile0 = warp_index * self.c_tile_lines

        for k in range(self.k_steps):
            for _ in range(self.panel_reads_per_step):
                program.append(load(self.line_addr(self.a_base, cursor)))
                program.append(alu(3))
                cursor = (cursor + 1) % self.panel_lines
            # Accumulate into the warp's C tile (read-modify-write).
            for t in range(2):
                c_line = c_tile0 + (k + t) % self.c_tile_lines
                program.append(load(self.line_addr(self.c_base, c_line)))
                program.append(alu(2))
                program.append(store(self.line_addr(self.c_base, c_line)))
            program.append(smem(2))
        return program


class NWGenerator(BenchmarkGenerator):
    """Wavefront DP: very large but finite reuse distance.

    Each warp owns a private score-matrix window and sweeps it once per
    diagonal pass.  The window set of all resident warps (~120 KB) far
    exceeds the L1, so the pass-to-pass reuse distance — about 45
    accesses per set — defeats LRU and G-Cache's aging, while SPDP-B's
    PD of 68 covers it.  This is the paper's worst case for G-Cache
    (Table 3: GC bypasses 5.1 %, SPDP-B 59 %).
    """

    name = "NW"
    sensitivity = "moderate"
    suite = "Rodinia"
    description = "Needleman-Wunsch"
    #: Wavefront parallelism is narrow: few CTAs are live at a time.
    base_ctas = 48

    #: Private window per warp, in lines.
    window_lines = 12
    #: Diagonal passes over the window.
    passes = 4

    def __init__(self, params: TraceParams = TraceParams()) -> None:
        super().__init__(params)
        self.score_base = self.regions.region()
        self.ref_base = self.regions.region()
        self.out_base = self.regions.region()

    def warp_program(self, cta_id: int, warp_id: int) -> WarpTrace:
        wpc = self.params.warps_per_cta
        warp_index = cta_id * wpc + warp_id
        program: WarpTrace = []
        window0 = warp_index * self.window_lines
        iters = self.passes * self.window_lines
        it = 0

        for _ in range(self.passes):
            for i in range(self.window_lines):
                # Read the previous diagonal's cells...
                cell = window0 + i
                program.append(load(self.line_addr(self.score_base, cell)))
                # ... the substitution-matrix stream ...
                program.append(
                    load(self.stream_addr(self.ref_base, cta_id, warp_id, it, iters))
                )
                program.append(alu(4))
                # ... and write the *new* diagonal (a different line).
                program.append(
                    store(self.stream_addr(self.out_base, cta_id, warp_id, it, iters))
                )
                it += 1
        return program


class FFTGenerator(BenchmarkGenerator):
    """Strided butterflies over per-CTA blocks (moderately sensitive)."""

    name = "FFT"
    sensitivity = "moderate"
    suite = "Parboil"
    description = "Fast Fourier Transform"
    base_ctas = 96
    scratchpad_per_cta = 16 * 1024

    stages = 5
    butterflies_per_stage = 4
    block_lines = 48

    def __init__(self, params: TraceParams = TraceParams()) -> None:
        super().__init__(params)
        self.data_base = self.regions.region()
        self.twiddle_base = self.regions.region()

    def warp_program(self, cta_id: int, warp_id: int) -> WarpTrace:
        program: WarpTrace = []
        block0 = cta_id * self.block_lines
        # Per-warp starting offset inside the CTA block.
        offset = (warp_id * 7) % self.block_lines

        for stage in range(self.stages):
            stride = 1 << stage
            for i in range(self.butterflies_per_stage):
                a = block0 + (offset + i * stride) % self.block_lines
                b = block0 + (offset + i * stride + stride) % self.block_lines
                program.append(load(self.line_addr(self.data_base, a)))
                program.append(load(self.line_addr(self.data_base, b)))
                # Twiddle factors: tiny hot table.
                program.append(
                    load(self.line_addr(self.twiddle_base, stage * 4 + i % 4))
                )
                program.append(alu(4))
                program.append(store(self.line_addr(self.data_base, a)))
            program.append(smem(3))
        return program


class FWTGenerator(BenchmarkGenerator):
    """Fast Walsh transform: pure strided streaming, insensitive."""

    name = "FWT"
    sensitivity = "insensitive"
    suite = "CUDA SDK"
    description = "Fast Walsh Transform"
    base_ctas = 96

    butterflies_per_warp = 20

    def __init__(self, params: TraceParams = TraceParams()) -> None:
        super().__init__(params)
        self.data_base = self.regions.region()

    def warp_program(self, cta_id: int, warp_id: int) -> WarpTrace:
        program: WarpTrace = []
        # Disjoint per-warp pairs: every line is touched exactly twice,
        # back-to-back within the same warp (an L1 hit even on a tiny
        # cache), so no cross-warp contention ever develops.
        n = self.butterflies_per_warp * 2
        for i in range(self.butterflies_per_warp):
            a = self.stream_addr(self.data_base, cta_id, warp_id, 2 * i, n)
            b = self.stream_addr(self.data_base, cta_id, warp_id, 2 * i + 1, n)
            program.append(load(a))
            program.append(load(b))
            program.append(alu(6))
            program.append(store(a))
            program.append(store(b))
        return program
