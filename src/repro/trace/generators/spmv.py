"""SPMV — sparse matrix-vector multiply (Parboil).

The paper's canonical mixed-pattern kernel (Section 4.2, Figure 7): the
matrix (indices + values) is *streamed* and never reused, while the dense
vector ``x`` is *gathered* with a popularity-skewed column distribution —
a hot head of vector lines is reused many times and is exactly what
G-Cache should detect and protect while bypassing the matrix stream.

G-Cache outperforms SPDP-B here (Table 3: GC bypasses 37.2 % of accesses
vs SPDP-B's 18.1 %) because PDP cannot tell streaming from hot accesses.
"""

from __future__ import annotations

from repro.trace.generators.base import (
    BenchmarkGenerator,
    TraceParams,
    alu,
    load,
    store,
)
from repro.trace.trace import WarpTrace

__all__ = ["SPMVGenerator"]


class SPMVGenerator(BenchmarkGenerator):
    """CSR SpMV: streaming matrix + skew-gathered vector."""

    name = "SPMV"
    sensitivity = "sensitive"
    suite = "Parboil"
    description = "Sparse Matrix Vector Multiply"
    base_ctas = 128

    #: Rows processed per warp.
    rows_per_warp = 16
    #: Gather operations per row and divergent lines per gather.
    gathers_per_row = 2
    lanes_per_gather = 3
    #: Dense-vector size in lines and its popularity skew.
    vector_lines = 640
    vector_skew = 3.0

    def __init__(self, params: TraceParams = TraceParams()) -> None:
        super().__init__(params)
        self.matrix_base = self.regions.region()
        self.vector_base = self.regions.region()
        self.output_base = self.regions.region()

    def warp_program(self, cta_id: int, warp_id: int) -> WarpTrace:
        rng = self.rng_for(cta_id, warp_id)
        program: WarpTrace = []
        # Matrix stream: two lines per row, CTA-contiguous layout.
        iters = self.rows_per_warp * 2

        for row in range(self.rows_per_warp):
            # Row pointer + column indices / values: coalesced streaming.
            program.append(
                load(self.stream_addr(self.matrix_base, cta_id, warp_id, 2 * row, iters))
            )
            program.append(
                load(self.stream_addr(self.matrix_base, cta_id, warp_id, 2 * row + 1, iters))
            )
            program.append(alu(2))
            # Vector gathers: divergent, popularity-skewed columns.
            for _ in range(self.gathers_per_row):
                lanes = tuple(
                    self.line_addr(
                        self.vector_base,
                        self.skewed_index(rng, self.vector_lines, self.vector_skew),
                    )
                    for _ in range(self.lanes_per_gather)
                )
                program.append(load(*lanes))
                program.append(alu(3))
            # y[row] store: coalesced streaming.
            program.append(
                store(
                    self.stream_addr(
                        self.output_base, cta_id, warp_id, row, self.rows_per_warp
                    )
                )
            )
            program.append(alu(2))
        return program
