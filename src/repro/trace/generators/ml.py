"""BP and CFD generators.

* **BP** (Rodinia back-propagation) — layer activations are streamed once
  and weight tiles live in scratchpad; the global-memory footprint is
  essentially write-once/read-once, making BP cache insensitive (0.2 %
  bypass under G-Cache, Table 3).
* **CFD** (Rodinia CFD solver) — unstructured-mesh flux kernel: cell data
  streams while neighbour gathers exhibit locality through shared faces.
  Moderately cache sensitive; G-Cache bypasses 44.3 % of accesses.
"""

from __future__ import annotations

from repro.trace.generators.base import (
    BenchmarkGenerator,
    TraceParams,
    alu,
    load,
    smem,
    store,
)
from repro.trace.trace import WarpTrace

__all__ = ["BPGenerator", "CFDGenerator"]


class BPGenerator(BenchmarkGenerator):
    """Back-propagation: streamed activations, scratchpad weights."""

    name = "BP"
    sensitivity = "insensitive"
    suite = "Rodinia"
    description = "Back Propagation"
    base_ctas = 96
    scratchpad_per_cta = 16 * 1024

    neurons_per_warp = 24

    def __init__(self, params: TraceParams = TraceParams()) -> None:
        super().__init__(params)
        self.input_base = self.regions.region()
        self.weight_base = self.regions.region()
        self.output_base = self.regions.region()

    def warp_program(self, cta_id: int, warp_id: int) -> WarpTrace:
        program: WarpTrace = []
        n = self.neurons_per_warp
        for i in range(n):
            program.append(load(self.stream_addr(self.input_base, cta_id, warp_id, i, n)))
            # Weight tile already staged in scratchpad.
            program.append(smem(4))
            program.append(alu(6))
            program.append(load(self.stream_addr(self.weight_base, cta_id, warp_id, i, n)))
            program.append(alu(4))
            program.append(store(self.stream_addr(self.output_base, cta_id, warp_id, i, n)))
        return program


class CFDGenerator(BenchmarkGenerator):
    """Unstructured-mesh flux computation: stream + local gathers."""

    name = "CFD"
    sensitivity = "moderate"
    suite = "Rodinia"
    description = "CFD Solver"
    base_ctas = 96

    cells_per_warp = 24
    #: Mesh-node array: locality comes from faces shared between nearby
    #: cells — gathers cluster around the warp's own cell range.
    mesh_lines = 4096
    neighbours_per_cell = 3
    locality_window = 48

    def __init__(self, params: TraceParams = TraceParams()) -> None:
        super().__init__(params)
        self.cell_base = self.regions.region()
        self.mesh_base = self.regions.region()
        self.flux_base = self.regions.region()

    def warp_program(self, cta_id: int, warp_id: int) -> WarpTrace:
        rng = self.rng_for(cta_id, warp_id)
        wpc = self.params.warps_per_cta
        warp_index = cta_id * wpc + warp_id
        program: WarpTrace = []
        n = self.cells_per_warp

        for i in range(n):
            program.append(load(self.stream_addr(self.cell_base, cta_id, warp_id, i, n)))
            program.append(alu(3))
            # Neighbour gathers: clustered around the cell's mesh window.
            centre = (warp_index * n + i) % self.mesh_lines
            lanes = tuple(
                self.line_addr(
                    self.mesh_base,
                    (centre + rng.randrange(self.locality_window)) % self.mesh_lines,
                )
                for _ in range(self.neighbours_per_cell)
            )
            program.append(load(*lanes))
            program.append(alu(5))
            program.append(store(self.stream_addr(self.flux_base, cta_id, warp_id, i, n)))
        return program
