"""Stencil-family kernels: SD1, SD2, STL, WP.

* **SD1** (Rodinia srad, first kernel) — 1-D streaming diffusion: fully
  coalesced, zero reuse, *cache insensitive*.  Bypassing neither helps
  nor hurts (Table 3: 2.7 % bypass under GC).
* **SD2** (second srad kernel) — 2-D diffusion: each warp sweeps two
  adjacent rows of its tile, so the shared border line returns with a
  medium reuse distance that a 48-warp L1 destroys under LRU.  Miss
  rates stay very high for every design, but extending line lifetime
  recovers the border reuse (the paper: 98.8 % -> 96.6 % miss yet +33 %
  performance).
* **STL** (Parboil stencil) — 7-point stencil whose spatial locality is
  absorbed by the coalescer; compute-heavy, insensitive.
* **WP** (SDK Weather Prediction) — many streamed field arrays with big
  ALU blocks; insensitive but with enough accidental re-touches that GC
  still bypasses ~32 % of accesses without a performance change.
"""

from __future__ import annotations

from repro.trace.generators.base import (
    BenchmarkGenerator,
    TraceParams,
    alu,
    load,
    store,
)
from repro.trace.trace import WarpTrace

__all__ = ["SD1Generator", "SD2Generator", "STLGenerator", "WPGenerator"]


class SD1Generator(BenchmarkGenerator):
    """1-D streaming diffusion: coalesced, zero-reuse, insensitive."""

    name = "SD1"
    sensitivity = "insensitive"
    suite = "Rodinia"
    description = "Graphic Diffusion (kernel 1)"
    base_ctas = 96

    elements_per_warp = 30

    def __init__(self, params: TraceParams = TraceParams()) -> None:
        super().__init__(params)
        self.in_base = self.regions.region()
        self.out_base = self.regions.region()

    def warp_program(self, cta_id: int, warp_id: int) -> WarpTrace:
        program: WarpTrace = []
        n = self.elements_per_warp
        for i in range(n):
            program.append(load(self.stream_addr(self.in_base, cta_id, warp_id, i, n)))
            program.append(alu(6))
            program.append(store(self.stream_addr(self.out_base, cta_id, warp_id, i, n)))
        return program


class SD2Generator(BenchmarkGenerator):
    """2-D diffusion: overwhelming stream + small hot coefficient table.

    The stencil sweep itself has no L1-capturable reuse (rows are far
    longer than the cache), so the miss rate stays very high under every
    design — but the per-column diffusion-coefficient lookups form a
    small hot structure whose protection is worth a real speedup, which
    is the paper's SD2 story (miss 98.8 % -> 96.6 %, +33 % performance).
    """

    name = "SD2"
    sensitivity = "sensitive"
    suite = "Rodinia"
    description = "Graphic Diffusion (kernel 2)"
    base_ctas = 96

    #: Columns (lines) each warp sweeps.
    cols_per_warp = 28
    #: Grid row length in lines.
    row_lines = 4096
    #: Hot diffusion-coefficient table (lines) and its access period.
    coeff_lines = 288
    coeff_period = 1
    coeff_skew = 2.0

    def __init__(self, params: TraceParams = TraceParams()) -> None:
        super().__init__(params)
        self.grid_base = self.regions.region()
        self.out_base = self.regions.region()
        self.coeff_base = self.regions.region()

    def warp_program(self, cta_id: int, warp_id: int) -> WarpTrace:
        rng = self.rng_for(cta_id, warp_id)
        wpc = self.params.warps_per_cta
        warp_index = cta_id * wpc + warp_id
        program: WarpTrace = []
        # Warps of a CTA tile adjacent column chunks of one row.
        row = 1 + warp_index // (self.row_lines // self.cols_per_warp)
        col0 = (warp_index * self.cols_per_warp) % self.row_lines

        for c in range(self.cols_per_warp):
            here = row * self.row_lines + col0 + c
            program.append(load(self.line_addr(self.grid_base, here - self.row_lines)))
            program.append(load(self.line_addr(self.grid_base, here)))
            program.append(load(self.line_addr(self.grid_base, here + self.row_lines)))
            # The diffusion update is arithmetic-heavy (exp/div in srad),
            # which keeps the kernel latency- rather than purely
            # bandwidth-bound.
            program.append(alu(10))
            if c % self.coeff_period == 0:
                idx = self.skewed_index(rng, self.coeff_lines, self.coeff_skew)
                program.append(load(self.line_addr(self.coeff_base, idx)))
                program.append(alu(4))
            program.append(store(self.line_addr(self.out_base, here)))
        return program


class STLGenerator(BenchmarkGenerator):
    """7-point stencil: coalescer-captured locality, compute heavy."""

    name = "STL"
    sensitivity = "insensitive"
    suite = "Parboil"
    description = "Stencil"
    base_ctas = 96

    points_per_warp = 16
    plane_lines = 1 << 16

    def __init__(self, params: TraceParams = TraceParams()) -> None:
        super().__init__(params)
        self.grid_base = self.regions.region()
        self.out_base = self.regions.region()

    def warp_program(self, cta_id: int, warp_id: int) -> WarpTrace:
        program: WarpTrace = []
        n = self.points_per_warp
        for i in range(n):
            center_addr = self.stream_addr(self.grid_base, cta_id, warp_id, i, n)
            # The +-1 element neighbours share the centre line after
            # coalescing; only the +-plane neighbours are distinct lines.
            program.append(load(center_addr))
            program.append(load(center_addr + self.plane_lines * 128))
            program.append(load(center_addr + 2 * self.plane_lines * 128))
            program.append(alu(9))
            program.append(store(self.stream_addr(self.out_base, cta_id, warp_id, i, n)))
        return program


class WPGenerator(BenchmarkGenerator):
    """Weather prediction: many streamed fields, long ALU blocks."""

    name = "WP"
    sensitivity = "insensitive"
    suite = "CUDA SDK"
    description = "Weather Prediction"
    base_ctas = 96

    cells_per_warp = 16
    num_fields = 4

    def __init__(self, params: TraceParams = TraceParams()) -> None:
        super().__init__(params)
        self.field_bases = [self.regions.region() for _ in range(self.num_fields)]
        self.out_base = self.regions.region()

    def warp_program(self, cta_id: int, warp_id: int) -> WarpTrace:
        program: WarpTrace = []
        n = self.cells_per_warp
        for i in range(n):
            for base in self.field_bases:
                program.append(load(self.stream_addr(base, cta_id, warp_id, i, n)))
                program.append(alu(3))
            program.append(alu(8))
            # Re-touch the first field (boundary exchange): creates the
            # detected-but-unprofitable contention the paper reports.
            program.append(load(self.stream_addr(self.field_bases[0], cta_id, warp_id, i, n)))
            program.append(alu(4))
            program.append(store(self.stream_addr(self.out_base, cta_id, warp_id, i, n)))
        return program
