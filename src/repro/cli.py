"""Command-line interface: ``python -m repro``.

Subcommands:

* ``run`` — simulate one benchmark under one design and print a report.
* ``compare`` — run several designs on one benchmark side by side.
* ``campaign`` — run a benchmark x design matrix through the parallel
  campaign engine (``--jobs``) with the persistent result cache.
* ``trace`` — run one benchmark with event tracing and export a
  Perfetto/Chrome ``trace_event`` JSON (or JSONL) file.
* ``profile`` — run one benchmark with in-memory tracing and print the
  G-Cache convergence report plus the metrics snapshot; or summarise a
  previously exported JSONL trace (``--from-trace``).
* ``analyze`` — cross-campaign intelligence: diff two campaign
  manifests (``analyze compare``) or query/append the historical
  perf/accuracy ledger (``analyze ledger``).
* ``scenario`` — declarative workloads (``repro.scenarios``): validate
  a spec and build its trace (``scenario build``), run the generative
  workload space through the functional backend and report where each
  design wins/loses (``scenario sweep``), or print the primitive
  registry reference (``scenario primitives``).
* ``serve`` — run the simulation-as-a-service daemon: an asyncio
  HTTP/JSON front end multiplexing many client campaigns onto the
  shared engine/cache stack with cross-job request coalescing.
* ``submit`` — submit a campaign to a running daemon (``--follow``
  streams its progress events).
* ``jobs`` — list daemon jobs, inspect/pause/resume/cancel one, or
  print service ``--stats``.
* ``list`` — enumerate benchmarks and designs.

Examples::

    python -m repro list
    python -m repro run --benchmark SPMV --design gc --scale 0.5
    python -m repro run --benchmark SSC --trace ssc.json --timeline-csv ssc.csv
    python -m repro trace --benchmark SPMV --design gcache -o spmv.json
    python -m repro profile --benchmark SSC --scale 0.5
    python -m repro profile --from-trace spmv.jsonl
    python -m repro compare --benchmark SSC --designs bs,bs-s,gc
    python -m repro campaign --benchmarks SPMV,KMN,SSC --jobs 8 \\
        --cache-dir ~/.cache/repro --manifest run.json
    python -m repro campaign --jobs 8 --cache-dir ~/.cache/repro \\
        --retries 3 --task-timeout 600 --keep-going    # fault-tolerant
    python -m repro campaign --jobs 8 --cache-dir ~/.cache/repro --resume
    python -m repro analyze compare base.json cand.json --html report.html
    python -m repro scenario build --table1 SD1 -o sd1.json
    python -m repro scenario build myspec.json --spec-out canonical.json
    python -m repro scenario sweep --limit 20 --report wins.md \\
        --sweep-manifest sweep.json --jobs 8
    python -m repro scenario primitives
    python -m repro analyze ledger perf.jsonl --append-bench BENCH_4.json
    python -m repro analyze ledger perf.jsonl --check --suite perf-gate
    python -m repro serve --port 8753 --cache-dir ~/.cache/repro \\
        --state-dir ~/.local/state/repro
    python -m repro submit --benchmarks SPMV,KMN --designs bs,gc --follow
    python -m repro jobs                      # list
    python -m repro jobs j-1a2b3c4d --cancel  # control one job
    python -m repro jobs --stats              # coalescing + cache counters

``campaign`` and ``compare`` are fault-tolerant: per-task retries with
exponential backoff (``--retries``), hung-worker reclamation
(``--task-timeout``), ``--keep-going`` to survive individual task
failures, and a crash-safe journal enabling ``--resume`` after a crash
or Ctrl-C (see the resilience section of ``docs/api.md``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.experiments.common import EvalSuite, sweep_optimal_pd
from repro.experiments.fig8_speedup import render_fig8
from repro.faults import FaultPlan
from repro.obs import Observability
from repro.obs.events import EVENT_KINDS
from repro.runner import CampaignEngine, ResultCache
from repro.sim.config import GPUConfig
from repro.sim.designs import DESIGN_KEYS, make_design
from repro.sim.simulator import FIDELITIES, simulate
from repro.stats.energy import EnergyModel
from repro.stats.report import Table, render_metrics
from repro.stats.timeline import Timeline
from repro.trace.suite import ALL_BENCHMARKS, build_benchmark, sensitivity_of

__all__ = ["main"]

#: Friendly aliases accepted anywhere a design key is (the paper's scheme
#: is widely called "G-Cache"; ``gcache`` reads better on the CLI).
DESIGN_ALIASES = {"gcache": "gc", "gcache-m": "gc-m", "baseline": "bs"}


def _design_key(name: str) -> str:
    """Normalise a ``--design`` argument, resolving friendly aliases."""
    key = name.strip().lower()
    return DESIGN_ALIASES.get(key, key)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--benchmark", required=True,
                        type=lambda s: s.upper(), choices=ALL_BENCHMARKS)
    _add_knobs(parser)


def _add_knobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--l1-size", type=int, default=32 * 1024,
                        help="L1 capacity in bytes (Table 2: 32768)")
    parser.add_argument("--scheduler", default="lrr",
                        choices=["lrr", "gto", "two-level", "throttle"])


def _add_fidelity(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--fidelity", default="timing", choices=FIDELITIES,
                        help="simulation fidelity: 'timing' is "
                             "cycle-accurate; 'functional' replays the "
                             "coalesced streams vectorized (exact cache "
                             "counters, estimated cycles, much faster)")


def _add_campaign_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: all cores; 1 = serial)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="persistent result-cache directory "
                             "(default: $REPRO_CACHE_DIR, else no cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent cache (no reads or writes)")
    parser.add_argument("--invalidate", action="store_true",
                        help="drop every cached entry before running")
    parser.add_argument("--manifest", type=Path, default=None,
                        help="write the run manifest JSON to this path "
                             "(also flushed, marked interrupted, on Ctrl-C)")
    parser.add_argument("--retries", type=int, default=2,
                        help="failures tolerated per task before it is "
                             "declared failed (default: 2; 0 = fail fast)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-attempt wall-clock budget; overruns kill "
                             "the hung worker and retry (pool mode only)")
    parser.add_argument("--journal", type=Path, default=None,
                        help="campaign journal (JSONL of completed task "
                             "keys; default: <cache-dir>/journal.jsonl)")
    parser.add_argument("--resume", action="store_true",
                        help="skip tasks the journal records as completed "
                             "(serving them from the cache) and run the rest")
    parser.add_argument("--keep-going", action="store_true",
                        help="on task failure, record it and finish the "
                             "campaign instead of aborting (exit code 1)")


def _config(args: argparse.Namespace) -> GPUConfig:
    return GPUConfig(l1_size=args.l1_size, warp_scheduler=args.scheduler)


def _engine(args: argparse.Namespace, default_jobs: Optional[int] = 1) -> CampaignEngine:
    """Campaign engine from the ``--jobs``/``--cache-dir``/``--no-cache``
    flags plus the resilience knobs.

    Interactive subcommands default to no persistent cache unless
    ``--cache-dir`` or ``$REPRO_CACHE_DIR`` names one; ``--no-cache``
    always wins.  A journal rides along whenever a cache directory is
    active (``<cache-dir>/journal.jsonl`` unless ``--journal`` names
    one); without ``--resume`` a stale journal is truncated, so each
    campaign's journal describes that campaign alone.  ``$REPRO_FAULTS``
    (JSON, see :meth:`repro.faults.FaultPlan.from_env`) arms the
    deterministic fault injector — the CI chaos-smoke hook.
    """
    cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir
        if cache_dir is None and os.environ.get("REPRO_CACHE_DIR"):
            cache_dir = Path(os.environ["REPRO_CACHE_DIR"])
        if cache_dir is not None:
            cache = ResultCache(cache_dir)
            if args.invalidate:
                dropped = cache.invalidate()
                print(f"[cache] invalidated {dropped} entries under {cache_dir}")
    journal = args.journal
    if journal is None and cache is not None and cache.enabled:
        journal = cache.root / "journal.jsonl"
    if args.resume and journal is None:
        raise SystemExit("--resume needs a journal: pass --journal or --cache-dir")
    if not args.resume and journal is not None and journal.exists():
        journal.unlink()  # fresh campaign owns a fresh journal
    jobs = args.jobs if args.jobs is not None else default_jobs
    return CampaignEngine(
        jobs=jobs,
        cache=cache,
        retries=args.retries,
        task_timeout=args.task_timeout,
        keep_going=args.keep_going,
        journal=journal,
        resume=args.resume,
        faults=FaultPlan.from_env(),
        manifest_path=args.manifest,
    )


def _finish_campaign(engine: CampaignEngine, args: argparse.Namespace) -> int:
    """Print the summary (and failures), write the manifest; exit code."""
    if engine.counters.resumed:
        print(f"[resume] {engine.counters.resumed} tasks already complete "
              f"(journal: {engine.journal.path})")
    if engine.failures:
        table = Table(["task", "key", "attempts", "last error"],
                      title="Failed tasks")
        for err in engine.failures:
            table.row([err.label, err.key[:12] + "…",
                       str(len(err.history)), err.history[-1]["error"]])
        print(table.render())
        print()
    print(engine.counters.render())
    if args.manifest is not None:
        print(f"[manifest] {engine.write_manifest(args.manifest)}")
    return 1 if engine.failures else 0


def _design(key: str, trace, config):
    if key == "spdp-b":
        return make_design("spdp-b", pd=sweep_optimal_pd(trace, config))
    return make_design(key)


def cmd_list(_: argparse.Namespace) -> int:
    table = Table(["benchmark", "class", "suite"], title="Table-1 benchmarks")
    for name in ALL_BENCHMARKS:
        trace_cls = __import__("repro.trace.suite", fromlist=["GENERATORS"]).GENERATORS[name]
        table.row([name, sensitivity_of(name), trace_cls.suite])
    print(table.render())
    print()
    print("designs:", ", ".join(DESIGN_KEYS))
    return 0


def _trace_observability(path: Path, kinds=None) -> Observability:
    """Build the file-backed Observability for a ``--trace`` export.

    A ``.jsonl`` suffix selects the line-delimited stream; anything else
    gets the Perfetto/Chrome ``trace_event`` JSON.
    """
    if path.suffix == ".jsonl":
        return Observability.to_jsonl(path, kinds=kinds)
    return Observability.to_perfetto(path, kinds=kinds)


def cmd_run(args: argparse.Namespace) -> int:
    config = _config(args)
    if args.fidelity == "functional" and (
        args.timeline_csv is not None or args.trace is not None
    ):
        print("--fidelity functional has no cycle-level event stream; "
              "drop --timeline-csv/--trace or use --fidelity timing",
              file=sys.stderr)
        return 2
    trace = build_benchmark(args.benchmark, scale=args.scale, seed=args.seed)
    design = _design(args.design, trace, config)
    timeline = Timeline() if args.timeline_csv is not None else None
    obs = _trace_observability(args.trace) if args.trace is not None else None
    result = simulate(trace, config, design, timeline=timeline, obs=obs,
                      fidelity=args.fidelity)
    if args.fidelity == "functional":
        print("[fidelity] functional: cache counters exact, "
              "cycles/IPC estimated")
    if obs is not None:
        obs.close()
        print(f"[trace] {args.trace}")
    if timeline is not None:
        args.timeline_csv.write_text(timeline.to_csv() + "\n")
        print(f"[timeline] {args.timeline_csv} ({len(timeline.windows())} windows)")
    energy = EnergyModel().evaluate(result)

    print(f"{trace.name} on {config.describe()} under {design.label}")
    table = Table(["metric", "value"])
    table.row(["IPC", f"{result.ipc:.3f}"])
    table.row(["cycles", f"{result.cycles:,}"])
    table.row(["instructions", f"{result.instructions:,}"])
    table.row(["L1 miss rate", f"{result.l1.miss_rate:.1%}"])
    table.row(["L1 bypass ratio", f"{result.l1.bypass_ratio:.1%}"])
    table.row(["L2 miss rate", f"{result.l2.miss_rate:.1%}"])
    table.row(["avg load latency", f"{result.avg_load_latency:.0f} cycles"])
    table.row(["DRAM requests", f"{result.dram_requests:,}"])
    table.row(["DRAM row-hit rate", f"{result.dram_row_hit_rate:.1%}"])
    table.row(["energy / instruction", f"{energy.pj_per_instruction:.0f} pJ"])
    print(table.render())
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    keys = [_design_key(k) for k in args.designs.split(",") if k.strip()]
    unknown = [k for k in keys if k not in DESIGN_KEYS]
    if unknown:
        print(f"unknown designs: {unknown}; known: {DESIGN_KEYS}", file=sys.stderr)
        return 2

    suite = EvalSuite(
        config=_config(args),
        benchmarks=[args.benchmark],
        scale=args.scale,
        seed=args.seed,
        engine=_engine(args),
        fidelity=args.fidelity,
    )
    matrix = suite.run_matrix(keys)
    results = {key: matrix[(args.benchmark, key)] for key in keys}
    base = results.get("bs") or results[keys[0]]

    table = Table(
        ["design", "IPC", "speedup", "L1 miss", "bypass", "rel. energy"],
        title=f"{args.benchmark}: design comparison",
    )
    model = EnergyModel()
    base_energy = model.evaluate(base)
    for key in keys:
        r = results[key]
        table.row([
            key.upper(),
            f"{r.ipc:.3f}",
            f"{r.speedup_over(base):.3f}",
            f"{r.l1.miss_rate:.1%}",
            f"{r.l1.bypass_ratio:.1%}",
            f"{model.evaluate(r).relative_to(base_energy):.3f}",
        ])
    print(table.render())
    if args.manifest is not None:
        print(f"[manifest] {suite.engine.write_manifest(args.manifest)}")
    return 1 if suite.engine.failures else 0


def cmd_trace(args: argparse.Namespace) -> int:
    config = _config(args)
    trace = build_benchmark(args.benchmark, scale=args.scale, seed=args.seed)
    design = _design(args.design, trace, config)
    kinds = None
    if args.kinds:
        kinds = [k.strip() for k in args.kinds.split(",") if k.strip()]
        unknown = [k for k in kinds if k not in EVENT_KINDS]
        if unknown:
            print(f"unknown event kinds: {unknown}; known: {list(EVENT_KINDS)}",
                  file=sys.stderr)
            return 2
    obs = _trace_observability(args.output, kinds=kinds)
    result = simulate(trace, config, design, obs=obs)
    try:
        obs.close()  # flushes the trace file; failures are user-visible
    except OSError as exc:
        print(f"cannot write trace {args.output}: {exc}", file=sys.stderr)
        return 2

    bus = obs.bus
    print(f"{trace.name} under {design.label}: "
          f"{bus.events_emitted:,} events -> {args.output}")
    if bus.events_dropped:
        print(f"[trace] {bus.events_dropped:,} events dropped by --kinds filter")
    print(f"IPC {result.ipc:.3f}, L1 miss {result.l1.miss_rate:.1%}, "
          f"{result.cycles:,} cycles")
    if args.output.suffix != ".jsonl":
        print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def _profile_from_trace(path: Path, top: int) -> int:
    """Summarise a previously exported JSONL event trace.

    Exit code 2 on a missing, unreadable or unparseable trace — the
    offline half of ``profile`` must be honest about bad inputs, since
    it is the command people point at artifacts from other machines.
    """
    try:
        text = path.read_text()
    except OSError as exc:
        print(f"cannot read trace {path}: {exc}", file=sys.stderr)
        return 2
    events = []
    bad_lines = 0
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            bad_lines += 1
            continue
        if isinstance(record, dict) and "kind" in record and "cycle" in record:
            events.append(record)
        else:
            bad_lines += 1
    if not events:
        print(f"{path} holds no parseable trace events "
              f"({bad_lines} malformed lines) — is it a JSONL trace from "
              "'repro trace -o out.jsonl'?", file=sys.stderr)
        return 2

    by_kind: dict = {}
    by_src: dict = {}
    lo = hi = None
    for e in events:
        by_kind[e["kind"]] = by_kind.get(e["kind"], 0) + 1
        src = e.get("src", "?")
        by_src[src] = by_src.get(src, 0) + 1
        cycle = e["cycle"]
        if isinstance(cycle, (int, float)):
            lo = cycle if lo is None else min(lo, cycle)
            hi = cycle if hi is None else max(hi, cycle)
    print(f"{path}: {len(events):,} events, cycles {lo:,}..{hi:,}"
          + (f" ({bad_lines} malformed lines skipped)" if bad_lines else ""))
    table = Table(["event kind", "count", "share"], title="Events by kind")
    for kind in sorted(by_kind, key=lambda k: (-by_kind[k], k)):
        table.row([kind, f"{by_kind[kind]:,}",
                   f"{100.0 * by_kind[kind] / len(events):.1f}%"])
    print(table.render())
    print()
    table = Table(["source", "events"], title=f"Top {top} sources")
    for src in sorted(by_src, key=lambda s: (-by_src[s], str(s)))[:top]:
        table.row([str(src), f"{by_src[src]:,}"])
    print(table.render())
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    if args.from_trace is not None:
        return _profile_from_trace(args.from_trace, top=args.top_sets)
    if args.benchmark is None:
        print("profile needs --benchmark (live run) or --from-trace PATH",
              file=sys.stderr)
        return 2
    config = _config(args)
    trace = build_benchmark(args.benchmark, scale=args.scale, seed=args.seed)
    design = _design(args.design, trace, config)
    obs = Observability.in_memory()
    result = simulate(trace, config, design, obs=obs)

    print(f"{trace.name} on {config.describe()} under {design.label}")
    print()
    diag = obs.diagnostics(end_cycle=result.cycles)
    print(diag.render(top_sets=args.top_sets))
    print()
    print(render_metrics(result.extras["metrics"], title="metrics snapshot"))
    obs.close()
    return 0


def cmd_analyze_compare(args: argparse.Namespace) -> int:
    """Diff two campaign manifests; optionally write report artifacts.

    Exit codes: 0 clean, 1 when ``--fail-on-regression`` is set and any
    counter regressed (or labels went missing), 2 on unreadable inputs.
    """
    from repro.analysis import AnalysisError, compare_manifests, load_manifest
    from repro.analysis.report import render_html, render_markdown

    try:
        a = load_manifest(args.baseline)
        b = load_manifest(args.candidate)
    except AnalysisError as exc:
        print(f"analyze compare: {exc}", file=sys.stderr)
        return 2
    cmp = compare_manifests(a, b, alpha=args.alpha)
    markdown = render_markdown(cmp, top=args.top,
                               include_unchanged=args.include_unchanged)
    if args.markdown is not None:
        args.markdown.write_text(markdown)
        print(f"[report] {args.markdown}")
    if args.html is not None:
        args.html.write_text(
            render_html(cmp, top=args.top,
                        include_unchanged=args.include_unchanged))
        print(f"[report] {args.html}")
    if args.markdown is None and args.html is None:
        print(markdown, end="")
    counts = cmp.verdict_counts()
    if args.markdown is not None or args.html is not None:
        print("verdicts: " + ", ".join(f"{counts[v]} {v}" for v in
                                       ("improved", "regressed", "changed",
                                        "unchanged", "new", "missing")))
    if args.fail_on_regression and (counts["regressed"] or counts["missing"]):
        print(f"FAIL: {counts['regressed']} regressed counters, "
              f"{counts['missing']} missing labels", file=sys.stderr)
        return 1
    return 0


def cmd_analyze_ledger(args: argparse.Namespace) -> int:
    """Append to / query / gate against the perf-accuracy ledger."""
    from repro.analysis import (AnalysisError, Ledger, record_from_bench,
                                record_from_manifest)

    ledger = Ledger(args.ledger)

    def _load_json(path: Path) -> dict:
        try:
            blob = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise AnalysisError(f"cannot read {path}: {exc}")
        if not isinstance(blob, dict):
            raise AnalysisError(f"{path} is not a JSON object")
        return blob

    try:
        if args.append_bench is not None:
            record = record_from_bench(_load_json(args.append_bench),
                                       suite=args.suite or "perf-gate")
            ledger.append(record)
            print(f"[ledger] appended {record['suite']} record "
                  f"({len(record['metrics'])} metrics) -> {ledger.path}")
        if args.append_manifest is not None:
            record = record_from_manifest(_load_json(args.append_manifest),
                                          suite=args.suite or "campaign")
            ledger.append(record)
            print(f"[ledger] appended {record['suite']} record "
                  f"({len(record['metrics'])} metrics) -> {ledger.path}")
    except AnalysisError as exc:
        print(f"analyze ledger: {exc}", file=sys.stderr)
        return 2

    if args.trend is not None:
        suite = args.suite
        if suite is None:
            suites = ledger.suites()
            if len(suites) != 1:
                print(f"--trend needs --suite (ledger holds {suites})",
                      file=sys.stderr)
                return 2
            suite = suites[0]
        print(ledger.render_trend(suite, args.trend, window=args.window))
    if args.check:
        result = ledger.check(suite=args.suite, window=args.window,
                              tolerance=args.tolerance)
        print(result.render())
        if not result.ok:
            return 1
    if (args.append_bench is None and args.append_manifest is None
            and args.trend is None and not args.check):
        records = ledger.records()
        print(f"{ledger.path}: {len(records)} records, "
              f"suites: {', '.join(ledger.suites()) or '(none)'}")
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    keys = [_design_key(k) for k in args.designs.split(",") if k.strip()]
    unknown = [k for k in keys if k not in DESIGN_KEYS]
    if unknown:
        print(f"unknown designs: {unknown}; known: {DESIGN_KEYS}", file=sys.stderr)
        return 2
    benches = (
        [b.strip().upper() for b in args.benchmarks.split(",") if b.strip()] or None
    )
    if benches:
        bad = [b for b in benches if b not in ALL_BENCHMARKS]
        if bad:
            print(f"unknown benchmarks: {bad}; known: {ALL_BENCHMARKS}", file=sys.stderr)
            return 2

    engine = _engine(args, default_jobs=None)  # campaign defaults to all cores
    suite = EvalSuite(
        config=_config(args),
        benchmarks=benches,
        scale=args.scale,
        seed=args.seed,
        engine=engine,
        fidelity=args.fidelity,
    )
    try:
        suite.run_matrix(keys)
    except KeyboardInterrupt:
        done = engine.counters.unique_tasks
        print(f"\n[interrupted] {done} tasks completed and journaled; "
              f"rerun with --resume to pick up the remainder", file=sys.stderr)
        if args.manifest is not None:
            print(f"[manifest] {args.manifest} (partial, interrupted=true)",
                  file=sys.stderr)
        return 130
    if not engine.failures:
        # Figure rendering walks every payload; skip it when some slots
        # hold the FAILED sentinel (--keep-going) and report instead.
        print(render_fig8(suite, designs=keys))
        print()
    return _finish_campaign(engine, args)


def cmd_scenario_build(args: argparse.Namespace) -> int:
    from repro.scenarios import (
        SpecError,
        build_scenario,
        canonical_spec,
        load_spec,
        spec_digest,
        table1_spec,
    )
    from repro.trace.io import save_trace

    try:
        if args.table1:
            doc = table1_spec(args.table1.upper(), scale=args.scale,
                              seed=args.seed)
            spec = canonical_spec(doc)
        elif args.spec:
            spec = canonical_spec(load_spec(args.spec), scale=args.scale,
                                  seed=args.seed)
        else:
            print("scenario build needs a SPEC.json path or --table1 NAME",
                  file=sys.stderr)
            return 2
        trace = build_scenario(spec)
    except SpecError as exc:
        print(f"invalid scenario spec: {exc}", file=sys.stderr)
        return 2

    digest = spec_digest(spec)
    ops = sum(len(w) for cta in trace.ctas for w in cta.warps)
    print(f"scenario   {trace.name}")
    print(f"digest     {digest}")
    print(f"ctas       {len(trace.ctas)} x {len(trace.ctas[0].warps)} warps")
    print(f"ops        {ops}")
    if args.spec_out is not None:
        args.spec_out.write_text(
            json.dumps(spec, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        print(f"[spec] {args.spec_out}")
    if args.output is not None:
        save_trace(trace, args.output)
        print(f"[trace] {args.output}")
    return 0


def cmd_scenario_sweep(args: argparse.Namespace) -> int:
    from repro.scenarios import (
        SpecError,
        generate_space,
        load_spec,
        canonical_spec,
        run_scenario_sweep,
    )

    keys = [_design_key(k) for k in args.designs.split(",") if k.strip()]
    unknown = [k for k in keys if k not in DESIGN_KEYS]
    if unknown:
        print(f"unknown designs: {unknown}; known: {DESIGN_KEYS}",
              file=sys.stderr)
        return 2
    try:
        if args.specs:
            specs = [canonical_spec(load_spec(p)) for p in args.specs]
        else:
            specs = generate_space(limit=args.limit)
    except SpecError as exc:
        print(f"invalid scenario spec: {exc}", file=sys.stderr)
        return 2

    engine = _engine(args, default_jobs=None)
    try:
        result = run_scenario_sweep(
            specs, designs=keys, scale=args.scale, seed=args.seed,
            engine=engine)
    except KeyboardInterrupt:
        print("\n[interrupted] rerun with --resume to pick up the remainder",
              file=sys.stderr)
        return 130

    report = result.report_markdown(design=keys[-1], baseline=keys[0])
    if args.report is not None:
        args.report.write_text(report, encoding="utf-8")
        print(f"[report] {args.report}")
    else:
        print(report)
    if args.sweep_manifest is not None:
        args.sweep_manifest.write_text(result.manifest_json(),
                                       encoding="utf-8")
        print(f"[sweep-manifest] {args.sweep_manifest}")
    return _finish_campaign(engine, args)


def cmd_scenario_primitives(_: argparse.Namespace) -> int:
    from repro.scenarios import PRIMITIVES
    from repro.scenarios.schema import STEP_FIELDS

    def field_rows(table: Table, fields) -> None:
        for fname, fld in fields.items():
            dflt = "(required)" if fld.required else repr(fld.default)
            bounds = ""
            if fld.lo is not None or fld.hi is not None:
                bounds = f"{fld.lo}..{fld.hi}"
            elif fld.choices:
                bounds = "|".join(str(c) for c in fld.choices)
            table.row([fname, fld.kind, dflt, bounds, fld.doc])

    for name in sorted(PRIMITIVES):
        prim = PRIMITIVES[name]
        print(f"{name} — {prim.doc}")
        table = Table(["param", "kind", "default", "range", "doc"])
        field_rows(table, prim.PARAMS)
        print(table.render())
        print()
    print("stream body step kinds:")
    for kind, fields in STEP_FIELDS.items():
        print(f"  {kind}:")
        if fields:
            table = Table(["field", "kind", "default", "range", "doc"])
            field_rows(table, fields)
            print("    " + table.render().replace("\n", "\n    "))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import CampaignDaemon

    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    daemon = CampaignDaemon(
        host=args.host,
        port=args.port,
        cache_dir=str(cache_dir) if cache_dir else None,
        state_dir=str(args.state_dir) if args.state_dir else None,
        engine_jobs=args.engine_jobs,
    )
    try:
        daemon.run()
    except KeyboardInterrupt:
        pass
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceError

    keys = [_design_key(k) for k in args.designs.split(",") if k.strip()]
    benches = (
        [b.strip().upper() for b in args.benchmarks.split(",") if b.strip()] or None
    )
    spec = {
        "benchmarks": benches,
        "designs": keys,
        "scale": args.scale,
        "seed": args.seed,
        "fidelity": args.fidelity,
        "l1_size": args.l1_size,
        "scheduler": args.scheduler,
        "retries": args.retries,
        "task_timeout": args.task_timeout,
        "keep_going": args.keep_going,
    }
    client = ServiceClient(args.host, args.port)
    try:
        snap = client.submit(spec)
        job_id = snap["id"]
        print(f"submitted {job_id} ({snap['state']})")
        if args.follow:
            for event in client.events(job_id):
                print(json.dumps(event, sort_keys=True))
        if args.follow or args.wait:
            final = client.wait(job_id, timeout=args.wait_timeout)
            print(f"{job_id}: {final['state']}"
                  + (f" ({final['error']})" if final.get("error") else ""))
            return 0 if final["state"] == "completed" else 1
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_jobs(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.host, args.port)
    try:
        if args.stats:
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if args.job_id is None:
            jobs = client.jobs()
            if not jobs:
                print("no jobs")
                return 0
            for snap in jobs:
                counters = snap.get("counters", {})
                flags = " [paused]" if snap.get("paused") else ""
                print(f"{snap['id']}  {snap['state']:<9}{flags}  "
                      f"tasks={counters.get('tasks', 0)} "
                      f"executed={counters.get('executed', 0)} "
                      f"hits={counters.get('cache_hits', 0)} "
                      f"coalesced={counters.get('coalesced', 0)}")
            return 0
        action = ("cancel" if args.cancel else "pause" if args.pause
                  else "resume" if args.resume else None)
        if action is not None:
            snap = getattr(client, action)(args.job_id)
            print(f"{snap['id']}: {action} requested (state: {snap['state']})")
            return 0
        if args.follow:
            for event in client.events(args.job_id):
                print(json.dumps(event, sort_keys=True))
            snap = client.job(args.job_id)
        else:
            snap = client.job(args.job_id)
        print(json.dumps(snap, indent=2, sort_keys=True))
        return 0
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="G-Cache reproduction: GPU cache-management simulator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks and designs")

    run_parser = sub.add_parser("run", help="simulate one benchmark/design")
    _add_common(run_parser)
    run_parser.add_argument("--design", default="gc", type=_design_key,
                            choices=DESIGN_KEYS)
    run_parser.add_argument("--timeline-csv", type=Path, default=None,
                            metavar="PATH",
                            help="write windowed IPC/miss/bypass rates as CSV")
    run_parser.add_argument("--trace", type=Path, default=None, metavar="PATH",
                            help="export an event trace (Perfetto JSON, or "
                                 "JSONL when PATH ends in .jsonl)")
    _add_fidelity(run_parser)

    trace_parser = sub.add_parser(
        "trace", help="run with event tracing and export a Perfetto/JSONL trace"
    )
    _add_common(trace_parser)
    trace_parser.add_argument("--design", default="gc", type=_design_key,
                              choices=DESIGN_KEYS)
    trace_parser.add_argument("-o", "--output", type=Path, required=True,
                              metavar="PATH",
                              help="trace file (Perfetto JSON, or JSONL when "
                                   "PATH ends in .jsonl)")
    trace_parser.add_argument("--kinds", default="",
                              help="comma-separated event-kind whitelist "
                                   "(default: record everything)")

    prof_parser = sub.add_parser(
        "profile", help="print the G-Cache convergence report and metrics"
    )
    prof_parser.add_argument("--benchmark", default=None,
                             type=lambda s: s.upper(), choices=ALL_BENCHMARKS,
                             help="benchmark to simulate and profile live "
                                  "(or use --from-trace for offline analysis)")
    _add_knobs(prof_parser)
    prof_parser.add_argument("--design", default="gc", type=_design_key,
                             choices=DESIGN_KEYS)
    prof_parser.add_argument("--top-sets", type=int, default=10,
                             help="per-set duty-cycle rows to print")
    prof_parser.add_argument("--from-trace", type=Path, default=None,
                             metavar="PATH",
                             help="summarise an exported JSONL event trace "
                                  "instead of running a simulation "
                                  "(exit 2 when missing or unparseable)")

    cmp_parser = sub.add_parser("compare", help="compare designs on one benchmark")
    _add_common(cmp_parser)
    cmp_parser.add_argument("--designs", default="bs,bs-s,gc")
    _add_fidelity(cmp_parser)
    _add_campaign_flags(cmp_parser)

    camp_parser = sub.add_parser(
        "campaign",
        help="run a benchmark x design matrix in parallel with result caching",
    )
    _add_knobs(camp_parser)
    camp_parser.add_argument("--benchmarks", default="",
                             help="comma-separated subset (default: all 17)")
    camp_parser.add_argument("--designs", default="bs,bs-s,spdp-b,gc")
    _add_fidelity(camp_parser)
    _add_campaign_flags(camp_parser)

    scen_parser = sub.add_parser(
        "scenario",
        help="declarative scenario specs: build traces, sweep the "
             "generative workload space, list primitives",
    )
    scen_sub = scen_parser.add_subparsers(dest="scenario_command",
                                          required=True)

    scen_build = scen_sub.add_parser(
        "build", help="validate a spec and build its kernel trace")
    scen_build.add_argument("spec", nargs="?", type=Path, default=None,
                            help="scenario spec JSON file")
    scen_build.add_argument("--table1", default=None, metavar="NAME",
                            help="use a pinned Table-1 spec "
                                 "(SD1, STL, WP, FWT) instead of a file")
    scen_build.add_argument("--scale", type=float, default=1.0)
    scen_build.add_argument("--seed", type=int, default=0)
    scen_build.add_argument("-o", "--output", type=Path, default=None,
                            help="save the built trace as repro-trace JSON")
    scen_build.add_argument("--spec-out", type=Path, default=None,
                            help="write the canonical (default-filled) "
                                 "spec JSON to this path")

    scen_sweep = scen_sub.add_parser(
        "sweep",
        help="run scenario specs through the functional backend and "
             "report where each design wins/loses")
    scen_sweep.add_argument("specs", nargs="*", type=Path,
                            help="spec JSON files (default: the built-in "
                                 "generative space)")
    scen_sweep.add_argument("--limit", type=int, default=None,
                            help="truncate the generated space to the "
                                 "first N workloads")
    scen_sweep.add_argument("--designs", default="bs,gc",
                            help="comma-separated design keys; first is "
                                 "the baseline, last is the candidate")
    scen_sweep.add_argument("--scale", type=float, default=1.0)
    scen_sweep.add_argument("--seed", type=int, default=0)
    scen_sweep.add_argument("--report", type=Path, default=None,
                            help="write the wins/losses markdown report "
                                 "here (default: stdout)")
    scen_sweep.add_argument("--sweep-manifest", type=Path, default=None,
                            help="write the deterministic sweep manifest "
                                 "(digests + counters, no wall-clock) here")
    _add_campaign_flags(scen_sweep)

    scen_sub.add_parser(
        "primitives",
        help="print the registered primitives and their parameter schema")

    serve_parser = sub.add_parser(
        "serve",
        help="run the simulation service daemon (HTTP/JSON on localhost)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (loopback only: no auth)")
    serve_parser.add_argument("--port", type=int, default=8753,
                              help="TCP port (0 = pick a free one)")
    serve_parser.add_argument("--cache-dir", type=Path, default=None,
                              help="shared result-cache directory "
                                   "(default: $REPRO_CACHE_DIR, else none)")
    serve_parser.add_argument("--state-dir", type=Path, default=None,
                              help="job spec/journal/manifest directory; "
                                   "enables crash recovery across restarts")
    serve_parser.add_argument("--engine-jobs", type=int, default=1,
                              help="worker processes per job engine "
                                   "(default 1: jobs run serially, the "
                                   "daemon parallelises across jobs)")

    def _add_client_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1", help="daemon host")
        p.add_argument("--port", type=int, default=8753, help="daemon port")

    submit_parser = sub.add_parser(
        "submit", help="submit a campaign to a running repro daemon"
    )
    _add_client_flags(submit_parser)
    _add_knobs(submit_parser)
    submit_parser.add_argument("--benchmarks", default="",
                               help="comma-separated subset (default: all 17)")
    submit_parser.add_argument("--designs", default="bs,bs-s,spdp-b,gc")
    _add_fidelity(submit_parser)
    submit_parser.add_argument("--retries", type=int, default=2)
    submit_parser.add_argument("--task-timeout", type=float, default=None,
                               metavar="SECONDS")
    submit_parser.add_argument("--keep-going", action="store_true")
    submit_parser.add_argument("--follow", action="store_true",
                               help="stream the job's NDJSON progress events "
                                    "until it finishes")
    submit_parser.add_argument("--wait", action="store_true",
                               help="block until the job reaches a terminal "
                                    "state (exit 1 unless completed)")
    submit_parser.add_argument("--wait-timeout", type=float, default=None,
                               metavar="SECONDS")

    jobs_parser = sub.add_parser(
        "jobs", help="list/inspect/control jobs on a running repro daemon"
    )
    _add_client_flags(jobs_parser)
    jobs_parser.add_argument("job_id", nargs="?", default=None,
                             help="job to inspect or act on (default: list all)")
    jobs_group = jobs_parser.add_mutually_exclusive_group()
    jobs_group.add_argument("--cancel", action="store_true")
    jobs_group.add_argument("--pause", action="store_true")
    jobs_group.add_argument("--resume", action="store_true")
    jobs_group.add_argument("--follow", action="store_true",
                            help="stream the job's progress events")
    jobs_group.add_argument("--stats", action="store_true",
                            help="print service-wide stats (coalescing, "
                                 "cache counters, job states)")

    ana_parser = sub.add_parser(
        "analyze",
        help="cross-campaign analysis: manifest diffs and the perf ledger",
    )
    ana_sub = ana_parser.add_subparsers(dest="analyze_command", required=True)

    diff_parser = ana_sub.add_parser(
        "compare",
        help="diff two campaign manifests with significance-tested verdicts",
    )
    diff_parser.add_argument("baseline", type=Path,
                             help="manifest A (the baseline)")
    diff_parser.add_argument("candidate", type=Path,
                             help="manifest B (the candidate)")
    diff_parser.add_argument("--markdown", type=Path, default=None,
                             metavar="PATH",
                             help="write the markdown report here "
                                  "(default: print it to stdout)")
    diff_parser.add_argument("--html", type=Path, default=None, metavar="PATH",
                             help="write a self-contained HTML report here")
    diff_parser.add_argument("--alpha", type=float, default=0.05,
                             help="significance level for the permutation "
                                  "test on repeated-run counters")
    diff_parser.add_argument("--top", type=int, default=10,
                             help="rows in the top-regressions table")
    diff_parser.add_argument("--include-unchanged", action="store_true",
                             help="list unchanged counters in per-label tables")
    diff_parser.add_argument("--fail-on-regression", action="store_true",
                             help="exit 1 when any counter regressed or any "
                                  "label went missing (CI gate mode)")

    ledger_parser = ana_sub.add_parser(
        "ledger",
        help="append to / query / gate against the perf-accuracy ledger",
    )
    ledger_parser.add_argument("ledger", type=Path,
                               help="ledger JSONL file (created on append)")
    ledger_parser.add_argument("--append-bench", type=Path, default=None,
                               metavar="BENCH.json",
                               help="append a perf-suite BENCH blob as one "
                                    "ledger record")
    ledger_parser.add_argument("--append-manifest", type=Path, default=None,
                               metavar="MANIFEST.json",
                               help="append a campaign manifest's accuracy "
                                    "metrics as one ledger record")
    ledger_parser.add_argument("--suite", default=None,
                               help="suite name to append under / filter by")
    ledger_parser.add_argument("--trend", default=None, metavar="METRIC",
                               help="print the metric's recent trajectory")
    ledger_parser.add_argument("--check", action="store_true",
                               help="gate the newest record against the "
                                    "rolling baseline (exit 1 on regression)")
    ledger_parser.add_argument("--window", type=int, default=10,
                               help="rolling-baseline window size")
    ledger_parser.add_argument("--tolerance", type=float, default=0.10,
                               help="relative drift tolerated before a "
                                    "metric fails the check")

    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list(args)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "trace":
        return cmd_trace(args)
    if args.command == "profile":
        return cmd_profile(args)
    if args.command == "campaign":
        return cmd_campaign(args)
    if args.command == "scenario":
        if args.scenario_command == "build":
            return cmd_scenario_build(args)
        if args.scenario_command == "sweep":
            return cmd_scenario_sweep(args)
        return cmd_scenario_primitives(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "submit":
        return cmd_submit(args)
    if args.command == "jobs":
        return cmd_jobs(args)
    if args.command == "analyze":
        if args.analyze_command == "compare":
            return cmd_analyze_compare(args)
        return cmd_analyze_ledger(args)
    return cmd_compare(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
