"""Per-job event fan-out: engine threads in, asyncio subscribers out.

The campaign engine emits progress callbacks from whatever thread runs
the job; daemon subscribers consume newline-delimited JSON from asyncio
coroutines.  :class:`JobEventBroker` bridges the two worlds with
exactly-once delivery per subscriber:

* ``publish`` (any thread) appends the event to a bounded history and
  schedules delivery to the current subscriber queues via
  ``loop.call_soon_threadsafe`` — *inside* the broker lock, so event
  order is identical for history and every subscriber;
* ``subscribe`` (event-loop only) atomically replays the history into a
  fresh queue and attaches it, so an event is delivered either by the
  replay or live, never both and never neither.

Without an event loop (``loop=None`` — unit tests, embedded use) the
broker degrades to history-only: ``events()`` still works, async
subscription is unavailable.

This is the same fan-out idiom as :class:`repro.obs.EventBus`, one
level up: obs events describe *simulated* hardware, these describe the
*service* executing simulations.  An in-process obs bus can be bridged
in with :class:`repro.obs.sinks.CallbackSink` → ``publish``.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from typing import Any, AsyncIterator, Dict, List, Optional, Set

__all__ = ["JobEventBroker"]

#: Queue sentinel that terminates a subscriber's stream.
_CLOSED = object()


class JobEventBroker:
    """Bounded event history plus live fan-out for one job.

    Args:
        loop: The asyncio loop subscribers run on; ``None`` disables
            live subscription (history only).
        history: Events retained for replay to late subscribers.
    """

    def __init__(
        self, loop: Optional[asyncio.AbstractEventLoop] = None, history: int = 4096
    ) -> None:
        self._loop = loop
        self._history: deque = deque(maxlen=history)
        self._subscribers: Set[asyncio.Queue] = set()
        self._lock = threading.Lock()
        self.closed = False
        self.published = 0

    # ------------------------------------------------------------------
    # Producer side (engine worker threads)
    # ------------------------------------------------------------------
    def publish(self, event: Dict[str, Any]) -> None:
        """Record ``event`` and deliver it to every current subscriber.

        Thread-safe; callable from any thread.  Events published after
        :meth:`close` are dropped (the stream has already terminated).
        """
        with self._lock:
            if self.closed:
                return
            self._history.append(event)
            self.published += 1
            targets = list(self._subscribers)
            if self._loop is not None and targets:
                self._loop.call_soon_threadsafe(self._deliver, targets, event)

    def close(self) -> None:
        """Terminate the stream: subscribers drain and stop iterating."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            targets = list(self._subscribers)
            if self._loop is not None and targets:
                self._loop.call_soon_threadsafe(self._deliver, targets, _CLOSED)

    @staticmethod
    def _deliver(targets: List[asyncio.Queue], event: Any) -> None:
        for queue in targets:
            queue.put_nowait(event)

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def events(self) -> List[Dict[str, Any]]:
        """Snapshot of the retained history (polling / tests)."""
        with self._lock:
            return list(self._history)

    async def subscribe(self) -> AsyncIterator[Dict[str, Any]]:
        """Replay the history, then yield live events until close.

        Must be iterated on the broker's event loop.  Attachment and
        replay happen atomically under the broker lock, so no event is
        duplicated or lost around the subscription instant.
        """
        if self._loop is None:
            raise RuntimeError("broker has no event loop; live subscription disabled")
        queue: asyncio.Queue = asyncio.Queue()
        with self._lock:
            for event in self._history:
                queue.put_nowait(event)
            if self.closed:
                queue.put_nowait(_CLOSED)
            else:
                self._subscribers.add(queue)
        try:
            while True:
                event = await queue.get()
                if event is _CLOSED:
                    return
                yield event
        finally:
            with self._lock:
                self._subscribers.discard(queue)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self.closed else "open"
        return (
            f"<JobEventBroker {state}: {self.published} published, "
            f"{len(self._subscribers)} subscribers>"
        )
